"""Benchmark: thread-tier (sharded) vs. process-tier (worker pool) serving.

The sharded engine's shard threads amortise call overhead but share one GIL —
featurization, the dominant per-request cost, never runs truly in parallel.
:class:`repro.cluster.WorkerPool` moves each shard into its own *process*
(spawned from the fitted judge via the save/load bundle) behind an asyncio
gateway speaking the binary wire protocol, so feature gathering fans out
across cores.

This benchmark fits a small HisRect judge, generates the same seeded
Zipf-skewed request stream as ``bench_sharded_serving.py``, and serves it
cold through the single engine, the thread tier, and the process tier with
the same total cache budget.  It asserts the serving contract everywhere:

* worker-pool ``predict_proba`` matches the single engine **bit-for-bit**
  (save/load restores exactly; the wire gather contributes nothing);
* micro-batched worker results drift only by coalescing noise (<= 1e-12);
* typed serve responses agree across all four transports;
* after ``close()``, no worker process survives (the no-orphans check).

On a multi-core host the full run also enforces the headline: the process
tier must beat the thread tier on this CPU-bound load.  On a single core the
comparison is reported but not enforced — there is no parallelism to win.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_worker_serving.py

pass ``--smoke`` (the CI invocation) for a tiny load that checks parity and
orphan hygiene only.  The CLI twin is ``repro-hisrect serve-bench --workers``.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import sys

from repro.cluster.loadgen import (
    LoadConfig,
    compare_serving_paths,
    fit_serving_pipeline,
    generate_requests,
)

NUM_WORKERS = 4


def run(smoke: bool = False) -> str:
    config = (
        LoadConfig(num_users=48, num_requests=48, pairs_per_request=3)
        if smoke
        else LoadConfig(num_users=256, num_requests=384, pairs_per_request=4)
    )
    pipeline, dataset = fit_serving_pipeline(seed=5)
    requests = generate_requests(dataset.registry, dataset.training_corpus(), config)
    num_workers = 2 if smoke else NUM_WORKERS
    report = compare_serving_paths(
        pipeline,
        requests,
        num_shards=num_workers,
        cache_size=4096,
        max_batch=256,
        num_workers=num_workers,
    )
    cores = os.cpu_count() or 1
    lines = [
        f"Benchmark: thread-tier vs. process-tier serving, "
        f"{num_workers} shards/workers on {cores} cores, zipf s={config.zipf_s}, "
        f"{config.num_requests} requests x {config.pairs_per_request} pairs, "
        f"{config.num_users} users" + (" [smoke]" if smoke else ""),
        "",
        report.format(),
        "",
    ]
    if not report.workers_exact:
        raise AssertionError("worker-pool probabilities diverged from the single engine")
    if report.workers_drift > 1e-12:
        raise AssertionError(
            f"worker-tier coalescing drifted by {report.workers_drift:.2e} "
            "(expected last-mantissa-bit noise only)"
        )
    if not report.serve_exact or not report.workers_serve_exact:
        raise AssertionError("typed serve responses diverged across the four transports")
    # No-orphans check: compare_serving_paths closed the pool on exit; any
    # worker process still alive here escaped the lifecycle.
    orphans = multiprocessing.active_children()
    if orphans:
        raise AssertionError(f"worker processes survived close(): {orphans}")
    thread_vs_process = (
        report.cluster.elapsed_s / report.workers.elapsed_s
        if report.workers.elapsed_s > 0
        else float("inf")
    )
    lines.append(
        f"thread tier {report.cluster.elapsed_s:.3f}s vs process tier "
        f"{report.workers.elapsed_s:.3f}s -> {thread_vs_process:.2f}x on {cores} cores"
    )
    if smoke:
        lines.append(
            "smoke run: four-transport parity + no-orphans checked, "
            "scaling target not enforced"
        )
    elif cores >= 2:
        lines.append(
            f"headline ({num_workers} workers, cold cache): {thread_vs_process:.2f}x "
            f"({'meets' if thread_vs_process >= 1.0 else 'MISSES'} the "
            f"process-beats-threads target)"
        )
        if thread_vs_process < 1.0:
            raise AssertionError(
                f"process tier ({report.workers.elapsed_s:.3f}s) slower than the "
                f"thread tier ({report.cluster.elapsed_s:.3f}s) on {cores} cores"
            )
    else:
        lines.append(
            "single-core host: process-beats-threads target reported, not enforced "
            "(no parallelism to win; the wire adds pure overhead here)"
        )
    return "\n".join(lines)


def test_worker_serving(benchmark):
    from conftest import run_once, save_report

    report = run_once(benchmark, run)
    save_report("worker_serving", report)
    assert "diverged" not in report


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    report = run(smoke=smoke)
    print(report)
    if not smoke:
        results = pathlib.Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / "worker_serving.txt").write_text(report + "\n")
