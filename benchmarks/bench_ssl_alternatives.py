"""Benchmark: regenerate the §6.4.3 comparison of SSL loss alternatives."""

from conftest import run_once, save_report

from repro.experiments import ssl_alternatives


def test_ssl_loss_alternatives(benchmark, context):
    results = run_once(benchmark, ssl_alternatives.run, context, dataset="nyc")
    save_report("ssl_alternatives", ssl_alternatives.format_report(results))
    assert set(results) == {"cosine", "l2", "cosine-noembed"}
    for metrics in results.values():
        for value in metrics.values():
            assert 0.0 <= value <= 1.0
