"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  They all share
one :class:`repro.experiments.ExperimentContext` so datasets are generated and
approaches are trained exactly once per session; each benchmark then times its
own experiment runner (one round, one iteration — these are minutes-long
model-training workloads, not micro-benchmarks).

Scale is controlled by the ``REPRO_EXPERIMENT_SCALE`` environment variable
(``smoke`` / ``default`` / ``full``); see ``repro.experiments.config``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import shared_context


@pytest.fixture(scope="session")
def context():
    """The process-wide experiment context (scale from REPRO_EXPERIMENT_SCALE)."""
    return shared_context()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    """Print a formatted report and persist it under ``benchmarks/results/``."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
