"""Benchmark: regenerate Figure 4 (Acc@K of POI inference for nine approaches)."""

from conftest import run_once, save_report

from repro.experiments import figure4


def test_figure4_poi_inference_acc_at_k(benchmark, context):
    results = run_once(benchmark, figure4.run, context, datasets=("nyc",))
    save_report("figure4_poi_inference", figure4.format_report(results))
    for rows in results.values():
        for series in rows.values():
            assert all(0.0 <= value <= 1.0 for value in series)
            # Acc@K is monotone non-decreasing in K.
            assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
