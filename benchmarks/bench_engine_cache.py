"""Benchmark: the ColocationEngine's per-profile feature cache.

Measures how many profile rows go through the HisRect featurizer — the hot
path of online serving — with and without the engine, on two workloads:

1. ``probability_matrix`` over a group of profiles.  The direct one-phase
   judge path scores every unordered pair independently and featurizes both
   sides of each pair (``N * (N - 1)`` rows for ``N`` profiles); the engine
   featurizes each profile exactly once (``N`` rows).
2. Repeated sliding windows (the service pattern): overlapping profile
   windows scored back to back, where the engine's LRU carries features from
   one window to the next.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_cache.py

or through pytest-benchmark like the other benchmarks.
"""

from __future__ import annotations

import time

from repro.api import ColocationEngine
from repro.colocation import CoLocationPipeline, JudgeConfig, OnePhaseConfig, PipelineConfig
from repro.data import build_dataset, tiny_dataset_config
from repro.features import HisRectConfig
from repro.ssl import SSLTrainingConfig
from repro.text import SkipGramConfig


class FeaturizerCounter:
    """Counts profile rows pushed through ``featurizer.featurize``."""

    def __init__(self, featurizer):
        self.featurizer = featurizer
        self.calls = 0
        self.rows = 0
        self._original = featurizer.featurize

    def __enter__(self):
        def counting(profiles):
            self.calls += 1
            self.rows += len(profiles)
            return self._original(profiles)

        self.featurizer.featurize = counting
        return self

    def __exit__(self, *exc):
        self.featurizer.featurize = self._original
        return False


def _fit_pipelines(dataset):
    base = dict(
        hisrect=HisRectConfig(content_dim=8, feature_dim=16, embedding_dim=8),
        ssl=SSLTrainingConfig(max_iterations=25, batch_size=4),
        judge=JudgeConfig(epochs=6, embedding_dim=8, classifier_dim=8),
        skipgram=SkipGramConfig(embedding_dim=12, epochs=1),
    )
    two_phase = CoLocationPipeline(PipelineConfig(**base)).fit(dataset)
    one_phase = CoLocationPipeline(
        PipelineConfig(**base, onephase=OnePhaseConfig(max_iterations=30, batch_size=4), mode="one-phase")
    ).fit(dataset)
    return two_phase, one_phase


def run() -> str:
    dataset = build_dataset(tiny_dataset_config(seed=5))
    two_phase, one_phase = _fit_pipelines(dataset)
    profiles = dataset.test.labeled_profiles[:24]
    lines = ["Benchmark: engine feature cache vs direct judge paths", ""]

    # ---------------------------------------------- 1. probability_matrix
    model = one_phase.onephase
    with FeaturizerCounter(one_phase.featurizer) as direct:
        started = time.perf_counter()
        direct_matrix = model.probability_matrix(profiles)
        direct_s = time.perf_counter() - started

    engine = ColocationEngine(one_phase)
    with FeaturizerCounter(one_phase.featurizer) as cached:
        started = time.perf_counter()
        engine_matrix = engine.probability_matrix(profiles)
        engine_s = time.perf_counter() - started

    drift = float(abs(direct_matrix - engine_matrix).max())
    lines += [
        f"probability_matrix over {len(profiles)} profiles (one-phase judge):",
        f"  direct judge path : {direct.rows:5d} profile featurizations in {direct_s * 1e3:8.1f} ms",
        f"  engine (cached)   : {cached.rows:5d} profile featurizations in {engine_s * 1e3:8.1f} ms",
        f"  featurization reduction: {direct.rows / max(1, cached.rows):.1f}x"
        f"  (max |Δprob| = {drift:.2e})",
        "",
    ]

    # ------------------------------------------- 2. sliding service windows
    judge = two_phase.judge
    window, step, num_windows = 16, 4, 8
    windows = [
        profiles[start : start + window]
        for start in range(0, min(len(profiles), step * num_windows), step)
    ]

    judge.clear_cache()
    with FeaturizerCounter(two_phase.featurizer) as direct:
        started = time.perf_counter()
        for chunk in windows:
            judge.clear_cache()  # a fresh service instance per window
            judge.probability_matrix(chunk)
        direct_s = time.perf_counter() - started

    engine = ColocationEngine(two_phase)
    with FeaturizerCounter(two_phase.featurizer) as cached:
        started = time.perf_counter()
        for chunk in windows:
            engine.probability_matrix(chunk)
        engine_s = time.perf_counter() - started

    info = engine.cache_info()
    lines += [
        f"{len(windows)} overlapping windows of {window} profiles (two-phase judge):",
        f"  per-window judges : {direct.rows:5d} profile featurizations in {direct_s * 1e3:8.1f} ms",
        f"  shared engine     : {cached.rows:5d} profile featurizations in {engine_s * 1e3:8.1f} ms",
        f"  featurization reduction: {direct.rows / max(1, cached.rows):.1f}x"
        f"  (cache hit rate {info.hit_rate:.0%})",
    ]
    return "\n".join(lines)


def test_engine_cache(benchmark):
    from conftest import run_once, save_report

    report = run_once(benchmark, run)
    save_report("engine_cache", report)
    assert "featurization reduction" in report


if __name__ == "__main__":
    print(run())
