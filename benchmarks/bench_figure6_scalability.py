"""Benchmark: regenerate Figure 6 (training time per sample vs training-set size)."""

from conftest import run_once, save_report

from repro.experiments import figure6

FRACTIONS = (0.5, 1.0)


def test_figure6_training_time_scalability(benchmark, context):
    results = run_once(benchmark, figure6.run, context, dataset="nyc", fractions=FRACTIONS)
    save_report("figure6_scalability", figure6.format_report(results, fractions=FRACTIONS))
    assert len(results["featurizer_ms_per_sample"]) == len(FRACTIONS)
    assert all(value > 0.0 for value in results["featurizer_ms_per_sample"])
    assert all(value > 0.0 for value in results["judge_ms_per_sample"])
