"""Benchmark: regenerate Table 5 (HisRect with missing history or missing text)."""

from conftest import run_once, save_report

from repro.experiments import table5


def test_table5_missing_source_ablation(benchmark, context):
    results = run_once(benchmark, table5.run, context)
    save_report("table5_ablation", table5.format_report(results))
    assert set(results) == {"HisRect\\T", "HisRect\\H", "History-only", "Tweet-only", "HisRect"}
    for metrics in results.values():
        for value in metrics.values():
            assert 0.0 <= value <= 1.0
