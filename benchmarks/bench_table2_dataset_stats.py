"""Benchmark: regenerate Table 2 (dataset statistics for NYC-like and LV-like)."""

from conftest import run_once, save_report

from repro.experiments import table2


def test_table2_dataset_statistics(benchmark, context):
    results = run_once(benchmark, table2.run, context)
    save_report("table2_dataset_stats", table2.format_report(results))
    for dataset, splits in results.items():
        assert splits["Training"]["labeled_profiles"] > 0
        assert splits["Training"]["positive_pairs"] > 0
