"""Benchmark: regenerate Table 8 (group-pattern clustering case study)."""

from conftest import run_once, save_report

from repro.eval import GROUP_PATTERNS
from repro.experiments import table8


def test_table8_group_pattern_accuracy(benchmark, context):
    results = run_once(benchmark, table8.run, context, dataset="nyc")
    save_report("table8_group_patterns", table8.format_report(results))
    for approach, row in results.items():
        assert set(row) == set(GROUP_PATTERNS)
        if approach != "#groups":
            assert all(0.0 <= value <= 1.0 for value in row.values())
