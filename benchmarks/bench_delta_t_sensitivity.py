"""Benchmark: regenerate the §6.1.2 Δt sensitivity check."""

from conftest import run_once, save_report

from repro.experiments import delta_t


WINDOWS = (0.5 * 3600.0, 3600.0)


def test_delta_t_sensitivity(benchmark, context):
    results = run_once(benchmark, delta_t.run, context, dataset="nyc", windows=WINDOWS)
    save_report("delta_t_sensitivity", delta_t.format_report(results))
    assert len(results) == len(WINDOWS)
    for metrics in results.values():
        for value in metrics.values():
            assert 0.0 <= value <= 1.0
