"""Benchmark: regenerate Table 4 (co-location performance of the 11 approaches).

This is the headline experiment: all eleven approaches of Table 3 are trained
on both synthetic datasets and evaluated with the balanced-fold protocol.
"""

from conftest import run_once, save_report

from repro.experiments import APPROACH_NAMES, table4


def test_table4_all_approaches_both_datasets(benchmark, context):
    results = run_once(benchmark, table4.run, context)
    save_report("table4_colocation", table4.format_report(results))
    for dataset, rows in results.items():
        assert set(rows) == set(APPROACH_NAMES)
        for metrics in rows.values():
            for value in metrics.values():
                assert 0.0 <= value <= 1.0
