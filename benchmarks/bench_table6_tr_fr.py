"""Benchmark: regenerate Table 6 (HisRect accuracy on the TR / FR profile splits)."""

from conftest import run_once, save_report

from repro.experiments import table6


def test_table6_tr_fr_accuracy(benchmark, context):
    results = run_once(benchmark, table6.run, context, datasets=("nyc",))
    save_report("table6_tr_fr", table6.format_report(results))
    for row in results.values():
        assert row["TR_count"] + row["FR_count"] > 0
        assert 0.0 <= row["TR_acc"] <= 1.0
        assert 0.0 <= row["FR_acc"] <= 1.0
