"""Benchmark: observability overhead and trace fidelity guards.

PR 9 threads a request-scoped tracer and a shared metrics registry through
every serving transport.  Instrumentation is only acceptable if it is honest
and nearly free, so this benchmark pins both properties and runs in CI's
smoke step alongside the serving-parity benchmarks:

* **Disabled overhead <= 5%** — with tracing off (the default), every stage
  site reduces to fetching a shared no-op context manager.  We measure that
  per-site cost directly over many iterations, scale it by a generous
  stages-per-request budget, and require the total to stay under 5% of the
  measured mean request latency.  A regression that puts real work on the
  disabled path (allocation, locking, clock reads) fails here.
* **Stages sum to wall within 10%** — with tracing on, each traced serve's
  top-level stages (``queue_wait`` + ``gather`` + ``score``; ``featurize``
  nests inside ``gather``) must account for the request's measured wall time:
  no stage may claim time the request never spent (sum <= wall x 1.02, clock
  granularity only), and the median request must be >= 90% covered — the
  breakdown explains where requests go, it does not decorate them.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_observability.py

pass ``--smoke`` (the CI invocation) for a smaller load; both guards are
enforced in smoke and full mode.  The CLI twin is ``repro-hisrect metrics``.
"""

from __future__ import annotations

import pathlib
import statistics
import sys
import time

from repro.api import ColocationEngine, JudgeRequest
from repro.cluster import MicroBatcher
from repro.cluster.loadgen import LoadConfig, fit_serving_pipeline, generate_requests
from repro.obs import (
    STAGE_GATHER,
    STAGE_QUEUE_WAIT,
    STAGE_SCORE,
    format_stage_table,
    get_tracer,
    tracing,
)

#: Per-request stage-site budget used to scale the disabled-path cost.  A
#: worker-pool serve touches queue_wait + wire_serialize + wire_rtt + gather +
#: featurize + score plus store events; eight sites is a generous ceiling.
STAGE_SITES_PER_REQUEST = 8
MAX_DISABLED_OVERHEAD = 0.05
#: Stages that partition a batcher-served request end to end.  ``featurize``
#: is nested inside ``gather`` and must not be double counted.
TOP_LEVEL_STAGES = {STAGE_QUEUE_WAIT, STAGE_GATHER, STAGE_SCORE}
MIN_MEDIAN_COVERAGE = 0.90
#: Stage sums may exceed the externally-measured wall only by clock grain.
MAX_COVERAGE = 1.02


def _measure_disabled_stage_cost_ms(iterations: int = 200_000) -> float:
    """Mean cost of one disabled ``stage()`` site, in milliseconds."""
    tracer = get_tracer()
    assert not tracer.enabled, "the module tracer must default to disabled"
    started = time.perf_counter()
    for _ in range(iterations):
        with tracer.stage(STAGE_GATHER):
            pass
    elapsed = time.perf_counter() - started
    return elapsed * 1000.0 / iterations


def _traced_serves(engine: ColocationEngine, requests: list[JudgeRequest]):
    """Serve each request alone through a micro-batcher under tracing.

    Sequential submission keeps every flush single-request, so each trace's
    stage durations are that request's own — no batch sharing to untangle —
    and the wall clock around submit->result is the honest denominator.
    Returns ``(coverages, stage_table)``.
    """
    coverages: list[float] = []
    with tracing() as tracer:
        with MicroBatcher(engine, max_delay_ms=0.5, overflow="block") as batcher:
            for request in requests:
                started = time.perf_counter()
                response = batcher.submit_serve(request).result(timeout=60)
                wall_ms = (time.perf_counter() - started) * 1000.0
                trace = response.trace
                assert trace is not None, "traced serve must attach a trace"
                accounted = sum(
                    duration
                    for stage, duration in trace["stages"]
                    if stage in TOP_LEVEL_STAGES
                )
                if wall_ms > 0.0:
                    coverages.append(accounted / wall_ms)
        table = format_stage_table(tracer.registry)
    return coverages, table


def run(smoke: bool = False) -> str:
    config = (
        LoadConfig(num_users=48, num_requests=32, pairs_per_request=3)
        if smoke
        else LoadConfig(num_users=128, num_requests=128, pairs_per_request=4)
    )
    pipeline, dataset = fit_serving_pipeline(seed=5)
    raw_requests = generate_requests(dataset.registry, dataset.training_corpus(), config)
    requests = [JudgeRequest(pairs=tuple(pairs)) for pairs in raw_requests]

    # Untraced baseline: mean request latency with tracing at its default
    # (disabled) — the denominator for the overhead guard.
    engine = ColocationEngine(pipeline, cache_size=4096)
    started = time.perf_counter()
    for request in requests:
        engine.serve(request)
    mean_request_ms = (time.perf_counter() - started) * 1000.0 / len(requests)

    per_site_ms = _measure_disabled_stage_cost_ms(20_000 if smoke else 200_000)
    overhead_ms = per_site_ms * STAGE_SITES_PER_REQUEST
    overhead_ratio = overhead_ms / mean_request_ms

    # Traced fidelity: fresh engine so every request featurizes cold — the
    # stage breakdown has real work to account for, not cache-hit epsilon.
    coverages, stage_table = _traced_serves(
        ColocationEngine(pipeline, cache_size=4096), requests
    )
    median_coverage = statistics.median(coverages)
    worst_overshoot = max(coverages)

    lines = [
        "Benchmark: observability overhead + trace fidelity "
        f"({config.num_requests} requests x {config.pairs_per_request} pairs, "
        f"{config.num_users} users)" + (" [smoke]" if smoke else ""),
        "",
        f"untraced mean request latency: {mean_request_ms:.3f} ms",
        f"disabled stage site cost: {per_site_ms * 1e6:.0f} ns "
        f"x {STAGE_SITES_PER_REQUEST} sites = {overhead_ms * 1e3:.1f} us/request "
        f"({overhead_ratio:.2%} of a request, "
        f"{'meets' if overhead_ratio <= MAX_DISABLED_OVERHEAD else 'MISSES'} "
        f"the <= {MAX_DISABLED_OVERHEAD:.0%} budget)",
        "",
        f"traced serves: median stage coverage {median_coverage:.1%} of wall "
        f"(floor {MIN_MEDIAN_COVERAGE:.0%}), "
        f"worst sum/wall {worst_overshoot:.3f} (cap {MAX_COVERAGE})",
        "",
        "per-stage breakdown (traced run):",
        stage_table,
    ]
    if overhead_ratio > MAX_DISABLED_OVERHEAD:
        raise AssertionError(
            f"disabled tracing costs {overhead_ratio:.2%} of a request "
            f"(budget {MAX_DISABLED_OVERHEAD:.0%}) — the no-op path regressed"
        )
    if median_coverage < MIN_MEDIAN_COVERAGE:
        raise AssertionError(
            f"stage durations cover only {median_coverage:.1%} of request wall "
            f"time at the median (floor {MIN_MEDIAN_COVERAGE:.0%}) — "
            "a serving phase is escaping the taxonomy"
        )
    if worst_overshoot > MAX_COVERAGE:
        raise AssertionError(
            f"stage durations sum to {worst_overshoot:.3f}x wall on some request "
            f"(cap {MAX_COVERAGE}) — a stage is claiming time the request never spent"
        )
    return "\n".join(lines)


def test_observability(benchmark):
    from conftest import run_once, save_report

    report = run_once(benchmark, run)
    save_report("observability", report)
    assert "meets the <= 5% budget" in report


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    report = run(smoke=smoke)
    print(report)
    if not smoke:
        results = pathlib.Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / "observability.txt").write_text(report + "\n")
