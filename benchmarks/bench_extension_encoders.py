"""Benchmark: extension study — content-encoder variants (BiGRU, attention)."""

from conftest import run_once, save_report

from repro.experiments import extensions


def test_extension_content_encoders(benchmark, context):
    results = run_once(benchmark, extensions.run_encoders, context, dataset="nyc")
    save_report("extension_encoders", extensions.format_encoder_report(results))
    assert set(results) == set(extensions.EXTENSION_ENCODERS)
    for metrics in results.values():
        for value in metrics.values():
            assert 0.0 <= value <= 1.0
