"""Benchmark: regenerate Figure 5 (F1 vs fraction of training timelines)."""

from conftest import run_once, save_report

from repro.experiments import figure5

FRACTIONS = (0.5, 1.0)
APPROACHES = ("HisRect", "Tweet-only", "History-only")


def test_figure5_training_size_sweep(benchmark, context):
    results = run_once(
        benchmark, figure5.run, context, dataset="nyc", fractions=FRACTIONS, approaches=APPROACHES
    )
    save_report("figure5_training_size", figure5.format_report(results, fractions=FRACTIONS))
    for name in APPROACHES:
        assert len(results[name]) == len(FRACTIONS)
        assert all(0.0 <= value <= 1.0 for value in results[name])
