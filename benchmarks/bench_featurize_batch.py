"""Benchmark: vectorised history featurization vs the per-visit loop.

The Eq. (1)-(2) featurizer is the cold-path cost of every service: each new
profile in a Δt window must be featurized before the judge can score it.  The
scalar reference path calls ``registry.distances_from`` once per visit per
profile; the vectorised ``featurize_batch`` computes one broadcast
``(total_visits, |P|)`` relevance matrix and segment-sums per profile.

This benchmark sweeps profile counts and history lengths for both the
temporal (Eq. 1-2) and one-hot featurizers, reports the speedup, and checks
the two paths agree to 1e-9 on every configuration (the property tests in
``tests/features/test_history_batch.py`` pin the same contract).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_featurize_batch.py

pass ``--smoke`` (the CI invocation) for tiny sizes that only exercise the
equivalence check, or run through pytest-benchmark like the other benchmarks.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.data.records import Profile, Tweet, Visit
from repro.features import HistoricalVisitFeaturizer, OneHotHistoryFeaturizer
from repro.geo import POI, BoundingPolygon, GeoPoint, POIRegistry

NUM_POIS = 64
REFERENCE_TS = 1_000_000.0


def _build_registry() -> POIRegistry:
    """A synthetic city: an 8x8 POI lattice, ~350 m apart."""
    center = GeoPoint(40.75, -73.99)
    pois = []
    for pid in range(NUM_POIS):
        poi_center = center.offset(north_m=350.0 * (pid // 8), east_m=350.0 * (pid % 8))
        polygon = BoundingPolygon.regular(poi_center, radius_m=60.0, sides=8)
        pois.append(POI(pid=pid, name=f"poi_{pid}", polygon=polygon, center=poi_center))
    return POIRegistry(pois)


def _build_profiles(
    registry: POIRegistry, num_profiles: int, history_len: int, seed: int = 11
) -> list[Profile]:
    """Profiles whose visits scatter around the POI lattice (some inside POIs)."""
    rng = np.random.default_rng(seed)
    anchor = registry.pois[0].center
    profiles = []
    for uid in range(num_profiles):
        visits = []
        for _ in range(history_len):
            point = anchor.offset(
                north_m=float(rng.uniform(-200.0, 2_700.0)),
                east_m=float(rng.uniform(-200.0, 2_700.0)),
            )
            visits.append(Visit(ts=float(rng.uniform(0.0, REFERENCE_TS)), lat=point.lat, lon=point.lon))
        tweet = Tweet(uid=uid, ts=REFERENCE_TS, content="x")
        profiles.append(Profile(uid=uid, tweet=tweet, visit_history=tuple(visits)))
    return profiles


def _scalar_loop(featurizer, profiles: list[Profile]) -> np.ndarray:
    """The reference path: one ``featurize`` call per profile."""
    return np.stack([featurizer.featurize(p) for p in profiles])


def _time(fn, *args, repeats: int = 3) -> tuple[float, np.ndarray]:
    """Best-of-N wall time after one warmup call (steady-state cost)."""
    result = fn(*args)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def run(smoke: bool = False) -> str:
    registry = _build_registry()
    featurizers = {
        "temporal (Eq. 1-2)": HistoricalVisitFeaturizer(registry),
        "one-hot": OneHotHistoryFeaturizer(registry),
    }
    grid = [(8, 4), (16, 8)] if smoke else [(32, 8), (64, 16), (256, 32), (512, 64)]
    lines = [
        f"Benchmark: featurize_batch (vectorised) vs per-visit loop, |P| = {NUM_POIS}"
        + (" [smoke]" if smoke else ""),
        "",
        f"{'featurizer':<20} {'profiles':>8} {'history':>8} {'loop ms':>10} "
        f"{'batch ms':>10} {'speedup':>8} {'max |Δ|':>10}",
    ]
    headline_speedup = None
    for name, featurizer in featurizers.items():
        for num_profiles, history_len in grid:
            profiles = _build_profiles(registry, num_profiles, history_len)
            loop_s, loop_rows = _time(_scalar_loop, featurizer, profiles)
            batch_s, batch_rows = _time(featurizer.featurize_batch, profiles)
            drift = float(np.abs(loop_rows - batch_rows).max())
            if drift > 1e-9:
                raise AssertionError(
                    f"{name} batch path drifted from the scalar loop by {drift:.2e}"
                )
            speedup = loop_s / batch_s if batch_s > 0 else float("inf")
            if name.startswith("temporal") and (num_profiles, history_len) == (256, 32):
                headline_speedup = speedup
            lines.append(
                f"{name:<20} {num_profiles:>8d} {history_len:>8d} {loop_s * 1e3:>10.1f} "
                f"{batch_s * 1e3:>10.1f} {speedup:>7.1f}x {drift:>10.2e}"
            )
        lines.append("")
    if smoke:
        lines.append("smoke run: equivalence checked, speedup target not enforced")
        return "\n".join(lines)
    assert headline_speedup is not None
    lines.append(
        f"headline (temporal, 256 profiles x 32 visits): {headline_speedup:.1f}x "
        f"({'meets' if headline_speedup >= 5.0 else 'MISSES'} the >= 5x target)"
    )
    return "\n".join(lines)


def test_featurize_batch(benchmark):
    from conftest import run_once, save_report

    report = run_once(benchmark, run)
    save_report("featurize_batch", report)
    assert "meets the >= 5x target" in report


if __name__ == "__main__":
    print(run(smoke="--smoke" in sys.argv[1:]))
