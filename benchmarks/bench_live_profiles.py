"""Benchmark: incremental Eq. (1)-(2) maintenance vs. scratch featurization.

A live deployment mutates one visit per user per tick; the scratch path pays
the full ``(total_visits, |P|)`` distance kernel for every round even though
only one visit per history changed.  The delta path
(:meth:`repro.features.history.HistoricalVisitFeaturizer.featurize_delta`,
batched per tick by :class:`repro.features.HistoryDeltaTracker.append_batch`)
runs the spatial kernel for the *new* visits only and re-weights the retained
per-visit relevance rows — O(1 visit) of kernel work per mutation instead of
O(history).

The workload is the paper-scale live slice pinned by ISSUE 7: **256 users x
64 retained visits**, mutated for several rounds.  Each round both paths
produce every user's current feature row at the round's reference timestamp;
rows must agree within ``1e-9`` (they are bit-identical in practice — the
delta path reuses the batch kernels) and the incremental path must be at
least **3x** faster than scratch.

``--smoke`` (the CI invocation) shrinks the workload, skips the speedup
gate (CI machines are noisy) and instead runs the *correctness* half of the
live-profile contract end to end: a seeded mutation sequence served through
all four transports — engine, sharded, micro-batched, worker processes —
must agree with a freshly built single engine (bit-for-bit outside the
batcher's 1e-12 coalescing tolerance), with cache invalidation traffic
interleaved.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_live_profiles.py [--smoke]
"""

from __future__ import annotations

import dataclasses
import pathlib
import sys
import time

import numpy as np

from repro.data.records import Pair, Profile, Tweet, Visit
from repro.features import HistoricalVisitFeaturizer, HistoryDeltaTracker
from repro.geo import BoundingPolygon, GeoPoint, POI, POIRegistry

NUM_USERS = 256
MAX_HISTORY = 64
ROUNDS = 6
TARGET_SPEEDUP = 3.0
ROW_ATOL = 1e-9


def _grid_registry(num_pois: int = 64) -> POIRegistry:
    """A deterministic grid of POIs, ~500 m apart."""
    center = GeoPoint(40.75, -73.99)
    side = int(np.ceil(np.sqrt(num_pois)))
    pois = []
    for pid in range(num_pois):
        poi_center = center.offset(
            north_m=500.0 * (pid // side), east_m=500.0 * (pid % side)
        )
        pois.append(
            POI(
                pid=pid,
                name=f"poi_{pid}",
                polygon=BoundingPolygon.regular(poi_center, radius_m=90.0, sides=8),
                center=poi_center,
                category="bench",
            )
        )
    return POIRegistry(pois)


def _seed_visits(registry: POIRegistry, rng, num_users: int, history_len: int):
    """Initial capped histories: ``history_len`` jittered visits per user."""
    histories = []
    for uid in range(num_users):
        visits = []
        for step in range(history_len):
            base = registry.get(int(rng.integers(len(registry)))).center
            point = base.offset(
                north_m=float(rng.normal(0.0, 150.0)),
                east_m=float(rng.normal(0.0, 150.0)),
            )
            visits.append(Visit(ts=float(step * 60), lat=point.lat, lon=point.lon))
        histories.append(visits)
    return histories


def _profile(uid: int, history, ts: float) -> Profile:
    tweet = Tweet(uid=uid, ts=ts, content=f"user {uid}", lat=None, lon=None)
    return Profile(
        uid=uid, tweet=tweet, visit_history=tuple(history), revision=len(history)
    )


def run_incremental_vs_scratch(
    num_users: int = NUM_USERS,
    history_len: int = MAX_HISTORY,
    rounds: int = ROUNDS,
) -> dict:
    """Time both maintenance paths over the same seeded mutation stream."""
    registry = _grid_registry()
    rng = np.random.default_rng(11)
    featurizer = HistoricalVisitFeaturizer(registry)
    histories = _seed_visits(registry, rng, num_users, history_len)

    tracker = HistoryDeltaTracker(featurizer, max_history=history_len)
    for uid, visits in enumerate(histories):
        tracker.append_batch([uid] * len(visits), visits)

    # Pre-draw every round's mutations so neither timed loop pays for RNG.
    mutations = []
    for round_index in range(rounds):
        ts = float(history_len * 60 + (round_index + 1) * 60)
        new_visits = []
        for uid in range(num_users):
            base = registry.get(int(rng.integers(len(registry)))).center
            point = base.offset(
                north_m=float(rng.normal(0.0, 150.0)),
                east_m=float(rng.normal(0.0, 150.0)),
            )
            new_visits.append(Visit(ts=ts, lat=point.lat, lon=point.lon))
        mutations.append((ts, new_visits))

    uids = list(range(num_users))
    max_diff = 0.0

    # Scratch: rebuild every user's row from the full history each round.
    scratch_histories = [list(v) for v in histories]
    scratch_rows_by_round = []
    started = time.perf_counter()
    for ts, new_visits in mutations:
        for uid in uids:
            scratch_histories[uid].append(new_visits[uid])
            scratch_histories[uid] = scratch_histories[uid][-history_len:]
        profiles = [
            _profile(uid, scratch_histories[uid], ts + 30.0) for uid in uids
        ]
        scratch_rows_by_round.append(featurizer.featurize_batch(profiles))
    scratch_s = time.perf_counter() - started

    # Incremental: one batched kernel call for the new visits, cheap re-weighting.
    incremental_histories = [list(v) for v in histories]
    incremental_rows_by_round = []
    started = time.perf_counter()
    for ts, new_visits in mutations:
        tracker.append_batch(uids, new_visits)
        for uid in uids:
            incremental_histories[uid].append(new_visits[uid])
            incremental_histories[uid] = incremental_histories[uid][-history_len:]
        profiles = [
            _profile(uid, incremental_histories[uid], ts + 30.0) for uid in uids
        ]
        incremental_rows_by_round.append(tracker.rows_for(profiles))
    incremental_s = time.perf_counter() - started

    for scratch_rows, rows in zip(scratch_rows_by_round, incremental_rows_by_round):
        max_diff = max(max_diff, float(np.max(np.abs(rows - scratch_rows))))

    return {
        "num_users": num_users,
        "history_len": history_len,
        "rounds": rounds,
        "scratch_s": scratch_s,
        "incremental_s": incremental_s,
        "speedup": scratch_s / incremental_s if incremental_s > 0 else float("inf"),
        "max_row_diff": max_diff,
    }


def run_transport_mutation_parity() -> dict:
    """The smoke-mode correctness half: mutate-then-score across transports."""
    from repro.api import ColocationEngine
    from repro.cluster import MicroBatcher, ShardedEngine, WorkerPool
    from repro.cluster.loadgen import fit_serving_pipeline

    pipeline, dataset = fit_serving_pipeline(seed=5)
    fresh = ColocationEngine(pipeline, cache_size=0)
    base_profiles = {p.uid: p for p in dataset.train.labeled_profiles[:10]}
    visit_pool = [
        v for p in dataset.train.labeled_profiles for v in p.visit_history
    ] or [Visit(ts=1.0, lat=40.75, lon=-73.99)]
    rng = np.random.default_rng(42)
    uids = sorted(base_profiles)

    def mutate(profile, step):
        template = visit_pool[int(rng.integers(len(visit_pool)))]
        visit = Visit(ts=profile.ts + 30.0 * (step + 1), lat=template.lat, lon=template.lon)
        return dataclasses.replace(
            profile,
            tweet=dataclasses.replace(profile.tweet, ts=profile.ts + 60.0 * (step + 1)),
            visit_history=(profile.visit_history + (visit,))[-4:],
            revision=(profile.revision or 0) + 1,
        )

    max_batcher_drift = 0.0
    with ShardedEngine(pipeline, num_shards=2, cache_size=1024) as sharded:
        with MicroBatcher(sharded, max_delay_ms=2.0, overflow="block") as batcher:
            with WorkerPool(pipeline, num_workers=2, cache_size=1024) as pool:
                engine = ColocationEngine(pipeline, cache_size=1024)
                transports = {
                    "engine": engine,
                    "sharded": sharded,
                    "batcher": batcher,
                    "workers": pool,
                }
                profiles = dict(base_profiles)
                for step in range(3):
                    mutated = [int(u) for u in rng.choice(uids, size=4, replace=False)]
                    for uid in mutated:
                        profiles[uid] = mutate(profiles[uid], step)
                    current = [profiles[uid] for uid in uids]
                    pairs = [
                        Pair(current[i], current[(i + 1 + step) % len(current)])
                        for i in range(len(current))
                    ]
                    expected = fresh.predict_proba(pairs)
                    for name, transport in transports.items():
                        transport.invalidate(mutated)
                        got = transport.predict_proba(pairs)
                        if name == "batcher":
                            max_batcher_drift = max(
                                max_batcher_drift,
                                float(np.max(np.abs(np.asarray(got) - expected))),
                            )
                            if max_batcher_drift > 1e-12:
                                raise AssertionError(
                                    f"batcher drifted {max_batcher_drift:.2e} from the fresh engine"
                                )
                        elif not np.array_equal(np.asarray(got), expected):
                            raise AssertionError(
                                f"{name} diverged from the fresh engine after mutations"
                            )
    return {"steps": 3, "users": len(uids), "batcher_drift": max_batcher_drift}


def run(smoke: bool = False) -> str:
    if smoke:
        timing = run_incremental_vs_scratch(num_users=32, history_len=16, rounds=2)
        parity = run_transport_mutation_parity()
    else:
        timing = run_incremental_vs_scratch()
        parity = None
    lines = [
        f"Benchmark: live profile maintenance — incremental Eq. (1)-(2) vs scratch, "
        f"{timing['num_users']} users x {timing['history_len']} visits, "
        f"{timing['rounds']} mutation rounds" + (" [smoke]" if smoke else ""),
        "",
        f"scratch      {timing['scratch_s'] * 1e3:9.1f} ms "
        f"({timing['rounds']} full featurize_batch rounds)",
        f"incremental  {timing['incremental_s'] * 1e3:9.1f} ms "
        f"(append_batch + rows_for)",
        f"max |row diff| = {timing['max_row_diff']:.2e} (gate: <= {ROW_ATOL:.0e})",
        "",
    ]
    if timing["max_row_diff"] > ROW_ATOL:
        raise AssertionError(
            f"incremental rows drifted {timing['max_row_diff']:.2e} from scratch"
        )
    if smoke:
        assert parity is not None
        lines.append(
            "smoke run: four-transport mutate-then-score parity checked "
            f"(engine/sharded/workers exact, batcher drift {parity['batcher_drift']:.1e} "
            "<= 1e-12); speedup target not enforced"
        )
    else:
        lines.append(
            f"headline ({timing['num_users']} users x {timing['history_len']} visits): "
            f"{timing['speedup']:.2f}x incremental over scratch "
            f"({'meets' if timing['speedup'] >= TARGET_SPEEDUP else 'MISSES'} the "
            f">= {TARGET_SPEEDUP:.0f}x target)"
        )
        if timing["speedup"] < TARGET_SPEEDUP:
            raise AssertionError(
                f"incremental path reached only {timing['speedup']:.2f}x "
                f"(target {TARGET_SPEEDUP:.0f}x)"
            )
    return "\n".join(lines)


def test_live_profiles(benchmark):
    from conftest import run_once, save_report

    report = run_once(benchmark, run)
    save_report("live_profiles", report)
    assert "meets the >= 3x target" in report


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    report = run(smoke=smoke)
    print(report)
    if not smoke:
        results = pathlib.Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / "live_profiles.txt").write_text(report + "\n")
