"""Benchmark: extension study — social / frequent-pattern features (paper §7)."""

from conftest import run_once, save_report

from repro.experiments import extensions


def test_extension_social_features(benchmark, context):
    results = run_once(benchmark, extensions.run_social, context, dataset="nyc")
    save_report("extension_social", extensions.format_social_report(results))
    assert set(results) == {"HisRect", "HisRect+Social"}
    for metrics in results.values():
        for value in metrics.values():
            assert 0.0 <= value <= 1.0
    # Stacking extra signals on the frozen judge should not collapse accuracy.
    assert results["HisRect+Social"]["Acc"] >= results["HisRect"]["Acc"] - 0.1
