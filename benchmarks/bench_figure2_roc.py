"""Benchmark: regenerate Figure 2 (ROC curves and AUC of the non-naive approaches)."""

from conftest import run_once, save_report

from repro.experiments import figure2


def test_figure2_roc_auc(benchmark, context):
    results = run_once(benchmark, figure2.run, context)
    save_report("figure2_roc", figure2.format_report(results))
    for rows in results.values():
        for values in rows.values():
            assert 0.0 <= values["auc"] <= 1.0
            assert len(values["fpr"]) == len(values["tpr"])
