"""Benchmark: regenerate Figure 3 (t-SNE projection of HisRect features)."""

from conftest import run_once, save_report

from repro.experiments import figure3


def test_figure3_tsne_projection(benchmark, context):
    result = run_once(benchmark, figure3.run, context)
    save_report("figure3_tsne", figure3.format_report(result))
    assert result.coordinates.shape[1] == 2
    assert result.coordinates.shape[0] == result.poi_labels.shape[0]
    assert -1.0 <= result.silhouette <= 1.0
