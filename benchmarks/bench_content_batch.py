"""Benchmark: batched content encoders vs the per-profile scalar loop.

PR 2 vectorised the Eq. (1)-(2) history featurization, which left the
Section 4.2 content encoder as the dominant per-profile serving cost: the
scalar path steps a Python-level recurrence one profile at a time, paying
``B * T`` gate matmuls of shape ``(1, 4N)``.  ``encode_batch`` pads the batch
into one ``(B, T, M)`` tensor and steps over time once for everyone —
``T`` fused ``(B, 4N)`` matmuls — with masked pooling keeping ragged rows
identical to the scalar path.

This benchmark sweeps batch sizes and tweet lengths for all five encoders
(``bilstm-c``, ``blstm``, ``convlstm``, ``bgru``, ``attention``), reports the
speedup, and checks the two paths agree to 1e-9 on every configuration (the
property tests in ``tests/features/test_content_batch.py`` pin the same
contract).  The headline figure is BiLSTM-C at 256 profiles x 16 tokens,
guarded at >= 3x.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_content_batch.py

pass ``--smoke`` (the CI invocation) for tiny sizes that only exercise the
equivalence check, or run through pytest-benchmark like the other benchmarks.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.data.records import Profile, Tweet
from repro.features import CONTENT_ENCODERS, ContentEncoderConfig, TextVectorizer, make_content_encoder
from repro.text import SkipGramConfig, SkipGramModel, Tokenizer, Vocabulary

WORDS = [
    "coffee", "latte", "museum", "exhibit", "park", "sunny", "liberty", "strip",
    "bridge", "harbor", "garden", "market", "tower", "ferry", "stadium", "plaza",
]
MAX_TOKENS = 16
HEADLINE_GRID = (256, 16)
HEADLINE_TARGET = 3.0


def _build_vectorizer(word_dim: int = 24) -> TextVectorizer:
    corpus = [WORDS] * 20
    vocabulary = Vocabulary.build(corpus, min_count=1)
    skipgram = SkipGramModel(vocabulary, SkipGramConfig(embedding_dim=word_dim, epochs=1, seed=0))
    skipgram.train([vocabulary.encode(sentence) for sentence in corpus])
    return TextVectorizer(
        vocabulary, skipgram, tokenizer=Tokenizer(), max_tokens=MAX_TOKENS, min_tokens=4
    )


def _build_profiles(num_profiles: int, num_tokens: int, seed: int = 11) -> list[Profile]:
    """Profiles with ragged tweets averaging ``num_tokens`` words (some empty)."""
    rng = np.random.default_rng(seed)
    profiles = []
    for uid in range(num_profiles):
        count = int(rng.integers(0, num_tokens + 1)) if uid % 8 == 0 else num_tokens
        content = " ".join(rng.choice(WORDS, size=count)) if count else ""
        tweet = Tweet(uid=uid, ts=float(uid), content=content)
        profiles.append(Profile(uid=uid, tweet=tweet, visit_history=()))
    return profiles


def _scalar_loop(encoder, profiles: list[Profile]) -> np.ndarray:
    """The reference path: one ``encode`` call per profile."""
    return np.stack([encoder.encode(p).data for p in profiles])


def _batch(encoder, profiles: list[Profile]) -> np.ndarray:
    return encoder.encode_batch(profiles).data


def _time(fn, *args, repeats: int = 2) -> tuple[float, np.ndarray]:
    """Best-of-N wall time after one warmup call (steady-state cost)."""
    result = fn(*args)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def run(smoke: bool = False) -> str:
    vectorizer = _build_vectorizer()
    grid = [(8, 8), (16, 16)] if smoke else [(64, 8), (256, 16)]
    lines = [
        f"Benchmark: encode_batch (batched recurrence) vs per-profile loop, "
        f"M = {vectorizer.word_dim}, N = 16" + (" [smoke]" if smoke else ""),
        "",
        f"{'encoder':<12} {'profiles':>8} {'tokens':>7} {'loop ms':>10} "
        f"{'batch ms':>10} {'speedup':>8} {'max |Δ|':>10}",
    ]
    headline_speedup = None
    for kind in sorted(CONTENT_ENCODERS):
        encoder = make_content_encoder(kind, vectorizer, ContentEncoderConfig(feature_dim=16, seed=3))
        for num_profiles, num_tokens in grid:
            profiles = _build_profiles(num_profiles, num_tokens)
            loop_s, loop_rows = _time(_scalar_loop, encoder, profiles)
            batch_s, batch_rows = _time(_batch, encoder, profiles)
            drift = float(np.abs(loop_rows - batch_rows).max())
            if drift > 1e-9:
                raise AssertionError(
                    f"{kind} batch path drifted from the scalar loop by {drift:.2e}"
                )
            speedup = loop_s / batch_s if batch_s > 0 else float("inf")
            if kind == "bilstm-c" and (num_profiles, num_tokens) == HEADLINE_GRID:
                headline_speedup = speedup
            lines.append(
                f"{kind:<12} {num_profiles:>8d} {num_tokens:>7d} {loop_s * 1e3:>10.1f} "
                f"{batch_s * 1e3:>10.1f} {speedup:>7.1f}x {drift:>10.2e}"
            )
        lines.append("")
    if smoke:
        lines.append("smoke run: equivalence checked, speedup target not enforced")
    else:
        assert headline_speedup is not None
        lines.append(
            f"headline (bilstm-c, 256 profiles x 16 tokens): {headline_speedup:.1f}x "
            f"({'meets' if headline_speedup >= HEADLINE_TARGET else 'MISSES'} the "
            f">= {HEADLINE_TARGET:.0f}x target)"
        )
    return "\n".join(lines)


def test_content_batch(benchmark):
    from conftest import run_once, save_report

    report = run_once(benchmark, run)
    save_report("content_batch", report)
    assert "meets the >= 3x target" in report


if __name__ == "__main__":
    print(run(smoke="--smoke" in sys.argv[1:]))
