"""Benchmark: single-engine serving vs. the sharded, micro-batched cluster.

The services today call one :class:`repro.api.ColocationEngine` synchronously
with caller-sized batches — each request pays the fixed featurize/score
invocation overhead on its own.  ``repro.cluster`` coalesces concurrent
requests into micro-batches over hash-partitioned shards, so the PR 2–3 batch
kernels amortise across the whole in-flight window and a skewed user mix is
deduplicated per flush.

This benchmark fits a small HisRect judge, generates a seeded Zipf-skewed
request stream (fresh query profile per request — every request carries a
cold featurization, as in a live tweet stream) and serves the *same* sequence
through both paths from a cold cache with the same total cache budget.  The
cluster must reach >= 2x the single engine's throughput at 4 shards, the
sharded engine's direct ``predict_proba`` must match the single engine's
bit-for-bit, and the micro-batched results may drift from it only by
last-mantissa-bit coalescing noise (<= 1e-12).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sharded_serving.py

pass ``--smoke`` (the CI invocation) for a tiny load that only exercises the
bit-for-bit equivalence check, or run through pytest-benchmark like the other
benchmarks.  The CLI twin is ``repro-hisrect serve-bench``.
"""

from __future__ import annotations

import pathlib
import sys

from repro.cluster.loadgen import (
    LoadConfig,
    compare_serving_paths,
    fit_serving_pipeline,
    generate_requests,
)

NUM_SHARDS = 4
TARGET_SPEEDUP = 2.0


def run(smoke: bool = False) -> str:
    config = (
        LoadConfig(num_users=48, num_requests=48, pairs_per_request=3)
        if smoke
        else LoadConfig(num_users=256, num_requests=384, pairs_per_request=4)
    )
    pipeline, dataset = fit_serving_pipeline(seed=5)
    requests = generate_requests(dataset.registry, dataset.training_corpus(), config)
    report = compare_serving_paths(
        pipeline,
        requests,
        num_shards=NUM_SHARDS,
        cache_size=4096,
        max_batch=256,
    )
    lines = [
        f"Benchmark: single-engine vs. sharded micro-batched serving, "
        f"{NUM_SHARDS} shards, zipf s={config.zipf_s}, "
        f"{config.num_requests} requests x {config.pairs_per_request} pairs, "
        f"{config.num_users} users" + (" [smoke]" if smoke else ""),
        "",
        report.format(),
        "",
    ]
    if not report.exact_match:
        raise AssertionError("sharded probabilities diverged from the single engine")
    if report.coalescing_drift > 1e-12:
        raise AssertionError(
            f"micro-batch coalescing drifted by {report.coalescing_drift:.2e} "
            "(expected last-mantissa-bit noise only)"
        )
    # The serve-path parity suite: engine vs. sharded (bit-for-bit, decisions
    # and thresholds included) vs. the batcher's submit_serve front door
    # (coalescing drift only).  Any hand-forked serving logic reintroduced in
    # one of the three paths fails here, in CI's smoke step.
    if not report.serve_exact:
        raise AssertionError("typed serve responses diverged across the serving paths")
    if report.serve_drift > 1e-12:
        raise AssertionError(
            f"batched serve drifted by {report.serve_drift:.2e} "
            "(expected last-mantissa-bit noise only)"
        )
    if smoke:
        lines.append(
            "smoke run: engine/sharded/batcher parity checked (score + serve), "
            "speedup target not enforced"
        )
    else:
        lines.append(
            f"headline ({NUM_SHARDS} shards, cold cache): {report.speedup:.2f}x "
            f"({'meets' if report.speedup >= TARGET_SPEEDUP else 'MISSES'} the "
            f">= {TARGET_SPEEDUP:.0f}x target)"
        )
    return "\n".join(lines)


def test_sharded_serving(benchmark):
    from conftest import run_once, save_report

    report = run_once(benchmark, run)
    save_report("sharded_serving", report)
    assert "meets the >= 2x target" in report


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    report = run(smoke=smoke)
    print(report)
    if not smoke:
        results = pathlib.Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / "sharded_serving.txt").write_text(report + "\n")
