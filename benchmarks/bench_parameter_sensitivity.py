"""Benchmark: ε_d / ρ smoothing-factor ablation (design choices from DESIGN.md)."""

from conftest import run_once, save_report

from repro.experiments import parameters


EPS_D_VALUES = (250.0, 1000.0)


def test_eps_d_sensitivity(benchmark, context):
    results = run_once(benchmark, parameters.run_eps_d, context, dataset="nyc", values=EPS_D_VALUES)
    save_report(
        "parameter_eps_d",
        parameters.format_report(results, title="Ablation: history smoothing factor eps_d"),
    )
    assert len(results) == len(EPS_D_VALUES)
    for metrics in results.values():
        for value in metrics.values():
            assert 0.0 <= value <= 1.0
