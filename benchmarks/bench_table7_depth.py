"""Benchmark: regenerate Table 7 (network-depth sweep Qf x Ql)."""

from conftest import run_once, save_report

from repro.experiments import table7

FC_LAYERS = (1, 2)
LSTM_LAYERS = (1, 2)


def test_table7_depth_sweep(benchmark, context):
    results = run_once(
        benchmark, table7.run, context, dataset="nyc", fc_layers=FC_LAYERS, lstm_layers=LSTM_LAYERS
    )
    save_report("table7_depth", table7.format_report(results))
    assert len(results) == len(FC_LAYERS) * len(LSTM_LAYERS)
    for metrics in results.values():
        for value in metrics.values():
            assert 0.0 <= value <= 1.0
