"""Benchmark: the two-tier feature store — cold reads and arena warm starts.

Two claims from the store extraction get numbers here:

1. **Cold-tier read vs. re-featurization.**  A row that fell out of the hot
   LRU used to be gone — the next lookup re-ran the Eq. (1)–(2) featurizer
   (the ``(history x |P|)`` distance kernel).  With the
   :class:`repro.store.ArenaStore` cold tier it is a memmap slot read.  The
   gate: reading the full working set out of the arena is at least **5x**
   faster than featurizing it from scratch.

2. **Arena-mapped warm start vs. wire reship.**  Restart warm-starts used to
   round-trip every cached row through the wire codec
   (``snapshot``/``restore``).  An engine pointed at its predecessor's arena
   directory instead *maps the file*: the gate is a restored hit rate of at
   least **95%** (it is 100% in practice) with **zero** featurize calls, and
   the report times both restore paths over the same warm set.

``--smoke`` (the CI invocation) shrinks the workload and checks only the
correctness half — zero featurize calls after an arena-mapped restart, exact
row equality against scratch featurization — because CI timing is noisy.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_feature_store.py [--smoke]
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

import numpy as np

from repro.core.protocols import profile_key
from repro.features import HistoricalVisitFeaturizer
from repro.store import ArenaStore, HotStore, TieredStore

from bench_live_profiles import _grid_registry, _profile, _seed_visits

NUM_USERS = 512
HISTORY_LEN = 48
READ_ROUNDS = 3
COLD_READ_TARGET = 5.0
WARM_HIT_RATE_TARGET = 0.95


def _working_set(num_users: int, history_len: int):
    """Profiles + their scratch-featurized rows (the ground truth)."""
    registry = _grid_registry()
    rng = np.random.default_rng(7)
    featurizer = HistoricalVisitFeaturizer(registry)
    histories = _seed_visits(registry, rng, num_users, history_len)
    profiles = [
        _profile(uid, histories[uid], float(history_len * 60 + 30))
        for uid in range(num_users)
    ]
    return featurizer, profiles


def run_cold_read_vs_featurize(num_users: int, history_len: int, rounds: int) -> dict:
    """Time re-reading the working set from the arena vs. re-featurizing it."""
    featurizer, profiles = _working_set(num_users, history_len)
    keys = [profile_key(p) for p in profiles]

    # Featurize once (untimed) to populate the arena; also warms any lazy
    # featurizer state so the timed scratch rounds are not paying setup.
    rows = featurizer.featurize_batch(profiles)
    with tempfile.TemporaryDirectory(prefix="repro-bench-arena-") as tmp:
        arena = ArenaStore(tmp, capacity=num_users * 2)
        for key, row in zip(keys, rows):
            arena.put(key, row)

        started = time.perf_counter()
        for _ in range(rounds):
            scratch = featurizer.featurize_batch(profiles)
        featurize_s = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(rounds):
            cold = np.stack([arena.get(key) for key in keys])
        cold_read_s = time.perf_counter() - started
        arena.close()

    max_diff = float(np.max(np.abs(cold - scratch)))
    return {
        "num_users": num_users,
        "history_len": history_len,
        "rounds": rounds,
        "featurize_s": featurize_s,
        "cold_read_s": cold_read_s,
        "speedup": featurize_s / cold_read_s if cold_read_s > 0 else float("inf"),
        "max_row_diff": max_diff,
    }


def run_warm_start_arena_vs_wire(num_users: int, history_len: int) -> dict:
    """Time both restart paths over one warm set; check the arena path's
    hit rate and featurize count."""
    from repro.cluster import wire

    featurizer, profiles = _working_set(num_users, history_len)
    keys = [profile_key(p) for p in profiles]
    rows = featurizer.featurize_batch(profiles)

    featurize_calls = 0
    original = featurizer.featurize_batch

    def counting(batch):
        nonlocal featurize_calls
        featurize_calls += 1
        return original(batch)

    def resolve(store):
        """The engine's gather, reduced to its store interaction."""
        out = []
        for key, profile in zip(keys, profiles):
            row = store.get(key)
            if row is None:
                row = counting([profile])[0]
                store.put(key, row)
            out.append(row)
        return np.stack(out), sum(1 for r in out if r is not None)

    with tempfile.TemporaryDirectory(prefix="repro-bench-arena-") as tmp:
        # Previous incarnation: write-through fills the arena, then dies.
        first = TieredStore(HotStore(num_users), ArenaStore(tmp, capacity=num_users * 2))
        for key, row in zip(keys, rows):
            first.put(key, row, copy=True)
        export = first.export()
        first.close()

        # Path 1 — wire reship: encode the snapshot, decode it, import rows.
        started = time.perf_counter()
        payload = wire.encode_payload(
            {"keys": [list(k) for k in export]}, [np.stack(list(export.values()))]
        )
        body, arrays = wire.decode_payload(payload)
        decoded_keys = [
            (int(k[0]), float(k[1]), str(k[2]), int(k[3]), int(k[4]))
            for k in body["keys"]
        ]
        reshipped = TieredStore(HotStore(num_users))
        reshipped.import_rows(dict(zip(decoded_keys, arrays[0])))
        wire_rows, _ = resolve(reshipped)
        wire_s = time.perf_counter() - started

        # Path 2 — arena map: open the directory, serve straight off disk.
        featurize_calls = 0
        started = time.perf_counter()
        mapped = TieredStore(HotStore(num_users), ArenaStore(tmp, capacity=num_users * 2))
        arena_rows, _ = resolve(mapped)
        arena_s = time.perf_counter() - started
        stats = mapped.stats()
        hit_rate = (stats.hot_hits + stats.cold_hits) / max(1, len(profiles))
        mapped.close()

    if not np.array_equal(arena_rows, wire_rows):
        raise AssertionError("arena-mapped rows diverged from the wire-reshipped rows")
    if not np.array_equal(arena_rows, rows):
        raise AssertionError("warm-started rows diverged from scratch featurization")
    return {
        "num_users": num_users,
        "wire_s": wire_s,
        "arena_s": arena_s,
        "speedup": wire_s / arena_s if arena_s > 0 else float("inf"),
        "hit_rate": hit_rate,
        "featurize_calls": featurize_calls,
    }


def run(smoke: bool = False) -> str:
    if smoke:
        cold = run_cold_read_vs_featurize(num_users=48, history_len=12, rounds=1)
        warm = run_warm_start_arena_vs_wire(num_users=48, history_len=12)
    else:
        cold = run_cold_read_vs_featurize(NUM_USERS, HISTORY_LEN, READ_ROUNDS)
        warm = run_warm_start_arena_vs_wire(NUM_USERS, HISTORY_LEN)
    lines = [
        f"Benchmark: two-tier feature store — {cold['num_users']} users x "
        f"{cold['history_len']} visits" + (" [smoke]" if smoke else ""),
        "",
        f"cold-tier read   {cold['cold_read_s'] * 1e3:9.1f} ms "
        f"({cold['rounds']} full working-set reads from the arena)",
        f"re-featurize     {cold['featurize_s'] * 1e3:9.1f} ms "
        f"(same rounds through the Eq. (1)-(2) kernel)",
        f"max |row diff| = {cold['max_row_diff']:.2e} (arena rows are exact copies)",
        "",
        f"warm start, wire reship   {warm['wire_s'] * 1e3:9.1f} ms "
        f"(encode + decode + import {warm['num_users']} rows)",
        f"warm start, arena map     {warm['arena_s'] * 1e3:9.1f} ms "
        f"(open the directory, serve)",
        f"restored hit rate = {warm['hit_rate']:.3f} with "
        f"{warm['featurize_calls']} featurize calls",
        "",
    ]
    if cold["max_row_diff"] != 0.0:
        raise AssertionError("arena rows must be bit-identical to featurized rows")
    if warm["featurize_calls"] != 0:
        raise AssertionError(
            f"arena-mapped warm start featurized {warm['featurize_calls']} times"
        )
    if warm["hit_rate"] < WARM_HIT_RATE_TARGET:
        raise AssertionError(
            f"arena-mapped restart restored only {warm['hit_rate']:.3f} hit rate "
            f"(target {WARM_HIT_RATE_TARGET:.2f})"
        )
    if smoke:
        lines.append(
            "smoke run: arena-mapped restart served the full set with zero "
            "featurize calls and exact rows; timing gates not enforced"
        )
    else:
        lines.append(
            f"headline: cold-tier reads {cold['speedup']:.1f}x faster than "
            f"re-featurization ({'meets' if cold['speedup'] >= COLD_READ_TARGET else 'MISSES'} "
            f"the >= {COLD_READ_TARGET:.0f}x target); arena-mapped warm start "
            f"{warm['speedup']:.1f}x over wire reship"
        )
        if cold["speedup"] < COLD_READ_TARGET:
            raise AssertionError(
                f"cold-tier read reached only {cold['speedup']:.2f}x "
                f"(target {COLD_READ_TARGET:.0f}x)"
            )
    return "\n".join(lines)


def test_feature_store(benchmark):
    from conftest import run_once, save_report

    report = run_once(benchmark, run)
    save_report("feature_store", report)
    assert "meets the >= 5x target" in report


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    report = run(smoke=smoke)
    print(report)
    if not smoke:
        results = pathlib.Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / "feature_store.txt").write_text(report + "\n")
