"""Engine-level cache invalidation lifecycle.

Revision-exact keys already guarantee a stale row can never be *served* —
invalidation is the explicit hygiene/accounting surface on top: ``invalidate``
reclaims a mutated user's resident rows, ``invalidate_stale`` sweeps
superseded revisions, and every drop is visible both cumulatively
(``cache_info().invalidated``) and per call (the next gather's
``CallCacheStats.invalidated`` drains the pending bucket into the
:class:`repro.api.JudgeResponse`).
"""

import dataclasses

import numpy as np
import pytest

from repro.api import ColocationEngine, JudgeRequest


@pytest.fixture()
def engine(fitted_pipeline):
    return ColocationEngine(fitted_pipeline, cache_size=1024)


@pytest.fixture(scope="module")
def pairs(tiny_dataset):
    pairs = list(tiny_dataset.test.labeled_pairs) + list(tiny_dataset.train.labeled_pairs)
    return pairs[:12]


@pytest.fixture(scope="module")
def profiles(pairs):
    seen, out = set(), []
    for pair in pairs:
        for profile in (pair.left, pair.right):
            if id(profile) not in seen:
                seen.add(id(profile))
                out.append(profile)
    return out


class TestInvalidate:
    def test_cold_cache_drops_nothing(self, engine, profiles):
        assert engine.invalidate([p.uid for p in profiles]) == 0
        assert engine.cache_info().invalidated == 0

    def test_drops_exactly_the_users_rows(self, engine, profiles):
        engine.warm(profiles)
        before = engine.cache_info()
        victim = profiles[0].uid
        dropped = engine.invalidate([victim])
        assert dropped >= 1
        info = engine.cache_info()
        assert info.size == before.size - dropped
        assert info.invalidated == dropped
        # other users' rows are untouched: re-warming only re-featurizes the victim
        assert engine.warm(profiles) == dropped

    def test_unknown_uid_is_a_noop(self, engine, profiles):
        engine.warm(profiles)
        size = engine.cache_info().size
        assert engine.invalidate([10**9]) == 0
        assert engine.cache_info().size == size

    def test_next_lookup_refeaturizes(self, engine, pairs, profiles):
        engine.predict_proba(pairs)
        victim = pairs[0].left.uid
        dropped = engine.invalidate([victim])
        assert dropped >= 1
        info_before = engine.cache_info()
        engine.predict_proba(pairs)
        info_after = engine.cache_info()
        assert info_after.featurized == info_before.featurized + dropped

    def test_clear_cache_clears_the_index_too(self, engine, profiles):
        engine.warm(profiles)
        engine.clear_cache()
        # nothing resident, so nothing to invalidate — the index must agree
        assert engine.invalidate([p.uid for p in profiles]) == 0


class TestInvalidateStale:
    def test_superseded_revision_is_swept(self, engine, profiles):
        profile = profiles[0]
        successor = dataclasses.replace(profile, revision=(profile.revision or 0) + 7)
        engine.warm([profile])
        assert engine.invalidate_stale() == 0  # single revision: nothing stale
        engine.warm([successor])
        assert engine.invalidate_stale() == 1  # the older generation goes
        # the survivor is the successor: re-warming it featurizes nothing
        assert engine.warm([successor]) == 0
        assert engine.warm([profile]) == 1  # the old row is really gone

    def test_unrevisioned_rows_are_never_stale(self, engine, profiles):
        unrevisioned = dataclasses.replace(profiles[0], revision=None)
        revised = dataclasses.replace(profiles[0], revision=99)
        engine.warm([unrevisioned, revised])
        assert engine.invalidate_stale() == 0
        assert engine.cache_info().size == 2


class TestPerCallAccounting:
    def test_serve_after_invalidate_reports_the_drops(self, engine, pairs):
        request = JudgeRequest(pairs=tuple(pairs))
        engine.serve(request)
        dropped = engine.invalidate([pairs[0].left.uid, pairs[0].right.uid])
        assert dropped >= 1
        response = engine.serve(request)
        assert response.cache_invalidated == dropped
        # the bucket drains: the following call observed no invalidation
        assert engine.serve(request).cache_invalidated == 0

    def test_multiple_invalidations_accumulate_until_drained(self, engine, pairs):
        request = JudgeRequest(pairs=tuple(pairs))
        engine.serve(request)
        first = engine.invalidate([pairs[0].left.uid])
        second = engine.invalidate([pairs[1].left.uid])
        total = first + second
        assert total >= 2
        assert engine.serve(request).cache_invalidated == total

    def test_cumulative_counter_survives_the_drain(self, engine, pairs):
        request = JudgeRequest(pairs=tuple(pairs))
        engine.serve(request)
        dropped = engine.invalidate([pairs[0].left.uid])
        engine.serve(request)
        engine.serve(request)
        assert engine.cache_info().invalidated == dropped


class TestImportedRowsAreInvalidatable:
    def test_import_registers_keys_with_the_index(self, fitted_pipeline, profiles):
        source = ColocationEngine(fitted_pipeline, cache_size=1024)
        source.warm(profiles)
        target = ColocationEngine(fitted_pipeline, cache_size=1024)
        imported = target.import_cache(source.export_cache())
        assert imported == source.cache_info().size
        victim = profiles[0].uid
        assert target.invalidate([victim]) == source.invalidate([victim])
