"""Engine-level tests for the pluggable feature store and the arena cold tier."""

import numpy as np
import pytest

from repro.api import ColocationEngine
from repro.errors import ConfigurationError
from repro.store import HotStore, TieredStore


class CountingFeaturizer:
    """Temporarily counts profile rows through ``featurizer.featurize``."""

    def __init__(self, featurizer):
        self.featurizer = featurizer
        self.rows = 0
        self._original = featurizer.featurize

    def __enter__(self):
        def counting(profiles):
            self.rows += len(profiles)
            return self._original(profiles)

        self.featurizer.featurize = counting
        return self

    def __exit__(self, *exc):
        self.featurizer.featurize = self._original
        return False


@pytest.fixture()
def profiles(tiny_dataset):
    return tiny_dataset.train.labeled_profiles[:12]


class TestStoreWiring:
    def test_engine_defaults_to_a_tiered_store_without_cold_tier(self, fitted_pipeline):
        engine = ColocationEngine(fitted_pipeline, cache_size=8)
        assert isinstance(engine.store, TieredStore)
        assert engine.store.cold is None
        assert engine.cache_size == 8

    def test_explicit_store_wins_over_cache_size(self, fitted_pipeline):
        store = TieredStore(HotStore(3))
        engine = ColocationEngine(fitted_pipeline, cache_size=999, store=store)
        assert engine.store is store
        assert engine.cache_size == 3

    def test_store_and_arena_dir_are_mutually_exclusive(self, fitted_pipeline, tmp_path):
        with pytest.raises(ConfigurationError):
            ColocationEngine(
                fitted_pipeline, store=TieredStore(HotStore(3)), arena_dir=tmp_path
            )

    def test_export_import_shims_warn_but_work(self, fitted_pipeline, profiles):
        source = ColocationEngine(fitted_pipeline, cache_size=64)
        source.warm(profiles)
        with pytest.warns(DeprecationWarning, match="store.export"):
            exported = source.export_cache()
        assert len(exported) == source.cache_info().size
        target = ColocationEngine(fitted_pipeline, cache_size=64)
        with pytest.warns(DeprecationWarning, match="store.import_rows"):
            assert target.import_cache(exported) == len(exported)
        assert target.cache_info().misses == 0


class TestArenaTiering:
    def test_tier_traffic_reaches_cache_info(self, fitted_pipeline, profiles, tmp_path):
        engine = ColocationEngine(fitted_pipeline, cache_size=4, arena_dir=tmp_path)
        featurized = engine.warm(profiles)
        assert featurized == len(profiles)
        info = engine.cache_info()
        # The hot tier overflowed, but nothing was lost: every spill demoted.
        assert info.size == 4
        assert info.cold_size == len(profiles)
        assert info.evictions == info.demotions == len(profiles) - 4
        # Rows that fell out of RAM come back from the arena, not the judge.
        with CountingFeaturizer(fitted_pipeline.featurizer) as counter:
            engine.features(profiles)
        assert counter.rows == 0
        info = engine.cache_info()
        assert info.cold_hits > 0 and info.promotions > 0
        assert info.hits == info.hot_hits + info.cold_hits

    def test_restarted_engine_serves_from_the_arena_without_featurizing(
        self, fitted_pipeline, profiles, tmp_path
    ):
        first = ColocationEngine(fitted_pipeline, cache_size=64, arena_dir=tmp_path)
        reference = first.features(profiles)
        first.close()

        restarted = ColocationEngine(fitted_pipeline, cache_size=64, arena_dir=tmp_path)
        with CountingFeaturizer(fitted_pipeline.featurizer) as counter:
            rows = restarted.features(profiles)
        assert counter.rows == 0  # the whole warm set came off disk
        assert np.array_equal(rows, reference)
        info = restarted.cache_info()
        assert info.misses == 0
        assert info.hit_rate == 1.0
        assert info.cold_hits == len(profiles)

    def test_invalidation_reaches_the_arena(self, fitted_pipeline, profiles, tmp_path):
        engine = ColocationEngine(fitted_pipeline, cache_size=64, arena_dir=tmp_path)
        engine.warm(profiles)
        victim = profiles[0].uid
        assert engine.invalidate([victim]) >= 1
        engine.close()
        # A restart cannot resurrect the invalidated user's rows.
        restarted = ColocationEngine(fitted_pipeline, cache_size=64, arena_dir=tmp_path)
        restarted.features(profiles)
        # Only the invalidated user's profiles re-featurize (logical count —
        # the physical featurizer may pad tiny chunks).
        refeaturized = sum(1 for p in profiles if p.uid == victim)
        assert restarted.cache_info().featurized == refeaturized

    def test_merge_carries_tier_counters(self, fitted_pipeline, profiles, tmp_path):
        from repro.api.engine import EngineCacheInfo

        engine = ColocationEngine(fitted_pipeline, cache_size=2, arena_dir=tmp_path)
        engine.warm(profiles)
        engine.features(profiles)
        merged = EngineCacheInfo.merge([engine.cache_info(), engine.cache_info()])
        info = engine.cache_info()
        assert merged.cold_hits == 2 * info.cold_hits
        assert merged.demotions == 2 * info.demotions
        assert merged.cold_size == 2 * info.cold_size
