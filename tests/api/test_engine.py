"""Tests for the ColocationEngine serving facade."""

import numpy as np
import pytest

from repro.api import ColocationEngine, JudgeRequest, JudgeResponse
from repro.errors import ConfigurationError


class StubJudge:
    """Minimal duck-typed judge: predict_proba only (no feature interface)."""

    def predict_proba(self, pairs):
        return np.array(
            [0.9 if (p.left.pid is not None and p.left.pid == p.right.pid) else 0.1 for p in pairs]
        )


class CountingFeaturizer:
    """Temporarily counts profile rows through ``featurizer.featurize``."""

    def __init__(self, featurizer):
        self.featurizer = featurizer
        self.rows = 0
        self._original = featurizer.featurize

    def __enter__(self):
        def counting(profiles):
            self.rows += len(profiles)
            return self._original(profiles)

        self.featurizer.featurize = counting
        return self

    def __exit__(self, *exc):
        self.featurizer.featurize = self._original
        return False


@pytest.fixture()
def engine(fitted_pipeline):
    return ColocationEngine(fitted_pipeline, cache_size=256)


@pytest.fixture(scope="module")
def test_pairs(tiny_dataset):
    pairs = tiny_dataset.test.labeled_pairs or tiny_dataset.train.labeled_pairs
    return pairs[:20]


class TestConstruction:
    def test_rejects_non_judges(self):
        with pytest.raises(ConfigurationError):
            ColocationEngine(object())

    def test_rejects_bad_settings(self, fitted_pipeline):
        with pytest.raises(ConfigurationError):
            ColocationEngine(fitted_pipeline, cache_size=-1)
        with pytest.raises(ConfigurationError):
            ColocationEngine(fitted_pipeline, batch_size=0)
        with pytest.raises(ConfigurationError):
            ColocationEngine(fitted_pipeline, threshold=1.5)

    def test_ensure_passes_engines_through(self, engine):
        assert ColocationEngine.ensure(engine) is engine

    def test_ensure_wraps_raw_judges(self, fitted_pipeline):
        wrapped = ColocationEngine.ensure(fitted_pipeline)
        assert isinstance(wrapped, ColocationEngine)
        assert wrapped.judge is fitted_pipeline

    def test_registry_comes_from_the_judge(self, engine, tiny_dataset):
        assert engine.registry is tiny_dataset.registry

    def test_stub_judge_has_no_registry(self):
        with pytest.raises(ConfigurationError):
            ColocationEngine(StubJudge()).registry


class TestPredictions:
    def test_predict_proba_matches_pipeline(self, engine, fitted_pipeline, test_pairs):
        np.testing.assert_allclose(
            engine.predict_proba(test_pairs), fitted_pipeline.predict_proba(test_pairs), atol=1e-8
        )

    def test_predict_matches_pipeline(self, engine, fitted_pipeline, test_pairs):
        np.testing.assert_array_equal(engine.predict(test_pairs), fitted_pipeline.predict(test_pairs))

    def test_empty_inputs(self, engine):
        assert engine.predict_proba([]).shape == (0,)
        assert engine.predict([]).shape == (0,)

    def test_small_batch_size_is_equivalent(self, fitted_pipeline, test_pairs):
        small = ColocationEngine(fitted_pipeline, batch_size=3)
        big = ColocationEngine(fitted_pipeline, batch_size=1024)
        np.testing.assert_allclose(
            small.predict_proba(test_pairs), big.predict_proba(test_pairs), atol=1e-12
        )

    def test_probability_matrix_matches_judge(self, engine, fitted_pipeline, tiny_dataset):
        profiles = tiny_dataset.train.labeled_profiles[:8]
        np.testing.assert_allclose(
            engine.probability_matrix(profiles),
            fitted_pipeline.judge.probability_matrix(profiles),
            atol=1e-8,
        )

    def test_stub_judge_fallback_paths(self, tiny_dataset):
        engine = ColocationEngine(StubJudge(), threshold=0.5)
        profiles = tiny_dataset.train.labeled_profiles[:4]
        matrix = engine.probability_matrix(profiles)
        assert matrix.shape == (4, 4)
        pairs = tiny_dataset.train.labeled_pairs[:6]
        decisions = engine.predict(pairs)
        assert set(decisions) <= {0, 1}

    def test_comp2loc_decisions_consistent_across_entry_points(self, fitted_pipeline, tiny_dataset):
        """predict and serve follow Comp2Loc's argmax rule; an explicit engine
        threshold overrides it on both."""
        comp2loc = fitted_pipeline.comp2loc()
        pairs = tiny_dataset.train.labeled_pairs[:8]

        engine = ColocationEngine(comp2loc)
        np.testing.assert_array_equal(engine.predict(pairs), comp2loc.predict(pairs))
        response = engine.serve(JudgeRequest(pairs=tuple(pairs)))
        np.testing.assert_array_equal(np.asarray(response.decisions), engine.predict(pairs))

        strict = ColocationEngine(comp2loc, threshold=0.99)
        expected = (strict.predict_proba(pairs) >= 0.99).astype(int)
        np.testing.assert_array_equal(strict.predict(pairs), expected)
        np.testing.assert_array_equal(
            np.asarray(strict.serve(JudgeRequest(pairs=tuple(pairs))).decisions), expected
        )

    def test_baseline_decisions_follow_the_judge(self, tiny_dataset):
        """Wrapping a baseline must not flip its argmax-equality decisions."""
        import repro.registry as registry_mod

        baseline = registry_mod.build("judge", "tg-ti-c", {}).fit(tiny_dataset)
        pairs = tiny_dataset.train.labeled_pairs[:8]
        engine = ColocationEngine(baseline, registry=tiny_dataset.registry)
        np.testing.assert_array_equal(engine.predict(pairs), baseline.predict(pairs))
        response = engine.serve(JudgeRequest(pairs=tuple(pairs)))
        np.testing.assert_array_equal(np.asarray(response.decisions), baseline.predict(pairs))


class TestFeatureCache:
    def test_probability_matrix_featurizes_each_profile_exactly_once(
        self, engine, fitted_pipeline, tiny_dataset
    ):
        from repro.core import profile_key

        profiles = tiny_dataset.train.labeled_profiles[:10]
        unique = len({profile_key(p) for p in profiles})
        with CountingFeaturizer(fitted_pipeline.featurizer) as counter:
            engine.probability_matrix(profiles)
        assert counter.rows == unique
        # A second call is served entirely from the cache.
        with CountingFeaturizer(fitted_pipeline.featurizer) as counter:
            engine.probability_matrix(profiles)
        assert counter.rows == 0

    def test_duplicate_profiles_featurized_once(self, engine, fitted_pipeline, tiny_dataset):
        profile = tiny_dataset.train.labeled_profiles[0]
        before = engine.cache_info().featurized
        with CountingFeaturizer(fitted_pipeline.featurizer) as counter:
            engine.features([profile, profile, profile])
        # One distinct profile reaches the featurizer as a single chunk, which
        # featurize_in_chunks pads to two physical rows (gemv/gemm bitwise
        # canonicalization); the engine still accounts it as one profile.
        assert engine.cache_info().featurized - before == 1
        assert counter.rows == 2
        with CountingFeaturizer(fitted_pipeline.featurizer) as counter:
            engine.features([profile, profile])
        assert counter.rows == 0

    def test_cache_shared_across_entry_points(self, engine, fitted_pipeline, tiny_dataset):
        profiles = tiny_dataset.train.labeled_profiles[:6]
        engine.warm(profiles)
        from repro.data.records import Pair

        pairs = [Pair(left=profiles[0], right=profiles[1], co_label=None)]
        with CountingFeaturizer(fitted_pipeline.featurizer) as counter:
            engine.predict_proba(pairs)
        assert counter.rows == 0

    def test_lru_eviction(self, fitted_pipeline, tiny_dataset):
        engine = ColocationEngine(fitted_pipeline, cache_size=4)
        profiles = tiny_dataset.train.labeled_profiles[:8]
        engine.warm(profiles)
        info = engine.cache_info()
        assert info.size == 4
        assert info.evictions == 4

    def test_cache_info_counts(self, engine, tiny_dataset):
        profiles = tiny_dataset.train.labeled_profiles[:5]
        engine.warm(profiles)
        engine.warm(profiles)
        info = engine.cache_info()
        assert info.misses == 5
        assert info.hits == 5
        assert info.featurized == 5
        assert 0.0 < info.hit_rate < 1.0

    def test_clear_cache(self, engine, tiny_dataset):
        engine.warm(tiny_dataset.train.labeled_profiles[:3])
        engine.clear_cache()
        assert engine.cache_info().size == 0

    def test_disabled_cache_still_correct(self, fitted_pipeline, test_pairs):
        uncached = ColocationEngine(fitted_pipeline, cache_size=0)
        np.testing.assert_allclose(
            uncached.predict_proba(test_pairs), fitted_pipeline.predict_proba(test_pairs), atol=1e-8
        )
        assert uncached.cache_info().size == 0

    def test_disabled_cache_still_dedups_within_call(self, fitted_pipeline, tiny_dataset):
        """cache_size=0 disables memoisation across calls, not within one."""
        uncached = ColocationEngine(fitted_pipeline, cache_size=0)
        profiles = tiny_dataset.train.labeled_profiles[:3]
        duplicated = profiles + profiles
        before = uncached.cache_info()
        uncached.features(duplicated)
        after = uncached.cache_info()
        assert after.featurized - before.featurized == len(profiles)
        assert after.misses - before.misses == len(profiles)
        assert after.size == 0
        # A second identical call pays again: nothing was cached.
        uncached.features(duplicated)
        final = uncached.cache_info()
        assert final.featurized - after.featurized == len(profiles)
        assert final.hits == 0

    def test_disabled_cache_gathers_both_pair_sides_once(self, fitted_pipeline, tiny_dataset):
        """Regression: predict_proba/serve used to resolve left and right
        profiles in two gather calls, so a profile appearing on both sides
        featurized twice with caching disabled (while the sharded engine
        gathered both sides in one call).  One shared core, one gather."""
        from repro.api import JudgeRequest
        from repro.core import profile_key
        from repro.data.records import Pair

        uncached = ColocationEngine(fitted_pipeline, cache_size=0)
        profiles, seen = [], set()
        for profile in tiny_dataset.train.labeled_profiles:
            if profile_key(profile) not in seen:
                seen.add(profile_key(profile))
                profiles.append(profile)
        a, b, c = profiles[:3]
        # b sits on the right of the first pair and the left of the second.
        pairs = [Pair(left=a, right=b, co_label=None), Pair(left=b, right=c, co_label=None)]
        with CountingFeaturizer(fitted_pipeline.featurizer) as counter:
            uncached.predict_proba(pairs)
        assert counter.rows == 3  # a, b, c — not 4
        info = uncached.cache_info()
        assert info.misses == 3
        response = uncached.serve(JudgeRequest(pairs=tuple(pairs)))
        assert response.cache_misses == 3
        assert uncached.cache_info().misses == 6  # serve paid the same 3 again

    def test_warm_on_non_feature_space_judge_is_a_noop(self, tiny_dataset):
        engine = ColocationEngine(StubJudge(), registry=tiny_dataset.registry)
        assert engine.warm(tiny_dataset.train.labeled_profiles[:5]) == 0
        info = engine.cache_info()
        assert info.size == 0
        assert info.hits == info.misses == info.featurized == 0

    def test_hit_rate_with_zero_lookups_is_zero(self, fitted_pipeline):
        info = ColocationEngine(fitted_pipeline).cache_info()
        assert info.hits == info.misses == 0
        assert info.hit_rate == 0.0

    def test_export_import_cache_round_trip(self, fitted_pipeline, tiny_dataset):
        source = ColocationEngine(fitted_pipeline, cache_size=64)
        profiles = tiny_dataset.train.labeled_profiles[:6]
        source.warm(profiles)
        exported = source.export_cache()
        assert len(exported) == source.cache_info().size

        restored = ColocationEngine(fitted_pipeline, cache_size=64)
        assert restored.import_cache(exported) == len(exported)
        # Imported rows serve without refeaturizing, and count no lookups yet.
        assert restored.cache_info().misses == 0
        assert restored.warm(profiles) == 0
        for key, row in exported.items():
            np.testing.assert_array_equal(restored.export_cache()[key], row)

    def test_import_cache_respects_the_bound(self, fitted_pipeline, tiny_dataset):
        source = ColocationEngine(fitted_pipeline, cache_size=64)
        source.warm(tiny_dataset.train.labeled_profiles[:8])
        exported = source.export_cache()
        tiny = ColocationEngine(fitted_pipeline, cache_size=3)
        assert tiny.import_cache(exported) == 3
        assert tiny.cache_info().size == 3
        disabled = ColocationEngine(fitted_pipeline, cache_size=0)
        assert disabled.import_cache(exported) == 0

    def test_import_cache_counts_only_imported_rows(self, fitted_pipeline, tiny_dataset):
        """Evicting pre-existing rows must not subtract from the kept count."""
        source = ColocationEngine(fitted_pipeline, cache_size=64)
        profiles = tiny_dataset.train.labeled_profiles
        source.warm(profiles[:2])
        exported = source.export_cache()
        target = ColocationEngine(fitted_pipeline, cache_size=3)
        target.warm(profiles[2:5])  # fill the target completely
        kept = target.import_cache(exported)
        assert kept == 2  # both imported rows are resident...
        resident = target.export_cache()
        assert all(key in resident for key in exported)  # ...verifiably
        assert target.cache_info().size == 3

    def test_concurrent_callers_keep_cache_consistent(self, tiny_dataset):
        """Hammer one engine from many threads; counters and bound must hold.

        The judge stub featurizes statelessly, so the test isolates the
        engine's own lock (the judge's internal caches are exercised
        single-threaded in production: ShardedEngine replicates the judge
        per shard or serialises featurization).
        """
        import threading

        class StatelessFeatureJudge:
            def predict_proba(self, pairs):
                return np.zeros(len(pairs))

            def featurize_profiles(self, profiles):
                return np.array([[float(p.uid), p.ts] for p in profiles])

            def score_feature_pairs(self, left, right):
                return np.zeros(len(left))

        engine = ColocationEngine(
            StatelessFeatureJudge(), cache_size=16, registry=tiny_dataset.registry
        )
        from repro.core import profile_key

        unique, seen = [], set()
        for profile in tiny_dataset.train.labeled_profiles:
            if profile_key(profile) not in seen:
                seen.add(profile_key(profile))
                unique.append(profile)
        profiles = unique[:24]
        assert len(profiles) == 24
        errors = []

        def worker(offset):
            try:
                for step in range(50):
                    window = [profiles[(offset + step + i) % len(profiles)] for i in range(6)]
                    rows = engine.features(window)
                    expected = np.array([[float(p.uid), p.ts] for p in window])
                    np.testing.assert_array_equal(rows, expected)
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i * 3,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        info = engine.cache_info()
        assert info.size <= 16
        assert info.hits + info.misses == 8 * 50 * 6  # every lookup accounted for
        assert info.featurized >= info.size


class TestServe:
    def test_serve_round_trip(self, engine, test_pairs):
        request = JudgeRequest(pairs=tuple(test_pairs))
        response = engine.serve(request)
        assert isinstance(response, JudgeResponse)
        assert len(response) == len(test_pairs)
        assert response.threshold == engine.threshold
        assert all(0.0 <= p <= 1.0 for p in response.probabilities)
        assert response.num_positive == sum(response.decisions)
        assert response.elapsed_ms >= 0.0

    def test_serve_threshold_override(self, engine, test_pairs):
        lax = engine.serve(JudgeRequest(pairs=tuple(test_pairs), threshold=0.0))
        strict = engine.serve(JudgeRequest(pairs=tuple(test_pairs), threshold=1.0))
        assert lax.num_positive == len(test_pairs)
        assert strict.num_positive <= lax.num_positive

    def test_serve_rejects_invalid_threshold(self, engine, test_pairs):
        with pytest.raises(ConfigurationError):
            engine.serve(JudgeRequest(pairs=tuple(test_pairs), threshold=5.0))

    def test_features_empty_input_keeps_feature_dim(self, engine, fitted_pipeline):
        assert engine.features([]).shape == (0, fitted_pipeline.featurizer.feature_dim)

    def test_features_empty_input_with_history_featurizer(self, small_registry):
        # Regression: featurizers exposing the historical `dimension` name
        # (the raw history featurizers) used to yield a wrong (0, 0) shape.
        from repro.features import HistoricalVisitFeaturizer

        class HistoryOnlyJudge:
            def __init__(self, registry):
                self.featurizer = HistoricalVisitFeaturizer(registry)

            def predict_proba(self, pairs):
                return np.zeros(len(pairs))

            def featurize_profiles(self, profiles):
                return self.featurizer.featurize_batch(profiles)

            def score_feature_pairs(self, left, right):
                return np.zeros(len(left))

        engine = ColocationEngine(HistoryOnlyJudge(small_registry), registry=small_registry)
        assert engine.features([]).shape == (0, len(small_registry))

    def test_features_empty_input_with_dimension_only_featurizer(self, small_registry):
        class LegacyFeaturizer:
            dimension = 7

        class LegacyJudge:
            featurizer = LegacyFeaturizer()

            def predict_proba(self, pairs):
                return np.zeros(len(pairs))

            def featurize_profiles(self, profiles):
                return np.zeros((len(profiles), 7))

            def score_feature_pairs(self, left, right):
                return np.zeros(len(left))

        engine = ColocationEngine(LegacyJudge(), registry=small_registry)
        assert engine.features([]).shape == (0, 7)

    def test_request_for_profiles_skips_same_user(self, tiny_dataset):
        profiles = tiny_dataset.train.labeled_profiles[:6]
        request = JudgeRequest.for_profiles(profiles[0], profiles)
        assert all(pair.right.uid != profiles[0].uid for pair in request.pairs)

    def test_serve_reports_cache_traffic(self, fitted_pipeline, test_pairs):
        engine = ColocationEngine(fitted_pipeline, cache_size=512)
        first = engine.serve(JudgeRequest(pairs=tuple(test_pairs)))
        second = engine.serve(JudgeRequest(pairs=tuple(test_pairs)))
        assert first.cache_misses > 0
        assert second.cache_misses == 0
        assert second.cache_hits > 0


class TestOnePhaseEngine:
    @pytest.fixture(scope="class")
    def onephase_engine(self, tiny_dataset):
        from repro.colocation import CoLocationPipeline, OnePhaseConfig, PipelineConfig
        from repro.features import HisRectConfig
        from repro.text import SkipGramConfig

        config = PipelineConfig(
            hisrect=HisRectConfig(content_dim=6, feature_dim=12, embedding_dim=6),
            onephase=OnePhaseConfig(max_iterations=15, batch_size=4),
            skipgram=SkipGramConfig(embedding_dim=12, epochs=1),
            mode="one-phase",
        )
        pipeline = CoLocationPipeline(config).fit(tiny_dataset)
        return ColocationEngine(pipeline)

    def test_engine_unlocks_probability_matrix(self, onephase_engine, tiny_dataset):
        """The raw one-phase pipeline refuses probability_matrix; the engine serves it."""
        profiles = tiny_dataset.train.labeled_profiles[:6]
        with pytest.raises(ConfigurationError):
            onephase_engine.judge.probability_matrix(profiles)
        matrix = onephase_engine.probability_matrix(profiles)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)
        np.testing.assert_allclose(
            matrix, onephase_engine.judge.onephase.probability_matrix(profiles), atol=1e-8
        )

    def test_matches_pipeline_predictions(self, onephase_engine, tiny_dataset):
        pairs = tiny_dataset.train.labeled_pairs[:10]
        np.testing.assert_allclose(
            onephase_engine.predict_proba(pairs),
            onephase_engine.judge.predict_proba(pairs),
            atol=1e-8,
        )
