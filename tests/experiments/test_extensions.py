"""Tests for the extension experiment runners (smoke scale only)."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext, extensions


@pytest.fixture(scope="module")
def context() -> ExperimentContext:
    return ExperimentContext("smoke", seed=7)


class TestEncoderExtension:
    def test_runs_requested_encoders_only(self, context):
        results = extensions.run_encoders(context, dataset="nyc", encoders=("bgru",))
        assert set(results) == {"bgru"}
        assert set(results["bgru"]) == {"Acc", "Rec", "Pre", "F1"}

    def test_metrics_bounded(self, context):
        results = extensions.run_encoders(context, dataset="nyc", encoders=("bgru",))
        for metrics in results.values():
            for value in metrics.values():
                assert 0.0 <= value <= 1.0

    def test_report_mentions_encoders(self, context):
        results = extensions.run_encoders(context, dataset="nyc", encoders=("bgru",))
        report = extensions.format_encoder_report(results)
        assert "bgru" in report
        assert "Extension" in report


class TestSocialExtension:
    def test_compares_base_and_social(self, context):
        results = extensions.run_social(context, dataset="nyc")
        assert set(results) == {"HisRect", "HisRect+Social"}
        for metrics in results.values():
            assert set(metrics) == {"Acc", "Rec", "Pre", "F1"}
            for value in metrics.values():
                assert 0.0 <= value <= 1.0

    def test_report_format(self, context):
        results = extensions.run_social(context, dataset="nyc")
        report = extensions.format_social_report(results)
        assert "HisRect+Social" in report
