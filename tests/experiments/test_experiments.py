"""Tests for the experiment configuration, approach factory and light runners.

The heavyweight end-to-end runners are exercised at ``smoke`` scale only; the
benchmark suite runs them at ``default`` scale.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    APPROACH_NAMES,
    DEFAULT,
    PRESETS,
    SMOKE,
    TAXONOMY,
    ApproachSuite,
    ExperimentContext,
    pipeline_config_for,
    resolve_scale,
)
from repro.experiments import figure5, table2, table4


class TestScaleConfig:
    def test_presets_exist(self):
        assert set(PRESETS) == {"smoke", "default", "full"}

    def test_resolve_by_name_and_passthrough(self):
        assert resolve_scale("smoke") is SMOKE
        assert resolve_scale(DEFAULT) is DEFAULT

    def test_resolve_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPERIMENT_SCALE", raising=False)
        assert resolve_scale(None).name == "default"
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "smoke")
        assert resolve_scale(None).name == "smoke"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_scale("gigantic")


class TestApproachConfigs:
    def test_all_approaches_have_taxonomy(self):
        assert set(TAXONOMY) == set(APPROACH_NAMES)

    def test_pipeline_config_variants(self):
        assert pipeline_config_for("HisRect", SMOKE).hisrect.use_content
        assert not pipeline_config_for("History-only", SMOKE).hisrect.use_content
        assert not pipeline_config_for("Tweet-only", SMOKE).hisrect.use_history
        assert pipeline_config_for("One-hot", SMOKE).hisrect.history_encoding == "onehot"
        assert pipeline_config_for("BLSTM", SMOKE).hisrect.content_encoder == "blstm"
        assert pipeline_config_for("ConvLSTM", SMOKE).hisrect.content_encoder == "convlstm"
        assert pipeline_config_for("One-phase", SMOKE).mode == "one-phase"
        assert not pipeline_config_for("HisRect-SL", SMOKE).ssl.use_unlabeled

    def test_naive_approaches_are_not_pipelines(self):
        with pytest.raises(ConfigurationError):
            pipeline_config_for("TG-TI-C", SMOKE)


class TestSuiteAndRunners:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext("smoke", seed=7)

    def test_dataset_caching(self, context):
        assert context.dataset("nyc") is context.dataset("nyc")
        with pytest.raises(ConfigurationError):
            context.dataset("tokyo")

    def test_table2_reports_all_splits(self, context):
        results = table2.run(context, datasets=("nyc",))
        assert set(results["nyc"]) == {"Training", "Validation", "Testing"}
        report = table2.format_report(results)
        assert "Table 2" in report

    def test_suite_builds_naive_approaches(self, context):
        suite = context.suite("nyc")
        tgtic = suite.get("TG-TI-C")
        ngram = suite.get("N-Gram-Gauss")
        pairs = context.dataset("nyc").test.labeled_pairs[:5]
        if pairs:
            assert tgtic.predict(pairs).shape == (len(pairs),)
            assert ngram.predict(pairs).shape == (len(pairs),)

    def test_unknown_approach_rejected(self, context):
        with pytest.raises(ConfigurationError):
            context.suite("nyc").get("DeepCoLoc")

    def test_table4_taxonomy_rows(self):
        rows = table4.taxonomy_rows()
        assert set(rows) == set(APPROACH_NAMES)
        assert rows["HisRect"]["SSL"] == "x"
        assert rows["One-phase"]["SSL"] == "-"

    def test_figure5_subsample_training(self, context):
        dataset = context.dataset("nyc")
        reduced = figure5.subsample_training(dataset, 0.5, seed=3)
        assert len(reduced.train.store) <= len(dataset.train.store)
        assert reduced.test is dataset.test
        with pytest.raises(ValueError):
            figure5.subsample_training(dataset, 0.0)

    def test_suite_caches_trained_models(self, context):
        suite = ApproachSuite(context.dataset("nyc"), scale=SMOKE, seed=1)
        first = suite.get("TG-TI-C")
        assert suite.get("TG-TI-C") is first
        assert "TG-TI-C" in suite.trained_names()
