"""Tests for the Δt and smoothing-factor experiment helpers (no training)."""

from repro.data.timelines import HOUR_SECONDS
from repro.experiments import delta_t, parameters


class TestWithDeltaT:
    def test_pairs_respect_new_window(self, tiny_dataset):
        halved = delta_t.with_delta_t(tiny_dataset, 0.5 * HOUR_SECONDS)
        assert halved.delta_t == 0.5 * HOUR_SECONDS
        for pair in halved.train.labeled_pairs:
            assert pair.time_gap < 0.5 * HOUR_SECONDS

    def test_smaller_window_never_adds_pairs(self, tiny_dataset):
        halved = delta_t.with_delta_t(tiny_dataset, 0.5 * HOUR_SECONDS)
        assert len(halved.train.labeled_pairs) <= len(tiny_dataset.train.labeled_pairs)

    def test_profiles_and_timelines_are_untouched(self, tiny_dataset):
        varied = delta_t.with_delta_t(tiny_dataset, 2 * HOUR_SECONDS)
        assert varied.train.labeled_profiles == tiny_dataset.train.labeled_profiles
        assert varied.train.store is tiny_dataset.train.store

    def test_validation_and_test_have_no_unlabeled_pairs(self, tiny_dataset):
        varied = delta_t.with_delta_t(tiny_dataset, 2 * HOUR_SECONDS)
        assert varied.test.unlabeled_pairs == []
        assert varied.validation.unlabeled_pairs == []


class TestReportFormatting:
    def test_delta_t_report_contains_rows(self):
        results = {
            "dt=0.5h": {"Acc": 0.9, "Rec": 0.8, "Pre": 0.7, "F1": 0.75},
            "dt=1h": {"Acc": 0.91, "Rec": 0.81, "Pre": 0.71, "F1": 0.76},
        }
        report = delta_t.format_report(results)
        assert "dt=0.5h" in report and "Acc" in report

    def test_parameters_report_contains_title(self):
        results = {"eps_d=250m": {"Acc": 0.9, "Rec": 0.8, "Pre": 0.7, "F1": 0.75}}
        report = parameters.format_report(results, title="Ablation: eps_d")
        assert report.startswith("Ablation: eps_d")
        assert "eps_d=250m" in report
