"""API-contract tests for CoLocationPipeline (error paths and one-phase mode)."""

import numpy as np
import pytest

from repro.colocation import CoLocationPipeline, PipelineConfig
from repro.errors import ConfigurationError, NotFittedError
from repro.features import HisRectConfig
from repro.io import load_pipeline, save_pipeline
from repro.text import SkipGramConfig


class TestUnfittedPipeline:
    def test_predict_before_fit_raises(self, tiny_dataset):
        pipeline = CoLocationPipeline(PipelineConfig())
        with pytest.raises(NotFittedError):
            pipeline.predict(tiny_dataset.train.labeled_pairs[:2])

    def test_features_before_fit_raises(self, tiny_dataset):
        pipeline = CoLocationPipeline(PipelineConfig())
        with pytest.raises(NotFittedError):
            pipeline.features(tiny_dataset.train.labeled_profiles[:2])

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(mode="three-phase")


@pytest.fixture(scope="module")
def onephase_pipeline(tiny_dataset):
    """A small One-phase pipeline (end-to-end pair loss, no SSL stage)."""
    from repro.colocation.onephase import OnePhaseConfig

    config = PipelineConfig(
        hisrect=HisRectConfig(content_dim=6, feature_dim=12, embedding_dim=6),
        onephase=OnePhaseConfig(max_iterations=20, batch_size=4),
        skipgram=SkipGramConfig(embedding_dim=12, epochs=1),
        mode="one-phase",
    )
    return CoLocationPipeline(config).fit(tiny_dataset)


class TestOnePhasePipeline:
    def test_predicts_probabilities(self, onephase_pipeline, tiny_dataset):
        pairs = tiny_dataset.train.labeled_pairs[:10]
        proba = onephase_pipeline.predict_proba(pairs)
        assert proba.shape == (len(pairs),)
        assert np.all((proba >= 0.0) & (proba <= 1.0))

    def test_probability_matrix_not_supported(self, onephase_pipeline, tiny_dataset):
        with pytest.raises(ConfigurationError):
            onephase_pipeline.probability_matrix(tiny_dataset.train.labeled_profiles[:3])

    def test_poi_inference_not_supported(self, onephase_pipeline, tiny_dataset):
        with pytest.raises(ConfigurationError):
            onephase_pipeline.infer_poi_proba(tiny_dataset.train.labeled_profiles[:3])

    def test_comp2loc_not_supported(self, onephase_pipeline):
        with pytest.raises(ConfigurationError):
            onephase_pipeline.comp2loc()

    def test_one_phase_round_trip(self, onephase_pipeline, tiny_dataset, tmp_path):
        """Persistence also covers the one-phase layout (onephase/ weight group)."""
        save_pipeline(onephase_pipeline, tmp_path / "onephase")
        loaded = load_pipeline(tmp_path / "onephase")
        pairs = tiny_dataset.train.labeled_pairs[:10]
        np.testing.assert_allclose(
            loaded.predict_proba(pairs), onephase_pipeline.predict_proba(pairs), atol=1e-8
        )
