"""Tests for the co-location judge, Comp2Loc, One-phase, clustering and pipeline."""

import numpy as np
import pytest

from repro.colocation import (
    Comp2LocJudge,
    CoLocationPipeline,
    HisRectCoLocationJudge,
    JudgeConfig,
    OnePhaseConfig,
    OnePhaseModel,
    PipelineConfig,
    ProfileClusterer,
    partition_from_labels,
    partitions_equal,
)
from repro.errors import ConfigurationError, NotFittedError, TrainingError
from repro.eval import pair_labels


class TestHisRectCoLocationJudge:
    def test_fit_and_predict_shapes(self, tiny_dataset, fitted_pipeline):
        judge = fitted_pipeline.judge
        pairs = tiny_dataset.train.labeled_pairs[:10]
        proba = judge.predict_proba(pairs)
        preds = judge.predict(pairs)
        assert proba.shape == (len(pairs),)
        assert set(np.unique(preds)).issubset({0, 1})
        assert np.all((proba >= 0) & (proba <= 1))

    def test_unfitted_judge_raises(self, fitted_pipeline, tiny_dataset):
        judge = HisRectCoLocationJudge(fitted_pipeline.featurizer, JudgeConfig(epochs=1))
        with pytest.raises(NotFittedError):
            judge.predict(tiny_dataset.train.labeled_pairs[:2])

    def test_fit_requires_both_classes(self, fitted_pipeline, tiny_dataset):
        judge = HisRectCoLocationJudge(fitted_pipeline.featurizer, JudgeConfig(epochs=1))
        positives = [p for p in tiny_dataset.train.labeled_pairs if p.is_positive]
        with pytest.raises(TrainingError):
            judge.fit(positives)

    def test_probability_matrix_symmetric(self, fitted_pipeline, tiny_dataset):
        profiles = tiny_dataset.train.labeled_profiles[:6]
        matrix = fitted_pipeline.judge.probability_matrix(profiles)
        assert matrix.shape == (6, 6)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), np.ones(6))

    def test_empty_pair_list(self, fitted_pipeline):
        assert fitted_pipeline.judge.predict_proba([]).shape == (0,)


class TestComp2Loc:
    def test_predictions_consistent_with_poi_inference(self, fitted_pipeline, tiny_dataset):
        comp2loc = fitted_pipeline.comp2loc()
        pairs = tiny_dataset.train.labeled_pairs[:10]
        preds = comp2loc.predict(pairs)
        left = comp2loc.infer_poi_indices([p.left for p in pairs])
        right = comp2loc.infer_poi_indices([p.right for p in pairs])
        np.testing.assert_array_equal(preds, (left == right).astype(int))

    def test_proba_in_unit_interval(self, fitted_pipeline, tiny_dataset):
        comp2loc = fitted_pipeline.comp2loc()
        proba = comp2loc.predict_proba(tiny_dataset.train.labeled_pairs[:10])
        assert np.all((proba >= 0) & (proba <= 1))

    def test_infer_poi_returns_valid_pids(self, fitted_pipeline, tiny_dataset):
        comp2loc = fitted_pipeline.comp2loc()
        pids = comp2loc.infer_poi(tiny_dataset.test.labeled_profiles[:5])
        assert all(pid in tiny_dataset.registry for pid in pids)


class TestOnePhase:
    def test_fit_predict(self, tiny_dataset, fitted_pipeline):
        from repro.features.hisrect import HisRectFeaturizer

        # One-phase training mutates the featurizer (joint end-to-end fit), so
        # build a fresh one instead of corrupting the shared fitted_pipeline's.
        featurizer = HisRectFeaturizer(
            tiny_dataset.registry, fitted_pipeline.vectorizer, fitted_pipeline.config.hisrect
        )
        model = OnePhaseModel(featurizer, OnePhaseConfig(max_iterations=10, batch_size=4))
        losses = model.fit(tiny_dataset.train.labeled_pairs)
        assert len(losses) == 10
        preds = model.predict(tiny_dataset.train.labeled_pairs[:5])
        assert preds.shape == (5,)

    def test_unfitted_raises(self, fitted_pipeline, tiny_dataset):
        model = OnePhaseModel(fitted_pipeline.featurizer, OnePhaseConfig(max_iterations=1))
        with pytest.raises(NotFittedError):
            model.predict(tiny_dataset.train.labeled_pairs[:2])


class TestClustering:
    def test_partition_helpers(self):
        partition = partition_from_labels([0, 0, 1, 1, 2])
        assert frozenset({0, 1}) in partition
        assert partitions_equal(partition, partition_from_labels([5, 5, 9, 9, 7]))
        assert not partitions_equal(partition, partition_from_labels([0, 1, 1, 1, 2]))

    def test_cluster_matrix_threshold(self):
        class FakeJudge:
            def probability_matrix(self, profiles):
                return np.array([[1.0, 0.9, 0.1], [0.9, 1.0, 0.2], [0.1, 0.2, 1.0]])

        clusterer = ProfileClusterer(FakeJudge(), threshold=0.5)
        result = clusterer.cluster([object(), object(), object()])
        assert partitions_equal(result.as_partition(), partition_from_labels([0, 0, 1]))

    def test_cluster_with_fitted_judge(self, fitted_pipeline, tiny_dataset):
        clusterer = ProfileClusterer(fitted_pipeline.judge)
        result = clusterer.cluster(tiny_dataset.train.labeled_profiles[:5])
        covered = set().union(*result.clusters)
        assert covered == set(range(5))


class TestPipeline:
    def test_unfitted_pipeline_raises(self, tiny_pipeline_config, tiny_dataset):
        pipeline = CoLocationPipeline(tiny_pipeline_config)
        with pytest.raises(NotFittedError):
            pipeline.predict(tiny_dataset.test.labeled_pairs[:1])

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(mode="three-phase")

    def test_predict_and_labels_align(self, fitted_pipeline, tiny_dataset):
        pairs = tiny_dataset.train.labeled_pairs[:20]
        preds = fitted_pipeline.predict(pairs)
        assert preds.shape == pair_labels(pairs).shape

    def test_poi_inference_distribution(self, fitted_pipeline, tiny_dataset):
        proba = fitted_pipeline.infer_poi_proba(tiny_dataset.test.labeled_profiles[:4])
        assert proba.shape == (4, len(tiny_dataset.registry))
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(4), atol=1e-8)

    def test_infer_poi_valid_pids(self, fitted_pipeline, tiny_dataset):
        pids = fitted_pipeline.infer_poi(tiny_dataset.test.labeled_profiles[:4])
        assert all(pid in tiny_dataset.registry for pid in pids)

    def test_features_shape(self, fitted_pipeline, tiny_dataset):
        features = fitted_pipeline.features(tiny_dataset.test.labeled_profiles[:3])
        assert features.shape == (3, fitted_pipeline.config.hisrect.feature_dim)

    def test_ssl_history_recorded(self, fitted_pipeline):
        assert fitted_pipeline.ssl_history is not None
        assert fitted_pipeline.ssl_history.iterations > 0
