"""Arena-backed warm starts across the cluster tiers.

The tentpole behaviours: a sharded cluster pointed at its predecessor's
arena directory serves the warm set without featurizing, and a killed
worker process respawns by *mapping* its arena slice — zero featurize
calls, zero rows reshipped over the wire.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.api import ColocationEngine
from repro.cluster import ShardedEngine, WorkerPool
from repro.errors import WorkerCrashError


@pytest.fixture(scope="module")
def serving_pairs(tiny_dataset):
    pairs = list(tiny_dataset.test.labeled_pairs) + list(tiny_dataset.train.labeled_pairs)
    assert len(pairs) >= 8, "the tiny dataset must provide labeled pairs"
    return pairs[:16]


def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


# ------------------------------------------------------------- thread shards


def test_sharded_cluster_warm_starts_from_its_arena(
    fitted_pipeline, tiny_dataset, serving_pairs, tmp_path
):
    profiles = tiny_dataset.train.labeled_profiles[:12]
    with ShardedEngine(
        fitted_pipeline, num_shards=2, cache_size=64, arena_dir=tmp_path
    ) as first:
        first.warm(profiles)
        reference = first.predict_proba(serving_pairs)
        assert (tmp_path / "shard-000").exists()
        assert (tmp_path / "shard-001").exists()

    with ShardedEngine(
        fitted_pipeline, num_shards=2, cache_size=64, arena_dir=tmp_path
    ) as restarted:
        restarted.features(profiles)
        info = restarted.cache_info()
        assert info.featurized == 0  # the whole warm set came off disk
        assert info.cold_hits == len(profiles)
        assert info.misses == 0
        assert np.array_equal(restarted.predict_proba(serving_pairs), reference)


def test_sharded_arena_rows_land_on_their_owner_shard(
    fitted_pipeline, tiny_dataset, tmp_path
):
    from repro.cluster import shard_index

    profiles = tiny_dataset.train.labeled_profiles[:12]
    with ShardedEngine(
        fitted_pipeline, num_shards=2, cache_size=64, arena_dir=tmp_path
    ) as cluster:
        cluster.warm(profiles)
        assert {cluster.shard_of(p) for p in profiles} == {0, 1}
        # Each shard's arena slice holds exactly its own users' rows.
        for index, shard in enumerate(cluster.shards):
            keys = shard.store.cold.keys()
            assert keys, "every shard owns part of this sample"
            assert all(shard_index(key, 2) == index for key in keys)


# ----------------------------------------------------------- process workers


def test_killed_worker_respawns_from_mapped_arena_with_zero_featurize_calls(
    fitted_pipeline, tiny_dataset, serving_pairs, tmp_path
):
    profiles = [pair.left for pair in serving_pairs] + [
        pair.right for pair in serving_pairs
    ]
    with WorkerPool(
        fitted_pipeline,
        num_workers=2,
        cache_size=128,
        respawn=True,
        arena_dir=str(tmp_path),
    ) as pool:
        pool.warm(profiles)
        reference = pool.predict_proba(serving_pairs)
        pool.snapshot()  # retain rows: proves the wire reship is *skipped* below
        victim = next(
            index
            for index in range(2)
            if pool.worker_cache_infos()[index].cold_size > 0
        )
        old_pid = pool.worker_pids()[victim]

        os.kill(old_pid, signal.SIGKILL)
        _wait_until(lambda: not pool._handles[victim].process.is_alive())
        with pytest.raises(WorkerCrashError):
            pool.ping(victim)  # the death is noticed here

        assert pool.ping(victim)  # respawns, mapping the arena slice
        assert pool.worker_pids()[victim] != old_pid

        fresh = pool.worker_cache_infos()[victim]
        assert fresh.featurized == 0
        assert fresh.cold_size > 0  # the slice is already mapped...
        assert fresh.size == 0  # ...and no retained rows were reshipped

        # Serving the victim's slice touches only the arena: zero featurize
        # calls, bit-identical scores.
        assert np.array_equal(pool.predict_proba(serving_pairs), reference)
        after = pool.worker_cache_infos()[victim]
        assert after.featurized == 0
        assert after.misses == 0
        assert after.cold_hits > 0

        metrics = pool.metrics.snapshot()
        assert metrics.worker_deaths == 1
        assert metrics.worker_respawns == 1
        assert "tiers:" in metrics.format()


def test_pool_without_arena_still_reships_retained_rows(fitted_pipeline, serving_pairs):
    """The wire fallback stays intact when no arena is configured."""
    with WorkerPool(
        fitted_pipeline, num_workers=2, cache_size=128, respawn=True
    ) as pool:
        pool.warm([pair.left for pair in serving_pairs])
        snapshot = pool.snapshot()
        victim = next(index for index, rows in enumerate(snapshot) if rows)
        os.kill(pool.worker_pids()[victim], signal.SIGKILL)
        _wait_until(lambda: not pool._handles[victim].process.is_alive())
        with pytest.raises(WorkerCrashError):
            pool.ping(victim)
        assert pool.ping(victim)
        assert pool.worker_cache_infos()[victim].size == len(snapshot[victim])


def test_arena_restart_parity_with_cold_reference(
    fitted_pipeline, tiny_dataset, serving_pairs, tmp_path
):
    """A brand-new pool over a warm arena matches a cold single engine."""
    with WorkerPool(
        fitted_pipeline, num_workers=2, cache_size=128, arena_dir=str(tmp_path)
    ) as pool:
        pool.warm([pair.left for pair in serving_pairs])
        first = pool.predict_proba(serving_pairs)
    with WorkerPool(
        fitted_pipeline, num_workers=2, cache_size=128, arena_dir=str(tmp_path)
    ) as restarted:
        again = restarted.predict_proba(serving_pairs)
    reference = ColocationEngine(fitted_pipeline, cache_size=128)
    expected = reference.predict_proba(serving_pairs)
    assert np.array_equal(first, expected)
    assert np.array_equal(again, expected)
