"""WorkerPool lifecycle: surface, death, respawn, shutdown hygiene.

Bit-for-bit parity with the other transports lives in
``test_serving_parity.py``; this file pins everything *around* the hot path:

* the full engine surface over the wire (warm / cache_info / threshold /
  snapshot / restore / ping) and ``resolve_engine`` pass-through;
* worker death — a killed worker fails the call in flight *and* everything
  queued behind it promptly with :class:`repro.errors.WorkerCrashError`,
  :class:`repro.cluster.ClusterMetrics` counts the incident, and with
  ``respawn=True`` the next call brings the worker back warm-started from
  the retained snapshot rows;
* graceful shutdown — ``close()`` drains, workers exit, no orphan processes
  or leaked children survive, and a second ``close()`` is a no-op.

Pool spawns cost seconds each (a fresh interpreter per worker), so the
read-only tests share one module-scoped pool; destructive tests build their
own.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.api import ColocationEngine, JudgeRequest
from repro.cluster import ClusterMetrics, MicroBatcher, WorkerPool
from repro.errors import ConfigurationError, WorkerCrashError


@pytest.fixture(scope="module")
def serving_pairs(tiny_dataset):
    pairs = list(tiny_dataset.test.labeled_pairs) + list(tiny_dataset.train.labeled_pairs)
    assert len(pairs) >= 8, "the tiny dataset must provide labeled pairs"
    return pairs[:16]


@pytest.fixture(scope="module")
def pool(fitted_pipeline):
    with WorkerPool(fitted_pipeline, num_workers=2, cache_size=256) as pool:
        yield pool


@pytest.fixture(scope="module")
def reference_engine(fitted_pipeline):
    return ColocationEngine(fitted_pipeline, cache_size=256)


def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


# ---------------------------------------------------------------- wire surface


def test_engine_surface_matches_reference(pool, reference_engine, serving_pairs):
    assert np.array_equal(
        pool.predict_proba(serving_pairs), reference_engine.predict_proba(serving_pairs)
    )
    assert np.array_equal(
        pool.predict(serving_pairs), reference_engine.predict(serving_pairs)
    )
    assert pool.threshold == reference_engine.threshold
    assert pool.registry is reference_engine.registry


def test_warm_and_cache_info(pool, serving_pairs):
    profiles = [pair.left for pair in serving_pairs] + [pair.right for pair in serving_pairs]
    pool.warm(profiles)
    info = pool.cache_info()
    assert info.size > 0
    infos = pool.worker_cache_infos()
    assert len(infos) == pool.num_workers
    assert sum(i.size for i in infos) == info.size
    # warm again: everything resident now, nothing featurized
    assert pool.warm(profiles) == 0


def test_features_match_engine(pool, reference_engine, serving_pairs):
    profiles = [pair.left for pair in serving_pairs[:6]]
    assert np.array_equal(pool.features(profiles), reference_engine.features(profiles))
    assert pool.features([]).shape == reference_engine.features([]).shape


def test_serve_carries_worker_cache_traffic(pool, serving_pairs):
    request = JudgeRequest(pairs=tuple(serving_pairs[:4]))
    response = pool.serve(request)
    assert len(response) == len(request)
    assert response.cache_hits + response.cache_misses > 0


def test_snapshot_restore_roundtrip(fitted_pipeline, pool, serving_pairs):
    profiles = [pair.left for pair in serving_pairs]
    pool.warm(profiles)
    snapshot = pool.snapshot()
    assert len(snapshot) == pool.num_workers
    total = sum(len(rows) for rows in snapshot)
    assert total > 0
    # restore re-routes by stable hash, so the same pool accepts its own
    # snapshot fully
    assert pool.restore(snapshot) == total


def test_ping(pool):
    for index in range(pool.num_workers):
        assert pool.ping(index)


def test_typed_error_crosses_the_wire_and_worker_survives(pool):
    with pytest.raises(ConfigurationError, match="unknown worker operation"):
        pool._call(0, "definitely-not-an-op", {})
    assert pool.ping(0)  # error frames do not poison the connection


def test_resolve_engine_passes_pool_through(pool):
    from repro.service._engine import resolve_engine

    assert resolve_engine(pool) is pool


def test_micro_batcher_stacks_on_pool(pool, reference_engine, serving_pairs):
    with MicroBatcher(pool, max_batch=8, max_delay_ms=1.0) as batcher:
        got = batcher.score(serving_pairs)
    assert np.allclose(got, reference_engine.predict_proba(serving_pairs), atol=1e-12)


def test_constructor_validation(fitted_pipeline):
    with pytest.raises(ConfigurationError):
        WorkerPool(fitted_pipeline, num_workers=0)
    with pytest.raises(ConfigurationError):
        WorkerPool(fitted_pipeline, num_workers=2, cache_size=-1)


# ---------------------------------------------------------------- worker death


def test_killed_worker_fails_calls_fast_and_metrics_count(fitted_pipeline, serving_pairs):
    with WorkerPool(fitted_pipeline, num_workers=2, cache_size=128) as pool:
        pool.predict_proba(serving_pairs)  # touch every worker
        victim = pool.worker_of(serving_pairs[0].left)
        os.kill(pool.worker_pids()[victim], signal.SIGKILL)
        _wait_until(lambda: not pool._handles[victim].process.is_alive())

        started = time.monotonic()
        with pytest.raises(WorkerCrashError):
            pool.predict_proba(serving_pairs)
        assert time.monotonic() - started < 5.0  # fail fast, never hang

        # every further call routed there fails fast too (respawn disabled)
        with pytest.raises(WorkerCrashError):
            pool.ping(victim)

        snapshot = pool.metrics.snapshot()
        assert snapshot.worker_deaths == 1
        assert snapshot.worker_respawns == 0
        assert "deaths=1" in snapshot.format()
        # the surviving worker still serves its slice
        survivor = 1 - victim
        alone = [p for p in serving_pairs if pool.worker_of(p.left) == survivor and pool.worker_of(p.right) == survivor]
        if alone:
            assert len(pool.predict_proba(alone)) == len(alone)


def test_kill_mid_call_fails_pending_futures_typed(fitted_pipeline, serving_pairs):
    """SIGSTOP a worker so a call is genuinely in flight, then SIGKILL it:
    the blocked call and the one queued behind it both fail typed."""
    with WorkerPool(fitted_pipeline, num_workers=1, cache_size=128) as pool:
        pid = pool.worker_pids()[0]
        os.kill(pid, signal.SIGSTOP)
        failures = []

        def call():
            try:
                pool.predict_proba(serving_pairs[:4])
            except BaseException as exc:  # noqa: BLE001 - recording for assert
                failures.append(exc)

        threads = [threading.Thread(target=call) for _ in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)  # let both calls reach the wire / the queue
        os.kill(pid, signal.SIGKILL)
        os.kill(pid, signal.SIGCONT)
        for thread in threads:
            thread.join(timeout=15.0)
            assert not thread.is_alive(), "a pending call hung on a dead worker"
        assert len(failures) == 2
        assert all(isinstance(exc, WorkerCrashError) for exc in failures)
        assert pool.metrics.snapshot().worker_deaths == 1


def test_respawn_restores_retained_cache(fitted_pipeline, serving_pairs):
    with WorkerPool(fitted_pipeline, num_workers=2, cache_size=128, respawn=True) as pool:
        profiles = [pair.left for pair in serving_pairs]
        pool.warm(profiles)
        snapshot = pool.snapshot()  # retains rows for warm-starting
        victim = next(
            index for index, rows in enumerate(snapshot) if rows
        )
        retained_rows = len(snapshot[victim])
        old_pid = pool.worker_pids()[victim]

        os.kill(old_pid, signal.SIGKILL)
        _wait_until(lambda: not pool._handles[victim].process.is_alive())
        with pytest.raises(WorkerCrashError):
            pool.ping(victim)  # the death is noticed (and counted) here

        # the next call respawns the worker and warm-starts its cache
        assert pool.ping(victim)
        assert pool.worker_pids()[victim] != old_pid
        assert pool.worker_cache_infos()[victim].size == retained_rows

        metrics = pool.metrics.snapshot()
        assert metrics.worker_deaths == 1
        assert metrics.worker_respawns == 1

        # and the respawned worker serves bit-identical results
        reference = ColocationEngine(fitted_pipeline, cache_size=128)
        assert np.array_equal(
            pool.predict_proba(serving_pairs), reference.predict_proba(serving_pairs)
        )


# ------------------------------------------------------------------- shutdown


def test_close_reaps_workers_and_is_idempotent(fitted_pipeline, serving_pairs):
    pool = WorkerPool(fitted_pipeline, num_workers=2, cache_size=128)
    pool.predict_proba(serving_pairs)
    processes = [handle.process for handle in pool._handles]
    bundle_dir = pool._bundle_dir
    pool.close()
    assert all(not process.is_alive() for process in processes)
    # SHUTDOWN (not terminate) ends a healthy worker: exitcode 0, not -SIGTERM
    assert all(process.exitcode == 0 for process in processes)
    assert not any(p in multiprocessing.active_children() for p in processes)
    assert not os.path.exists(bundle_dir)  # the bundle tempdir is cleaned up
    pool.close()  # double close: a no-op, not an error
    with pytest.raises(ConfigurationError, match="closed"):
        pool.predict_proba(serving_pairs)


def test_close_after_death_still_reaps_everything(fitted_pipeline, serving_pairs):
    pool = WorkerPool(fitted_pipeline, num_workers=2, cache_size=128)
    try:
        pool.predict_proba(serving_pairs)
        os.kill(pool.worker_pids()[0], signal.SIGKILL)
    finally:
        pool.close()
    assert all(not handle.process.is_alive() for handle in pool._handles)
    # this pool's processes are reaped out of the children table (the
    # module-scoped fixture pool may still be running its own workers)
    alive = multiprocessing.active_children()
    assert not any(handle.process in alive for handle in pool._handles)


def test_worker_exits_on_gateway_eof(fitted_pipeline):
    """EOF alone stops a worker — a crashed gateway leaves no orphans."""
    pool = WorkerPool(fitted_pipeline, num_workers=1, cache_size=64)
    handle = pool._handles[0]
    process = handle.process

    async def sever():  # close the socket without the courtesy SHUTDOWN frame
        handle.writer.close()

    pool._run(sever())
    assert _wait_until(lambda: not process.is_alive(), timeout=10.0)
    assert process.exitcode == 0
    pool.close()


# --------------------------------------------------------------- observability


def test_stats_op_round_trips_worker_registries(pool, serving_pairs):
    """The ``stats`` wire op exports each worker's metrics registry, and
    ``obs_snapshot`` merges them with the gateway-side registry."""
    from repro.obs import tracing

    with tracing():
        pool.predict_proba(serving_pairs[:6])
        snapshots = pool.worker_obs_snapshots()
        merged = pool.obs_snapshot()
    assert len(snapshots) == pool.num_workers
    names = {metric["name"] for snap in snapshots for metric in snap["metrics"]}
    assert "repro_stage_latency_ms" in names  # workers trace their gathers
    gather = merged.get("repro_stage_latency_ms").labels(stage="gather")
    assert gather.count > 0
    assert merged.to_text()  # the merged registry renders an exposition


def test_trace_ids_propagate_across_the_wire(pool, serving_pairs):
    """The gateway's trace id rides the CALL body; worker spans merge back."""
    from repro.obs import STAGE_WIRE_RTT, tracing

    with tracing():
        response = pool.serve(JudgeRequest(pairs=tuple(serving_pairs[:4])))
    stages = [stage for stage, _ in response.trace["stages"]]
    assert STAGE_WIRE_RTT in stages
    assert stages.count("gather") >= 2  # the gateway's plus each worker's


def test_heartbeat_flips_stalled_worker_without_failing_healthy_calls(
    fitted_pipeline, serving_pairs
):
    """SIGSTOP one worker: the heartbeat marks it unhealthy while the other
    worker keeps serving; SIGCONT lets the late PONG flip it back healthy
    (the stalled probe is never cancelled, so the wire stays in sync)."""
    with WorkerPool(
        fitted_pipeline,
        num_workers=2,
        cache_size=128,
        heartbeat_interval_ms=50.0,
        heartbeat_timeout_ms=300.0,
    ) as pool:
        assert pool.worker_health() == (True, True)
        assert _wait_until(lambda: len(pool.metrics.snapshot().worker_health) == 2)
        pid = pool.worker_pids()[0]
        os.kill(pid, signal.SIGSTOP)
        try:
            assert _wait_until(lambda: pool.worker_health()[0] is False, timeout=20.0)
            snapshot = pool.metrics.snapshot()
            assert dict(snapshot.worker_health)[0] is False
            assert dict(snapshot.worker_health)[1] is True
            assert "heartbeat: up=1/2" in snapshot.format()
            assert pool.ping(1)  # the healthy worker still answers
        finally:
            os.kill(pid, signal.SIGCONT)
        assert _wait_until(lambda: pool.worker_health()[0] is True, timeout=20.0)
        # the recovered pool serves full fan-out gathers again
        assert len(pool.predict_proba(serving_pairs[:4])) == 4


def test_heartbeat_reports_a_dead_worker_unhealthy(fitted_pipeline, serving_pairs):
    with WorkerPool(
        fitted_pipeline,
        num_workers=2,
        cache_size=128,
        heartbeat_interval_ms=50.0,
    ) as pool:
        os.kill(pool.worker_pids()[1], signal.SIGKILL)
        _wait_until(lambda: not pool._handles[1].process.is_alive())
        assert _wait_until(lambda: pool.worker_health()[1] is False, timeout=20.0)
        assert pool.worker_health()[0] is True


def test_heartbeat_interval_validation(fitted_pipeline):
    with pytest.raises(ConfigurationError):
        WorkerPool(fitted_pipeline, num_workers=1, heartbeat_interval_ms=0.0)
