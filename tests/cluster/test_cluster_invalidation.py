"""Invalidation across the distributed transports.

The engine-level lifecycle is pinned in ``tests/api/test_invalidation.py``;
this file pins what each transport adds on top:

* :class:`ShardedEngine` routes ``invalidate(uids)`` to each uid's stable-hash
  owner shard only, and ``invalidate_stale`` sweeps every shard;
* :class:`MicroBatcher` processes invalidations **first** within a flush, so a
  mutation queued alongside requests cannot lose the race, and a request
  carrying a superseded revision re-gathers instead of reading dropped rows;
* :class:`WorkerPool` propagates invalidation over the wire's ``INVALIDATE``
  frame to the owner workers *and* purges its gateway-retained snapshot rows,
  so a worker respawned after an invalidation cannot resurrect dead rows.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time

import numpy as np
import pytest

from repro.api import ColocationEngine, JudgeRequest
from repro.cluster import MicroBatcher, ShardedEngine, WorkerPool, shard_index


@pytest.fixture(scope="module")
def serving_pairs(tiny_dataset):
    pairs = list(tiny_dataset.test.labeled_pairs) + list(tiny_dataset.train.labeled_pairs)
    return pairs[:12]


@pytest.fixture(scope="module")
def serving_profiles(serving_pairs):
    seen, out = set(), []
    for pair in serving_pairs:
        for profile in (pair.left, pair.right):
            if id(profile) not in seen:
                seen.add(id(profile))
                out.append(profile)
    return out


@pytest.fixture(scope="module")
def latest_profiles(serving_profiles):
    """One profile per uid — the highest revision the dataset produced.

    The tiny dataset's users carry several revisions each (one per timeline
    position), which is exactly what makes raw ``invalidate_stale`` counts
    data-dependent; the stale-sweep tests want one deterministic generation
    per user instead.
    """
    best = {}
    for profile in serving_profiles:
        current = best.get(profile.uid)
        if current is None or (profile.revision or 0) > (current.revision or 0):
            best[profile.uid] = profile
    return list(best.values())


def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


class TestShardedRouting:
    def test_invalidate_touches_only_the_owner_shard(
        self, fitted_pipeline, serving_profiles
    ):
        with ShardedEngine(fitted_pipeline, num_shards=3, cache_size=1024) as sharded:
            sharded.warm(serving_profiles)
            victim = serving_profiles[0].uid
            owner = shard_index(victim, sharded.num_shards)
            before = sharded.shard_cache_infos()
            dropped = sharded.invalidate([victim])
            assert dropped >= 1
            after = sharded.shard_cache_infos()
            for index, (pre, post) in enumerate(zip(before, after)):
                if index == owner:
                    assert post.size == pre.size - dropped
                    assert post.invalidated == dropped
                else:
                    assert post.size == pre.size
                    assert post.invalidated == 0

    def test_invalidate_stale_sweeps_every_shard(self, fitted_pipeline, latest_profiles):
        with ShardedEngine(fitted_pipeline, num_shards=3, cache_size=1024) as sharded:
            sharded.warm(latest_profiles)
            successors = [
                dataclasses.replace(p, revision=(p.revision or 0) + 1)
                for p in latest_profiles
            ]
            sharded.warm(successors)
            assert sharded.invalidate_stale() == len(latest_profiles)
            # only the successors remain resident
            assert sharded.warm(successors) == 0
            assert sharded.cache_info().invalidated == len(latest_profiles)

    def test_matches_single_engine_drop_counts(self, fitted_pipeline, serving_profiles):
        reference = ColocationEngine(fitted_pipeline, cache_size=1024)
        reference.warm(serving_profiles)
        uids = sorted({p.uid for p in serving_profiles})
        with ShardedEngine(fitted_pipeline, num_shards=2, cache_size=1024) as sharded:
            sharded.warm(serving_profiles)
            assert sharded.invalidate(uids) == reference.invalidate(uids)


class TestBatcherOrdering:
    def test_invalidation_queued_with_requests_wins_the_flush(
        self, fitted_pipeline, serving_pairs
    ):
        """An invalidate submitted before scores in the same flush is applied
        before any of those scores gather — their responses observe it."""
        engine = ColocationEngine(fitted_pipeline, cache_size=1024)
        profiles = [p.left for p in serving_pairs] + [p.right for p in serving_pairs]
        engine.warm(profiles)
        victim_uids = [serving_pairs[0].left.uid]
        with MicroBatcher(engine, max_delay_ms=50.0, overflow="block") as batcher:
            invalidation = batcher.submit_invalidate(victim_uids)
            serve = batcher.submit_serve(JudgeRequest(pairs=tuple(serving_pairs)))
            dropped = invalidation.result(timeout=30)
            response = serve.result(timeout=30)
        assert dropped >= 1
        # the serve in the same flush drained the invalidation bucket
        assert response.cache_invalidated == dropped
        # and re-featurized the dropped rows rather than serving them stale
        assert response.cache_misses >= dropped

    def test_superseded_revision_requests_refeaturize_after_invalidate(
        self, fitted_pipeline, serving_pairs
    ):
        """A request whose profiles carry bumped revisions, queued behind the
        old generation's invalidation, scores exactly like a fresh engine."""
        engine = ColocationEngine(fitted_pipeline, cache_size=1024)
        old_pair = serving_pairs[0]
        new_pair = dataclasses.replace(
            old_pair,
            left=dataclasses.replace(old_pair.left, revision=(old_pair.left.revision or 0) + 1),
            right=dataclasses.replace(old_pair.right, revision=(old_pair.right.revision or 0) + 1),
        )
        engine.predict_proba([old_pair])
        with MicroBatcher(engine, max_delay_ms=50.0, overflow="block") as batcher:
            invalidation = batcher.submit_invalidate([old_pair.left.uid, old_pair.right.uid])
            scored = batcher.submit_score([new_pair])
            dropped = invalidation.result(timeout=30)
            got = scored.result(timeout=30)
        assert dropped >= 2
        fresh = ColocationEngine(fitted_pipeline, cache_size=0)
        np.testing.assert_allclose(got, fresh.predict_proba([new_pair]), atol=1e-12)
        # the superseded rows are gone; only the new generation is resident
        assert engine.invalidate([old_pair.left.uid, old_pair.right.uid]) == 2

    def test_sync_wrappers(self, fitted_pipeline, latest_profiles):
        engine = ColocationEngine(fitted_pipeline, cache_size=1024)
        engine.warm(latest_profiles)
        successors = [
            dataclasses.replace(p, revision=(p.revision or 0) + 1)
            for p in latest_profiles[:3]
        ]
        engine.warm(successors)
        with MicroBatcher(engine, max_delay_ms=2.0, overflow="block") as batcher:
            assert batcher.invalidate([]) == 0  # empty: resolved without a flush
            assert batcher.invalidate_stale() == 3
            dropped = batcher.invalidate([p.uid for p in latest_profiles])
        assert dropped == engine.cache_info().invalidated - 3

    def test_requires_an_invalidatable_engine(self, fitted_pipeline):
        from repro.errors import ConfigurationError

        class Bare:
            def predict_proba(self, pairs):
                return np.zeros(len(pairs))

        with MicroBatcher(Bare(), max_delay_ms=1.0) as batcher:
            with pytest.raises(ConfigurationError, match="invalidate"):
                batcher.submit_invalidate([1])
            with pytest.raises(ConfigurationError, match="invalidate_stale"):
                batcher.submit_invalidate_stale()


class TestWorkerPoolPropagation:
    def test_invalidate_crosses_the_wire(self, fitted_pipeline, serving_profiles):
        with WorkerPool(fitted_pipeline, num_workers=2, cache_size=1024) as pool:
            pool.warm(serving_profiles)
            reference = ColocationEngine(fitted_pipeline, cache_size=1024)
            reference.warm(serving_profiles)
            victim = serving_profiles[0].uid
            dropped = pool.invalidate([victim])
            assert dropped == reference.invalidate([victim])
            assert pool.cache_info().size == reference.cache_info().size
            # re-warm featurizes exactly the dropped rows, on the owner worker
            assert pool.warm(serving_profiles) == dropped

    def test_invalidate_stale_sweeps_every_worker(self, fitted_pipeline, latest_profiles):
        with WorkerPool(fitted_pipeline, num_workers=2, cache_size=1024) as pool:
            pool.warm(latest_profiles)
            successors = [
                dataclasses.replace(p, revision=(p.revision or 0) + 1)
                for p in latest_profiles
            ]
            pool.warm(successors)
            assert pool.invalidate_stale() == len(latest_profiles)
            assert pool.warm(successors) == 0

    def test_serve_after_invalidate_reports_the_drops(self, fitted_pipeline, serving_pairs):
        with WorkerPool(fitted_pipeline, num_workers=2, cache_size=1024) as pool:
            request = JudgeRequest(pairs=tuple(serving_pairs))
            pool.serve(request)
            dropped = pool.invalidate([serving_pairs[0].left.uid])
            assert dropped >= 1
            response = pool.serve(request)
            assert response.cache_invalidated == dropped
            assert pool.serve(request).cache_invalidated == 0

    def test_metrics_count_invalidated_rows(self, fitted_pipeline, serving_profiles):
        from repro.cluster import ClusterMetrics

        metrics = ClusterMetrics()
        with WorkerPool(
            fitted_pipeline, num_workers=2, cache_size=1024, metrics=metrics
        ) as pool:
            pool.warm(serving_profiles)
            dropped = pool.invalidate([p.uid for p in serving_profiles])
        snapshot = metrics.snapshot()
        assert snapshot.invalidated_rows == dropped
        assert f"invalidated_rows={dropped}" in snapshot.format()

    def test_respawned_worker_cannot_resurrect_invalidated_rows(
        self, fitted_pipeline, serving_profiles
    ):
        """The retained warm-start rows are purged on invalidate: after a
        worker dies and respawns, the invalidated user's rows stay gone."""
        with WorkerPool(
            fitted_pipeline, num_workers=2, cache_size=1024, respawn=True
        ) as pool:
            pool.warm(serving_profiles)
            pool.snapshot()  # retains rows for warm-starting respawns
            victim_uid = serving_profiles[0].uid
            owner = shard_index(victim_uid, pool.num_workers)
            dropped = pool.invalidate([victim_uid])
            assert dropped >= 1
            survivor_size = pool.worker_cache_infos()[owner].size

            os.kill(pool.worker_pids()[owner], signal.SIGKILL)
            _wait_until(lambda: not pool._handles[owner].process.is_alive())
            from repro.errors import WorkerCrashError

            with pytest.raises(WorkerCrashError):
                pool.ping(owner)
            assert pool.ping(owner)  # respawn, warm-started from retained rows
            assert pool.worker_cache_infos()[owner].size == survivor_size
            # re-warming really featurizes the victim again: the rows are gone
            assert pool.warm(serving_profiles) == dropped

    def test_invalidating_a_dead_worker_does_not_raise(
        self, fitted_pipeline, serving_profiles
    ):
        """Invalidation is hygiene — a dead worker holds no servable rows, so
        its share resolves to 0 instead of failing the whole call."""
        with WorkerPool(fitted_pipeline, num_workers=2, cache_size=1024) as pool:
            pool.warm(serving_profiles)
            victim_uid = serving_profiles[0].uid
            owner = shard_index(victim_uid, pool.num_workers)
            os.kill(pool.worker_pids()[owner], signal.SIGKILL)
            _wait_until(lambda: not pool._handles[owner].process.is_alive())
            assert pool.invalidate([victim_uid]) == 0
