"""Tests for the hash-partitioned ShardedEngine."""

import numpy as np
import pytest

from repro.api import ColocationEngine, JudgeRequest
from repro.cluster import ShardedEngine, shard_index
from repro.core import profile_key
from repro.data.records import Pair
from repro.errors import ConfigurationError


class StubJudge:
    """Minimal duck-typed judge: predict_proba only (no feature interface)."""

    def predict_proba(self, pairs):
        return np.array(
            [0.9 if (p.left.pid is not None and p.left.pid == p.right.pid) else 0.1 for p in pairs]
        )


@pytest.fixture(scope="module")
def sharded(fitted_pipeline):
    with ShardedEngine(fitted_pipeline, num_shards=4, cache_size=1024) as engine:
        yield engine


@pytest.fixture(scope="module")
def single(fitted_pipeline):
    return ColocationEngine(fitted_pipeline, cache_size=1024)


@pytest.fixture(scope="module")
def test_pairs(tiny_dataset):
    pairs = tiny_dataset.test.labeled_pairs or tiny_dataset.train.labeled_pairs
    return pairs[:20]


class TestConstruction:
    def test_rejects_bad_settings(self, fitted_pipeline):
        with pytest.raises(ConfigurationError):
            ShardedEngine(fitted_pipeline, num_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedEngine(fitted_pipeline, cache_size=-1)

    def test_total_cache_budget_split_across_shards(self, fitted_pipeline):
        with ShardedEngine(fitted_pipeline, num_shards=4, cache_size=100) as engine:
            assert [shard.cache_size for shard in engine.shards] == [25, 25, 25, 25]
            assert engine.cache_info().maxsize == 100

    def test_uneven_cache_budget_still_sums_to_the_total(self, fitted_pipeline):
        with ShardedEngine(fitted_pipeline, num_shards=3, cache_size=100) as engine:
            assert [shard.cache_size for shard in engine.shards] == [34, 33, 33]
            assert engine.cache_info().maxsize == 100

    def test_replicated_judges_are_distinct_objects(self, sharded, fitted_pipeline):
        assert sharded.judge is fitted_pipeline
        replicas = {id(shard.judge) for shard in sharded.shards}
        assert len(replicas) == sharded.num_shards
        assert id(fitted_pipeline) not in replicas

    def test_shared_judge_mode(self, fitted_pipeline, test_pairs):
        with ShardedEngine(
            fitted_pipeline, num_shards=2, cache_size=64, replicate_judge=False
        ) as engine:
            assert all(shard.judge is fitted_pipeline for shard in engine.shards)
            assert engine.predict_proba(test_pairs).shape == (len(test_pairs),)

    def test_registry_and_threshold_come_from_the_judge(self, sharded, single, tiny_dataset):
        assert sharded.registry is not None
        assert sharded.threshold == single.threshold


class TestRouting:
    def test_shard_index_is_stable_and_uid_only(self):
        key_a = (7, 100.0, "coffee", 3)
        key_b = (7, 999.0, "museum", 0)
        assert shard_index(key_a, 4) == shard_index(key_b, 4)
        assert 0 <= shard_index(key_a, 4) < 4

    def test_shard_index_routes_uids_beyond_64_bits(self):
        """Regression: the fixed 8-byte encoding raised OverflowError for
        uids outside the signed 64-bit range."""
        for uid in (2**63, -(2**63) - 1, 2**100, -(2**100), 10**30):
            index = shard_index((uid, 1.0, "x", 0), 4)
            assert 0 <= index < 4

    def test_shard_index_keeps_legacy_routing_for_64_bit_uids(self):
        """Cross-width stability: every uid in the signed 64-bit range keeps
        the legacy fixed-8-byte encoding, so snapshots taken before the
        width fix restore onto the same shards."""
        import zlib

        for uid in (0, 1, -1, 127, 128, -128, -129, 255, 2**31, 2**63 - 1, -(2**63)):
            legacy = zlib.crc32(uid.to_bytes(8, "big", signed=True)) % 7
            assert shard_index((uid, 0.0, "", 0), 7) == legacy

    def test_shard_index_is_a_function_of_the_integer_value(self):
        """Equal uid values route identically regardless of the integer's
        concrete type (numpy scalars included)."""
        for uid in (42, 2**63, -(2**40)):
            wide = shard_index((uid, 0.0, "", 0), 5)
            assert shard_index((int(uid), 1.0, "y", 3), 5) == wide
        assert shard_index((np.int64(42), 0.0, "", 0), 5) == shard_index(
            (42, 0.0, "", 0), 5
        )

    def test_every_profile_of_a_user_shares_a_shard(self, sharded, tiny_dataset):
        by_uid = {}
        for profile in tiny_dataset.train.labeled_profiles[:30]:
            by_uid.setdefault(profile.uid, set()).add(sharded.shard_of(profile))
        assert all(len(shards) == 1 for shards in by_uid.values())

    def test_users_spread_over_shards(self, sharded, tiny_dataset):
        owners = {sharded.shard_of(p) for p in tiny_dataset.train.labeled_profiles}
        assert len(owners) > 1


class TestBitForBit:
    # The transport parity contract (engine vs. sharded vs. batcher, all
    # entry points) is pinned once by tests/cluster/test_serving_parity.py;
    # here only the sharded-specific shapes remain.

    def test_warm_cache_stays_exact(self, fitted_pipeline, tiny_dataset, test_pairs):
        single = ColocationEngine(fitted_pipeline, cache_size=1024)
        with ShardedEngine(fitted_pipeline, num_shards=4, cache_size=1024) as sharded:
            np.testing.assert_array_equal(
                sharded.predict_proba(test_pairs), single.predict_proba(test_pairs)
            )
            # Repeat from warm caches: still exact.
            np.testing.assert_array_equal(
                sharded.predict_proba(test_pairs), single.predict_proba(test_pairs)
            )

    def test_single_shard_degenerates_to_the_engine(self, fitted_pipeline, test_pairs):
        single = ColocationEngine(fitted_pipeline, cache_size=64)
        with ShardedEngine(fitted_pipeline, num_shards=1, cache_size=64) as sharded:
            np.testing.assert_array_equal(
                sharded.predict_proba(test_pairs), single.predict_proba(test_pairs)
            )

    def test_empty_inputs(self, sharded):
        assert sharded.predict_proba([]).shape == (0,)
        assert sharded.predict([]).shape == (0,)
        assert sharded.probability_matrix([]).shape == (0, 0)


class TestCaches:
    def test_warm_routes_to_owner_shards(self, fitted_pipeline, tiny_dataset):
        profiles = tiny_dataset.train.labeled_profiles[:12]
        with ShardedEngine(fitted_pipeline, num_shards=4, cache_size=256) as engine:
            featurized = engine.warm(profiles)
            unique = len({profile_key(p) for p in profiles})
            assert featurized == unique
            infos = engine.shard_cache_infos()
            assert sum(info.size for info in infos) == unique
            owners = {engine.shard_of(p) for p in profiles}
            for index, info in enumerate(infos):
                assert (info.size > 0) == (index in owners)
            # Second warm: all hits, nothing featurized.
            assert engine.warm(profiles) == 0
            merged = engine.cache_info()
            assert merged.hits == unique

    def test_clear_cache(self, fitted_pipeline, tiny_dataset):
        with ShardedEngine(fitted_pipeline, num_shards=2, cache_size=64) as engine:
            engine.warm(tiny_dataset.train.labeled_profiles[:6])
            engine.clear_cache()
            assert engine.cache_info().size == 0

    def test_snapshot_restore_round_trip(self, fitted_pipeline, tiny_dataset):
        profiles = tiny_dataset.train.labeled_profiles[:10]
        with ShardedEngine(fitted_pipeline, num_shards=4, cache_size=256) as engine:
            engine.warm(profiles)
            snapshot = engine.snapshot()
            rows = sum(len(shard_rows) for shard_rows in snapshot)
            assert rows == engine.cache_info().size
        with ShardedEngine(fitted_pipeline, num_shards=4, cache_size=256) as restarted:
            assert restarted.restore(snapshot) == rows
            assert restarted.warm(profiles) == 0  # everything already resident

    def test_restore_into_smaller_capacity_keeps_the_hottest_rows(self, fitted_pipeline):
        """Source exports interleave coldest-first, so the LRU bound evicts
        the approximately coldest rows across the whole snapshot."""

        def key(uid):
            return (uid, 1.0, "x", 0)

        def row(uid):
            return np.array([float(uid)])

        snapshot = (
            {key(0): row(0), key(2): row(2), key(4): row(4)},  # coldest -> hottest
            {key(1): row(1), key(3): row(3), key(5): row(5)},
        )
        with ShardedEngine(fitted_pipeline, num_shards=1, cache_size=2) as engine:
            assert engine.restore(snapshot) == 2
            kept = set(engine.shards[0].export_cache())
        assert kept == {key(4), key(5)}  # each export's hottest row survived

    def test_snapshot_restores_across_shard_counts(self, fitted_pipeline, tiny_dataset):
        profiles = tiny_dataset.train.labeled_profiles[:10]
        with ShardedEngine(fitted_pipeline, num_shards=4, cache_size=256) as engine:
            engine.warm(profiles)
            snapshot = engine.snapshot()
        with ShardedEngine(fitted_pipeline, num_shards=2, cache_size=256) as resized:
            kept = resized.restore(snapshot)
            assert kept == sum(len(shard_rows) for shard_rows in snapshot)
            assert resized.warm(profiles) == 0
            # Every restored row sits on the shard its key hashes to.
            for index, shard in enumerate(resized.shards):
                assert all(
                    shard_index(key, 2) == index for key in shard.export_cache()
                )


class TestConcurrency:
    def test_concurrent_callers_on_one_shard_serialise_featurization(self, tiny_dataset):
        """Gathers for one shard must not mutate its judge replica in parallel."""
        import threading
        import time

        active = {"count": 0, "max": 0, "errors": []}
        gate = threading.Lock()

        class RacyFeatureJudge:
            """Fails loudly if featurize_profiles ever overlaps with itself."""

            def predict_proba(self, pairs):
                return np.zeros(len(pairs))

            def featurize_profiles(self, profiles):
                with gate:
                    active["count"] += 1
                    active["max"] = max(active["max"], active["count"])
                time.sleep(0.002)
                with gate:
                    active["count"] -= 1
                return np.array([[float(p.uid)] for p in profiles])

            def score_feature_pairs(self, left, right):
                return np.zeros(len(left))

        with ShardedEngine(
            RacyFeatureJudge(),
            num_shards=1,  # every profile lands on the one replica
            cache_size=0,  # force featurization on every call
            registry=tiny_dataset.registry,
        ) as engine:
            profiles = tiny_dataset.train.labeled_profiles[:8]
            pairs = [Pair(left=profiles[i], right=profiles[i + 1], co_label=None) for i in range(6)]

            def worker():
                try:
                    for _ in range(5):
                        engine.predict_proba(pairs)
                except Exception as exc:  # pragma: no cover - diagnostics
                    active["errors"].append(exc)

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not active["errors"]
        assert active["max"] == 1  # the per-replica gather lock held


class TestFallbacksAndServe:
    def test_non_feature_space_judge_falls_back(self, tiny_dataset):
        with ShardedEngine(StubJudge(), num_shards=2, registry=tiny_dataset.registry) as engine:
            pairs = tiny_dataset.train.labeled_pairs[:6]
            probabilities = engine.predict_proba(pairs)
            assert probabilities.shape == (6,)
            assert engine.warm([p.left for p in pairs]) == 0
            matrix = engine.probability_matrix(tiny_dataset.train.labeled_profiles[:4])
            assert matrix.shape == (4, 4)

    def test_features_requires_feature_space(self, tiny_dataset):
        with ShardedEngine(StubJudge(), num_shards=2, registry=tiny_dataset.registry) as engine:
            with pytest.raises(ConfigurationError):
                engine.features(tiny_dataset.train.labeled_profiles[:2])

    def test_serve_reports_aggregate_cache_traffic(self, fitted_pipeline, test_pairs):
        with ShardedEngine(fitted_pipeline, num_shards=4, cache_size=512) as engine:
            first = engine.serve(JudgeRequest(pairs=tuple(test_pairs)))
            second = engine.serve(JudgeRequest(pairs=tuple(test_pairs)))
        assert first.cache_misses > 0
        assert second.cache_misses == 0
        assert second.cache_hits > 0

    def test_serve_rejects_invalid_threshold(self, sharded, test_pairs):
        with pytest.raises(ConfigurationError):
            sharded.serve(JudgeRequest(pairs=tuple(test_pairs), threshold=5.0))
