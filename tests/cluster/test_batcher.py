"""Tests for the MicroBatcher request coalescer."""

import threading
import time

import numpy as np
import pytest

from repro.api import ColocationEngine
from repro.cluster import MicroBatcher, ShardedEngine
from repro.errors import ConfigurationError, EngineOverloadError


@pytest.fixture(scope="module")
def engine(fitted_pipeline):
    return ColocationEngine(fitted_pipeline, cache_size=512)


@pytest.fixture(scope="module")
def test_pairs(tiny_dataset):
    pairs = tiny_dataset.test.labeled_pairs or tiny_dataset.train.labeled_pairs
    return pairs[:20]


class SlowJudge:
    """A controllable judge: featurization-free, scoring latency injectable."""

    def __init__(self, delay_s=0.0):
        self.delay_s = delay_s
        self.calls = []
        self.release = threading.Event()
        self.release.set()

    def predict_proba(self, pairs):
        self.release.wait()
        if self.delay_s:
            time.sleep(self.delay_s)
        self.calls.append(len(pairs))
        return np.full(len(pairs), 0.5)

    def probability_matrix(self, profiles):
        n = len(profiles)
        matrix = np.full((n, n), 0.5)
        np.fill_diagonal(matrix, 1.0)
        return matrix


class TestValidation:
    def test_rejects_bad_settings(self, engine):
        with pytest.raises(ConfigurationError):
            MicroBatcher(object())
        with pytest.raises(ConfigurationError):
            MicroBatcher(engine, max_batch=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(engine, max_delay_ms=-1)
        with pytest.raises(ConfigurationError):
            MicroBatcher(engine, max_queue=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(engine, overflow="drop")

    def test_submit_after_close_raises(self, engine, test_pairs):
        batcher = MicroBatcher(engine)
        batcher.close()
        with pytest.raises(ConfigurationError, match="closed"):
            batcher.submit_score(test_pairs)


class TestCoalescing:
    def test_score_results_match_direct_engine(self, engine, test_pairs):
        direct = engine.predict_proba(test_pairs)
        with MicroBatcher(engine, max_delay_ms=0.0) as batcher:
            coalesced = batcher.score(test_pairs)
        np.testing.assert_allclose(coalesced, direct, atol=1e-12)

    def test_concurrent_requests_coalesce_into_fewer_engine_calls(self):
        judge = SlowJudge()
        judge.release.clear()  # hold the flusher so submissions pile up
        from repro.data.records import Pair, Profile, Tweet

        def pair(i):
            left = Profile(uid=2 * i, tweet=Tweet(uid=2 * i, ts=1.0, content="x"), visit_history=())
            right = Profile(uid=2 * i + 1, tweet=Tweet(uid=2 * i + 1, ts=1.0, content="y"), visit_history=())
            return Pair(left=left, right=right, co_label=None)

        with MicroBatcher(judge, max_batch=64, max_delay_ms=0.0) as batcher:
            futures = [batcher.submit_score([pair(i)]) for i in range(12)]
            judge.release.set()
            results = [f.result(timeout=10) for f in futures]
        assert all(r.shape == (1,) for r in results)
        # 12 one-pair requests flushed in far fewer engine invocations (the
        # first may slip through alone before the pile-up).
        assert len(judge.calls) < 12
        assert sum(judge.calls) == 12

    def test_matrix_and_warm_requests_round_trip(self, engine, tiny_dataset):
        profiles = tiny_dataset.train.labeled_profiles[:6]
        direct = engine.probability_matrix(profiles)
        with MicroBatcher(engine) as batcher:
            warmed = batcher.warm(profiles)
            matrix = batcher.probability_matrix(profiles)
        assert warmed >= 0
        np.testing.assert_allclose(matrix, direct, atol=1e-12)

    def test_coalesced_warms_report_per_request_counts(self, tiny_dataset):
        """Two warms of the same profiles in one flush: the first featurizes,
        the second reports 0 — per-call accounting, not the flush total."""
        from repro.api import ColocationEngine

        release = threading.Event()

        class GatedFeatureJudge:
            def predict_proba(self, pairs):
                release.wait()
                return np.zeros(len(pairs))

            def featurize_profiles(self, profiles):
                return np.array([[float(p.uid)] for p in profiles])

            def score_feature_pairs(self, left, right):
                return np.zeros(len(left))

        from repro.data.records import Pair

        engine = ColocationEngine(GatedFeatureJudge(), cache_size=64)
        profiles = tiny_dataset.train.labeled_profiles[:5]
        blocker = [Pair(left=profiles[0], right=profiles[1], co_label=None)]
        with MicroBatcher(engine, max_delay_ms=0.0) as batcher:
            holding = batcher.submit_score(blocker)  # occupies the flusher
            first = batcher.submit_warm(profiles)
            second = batcher.submit_warm(profiles)  # same flush as `first`
            release.set()
            holding.result(timeout=10)
            assert first.result(timeout=10) > 0
            assert second.result(timeout=10) == 0

    def test_empty_submissions_resolve_immediately(self, engine):
        with MicroBatcher(engine) as batcher:
            assert batcher.score([]).shape == (0,)
            assert batcher.probability_matrix([]).shape == (0, 0)
            assert batcher.warm([]) == 0

    def test_works_over_a_sharded_engine(self, fitted_pipeline, test_pairs):
        single = ColocationEngine(fitted_pipeline, cache_size=512)
        direct = single.predict_proba(test_pairs)
        with ShardedEngine(fitted_pipeline, num_shards=2, cache_size=512) as sharded:
            with MicroBatcher(sharded) as batcher:
                np.testing.assert_allclose(batcher.score(test_pairs), direct, atol=1e-12)


class TestBackpressure:
    def test_reject_policy_raises_engine_overload(self):
        judge = SlowJudge()
        judge.release.clear()
        from repro.data.records import Pair, Profile, Tweet

        left = Profile(uid=1, tweet=Tweet(uid=1, ts=1.0, content="x"), visit_history=())
        right = Profile(uid=2, tweet=Tweet(uid=2, ts=1.0, content="y"), visit_history=())
        pairs = [Pair(left=left, right=right, co_label=None)]
        batcher = MicroBatcher(judge, max_queue=2, overflow="reject", max_delay_ms=50.0)
        try:
            accepted = []
            with pytest.raises(EngineOverloadError):
                for _ in range(50):
                    accepted.append(batcher.submit_score(pairs))
            assert batcher.metrics.snapshot().rejections == 1
        finally:
            judge.release.set()
            batcher.close()

    def test_block_policy_waits_for_space(self):
        judge = SlowJudge(delay_s=0.01)
        from repro.data.records import Pair, Profile, Tweet

        left = Profile(uid=1, tweet=Tweet(uid=1, ts=1.0, content="x"), visit_history=())
        right = Profile(uid=2, tweet=Tweet(uid=2, ts=1.0, content="y"), visit_history=())
        pairs = [Pair(left=left, right=right, co_label=None)]
        with MicroBatcher(judge, max_queue=2, overflow="block", max_batch=2) as batcher:
            futures = [batcher.submit_score(pairs) for _ in range(20)]
            results = [f.result(timeout=30) for f in futures]
        assert len(results) == 20
        assert batcher.metrics.snapshot().rejections == 0

    def test_close_without_drain_fails_pending(self):
        judge = SlowJudge()
        judge.release.clear()
        from repro.data.records import Pair, Profile, Tweet

        left = Profile(uid=1, tweet=Tweet(uid=1, ts=1.0, content="x"), visit_history=())
        right = Profile(uid=2, tweet=Tweet(uid=2, ts=1.0, content="y"), visit_history=())
        pairs = [Pair(left=left, right=right, co_label=None)]
        batcher = MicroBatcher(judge, max_delay_ms=1000.0, max_batch=1024)
        futures = [batcher.submit_score(pairs) for _ in range(5)]
        batcher.close(drain=False)
        judge.release.set()
        failed = 0
        for future in futures:
            try:
                future.result(timeout=10)
            except EngineOverloadError:
                failed += 1
        # Whatever had not yet been picked up by the flusher fails loudly.
        assert failed >= 1

    def test_flush_error_propagates_to_every_caller(self, tiny_dataset):
        class ExplodingJudge:
            def predict_proba(self, pairs):
                raise RuntimeError("boom")

        pairs = tiny_dataset.train.labeled_pairs[:2]
        with MicroBatcher(ExplodingJudge(), max_delay_ms=0.0) as batcher:
            future = batcher.submit_score(pairs)
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=10)


class TestMetricsIntegration:
    def test_flushes_and_latency_recorded(self, engine, test_pairs):
        with MicroBatcher(engine) as batcher:
            batcher.score(test_pairs)
        # Snapshot after close: flush metrics are recorded after the futures
        # resolve, so only a joined flusher guarantees a complete count.
        snapshot = batcher.metrics.snapshot()
        assert snapshot.requests == 1
        assert snapshot.pairs_scored == len(test_pairs)
        assert snapshot.flushes >= 1
        assert snapshot.latency_p50_ms > 0.0
        assert snapshot.cache is not None
