"""Tests for the MicroBatcher request coalescer."""

import threading
import time

import numpy as np
import pytest

from repro.api import ColocationEngine, JudgeRequest
from repro.cluster import MicroBatcher, ShardedEngine
from repro.errors import ConfigurationError, EngineOverloadError


def _stub_pair(i=0):
    from repro.data.records import Pair, Profile, Tweet

    left = Profile(uid=2 * i, tweet=Tweet(uid=2 * i, ts=1.0, content="x"), visit_history=())
    right = Profile(
        uid=2 * i + 1, tweet=Tweet(uid=2 * i + 1, ts=1.0, content="y"), visit_history=()
    )
    return Pair(left=left, right=right, co_label=None)


@pytest.fixture(scope="module")
def engine(fitted_pipeline):
    return ColocationEngine(fitted_pipeline, cache_size=512)


@pytest.fixture(scope="module")
def test_pairs(tiny_dataset):
    pairs = tiny_dataset.test.labeled_pairs or tiny_dataset.train.labeled_pairs
    return pairs[:20]


class SlowJudge:
    """A controllable judge: featurization-free, scoring latency injectable."""

    def __init__(self, delay_s=0.0):
        self.delay_s = delay_s
        self.calls = []
        self.release = threading.Event()
        self.release.set()

    def predict_proba(self, pairs):
        self.release.wait()
        if self.delay_s:
            time.sleep(self.delay_s)
        self.calls.append(len(pairs))
        return np.full(len(pairs), 0.5)

    def probability_matrix(self, profiles):
        n = len(profiles)
        matrix = np.full((n, n), 0.5)
        np.fill_diagonal(matrix, 1.0)
        return matrix


class TestValidation:
    def test_rejects_bad_settings(self, engine):
        with pytest.raises(ConfigurationError):
            MicroBatcher(object())
        with pytest.raises(ConfigurationError):
            MicroBatcher(engine, max_batch=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(engine, max_delay_ms=-1)
        with pytest.raises(ConfigurationError):
            MicroBatcher(engine, max_queue=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(engine, overflow="drop")

    def test_submit_after_close_raises(self, engine, test_pairs):
        batcher = MicroBatcher(engine)
        batcher.close()
        with pytest.raises(ConfigurationError, match="closed"):
            batcher.submit_score(test_pairs)


class TestCoalescing:
    def test_score_results_match_direct_engine(self, engine, test_pairs):
        direct = engine.predict_proba(test_pairs)
        with MicroBatcher(engine, max_delay_ms=0.0) as batcher:
            coalesced = batcher.score(test_pairs)
        np.testing.assert_allclose(coalesced, direct, atol=1e-12)

    def test_concurrent_requests_coalesce_into_fewer_engine_calls(self):
        judge = SlowJudge()
        judge.release.clear()  # hold the flusher so submissions pile up
        from repro.data.records import Pair, Profile, Tweet

        def pair(i):
            left = Profile(uid=2 * i, tweet=Tweet(uid=2 * i, ts=1.0, content="x"), visit_history=())
            right = Profile(uid=2 * i + 1, tweet=Tweet(uid=2 * i + 1, ts=1.0, content="y"), visit_history=())
            return Pair(left=left, right=right, co_label=None)

        with MicroBatcher(judge, max_batch=64, max_delay_ms=0.0) as batcher:
            futures = [batcher.submit_score([pair(i)]) for i in range(12)]
            judge.release.set()
            results = [f.result(timeout=10) for f in futures]
        assert all(r.shape == (1,) for r in results)
        # 12 one-pair requests flushed in far fewer engine invocations (the
        # first may slip through alone before the pile-up).
        assert len(judge.calls) < 12
        assert sum(judge.calls) == 12

    def test_matrix_and_warm_requests_round_trip(self, engine, tiny_dataset):
        profiles = tiny_dataset.train.labeled_profiles[:6]
        direct = engine.probability_matrix(profiles)
        with MicroBatcher(engine) as batcher:
            warmed = batcher.warm(profiles)
            matrix = batcher.probability_matrix(profiles)
        assert warmed >= 0
        np.testing.assert_allclose(matrix, direct, atol=1e-12)

    def test_coalesced_warms_report_per_request_counts(self, tiny_dataset):
        """Two warms of the same profiles in one flush: the first featurizes,
        the second reports 0 — per-call accounting, not the flush total."""
        from repro.api import ColocationEngine

        release = threading.Event()

        class GatedFeatureJudge:
            def predict_proba(self, pairs):
                release.wait()
                return np.zeros(len(pairs))

            def featurize_profiles(self, profiles):
                return np.array([[float(p.uid)] for p in profiles])

            def score_feature_pairs(self, left, right):
                return np.zeros(len(left))

        from repro.data.records import Pair

        engine = ColocationEngine(GatedFeatureJudge(), cache_size=64)
        profiles = tiny_dataset.train.labeled_profiles[:5]
        blocker = [Pair(left=profiles[0], right=profiles[1], co_label=None)]
        with MicroBatcher(engine, max_delay_ms=0.0) as batcher:
            holding = batcher.submit_score(blocker)  # occupies the flusher
            first = batcher.submit_warm(profiles)
            second = batcher.submit_warm(profiles)  # same flush as `first`
            release.set()
            holding.result(timeout=10)
            assert first.result(timeout=10) > 0
            assert second.result(timeout=10) == 0

    def test_empty_submissions_resolve_immediately(self, engine):
        with MicroBatcher(engine) as batcher:
            assert batcher.score([]).shape == (0,)
            assert batcher.probability_matrix([]).shape == (0, 0)
            assert batcher.warm([]) == 0

    def test_works_over_a_sharded_engine(self, fitted_pipeline, test_pairs):
        single = ColocationEngine(fitted_pipeline, cache_size=512)
        direct = single.predict_proba(test_pairs)
        with ShardedEngine(fitted_pipeline, num_shards=2, cache_size=512) as sharded:
            with MicroBatcher(sharded) as batcher:
                np.testing.assert_allclose(batcher.score(test_pairs), direct, atol=1e-12)


class TestBackpressure:
    def test_reject_policy_raises_engine_overload(self):
        judge = SlowJudge()
        judge.release.clear()
        from repro.data.records import Pair, Profile, Tweet

        left = Profile(uid=1, tweet=Tweet(uid=1, ts=1.0, content="x"), visit_history=())
        right = Profile(uid=2, tweet=Tweet(uid=2, ts=1.0, content="y"), visit_history=())
        pairs = [Pair(left=left, right=right, co_label=None)]
        batcher = MicroBatcher(judge, max_queue=2, overflow="reject", max_delay_ms=50.0)
        try:
            accepted = []
            with pytest.raises(EngineOverloadError):
                for _ in range(50):
                    accepted.append(batcher.submit_score(pairs))
            assert batcher.metrics.snapshot().rejections == 1
        finally:
            judge.release.set()
            batcher.close()

    def test_block_policy_waits_for_space(self):
        judge = SlowJudge(delay_s=0.01)
        from repro.data.records import Pair, Profile, Tweet

        left = Profile(uid=1, tweet=Tweet(uid=1, ts=1.0, content="x"), visit_history=())
        right = Profile(uid=2, tweet=Tweet(uid=2, ts=1.0, content="y"), visit_history=())
        pairs = [Pair(left=left, right=right, co_label=None)]
        with MicroBatcher(judge, max_queue=2, overflow="block", max_batch=2) as batcher:
            futures = [batcher.submit_score(pairs) for _ in range(20)]
            results = [f.result(timeout=30) for f in futures]
        assert len(results) == 20
        assert batcher.metrics.snapshot().rejections == 0

    def test_close_without_drain_fails_pending(self):
        judge = SlowJudge()
        judge.release.clear()
        from repro.data.records import Pair, Profile, Tweet

        left = Profile(uid=1, tweet=Tweet(uid=1, ts=1.0, content="x"), visit_history=())
        right = Profile(uid=2, tweet=Tweet(uid=2, ts=1.0, content="y"), visit_history=())
        pairs = [Pair(left=left, right=right, co_label=None)]
        batcher = MicroBatcher(judge, max_delay_ms=1000.0, max_batch=1024)
        futures = [batcher.submit_score(pairs) for _ in range(5)]
        batcher.close(drain=False)
        judge.release.set()
        failed = 0
        for future in futures:
            try:
                future.result(timeout=10)
            except EngineOverloadError:
                failed += 1
        # Whatever had not yet been picked up by the flusher fails loudly.
        assert failed >= 1

    def test_flush_error_propagates_to_every_caller(self, tiny_dataset):
        class ExplodingJudge:
            def predict_proba(self, pairs):
                raise RuntimeError("boom")

        pairs = tiny_dataset.train.labeled_pairs[:2]
        with MicroBatcher(ExplodingJudge(), max_delay_ms=0.0) as batcher:
            future = batcher.submit_score(pairs)
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=10)


class TestMetricsIntegration:
    def test_flushes_and_latency_recorded(self, engine, test_pairs):
        with MicroBatcher(engine) as batcher:
            batcher.score(test_pairs)
        # Snapshot after close: flush metrics are recorded after the futures
        # resolve, so only a joined flusher guarantees a complete count.
        snapshot = batcher.metrics.snapshot()
        assert snapshot.requests == 1
        assert snapshot.pairs_scored == len(test_pairs)
        assert snapshot.flushes >= 1
        assert snapshot.latency_p50_ms > 0.0
        assert snapshot.cache is not None

    def test_legacy_metrics_signature_still_receives_flushes(self, engine, test_pairs):
        """A user metrics object written against the pre-serve observe_flush
        signature (no num_serves) keeps getting its flush telemetry."""

        class LegacyMetrics:
            def __init__(self):
                self.flushes = 0

            def observe_flush(self, num_requests, num_pairs, queue_depth, elapsed_ms):
                self.flushes += 1

            def observe_latency(self, latency_ms):
                pass

            def observe_rejection(self):
                pass

        metrics = LegacyMetrics()
        with MicroBatcher(engine, metrics=metrics) as batcher:
            batcher.score(test_pairs)
            batcher.serve(JudgeRequest(pairs=tuple(test_pairs)))
        assert metrics.flushes >= 2
        assert batcher.metrics_errors == 0

    def test_serve_requests_are_counted(self, engine, test_pairs):
        with MicroBatcher(engine) as batcher:
            batcher.serve(JudgeRequest(pairs=tuple(test_pairs)))
            batcher.score(test_pairs)
        snapshot = batcher.metrics.snapshot()
        assert snapshot.serve_requests == 1
        assert snapshot.requests == 2
        # Serve pairs count as scored pairs: they went through the scorer.
        assert snapshot.pairs_scored == 2 * len(test_pairs)


class TestServeKind:
    def test_serve_matches_direct_engine(self, engine, test_pairs):
        request = JudgeRequest(pairs=tuple(test_pairs), threshold=0.4)
        direct = engine.serve(request)
        with MicroBatcher(engine, max_delay_ms=0.0) as batcher:
            response = batcher.serve(request)
        np.testing.assert_allclose(
            np.asarray(response.probabilities), np.asarray(direct.probabilities), atol=1e-12
        )
        assert response.decisions == direct.decisions
        assert response.threshold == direct.threshold

    def test_serve_requests_coalesce_into_one_serve_batch_call(
        self, fitted_pipeline, test_pairs
    ):
        class CountingEngine:
            """Engine proxy that gates scoring and counts serve_batch calls."""

            def __init__(self, inner):
                self.inner = inner
                self.serve_batch_sizes = []
                self.release = threading.Event()

            def predict_proba(self, pairs):
                self.release.wait()
                return self.inner.predict_proba(pairs)

            def serve(self, request):
                return self.inner.serve(request)

            def serve_batch(self, requests):
                requests = list(requests)
                self.serve_batch_sizes.append(len(requests))
                return self.inner.serve_batch(requests)

            def cache_info(self):
                return self.inner.cache_info()

        counting = CountingEngine(ColocationEngine(fitted_pipeline, cache_size=512))
        request = JudgeRequest(pairs=tuple(test_pairs[:3]))
        with MicroBatcher(counting, max_delay_ms=0.0) as batcher:
            holding = batcher.submit_score([test_pairs[0]])  # occupies the flusher
            futures = [batcher.submit_serve(request) for _ in range(6)]
            counting.release.set()
            holding.result(timeout=10)
            responses = [future.result(timeout=10) for future in futures]
        assert all(len(response) == len(request.pairs) for response in responses)
        # The six concurrent serves flushed in far fewer serve_batch calls.
        assert sum(counting.serve_batch_sizes) == 6
        assert max(counting.serve_batch_sizes) > 1

    def test_empty_serve_resolves_immediately(self, engine):
        with MicroBatcher(engine) as batcher:
            response = batcher.serve(JudgeRequest(pairs=()))
        assert response.probabilities == ()
        assert response.decisions == ()
        assert response.threshold == engine.threshold

    def test_submit_serve_requires_a_serving_engine(self):
        with MicroBatcher(SlowJudge()) as batcher:
            with pytest.raises(ConfigurationError, match="serve"):
                batcher.submit_serve(JudgeRequest(pairs=(_stub_pair(),)))

    def test_submit_serve_rejects_invalid_threshold(self, engine, test_pairs):
        with MicroBatcher(engine) as batcher:
            with pytest.raises(ConfigurationError, match="threshold"):
                batcher.submit_serve(JudgeRequest(pairs=tuple(test_pairs), threshold=7.0))

    def test_batcher_speaks_the_engine_surface(self, engine, test_pairs):
        """Services resolve a batcher like an engine: the pass-throughs and
        predict_proba alias must behave."""
        with MicroBatcher(engine) as batcher:
            assert batcher.judge is engine.judge
            assert batcher.registry is engine.registry
            assert batcher.threshold == engine.threshold
            assert batcher.cache_info().maxsize == engine.cache_info().maxsize
            np.testing.assert_allclose(
                batcher.predict_proba(test_pairs), engine.predict_proba(test_pairs), atol=1e-12
            )


class BrokenMetrics:
    """A user-supplied metrics object whose every hook raises."""

    def __init__(self):
        self.flush_calls = 0

    def observe_flush(self, **kwargs):
        self.flush_calls += 1
        raise RuntimeError("broken metrics")

    def observe_latency(self, latency_ms):
        raise RuntimeError("broken metrics")

    def observe_rejection(self):
        raise RuntimeError("broken metrics")


class FatalMetrics:
    """Raises a non-Exception BaseException on the first flush — the only
    way left to kill the flusher thread."""

    def __init__(self):
        self.fired = False

    def observe_flush(self, **kwargs):
        if not self.fired:
            self.fired = True
            raise KeyboardInterrupt("fatal in metrics")

    def observe_latency(self, latency_ms):
        pass

    def observe_rejection(self):
        pass


class TestFlusherResilience:
    def test_broken_metrics_do_not_kill_the_flusher(self, engine, test_pairs):
        """Regression: an exception escaping observe_flush/observe_latency in
        the flush's finally block killed the repro-microbatcher thread
        silently, hanging every queued and future submission."""
        metrics = BrokenMetrics()
        with MicroBatcher(engine, metrics=metrics) as batcher:
            first = batcher.score(test_pairs)
            second = batcher.score(test_pairs)  # would hang forever before the fix
        assert first.shape == second.shape == (len(test_pairs),)
        assert metrics.flush_calls >= 2
        assert batcher.metrics_errors > 0

    def test_broken_rejection_metrics_still_raise_overload(self):
        judge = SlowJudge()
        judge.release.clear()
        pairs = [_stub_pair()]
        batcher = MicroBatcher(
            judge, max_queue=1, overflow="reject", max_delay_ms=50.0, metrics=BrokenMetrics()
        )
        try:
            with pytest.raises(EngineOverloadError):
                for _ in range(50):
                    batcher.submit_score(pairs)
        finally:
            judge.release.set()
            batcher.close()

    def test_dead_flusher_fails_pending_and_subsequent_submits(self):
        """If the flusher does die, queued futures fail loudly and new
        submissions raise instead of waiting on a flush that never comes."""
        judge = SlowJudge()
        judge.release.clear()
        pairs = [_stub_pair()]
        batcher = MicroBatcher(
            judge, max_delay_ms=0.0, max_batch=1, metrics=FatalMetrics()
        )
        first = batcher.submit_score(pairs)  # the flusher takes it and blocks
        deadline = time.time() + 5.0
        while batcher.queue_depth and time.time() < deadline:
            time.sleep(0.001)
        second = batcher.submit_score(pairs)  # queued behind the first
        judge.release.set()  # first flush completes; its metrics kill the flusher
        batcher._flusher.join(timeout=10)
        assert not batcher._flusher.is_alive()
        assert first.result(timeout=10).shape == (1,)
        with pytest.raises(EngineOverloadError, match="died"):
            second.result(timeout=10)
        with pytest.raises(EngineOverloadError, match="died"):
            batcher.submit_score(pairs)
        batcher.close()  # idempotent on a dead batcher


class TestLifecycleEdges:
    def test_close_without_drain_unblocks_blocked_submitters(self):
        """A submitter stuck in overflow="block" must raise on close, not
        wait forever for queue space that will never free."""
        judge = SlowJudge()
        judge.release.clear()
        pairs = [_stub_pair()]
        batcher = MicroBatcher(judge, max_queue=1, overflow="block", max_delay_ms=0.0)
        batcher.submit_score(pairs)  # the flusher takes it and blocks
        deadline = time.time() + 5.0
        while batcher.queue_depth and time.time() < deadline:
            time.sleep(0.001)
        second = batcher.submit_score(pairs)  # fills the queue
        outcome = {}

        def blocked_submitter():
            try:
                outcome["future"] = batcher.submit_score(pairs)
            except Exception as exc:
                outcome["error"] = exc

        submitter = threading.Thread(target=blocked_submitter)
        submitter.start()
        time.sleep(0.05)  # let it block in the overflow wait
        closer = threading.Thread(target=lambda: batcher.close(drain=False))
        closer.start()
        submitter.join(timeout=10)
        assert not submitter.is_alive()
        judge.release.set()  # free the flusher so close() can join it
        closer.join(timeout=10)
        assert not closer.is_alive()
        if "error" in outcome:
            assert isinstance(outcome["error"], (ConfigurationError, EngineOverloadError))
        else:  # it slipped in before close; close then failed its future
            with pytest.raises(EngineOverloadError):
                outcome["future"].result(timeout=10)
        with pytest.raises(EngineOverloadError):
            second.result(timeout=10)

    def test_engine_error_fails_every_future_in_a_mixed_kind_flush(self, engine):
        """One exploding flush must resolve score, matrix, warm AND serve
        futures — a survivor would hang its caller forever."""

        class GatedExplodingEngine:
            def __init__(self):
                self.release = threading.Event()

            def predict_proba(self, pairs):
                self.release.wait()
                raise RuntimeError("boom")

            def probability_matrix(self, profiles):
                raise RuntimeError("boom")

            def warm(self, profiles):
                raise RuntimeError("boom")

            def serve(self, request):
                raise RuntimeError("boom")

            def serve_batch(self, requests):
                raise RuntimeError("boom")

        exploding = GatedExplodingEngine()
        profiles = [_stub_pair(i).left for i in range(3)]
        with MicroBatcher(exploding, max_delay_ms=0.0) as batcher:
            blocker = batcher.submit_score([_stub_pair()])  # occupies the flusher
            futures = [
                batcher.submit_score([_stub_pair(1)]),
                batcher.submit_probability_matrix(profiles),
                batcher.submit_warm(profiles),
                batcher.submit_serve(JudgeRequest(pairs=(_stub_pair(2),))),
            ]
            exploding.release.set()
            for future in [blocker, *futures]:
                with pytest.raises(RuntimeError, match="boom"):
                    future.result(timeout=10)

    def test_zero_weight_submissions_racing_close(self, engine):
        """Empty submissions resolve immediately — even racing or after a
        close — because there is nothing to flush."""
        batcher = MicroBatcher(engine)
        stop = threading.Event()
        outcomes = {"results": 0, "errors": []}

        def spam():
            while not stop.is_set():
                try:
                    batcher.submit_score([]).result(timeout=1)
                    outcomes["results"] += 1
                except Exception as exc:  # pragma: no cover - diagnostics
                    outcomes["errors"].append(exc)

        spammer = threading.Thread(target=spam)
        spammer.start()
        time.sleep(0.02)
        batcher.close()
        stop.set()
        spammer.join(timeout=10)
        assert not outcomes["errors"]
        assert outcomes["results"] > 0
        # Still immediate after close, for every zero-weight kind.
        assert batcher.submit_score([]).result(timeout=1).shape == (0,)
        assert batcher.probability_matrix([]).shape == (0, 0)
        assert batcher.warm([]) == 0
        assert batcher.serve(JudgeRequest(pairs=())).probabilities == ()


class TestInjectedClock:
    """``time_fn=`` drives all of the batcher's timing — no sleeps in tests.

    A frozen clock makes every measured duration exactly 0.0, proving the
    batcher times queue deadlines, request latency and the ``queue_wait``
    trace stage on the injected clock rather than the wall clock.  (Frozen
    clocks require ``max_delay_ms=0``: a positive delay's deadline would
    never expire on a clock that does not move.)
    """

    def test_frozen_clock_zeroes_latency_accounting(self, engine, test_pairs):
        with MicroBatcher(engine, max_delay_ms=0.0, time_fn=lambda: 123.0) as batcher:
            batcher.score(test_pairs)
        snapshot = batcher.metrics.snapshot()
        assert snapshot.requests == 1
        assert snapshot.latency_p50_ms == 0.0
        assert snapshot.latency_p99_ms == 0.0

    def test_frozen_clock_zeroes_the_queue_wait_stage(self, engine, test_pairs):
        from repro.obs import STAGE_QUEUE_WAIT, tracing

        with tracing():
            with MicroBatcher(engine, max_delay_ms=0.0, time_fn=lambda: 50.0) as batcher:
                response = batcher.serve(JudgeRequest(pairs=tuple(test_pairs)))
        # queue_wait is prepended to the trace the core built for the request.
        assert response.trace["stages"][0] == [STAGE_QUEUE_WAIT, 0.0]

    def test_stepped_clock_measures_exact_queue_wait(self, engine, test_pairs):
        from repro.obs import STAGE_QUEUE_WAIT, tracing

        # One tick per _time() call: every measured duration is a whole
        # number of seconds on this clock, so a wall-clock leak anywhere in
        # the path would show up as a fractional millisecond count.
        ticks = iter(range(100))
        with tracing():
            with MicroBatcher(
                engine, max_delay_ms=0.0, time_fn=lambda: float(next(ticks))
            ) as batcher:
                response = batcher.serve(JudgeRequest(pairs=tuple(test_pairs)))
        stages = dict(
            (stage, ms) for stage, ms in response.trace["stages"] if stage == STAGE_QUEUE_WAIT
        )
        assert stages[STAGE_QUEUE_WAIT] > 0.0
        assert stages[STAGE_QUEUE_WAIT] % 1000.0 == 0.0
