"""Tests for the skewed serving-load generator."""

import pytest

from repro.cluster.loadgen import LoadConfig, _zipf_probabilities, generate_requests
from repro.errors import ConfigurationError


class TestGenerateRequests:
    def test_shape_and_determinism(self, small_registry):
        config = LoadConfig(num_users=8, num_requests=12, pairs_per_request=3, seed=9)
        corpus = ["coffee by the park", "museum day"]
        requests = generate_requests(small_registry, corpus, config)
        assert len(requests) == 12
        assert all(len(pairs) == 3 for pairs in requests)
        for pairs in requests:
            # One fresh query profile on the left, never self-paired.
            assert len({pair.left.uid for pair in pairs}) == 1
            assert all(pair.left.uid != pair.right.uid for pair in pairs)
        again = generate_requests(small_registry, corpus, config)
        assert [
            [(p.left.uid, p.right.uid, p.left.ts) for p in pairs] for pairs in requests
        ] == [[(p.left.uid, p.right.uid, p.left.ts) for p in pairs] for pairs in again]

    def test_rejects_degenerate_user_mix(self, small_registry):
        config = LoadConfig(num_users=1, num_requests=2, pairs_per_request=1)
        with pytest.raises(ConfigurationError, match="num_users"):
            generate_requests(small_registry, ["hi"], config)

    def test_zipf_probabilities_are_skewed_and_normalised(self):
        probabilities = _zipf_probabilities(10, s=1.1)
        assert probabilities[0] > probabilities[-1]
        assert abs(probabilities.sum() - 1.0) < 1e-12
