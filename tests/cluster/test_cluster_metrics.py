"""Tests for ClusterMetrics and the EngineCacheInfo merge helper."""

import numpy as np

from repro.api import ColocationEngine, EngineCacheInfo
from repro.cluster import ClusterMetrics, ShardedEngine


class TestEngineCacheInfoMerge:
    def test_merge_sums_counters_and_derives_hit_rate(self):
        merged = EngineCacheInfo.merge(
            [
                EngineCacheInfo(hits=3, misses=1, evictions=2, size=5, maxsize=8, featurized=4),
                EngineCacheInfo(hits=1, misses=3, evictions=0, size=2, maxsize=8, featurized=3),
            ]
        )
        assert merged == EngineCacheInfo(
            hits=4, misses=4, evictions=2, size=7, maxsize=16, featurized=7
        )
        assert merged.hit_rate == 0.5

    def test_merge_of_nothing_is_the_zero_snapshot(self):
        merged = EngineCacheInfo.merge([])
        assert merged == EngineCacheInfo(
            hits=0, misses=0, evictions=0, size=0, maxsize=0, featurized=0
        )
        assert merged.hit_rate == 0.0

    def test_merge_with_zero_lookups_keeps_zero_hit_rate(self):
        infos = [
            EngineCacheInfo(hits=0, misses=0, evictions=0, size=0, maxsize=4, featurized=0)
        ] * 3
        assert EngineCacheInfo.merge(infos).hit_rate == 0.0


class TestClusterMetrics:
    def test_empty_snapshot(self):
        snapshot = ClusterMetrics().snapshot()
        assert snapshot.requests == 0
        assert snapshot.flushes == 0
        assert snapshot.mean_flush_requests == 0.0
        assert snapshot.latency_p50_ms == 0.0
        assert snapshot.cache is None
        assert snapshot.shard_caches == ()
        assert "requests=0" in snapshot.format()

    def test_counters_accumulate(self):
        metrics = ClusterMetrics()
        metrics.observe_flush(num_requests=3, num_pairs=12, queue_depth=5, elapsed_ms=1.0)
        metrics.observe_flush(num_requests=1, num_pairs=4, queue_depth=0, elapsed_ms=1.0)
        for latency in (1.0, 2.0, 3.0, 4.0):
            metrics.observe_latency(latency)
        metrics.observe_rejection()
        snapshot = metrics.snapshot()
        assert snapshot.requests == 4
        assert snapshot.pairs_scored == 16
        assert snapshot.flushes == 2
        assert snapshot.rejections == 1
        assert snapshot.queue_depth == 0
        assert snapshot.mean_flush_requests == 2.0
        assert snapshot.latency_p50_ms == 2.5
        assert snapshot.latency_p99_ms <= 4.0

    def test_latency_memory_is_bounded_by_histogram_buckets(self):
        # The old sliding window is gone: percentiles come from a fixed-bucket
        # histogram whose memory never grows with request count, exact to
        # bucket resolution (the bucket bound, clamped to the observed range).
        metrics = ClusterMetrics(latency_window=4)  # accepted but ignored
        for latency in range(100):
            metrics.observe_latency(float(latency))
        snapshot = metrics.snapshot()
        assert snapshot.latency_p50_ms == 50.0  # rank 50 lands in the le=50 bucket
        assert snapshot.latency_p99_ms == 99.0  # le=100 bound clamped to max

    def test_heartbeat_observations_surface_in_snapshot(self):
        clock = iter([10.0, 20.0, 30.0])
        metrics = ClusterMetrics(time_fn=lambda: next(clock))
        metrics.observe_heartbeat(0, True)
        metrics.observe_heartbeat(1, True)
        metrics.observe_heartbeat(1, False)  # stall: unhealthy, last-seen kept
        snapshot = metrics.snapshot()
        assert dict(snapshot.worker_health) == {0: True, 1: False}
        assert dict(snapshot.worker_last_seen) == {0: 10.0, 1: 20.0}
        assert "heartbeat: up=1/2" in snapshot.format()

    def test_to_text_exposes_registry_metrics(self):
        metrics = ClusterMetrics()
        metrics.observe_flush(num_requests=2, num_pairs=8, queue_depth=1, elapsed_ms=1.0)
        metrics.observe_latency(3.0)
        metrics.observe_heartbeat(0, True)
        text = metrics.to_text()
        assert "# TYPE repro_cluster_requests_total counter" in text
        assert "repro_cluster_requests_total 2" in text
        assert 'repro_worker_up{worker="0"} 1' in text
        assert "repro_request_latency_ms_count 1" in text

    def test_snapshot_pulls_single_engine_cache(self, fitted_pipeline, tiny_dataset):
        engine = ColocationEngine(fitted_pipeline, cache_size=64)
        engine.warm(tiny_dataset.train.labeled_profiles[:4])
        snapshot = ClusterMetrics(engine).snapshot()
        assert snapshot.cache is not None
        assert snapshot.cache.size > 0
        assert snapshot.shard_caches == ()

    def test_snapshot_pulls_per_shard_caches(self, fitted_pipeline, tiny_dataset):
        with ShardedEngine(fitted_pipeline, num_shards=3, cache_size=96) as engine:
            engine.warm(tiny_dataset.train.labeled_profiles[:6])
            snapshot = ClusterMetrics(engine).snapshot()
        assert len(snapshot.shard_caches) == 3
        assert snapshot.cache == EngineCacheInfo.merge(snapshot.shard_caches)
        assert "shard 0" in snapshot.format()
