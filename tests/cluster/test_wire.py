"""The wire protocol: roundtrips, malformed-frame rejection, typed errors.

The contract under test: every receive path fails *promptly and typed* —
truncated frames, oversized length prefixes, unknown protocol versions and
mid-frame disconnects raise :class:`repro.errors.WireProtocolError` (never a
hang, never a partial frame passed off as a whole one), while a clean EOF at
a frame boundary is ``None``.  A fuzz loop hammers the payload decoder with
mutated bytes: any outcome other than a successful decode or a
``WireProtocolError`` is a bug.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.cluster import wire
from repro.errors import (
    ConfigurationError,
    EngineOverloadError,
    RemoteJudgeError,
    ReproError,
    WireProtocolError,
)

# ------------------------------------------------------------------ roundtrips


def test_payload_roundtrip_body_only():
    body = {"op": "gather", "nested": [1, 2.5, "x", None, True]}
    decoded, arrays = wire.decode_payload(wire.encode_payload(body))
    assert decoded == body
    assert arrays == []


@pytest.mark.parametrize(
    "array",
    [
        np.arange(12, dtype=np.float64).reshape(3, 4),
        np.arange(5, dtype=np.int32),
        np.array([], dtype=np.float32).reshape(0, 7),
        np.array(3.5),  # zero-dimensional
        np.array([True, False, True]),
    ],
)
def test_payload_roundtrip_arrays(array):
    body, arrays = wire.decode_payload(wire.encode_payload({"n": 1}, [array]))
    assert body == {"n": 1}
    (decoded,) = arrays
    assert decoded.dtype == array.dtype
    assert decoded.shape == array.shape
    assert np.array_equal(decoded, array)


def test_payload_roundtrip_multiple_arrays_preserves_order():
    first = np.arange(6, dtype=np.float64).reshape(2, 3)
    second = np.arange(4, dtype=np.int64)
    _, arrays = wire.decode_payload(wire.encode_payload(None, [first, second]))
    assert np.array_equal(arrays[0], first)
    assert np.array_equal(arrays[1], second)


def test_decoded_arrays_are_writable_copies():
    payload = wire.encode_payload(None, [np.arange(4, dtype=np.float64)])
    _, (array,) = wire.decode_payload(payload)
    array[0] = 99.0  # must not raise: not a read-only view into the payload
    assert array[0] == 99.0


def test_non_contiguous_array_roundtrips():
    array = np.arange(24, dtype=np.float64).reshape(4, 6)[:, ::2]
    _, (decoded,) = wire.decode_payload(wire.encode_payload(None, [array]))
    assert np.array_equal(decoded, array)


def test_object_dtype_refused_on_encode():
    with pytest.raises(WireProtocolError):
        wire.encode_payload(None, [np.array([object()], dtype=object)])


def test_string_dtype_refused_on_encode():
    with pytest.raises(WireProtocolError):
        wire.encode_payload(None, [np.array(["a", "b"])])


# ------------------------------------------------------------- malformed frames


def test_truncated_json_header_raises():
    payload = wire.encode_payload({"op": "x"})
    with pytest.raises(WireProtocolError):
        wire.decode_payload(payload[: len(payload) // 2])


def test_truncated_array_data_raises():
    payload = wire.encode_payload(None, [np.arange(100, dtype=np.float64)])
    with pytest.raises(WireProtocolError):
        wire.decode_payload(payload[:-8])


def test_trailing_bytes_raise():
    with pytest.raises(WireProtocolError):
        wire.decode_payload(wire.encode_payload({"op": "x"}) + b"\x00")


def test_bad_json_raises():
    header = b"not json at all"
    with pytest.raises(WireProtocolError):
        wire.decode_payload(struct.pack(">I", len(header)) + header)


def test_bad_dtype_descriptor_raises():
    import json

    header = json.dumps(
        {"body": None, "arrays": [{"dtype": "V8", "shape": [1]}]}
    ).encode()
    payload = struct.pack(">I", len(header)) + header + b"\x00" * 8
    with pytest.raises(WireProtocolError):
        wire.decode_payload(payload)


def test_negative_shape_raises():
    import json

    header = json.dumps(
        {"body": None, "arrays": [{"dtype": "<f8", "shape": [-1]}]}
    ).encode()
    with pytest.raises(WireProtocolError):
        wire.decode_payload(struct.pack(">I", len(header)) + header)


def test_unknown_version_raises():
    frame = bytearray(wire.encode_frame(wire.FRAME_PING, b""))
    frame[4] = wire.WIRE_VERSION + 1
    with pytest.raises(WireProtocolError, match="version"):
        wire._parse_header(bytes(frame[:6]), wire.MAX_FRAME_BYTES)


def test_unknown_frame_type_raises():
    header = struct.pack(">IBB", 0, wire.WIRE_VERSION, 200)
    with pytest.raises(WireProtocolError, match="frame type"):
        wire._parse_header(header, wire.MAX_FRAME_BYTES)


def test_oversized_length_prefix_rejected_before_allocation():
    # 3 GiB length prefix: must be refused from the 6 header bytes alone.
    header = struct.pack(">IBB", 3 * 1024**3, wire.WIRE_VERSION, wire.FRAME_CALL)
    with pytest.raises(WireProtocolError, match="bound"):
        wire._parse_header(header, wire.MAX_FRAME_BYTES)


# ----------------------------------------------------------------- typed errors


def test_known_error_roundtrips_as_itself():
    decoded = wire.decode_error(wire.encode_error(EngineOverloadError("queue full")))
    assert isinstance(decoded, EngineOverloadError)
    assert "queue full" in str(decoded)


def test_configuration_error_roundtrips():
    decoded = wire.decode_error(wire.encode_error(ConfigurationError("bad op")))
    assert isinstance(decoded, ConfigurationError)


def test_unknown_error_becomes_remote_judge_error():
    decoded = wire.decode_error(wire.encode_error(ValueError("boom")))
    assert isinstance(decoded, RemoteJudgeError)
    assert "ValueError" in str(decoded)
    assert "boom" in str(decoded)


def test_hostile_error_type_cannot_escape_repro_errors():
    # A frame naming a non-exception attribute of repro.errors must not be
    # instantiated as one; it degrades to RemoteJudgeError.
    payload = wire.encode_payload({"type": "annotations", "message": "x"})
    decoded = wire.decode_error(payload)
    assert isinstance(decoded, RemoteJudgeError)


# ----------------------------------------------------------------- socket paths


def _socket_pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


def test_send_recv_frame_over_socket():
    left, right = _socket_pair()
    try:
        payload = wire.encode_payload({"op": "ping"}, [np.arange(3, dtype=np.float64)])
        wire.send_frame(left, wire.FRAME_CALL, payload)
        frame_type, received = wire.recv_frame(right)
        assert frame_type == wire.FRAME_CALL
        assert received == payload
    finally:
        left.close()
        right.close()


def test_clean_eof_at_frame_boundary_is_none():
    left, right = _socket_pair()
    try:
        wire.send_frame(left, wire.FRAME_PING)
        left.close()
        assert wire.recv_frame(right) == (wire.FRAME_PING, b"")
        assert wire.recv_frame(right) is None
    finally:
        right.close()


def test_disconnect_mid_header_raises_promptly():
    left, right = _socket_pair()
    try:
        left.sendall(wire.encode_frame(wire.FRAME_PING)[:3])  # half a header
        left.close()
        with pytest.raises(WireProtocolError, match="mid-frame"):
            wire.recv_frame(right)
    finally:
        right.close()


def test_disconnect_mid_payload_raises_promptly():
    left, right = _socket_pair()
    try:
        frame = wire.encode_frame(wire.FRAME_CALL, b"x" * 1000)
        left.sendall(frame[: len(frame) - 400])
        left.close()
        with pytest.raises(WireProtocolError, match="mid-frame"):
            wire.recv_frame(right)
    finally:
        right.close()


def test_recv_frame_honours_max_frame_bytes():
    left, right = _socket_pair()
    try:
        wire.send_frame(left, wire.FRAME_CALL, b"x" * 4096)
        with pytest.raises(WireProtocolError, match="bound"):
            wire.recv_frame(right, max_frame_bytes=1024)
    finally:
        left.close()
        right.close()


def test_async_reader_matches_sync_semantics():
    import asyncio

    async def scenario():
        reader = asyncio.StreamReader()
        payload = wire.encode_payload({"op": "x"})
        reader.feed_data(wire.encode_frame(wire.FRAME_RESULT, payload))
        frame_type, received = await wire.read_frame_async(reader)
        assert frame_type == wire.FRAME_RESULT
        assert received == payload

        # clean EOF at a boundary -> None
        reader.feed_eof()
        assert await wire.read_frame_async(reader) is None

        # EOF mid-header -> typed error
        broken = asyncio.StreamReader()
        broken.feed_data(b"\x00\x00\x00")
        broken.feed_eof()
        try:
            await wire.read_frame_async(broken)
        except WireProtocolError:
            pass
        else:
            raise AssertionError("mid-header EOF did not raise")

        # EOF mid-payload -> typed error
        broken = asyncio.StreamReader()
        broken.feed_data(wire.encode_frame(wire.FRAME_CALL, b"abcdef")[:-2])
        broken.feed_eof()
        try:
            await wire.read_frame_async(broken)
        except WireProtocolError:
            pass
        else:
            raise AssertionError("mid-payload EOF did not raise")

    asyncio.run(scenario())


# ------------------------------------------------------------------- fuzz loop


def test_payload_decoder_fuzz_never_hangs_or_crashes():
    """Mutated payload bytes either decode or raise WireProtocolError.

    Anything else — a segfault-adjacent numpy error, a KeyError, an unbounded
    allocation — is a decoder bug.  Seeded, so failures reproduce.
    """
    rng = np.random.default_rng(20260808)
    seeds = [
        wire.encode_payload({"op": "gather", "profiles": [1, 2, 3]}),
        wire.encode_payload(None, [np.arange(32, dtype=np.float64).reshape(4, 8)]),
        wire.encode_payload({"k": "v"}, [np.arange(3, dtype=np.int32), np.zeros(2)]),
        wire.encode_error(EngineOverloadError("full")),
    ]
    for trial in range(300):
        base = bytearray(seeds[trial % len(seeds)])
        mutation = trial % 5
        if mutation == 0:  # truncate
            base = base[: int(rng.integers(0, len(base)))]
        elif mutation == 1:  # flip random bytes
            for _ in range(int(rng.integers(1, 6))):
                base[int(rng.integers(len(base)))] = int(rng.integers(256))
        elif mutation == 2:  # append junk
            base.extend(rng.integers(0, 256, size=int(rng.integers(1, 40))).astype(np.uint8).tobytes())
        elif mutation == 3:  # scramble the JSON length prefix
            base[0:4] = struct.pack(">I", int(rng.integers(0, 2**31)))
        else:  # random garbage of a plausible size
            base = bytearray(rng.integers(0, 256, size=int(rng.integers(0, 200))).astype(np.uint8).tobytes())
        try:
            body, arrays = wire.decode_payload(bytes(base))
        except WireProtocolError:
            pass  # the only acceptable failure
        else:
            assert isinstance(arrays, list)


def test_frame_stream_fuzz_fails_typed_and_promptly():
    """A peer writing garbage mid-stream must produce a typed error, fast."""
    rng = np.random.default_rng(99)
    for trial in range(20):
        left, right = _socket_pair()
        try:
            good = wire.encode_frame(wire.FRAME_CALL, wire.encode_payload({"t": trial}))
            junk = rng.integers(0, 256, size=int(rng.integers(1, 64))).astype(np.uint8).tobytes()
            cut = int(rng.integers(0, len(good)))

            def peer(sock=left, prefix=good[:cut], garbage=junk):
                sock.sendall(prefix + garbage)
                sock.close()

            thread = threading.Thread(target=peer)
            thread.start()
            try:
                while True:  # drain until EOF or a typed failure
                    if wire.recv_frame(right) is None:
                        break
            except ReproError:
                pass
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        finally:
            left.close()
            right.close()
