"""One decision path, four transports — the shared serving parity suite.

Every judgement surface is served by a single :class:`repro.api.JudgementCore`
behind four transports: the single :class:`ColocationEngine`, the
hash-partitioned :class:`ShardedEngine`, the request-coalescing
:class:`MicroBatcher`, and the process-tier :class:`WorkerPool` (worker
processes rebuilt from the judge's save/load bundle, gathered over the binary
wire protocol).  This suite parametrizes over the transports and pins the
correctness contract once, instead of hand-mirroring it per path:

* engine, sharded and workers agree **bit-for-bit** (their gathers produce
  identical rows — save/load restores exactly, the wire moves raw float64
  bytes — and they share the scorer's exact chunking);
* the batcher may drift by last-mantissa-bit coalescing noise only
  (<= 1e-12) because a flush scores many requests as one BLAS call of a
  different shape — decisions and thresholds still match exactly.
"""

import dataclasses

import numpy as np
import pytest

from repro.api import ColocationEngine, JudgeRequest
from repro.cluster import MicroBatcher, ShardedEngine, WorkerPool
from repro.data.records import Pair, Visit
from repro.obs import (
    STAGE_GATHER,
    STAGE_QUEUE_WAIT,
    STAGE_SCORE,
    STAGE_WIRE_RTT,
    STAGE_WIRE_SERIALIZE,
    STAGES,
    tracing,
)

#: Transports whose probabilities must match the reference bit-for-bit.
EXACT = {"engine", "sharded", "workers"}
#: Largest |Δ probability| the batcher's shape-dependent coalescing may add.
COALESCE_ATOL = 1e-12


@pytest.fixture(scope="module")
def reference(fitted_pipeline):
    """The plain single engine every path is compared against."""
    return ColocationEngine(fitted_pipeline, cache_size=1024)


@pytest.fixture(scope="module", params=["engine", "sharded", "batcher", "workers"])
def serving_path(request, fitted_pipeline):
    """(name, transport) for each of the four serving paths."""
    if request.param == "engine":
        yield request.param, ColocationEngine(fitted_pipeline, cache_size=1024)
    elif request.param == "sharded":
        with ShardedEngine(fitted_pipeline, num_shards=3, cache_size=1024) as sharded:
            yield request.param, sharded
    elif request.param == "workers":
        with WorkerPool(fitted_pipeline, num_workers=2, cache_size=1024) as pool:
            yield request.param, pool
    else:
        with ShardedEngine(fitted_pipeline, num_shards=3, cache_size=1024) as sharded:
            with MicroBatcher(sharded, max_delay_ms=2.0, overflow="block") as batcher:
                yield request.param, batcher


@pytest.fixture(scope="module")
def test_pairs(tiny_dataset):
    pairs = tiny_dataset.test.labeled_pairs or tiny_dataset.train.labeled_pairs
    return pairs[:20]


def assert_probabilities_agree(name, actual, expected):
    if name in EXACT:
        np.testing.assert_array_equal(np.asarray(actual), np.asarray(expected))
    else:
        np.testing.assert_allclose(
            np.asarray(actual), np.asarray(expected), atol=COALESCE_ATOL
        )


class TestParity:
    def test_predict_proba(self, serving_path, reference, test_pairs):
        name, path = serving_path
        assert_probabilities_agree(
            name, path.predict_proba(test_pairs), reference.predict_proba(test_pairs)
        )

    def test_predict(self, serving_path, reference, test_pairs):
        name, path = serving_path
        if name == "batcher":
            pytest.skip("the batcher's decision front door is serve()")
        np.testing.assert_array_equal(path.predict(test_pairs), reference.predict(test_pairs))

    def test_probability_matrix(self, serving_path, reference, tiny_dataset):
        name, path = serving_path
        profiles = tiny_dataset.train.labeled_profiles[:9]
        assert_probabilities_agree(
            name, path.probability_matrix(profiles), reference.probability_matrix(profiles)
        )

    @pytest.mark.parametrize("threshold", [None, 0.25, 0.9])
    def test_serve(self, serving_path, reference, test_pairs, threshold):
        name, path = serving_path
        request = JudgeRequest(pairs=tuple(test_pairs), threshold=threshold)
        response = path.serve(request)
        expected = reference.serve(request)
        assert_probabilities_agree(name, response.probabilities, expected.probabilities)
        assert response.decisions == expected.decisions
        assert response.threshold == expected.threshold

    def test_serve_empty_request(self, serving_path, reference):
        name, path = serving_path
        response = path.serve(JudgeRequest(pairs=()))
        assert response.probabilities == ()
        assert response.decisions == ()
        assert response.threshold == reference.threshold

    def test_empty_inputs(self, serving_path):
        name, path = serving_path
        assert path.predict_proba([]).shape == (0,)
        assert path.probability_matrix([]).shape == (0, 0)


class TestMutationParity:
    """Live-mutation parity: transports serve mutated users like a fresh engine.

    A seeded sequence of profile mutations — visits appended, capped histories
    sliding, revisions bumping, explicit invalidations interleaved — must
    leave every transport answering exactly like a freshly-built single
    engine that never cached anything.  This is the contract that makes the
    revisioned key + invalidation machinery safe to run under live traffic.
    """

    MAX_HISTORY = 4

    @staticmethod
    def _mutate(profile, visit_pool, rng, step):
        """One live mutation: append a visit (capped) and bump the revision."""
        template = visit_pool[int(rng.integers(len(visit_pool)))]
        new_visit = Visit(ts=profile.ts + 30.0 * (step + 1), lat=template.lat, lon=template.lon)
        history = (profile.visit_history + (new_visit,))[-TestMutationParity.MAX_HISTORY:]
        tweet = dataclasses.replace(profile.tweet, ts=profile.ts + 60.0 * (step + 1))
        return dataclasses.replace(
            profile,
            tweet=tweet,
            visit_history=history,
            revision=(profile.revision or 0) + 1,
        )

    def test_seeded_mutation_sequence_matches_a_fresh_engine(
        self, serving_path, fitted_pipeline, tiny_dataset
    ):
        name, path = serving_path
        fresh = ColocationEngine(fitted_pipeline, cache_size=0)
        profiles = {p.uid: p for p in tiny_dataset.train.labeled_profiles[:12]}
        visit_pool = [
            visit
            for p in tiny_dataset.train.labeled_profiles
            for visit in p.visit_history
        ]
        rng = np.random.default_rng(42)
        uids = sorted(profiles)
        for step in range(4):
            mutated_uids = rng.choice(uids, size=4, replace=False)
            for uid in mutated_uids:
                profiles[uid] = self._mutate(profiles[uid], visit_pool, rng, step)
            # the mutation traffic a live deployment would send alongside
            path.invalidate([int(uid) for uid in mutated_uids])
            if step % 2:
                path.invalidate_stale()
            current = [profiles[uid] for uid in uids]
            pairs = [
                Pair(current[i], current[(i + 1 + step) % len(current)])
                for i in range(len(current))
            ]
            assert_probabilities_agree(
                name, path.predict_proba(pairs), fresh.predict_proba(pairs)
            )

    def test_mutated_user_is_served_fresh_without_invalidation(
        self, serving_path, fitted_pipeline, tiny_dataset
    ):
        """Revision-exact keys alone prevent stale serving — even when nobody
        calls invalidate, the bumped-revision profile misses the cache."""
        name, path = serving_path
        fresh = ColocationEngine(fitted_pipeline, cache_size=0)
        profiles = tiny_dataset.train.labeled_profiles[:6]
        visit_pool = [v for p in tiny_dataset.train.labeled_profiles for v in p.visit_history]
        rng = np.random.default_rng(7)
        pairs = [Pair(profiles[i], profiles[(i + 1) % 6]) for i in range(6)]
        path.predict_proba(pairs)  # warm the old generation into the caches
        mutated = [self._mutate(p, visit_pool, rng, 0) for p in profiles]
        mutated_pairs = [Pair(mutated[i], mutated[(i + 1) % 6]) for i in range(6)]
        assert_probabilities_agree(
            name, path.predict_proba(mutated_pairs), fresh.predict_proba(mutated_pairs)
        )


class TestCoalescedServes:
    def test_concurrent_serve_requests_match_the_reference(
        self, reference, fitted_pipeline, test_pairs
    ):
        """A burst of mixed-threshold serves through one batcher flush agrees
        with per-request reference serving to coalescing precision."""
        requests = [
            JudgeRequest(
                pairs=tuple(
                    test_pairs[(i + offset) % len(test_pairs)] for offset in range(4)
                ),
                threshold=[None, 0.3, 0.7][i % 3],
            )
            for i in range(8)
        ]
        with ShardedEngine(fitted_pipeline, num_shards=2, cache_size=1024) as sharded:
            with MicroBatcher(sharded, max_delay_ms=25.0, overflow="block") as batcher:
                futures = [batcher.submit_serve(request) for request in requests]
                responses = [future.result(timeout=30) for future in futures]
        for request, response in zip(requests, responses):
            expected = reference.serve(request)
            np.testing.assert_allclose(
                np.asarray(response.probabilities),
                np.asarray(expected.probabilities),
                atol=COALESCE_ATOL,
            )
            assert response.threshold == expected.threshold
            # Explicit-threshold decisions cut coalesced probabilities, so a
            # flip is legitimate only at an exact threshold graze (see
            # JudgementCore.serve_batch); anywhere else it is a divergence.
            for decision, expected_decision, probability in zip(
                response.decisions, expected.decisions, expected.probabilities
            ):
                assert (
                    decision == expected_decision
                    or abs(probability - expected.threshold) <= COALESCE_ATOL
                )


class TestTraceParity:
    """Trace propagation: one stage taxonomy across all four transports.

    With tracing enabled, every transport's ``serve`` attaches a trace whose
    stages are drawn from the single canonical taxonomy — no transport
    invents private stage names, and each reports at least the stages its
    architecture implies.  Untraced serving attaches nothing (and pays
    nothing).
    """

    #: Stages each transport must report on a cold-ish serve.
    REQUIRED = {
        "engine": {STAGE_GATHER, STAGE_SCORE},
        "sharded": {STAGE_GATHER, STAGE_SCORE},
        "batcher": {STAGE_QUEUE_WAIT, STAGE_GATHER, STAGE_SCORE},
        "workers": {STAGE_WIRE_SERIALIZE, STAGE_WIRE_RTT, STAGE_GATHER, STAGE_SCORE},
    }

    def test_serve_reports_the_shared_stage_taxonomy(self, serving_path, test_pairs):
        name, path = serving_path
        with tracing():
            response = path.serve(JudgeRequest(pairs=tuple(test_pairs)))
        trace = response.trace
        assert trace is not None
        assert isinstance(trace["trace_id"], str) and trace["trace_id"]
        stages = {stage for stage, _ in trace["stages"]}
        assert stages <= STAGES, f"{name} invented stages {stages - STAGES}"
        assert self.REQUIRED[name] <= stages
        assert all(duration >= 0.0 for _, duration in trace["stages"])

    def test_traced_probabilities_still_agree(self, serving_path, reference, test_pairs):
        """Instrumentation is timing-only: traced results match untraced."""
        name, path = serving_path
        request = JudgeRequest(pairs=tuple(test_pairs))
        expected = reference.serve(request)
        with tracing():
            response = path.serve(request)
        assert_probabilities_agree(name, response.probabilities, expected.probabilities)
        assert response.decisions == expected.decisions

    def test_untraced_serving_attaches_no_trace(self, serving_path, test_pairs):
        _, path = serving_path
        response = path.serve(JudgeRequest(pairs=tuple(test_pairs)))
        assert response.trace is None

    def test_trace_round_trips_the_response_payload(self, serving_path, test_pairs):
        from repro.api import JudgeResponse

        _, path = serving_path
        with tracing():
            response = path.serve(JudgeRequest(pairs=tuple(test_pairs)))
        decoded = JudgeResponse.from_dict(response.to_dict())
        assert decoded.trace == response.trace
        untraced = path.serve(JudgeRequest(pairs=tuple(test_pairs)))
        assert "trace" not in untraced.to_dict()  # old payloads stay byte-identical
