"""Tests for the ``repro-hisrect`` command-line interface.

The workflow commands are chained against one shared temporary directory:
``generate`` writes a small dataset, ``train`` fits a deliberately tiny
pipeline on it, and ``evaluate`` / ``infer-poi`` consume both artefacts.
"""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    return tmp_path_factory.mktemp("cli")


@pytest.fixture(scope="module")
def dataset_dir(workspace):
    directory = workspace / "dataset"
    exit_code = main(
        ["generate", "--preset", "nyc", "--scale", "0.3", "--seed", "5", "--out", str(directory)]
    )
    assert exit_code == 0
    return directory


@pytest.fixture(scope="module")
def model_dir(workspace, dataset_dir):
    directory = workspace / "model"
    exit_code = main(
        [
            "train",
            "--dataset", str(dataset_dir),
            "--out", str(directory),
            "--ssl-iterations", "8",
            "--judge-epochs", "2",
            "--content-dim", "6",
            "--feature-dim", "12",
            "--embedding-dim", "6",
            "--word-dim", "12",
        ]
    )
    assert exit_code == 0
    return directory


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "somewhere"])
        assert args.preset == "nyc"
        assert args.scale == 0.5
        assert args.func.__name__ == "cmd_generate"

    def test_train_flags(self):
        args = build_parser().parse_args(
            ["train", "--dataset", "d", "--out", "m", "--no-unlabeled", "--mode", "one-phase"]
        )
        assert args.use_unlabeled is False
        assert args.mode == "one-phase"

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestWorkflow:
    def test_generate_writes_dataset(self, dataset_dir):
        names = {p.name for p in dataset_dir.iterdir()}
        assert {"dataset.json", "city.json", "train.jsonl.gz"} <= names

    def test_train_writes_pipeline(self, model_dir):
        names = {p.name for p in model_dir.iterdir()}
        assert {"pipeline.json", "weights.npz", "city.json"} <= names

    def test_evaluate_prints_metrics(self, dataset_dir, model_dir, capsys):
        exit_code = main(
            ["evaluate", "--dataset", str(dataset_dir), "--model", str(model_dir), "--folds", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        for metric in ("Acc", "Rec", "Pre", "F1"):
            assert metric in captured.out

    def test_infer_poi_prints_acc_at_k(self, dataset_dir, model_dir, capsys):
        exit_code = main(
            ["infer-poi", "--dataset", str(dataset_dir), "--model", str(model_dir), "--top-k", "3"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Acc@1" in captured.out and "Acc@3" in captured.out

    def test_evaluate_missing_model_reports_error(self, dataset_dir, tmp_path, capsys):
        exit_code = main(["evaluate", "--dataset", str(dataset_dir), "--model", str(tmp_path)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error:" in captured.err


class TestJudgeSelection:
    def test_train_parser_accepts_judge(self):
        args = build_parser().parse_args(["train", "--dataset", "d", "--judge", "tg-ti-c"])
        assert args.judge == "tg-ti-c"
        assert args.out is None

    def test_train_baseline_judge_end_to_end(self, dataset_dir, capsys):
        exit_code = main(["train", "--dataset", str(dataset_dir), "--judge", "tg-ti-c"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "trained judge 'tg-ti-c'" in captured.out
        # Non-persistable judges report quick held-out metrics instead of saving.
        for metric in ("Acc", "Rec", "Pre", "F1"):
            assert metric in captured.out

    def test_train_pipeline_judge_requires_out(self, dataset_dir, capsys):
        exit_code = main(
            [
                "train",
                "--dataset", str(dataset_dir),
                "--judge", "hisrect",
                "--ssl-iterations", "2",
                "--judge-epochs", "1",
                "--content-dim", "6",
                "--feature-dim", "12",
                "--embedding-dim", "6",
                "--word-dim", "12",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "--out is required" in captured.err

    def test_components_lists_registry(self, capsys):
        exit_code = main(["components"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for kind in ("judge:", "baseline:", "featurizer:", "preset:", "strategy:"):
            assert kind in captured.out
        assert "hisrect" in captured.out and "tg-ti-c" in captured.out

    def test_components_single_kind(self, capsys):
        exit_code = main(["components", "--kind", "strategy"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "two-phase" in captured.out
        assert "tg-ti-c" not in captured.out


class TestExperimentCommand:
    def test_table2_smoke(self, capsys):
        exit_code = main(["experiment", "table2", "--scale", "smoke"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Table 2" in captured.out

    def test_unknown_experiment_name(self, capsys):
        exit_code = main(["experiment", "does-not-exist", "--scale", "smoke"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown experiment" in captured.err


class TestServeBenchCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.shards == 4
        assert args.requests == 384
        assert args.pairs == 4
        assert args.max_batch == 256

    def test_serve_bench_small_run(self, capsys):
        exit_code = main(
            [
                "serve-bench",
                "--shards", "2",
                "--requests", "24",
                "--pairs", "2",
                "--users", "16",
                "--cache-size", "256",
                "--max-batch", "32",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "single engine" in captured.out
        assert "sharded x2 + micro-batch" in captured.out
        assert "bit-for-bit: yes" in captured.out


class TestWorkerCommand:
    def test_parser(self):
        args = build_parser().parse_args(
            ["worker", "--model", "m", "--listen", "127.0.0.1:0", "--once"]
        )
        assert args.listen == "127.0.0.1:0"
        assert args.once
        args = build_parser().parse_args(
            ["worker", "--model", "m", "--connect", "127.0.0.1:9", "--id", "3", "--token", "t"]
        )
        assert args.connect == "127.0.0.1:9"
        assert args.id == 3

    def test_listen_and_connect_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["worker", "--model", "m", "--listen", "a:1", "--connect", "b:2"]
            )

    def test_connect_without_token_errors(self, capsys):
        exit_code = main(
            ["worker", "--model", "does-not-matter", "--connect", "127.0.0.1:9"]
        )
        assert exit_code == 2
        assert "--token" in capsys.readouterr().err

    def test_serve_bench_workers_row(self, capsys):
        exit_code = main(
            [
                "serve-bench",
                "--shards", "2",
                "--workers", "2",
                "--requests", "24",
                "--pairs", "2",
                "--users", "16",
                "--cache-size", "256",
                "--max-batch", "32",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "workers x2 + micro-batch" in captured.out
        assert "serve exact: yes" in captured.out
