"""Tests for the affinity (similarity) matrix construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Pair, Profile, Tweet
from repro.ssl import AffinityConfig, AffinityGraphBuilder


def geo_profile(uid, ts, lat, lon, pid=None):
    tweet = Tweet(uid=uid, ts=ts, content="x", lat=lat, lon=lon)
    return Profile(uid=uid, tweet=tweet, pid=pid)


@pytest.fixture()
def builder(small_registry):
    return AffinityGraphBuilder(small_registry, AffinityConfig(rho=1000.0, eps_d_prime=50.0, delta_t=3600.0))


class TestLabeledWeights:
    def test_positive_pair_weight(self, builder, small_registry):
        poi = small_registry.get(0)
        a = geo_profile(1, 0.0, poi.center.lat, poi.center.lon, pid=0)
        b = geo_profile(2, 10.0, poi.center.lat, poi.center.lon, pid=0)
        assert builder.weight(Pair(a, b, co_label=1)) == 1.0

    def test_negative_pair_weight(self, builder, small_registry):
        poi0, poi1 = small_registry.get(0), small_registry.get(1)
        a = geo_profile(1, 0.0, poi0.center.lat, poi0.center.lon, pid=0)
        b = geo_profile(2, 10.0, poi1.center.lat, poi1.center.lon, pid=1)
        assert builder.weight(Pair(a, b, co_label=0)) == -1.0

    def test_labeled_weight_on_unlabeled_pair_raises(self, builder, small_registry):
        poi = small_registry.get(0)
        a = geo_profile(1, 0.0, poi.center.lat, poi.center.lon)
        b = geo_profile(2, 10.0, poi.center.lat, poi.center.lon)
        with pytest.raises(ValueError):
            builder.labeled_weight(Pair(a, b, co_label=None))


class TestUnlabeledWeights:
    def test_nearby_profiles_get_positive_weight(self, builder, small_registry):
        poi = small_registry.get(0)
        near = poi.center.offset(120.0, 0.0)
        a = geo_profile(1, 0.0, poi.center.lat, poi.center.lon)
        b = geo_profile(2, 10.0, near.lat, near.lon)
        weight = builder.unlabeled_weight(Pair(a, b))
        assert 0.0 < weight < 1.0

    def test_weight_decreases_with_distance(self, builder, small_registry):
        poi = small_registry.get(0)
        a = geo_profile(1, 0.0, poi.center.lat, poi.center.lon)
        close = geo_profile(2, 10.0, *poi.center.offset(50.0, 0.0).as_tuple())
        far = geo_profile(2, 10.0, *poi.center.offset(600.0, 0.0).as_tuple())
        assert builder.unlabeled_weight(Pair(a, close)) > builder.unlabeled_weight(Pair(a, far))

    def test_far_apart_profiles_zero(self, builder, small_registry):
        poi = small_registry.get(0)
        far = poi.center.offset(5000.0, 0.0)
        a = geo_profile(1, 0.0, poi.center.lat, poi.center.lon)
        b = geo_profile(2, 10.0, far.lat, far.lon)
        assert builder.unlabeled_weight(Pair(a, b)) == 0.0

    def test_time_gap_beyond_delta_t_zero(self, builder, small_registry):
        poi = small_registry.get(0)
        a = geo_profile(1, 0.0, poi.center.lat, poi.center.lon)
        b = geo_profile(2, 7200.0, poi.center.lat, poi.center.lon)
        assert builder.unlabeled_weight(Pair(a, b)) == 0.0

    def test_profiles_far_from_every_poi_zero(self, builder, small_registry):
        lost = small_registry.get(0).center.offset(20_000.0, 20_000.0)
        a = geo_profile(1, 0.0, lost.lat, lost.lon)
        b = geo_profile(2, 10.0, lost.lat, lost.lon)
        assert builder.unlabeled_weight(Pair(a, b)) == 0.0

    def test_missing_coordinates_zero(self, builder):
        a = Profile(uid=1, tweet=Tweet(1, 0.0, "x"))
        b = Profile(uid=2, tweet=Tweet(2, 10.0, "y"))
        assert builder.unlabeled_weight(Pair(a, b)) == 0.0

    @given(offset_m=st.floats(min_value=1.0, max_value=900.0))
    @settings(max_examples=20, deadline=None)
    def test_unlabeled_weight_bounded(self, small_registry, offset_m):
        builder = AffinityGraphBuilder(small_registry)
        poi = small_registry.get(0)
        near = poi.center.offset(offset_m, 0.0)
        a = geo_profile(1, 0.0, poi.center.lat, poi.center.lon)
        b = geo_profile(2, 10.0, near.lat, near.lon)
        weight = builder.unlabeled_weight(Pair(a, b))
        assert 0.0 <= weight <= 1.0


class TestBuild:
    def test_build_filters_zero_weights(self, builder, small_registry):
        poi = small_registry.get(0)
        labeled = [
            Pair(
                geo_profile(1, 0.0, poi.center.lat, poi.center.lon, pid=0),
                geo_profile(2, 10.0, poi.center.lat, poi.center.lon, pid=0),
                co_label=1,
            )
        ]
        lost = poi.center.offset(30_000.0, 0.0)
        unlabeled = [
            Pair(geo_profile(3, 0.0, lost.lat, lost.lon), geo_profile(4, 5.0, lost.lat, lost.lon))
        ]
        weighted = builder.build(labeled, unlabeled)
        assert len(weighted) == 1
        assert weighted[0].weight == 1.0
