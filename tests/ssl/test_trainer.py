"""Tests for the semi-supervised HisRect trainer (Algorithm 1)."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.features import EmbeddingNetwork, HisRectConfig, HisRectFeaturizer, POIClassifier
from repro.ssl import SSLTrainingConfig, SemiSupervisedHisRectTrainer


@pytest.fixture()
def components(tiny_dataset):
    registry = tiny_dataset.registry
    config = HisRectConfig(use_content=False, feature_dim=12, embedding_dim=6, keep_prob=1.0)
    featurizer = HisRectFeaturizer(registry, None, config)
    classifier = POIClassifier(feature_dim=12, num_pois=len(registry), seed=2)
    embedding = EmbeddingNetwork(input_dim=12, embedding_dim=6, seed=3)
    return featurizer, classifier, embedding


class TestSSLTrainingConfig:
    def test_invalid_loss_rejected(self):
        with pytest.raises(TrainingError):
            SSLTrainingConfig(unsupervised_loss="hinge")

    def test_invalid_batch_rejected(self):
        with pytest.raises(TrainingError):
            SSLTrainingConfig(batch_size=0)


class TestTrainer:
    def test_training_runs_and_records_losses(self, tiny_dataset, components):
        featurizer, classifier, embedding = components
        trainer = SemiSupervisedHisRectTrainer(
            featurizer, classifier, embedding, tiny_dataset.registry,
            config=SSLTrainingConfig(batch_size=4, max_iterations=20, seed=11),
        )
        history = trainer.train(
            tiny_dataset.train.labeled_profiles,
            tiny_dataset.train.labeled_pairs,
            tiny_dataset.train.unlabeled_pairs,
        )
        assert history.iterations <= 20
        assert history.poi_losses or history.unsupervised_losses
        assert history.final_poi_loss is None or np.isfinite(history.final_poi_loss)

    def test_training_updates_parameters(self, tiny_dataset, components):
        featurizer, classifier, embedding = components
        before = {name: p.data.copy() for name, p in featurizer.named_parameters()}
        trainer = SemiSupervisedHisRectTrainer(
            featurizer, classifier, embedding, tiny_dataset.registry,
            config=SSLTrainingConfig(batch_size=4, max_iterations=15, seed=12),
        )
        trainer.train(tiny_dataset.train.labeled_profiles, tiny_dataset.train.labeled_pairs,
                      tiny_dataset.train.unlabeled_pairs)
        changed = any(
            not np.allclose(before[name], p.data) for name, p in featurizer.named_parameters()
        )
        assert changed

    def test_supervised_only_mode_ignores_unlabeled(self, tiny_dataset, components):
        featurizer, classifier, embedding = components
        trainer = SemiSupervisedHisRectTrainer(
            featurizer, classifier, embedding, tiny_dataset.registry,
            config=SSLTrainingConfig(batch_size=4, max_iterations=15, use_unlabeled=False, seed=13),
        )
        pool = trainer._build_pair_pool(tiny_dataset.train.labeled_pairs, tiny_dataset.train.unlabeled_pairs)
        assert all(wp.pair.is_labeled for wp in pool)

    def test_requires_labeled_profiles(self, tiny_dataset, components):
        featurizer, classifier, embedding = components
        trainer = SemiSupervisedHisRectTrainer(featurizer, classifier, embedding, tiny_dataset.registry)
        with pytest.raises(TrainingError):
            trainer.train([], [], [])

    @pytest.mark.parametrize("loss", ["cosine", "l2", "cosine-noembed"])
    def test_all_unsupervised_losses_run(self, tiny_dataset, components, loss):
        featurizer, classifier, embedding = components
        trainer = SemiSupervisedHisRectTrainer(
            featurizer, classifier, embedding, tiny_dataset.registry,
            config=SSLTrainingConfig(batch_size=4, max_iterations=10, unsupervised_loss=loss, seed=14),
        )
        history = trainer.train(
            tiny_dataset.train.labeled_profiles,
            tiny_dataset.train.labeled_pairs,
            tiny_dataset.train.unlabeled_pairs,
        )
        assert history.iterations > 0
