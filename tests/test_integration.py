"""End-to-end integration tests on the tiny dataset.

These exercise the public API the way the examples and benchmarks do: build a
dataset, fit the pipeline, judge pairs, infer POIs, cluster a group.
"""

import numpy as np

from repro.colocation import ProfileClusterer
from repro.eval import evaluate_judge, pair_labels, roc_auc_score


class TestEndToEnd:
    def test_judge_beats_trivial_on_training_pairs(self, fitted_pipeline, tiny_dataset):
        """The fitted judge should produce valid, non-constant probabilities."""
        pairs = tiny_dataset.train.labeled_pairs
        proba = fitted_pipeline.predict_proba(pairs)
        assert proba.shape == (len(pairs),)
        assert np.all((proba >= 0.0) & (proba <= 1.0))
        assert proba.std() > 0.0

    def test_evaluate_judge_returns_valid_metrics(self, fitted_pipeline, tiny_dataset):
        metrics = evaluate_judge(fitted_pipeline, tiny_dataset.train.labeled_pairs, num_folds=2)
        for value in metrics.as_dict().values():
            assert 0.0 <= value <= 1.0

    def test_train_auc_above_chance(self, fitted_pipeline, tiny_dataset):
        """On its own training pairs the judge should rank better than random."""
        pairs = tiny_dataset.train.labeled_pairs
        labels = pair_labels(pairs)
        if labels.sum() == 0 or labels.sum() == len(labels):
            return  # degenerate tiny split; nothing to assert
        auc = roc_auc_score(labels, fitted_pipeline.predict_proba(pairs))
        assert auc > 0.5

    def test_poi_inference_better_than_uniform_on_train(self, fitted_pipeline, tiny_dataset):
        profiles = tiny_dataset.train.labeled_profiles
        proba = fitted_pipeline.infer_poi_proba(profiles)
        truth = np.array([tiny_dataset.registry.index_of(p.pid) for p in profiles])
        accuracy = (proba.argmax(axis=1) == truth).mean()
        assert accuracy > 1.0 / len(tiny_dataset.registry)

    def test_clustering_covers_all_profiles(self, fitted_pipeline, tiny_dataset):
        profiles = tiny_dataset.test.labeled_profiles[:6]
        clusterer = ProfileClusterer(fitted_pipeline.judge)
        result = clusterer.cluster(profiles)
        assert set().union(*result.clusters) == set(range(len(profiles)))

    def test_comp2loc_and_judge_share_featurizer(self, fitted_pipeline):
        comp2loc = fitted_pipeline.comp2loc()
        assert comp2loc.featurizer is fitted_pipeline.featurizer
