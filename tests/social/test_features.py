"""Tests for repro.social.features."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data.records import Pair, Profile, Tweet, Visit
from repro.social import FEATURE_NAMES, SocialFeatureExtractor, SocialGraph


def _profile(uid: int, ts: float, visits: tuple[Visit, ...] = ()) -> Profile:
    tweet = Tweet(uid=uid, ts=ts, content="coffee downtown")
    return Profile(uid=uid, tweet=tweet, visit_history=visits, pid=None)


@pytest.fixture()
def graph() -> SocialGraph:
    return SocialGraph.from_edges([(1, 2), (1, 3), (2, 3), (3, 4)])


@pytest.fixture()
def extractor(graph, small_registry) -> SocialFeatureExtractor:
    return SocialFeatureExtractor(graph, small_registry, delta_t=3600.0)


class TestFeatureVector:
    def test_feature_dim_matches_names(self, extractor):
        assert extractor.feature_dim == len(FEATURE_NAMES)
        assert extractor.feature_names == FEATURE_NAMES

    def test_as_array_order(self, extractor):
        features = extractor.extract(_profile(1, 0.0), _profile(2, 10.0))
        array = features.as_array()
        assert array.shape == (len(FEATURE_NAMES),)
        assert array[0] == features.is_friend

    def test_friends_flagged(self, extractor):
        features = extractor.extract(_profile(1, 0.0), _profile(2, 10.0))
        assert features.is_friend == 1.0

    def test_strangers_not_flagged(self, extractor):
        features = extractor.extract(_profile(1, 0.0), _profile(4, 10.0))
        assert features.is_friend == 0.0

    def test_common_friends_log(self, extractor):
        # Users 1 and 2 share friend 3 only.
        features = extractor.extract(_profile(1, 0.0), _profile(2, 10.0))
        assert features.common_friends_log == pytest.approx(math.log1p(1))

    def test_unknown_users_have_zero_social_signal(self, extractor):
        features = extractor.extract(_profile(77, 0.0), _profile(88, 10.0))
        assert features.is_friend == 0.0
        assert features.friend_jaccard == 0.0
        assert features.adamic_adar == 0.0


class TestHistorySignals:
    def test_covisit_features_for_shared_poi(self, extractor, small_registry):
        poi = small_registry.pois[0]
        visits_a = (Visit(ts=100.0, lat=poi.center.lat, lon=poi.center.lon),)
        visits_b = (Visit(ts=200.0, lat=poi.center.lat, lon=poi.center.lon),)
        features = extractor.extract(_profile(1, 500.0, visits_a), _profile(2, 600.0, visits_b))
        assert features.covisit_jaccard == pytest.approx(1.0)
        assert features.covisit_count_log == pytest.approx(math.log1p(1))

    def test_no_history_gives_zero_pattern_signal(self, extractor):
        features = extractor.extract(_profile(1, 0.0), _profile(2, 10.0))
        assert features.covisit_jaccard == 0.0
        assert features.covisit_count_log == 0.0

    def test_different_pois_no_covisit(self, extractor, small_registry):
        first, second = small_registry.pois[0], small_registry.pois[1]
        visits_a = (Visit(ts=100.0, lat=first.center.lat, lon=first.center.lon),)
        visits_b = (Visit(ts=100.0, lat=second.center.lat, lon=second.center.lon),)
        features = extractor.extract(_profile(1, 500.0, visits_a), _profile(2, 500.0, visits_b))
        assert features.covisit_jaccard == 0.0
        assert features.covisit_count_log == 0.0


class TestBatchFeaturization:
    def test_empty_pair_list(self, extractor):
        matrix = extractor.featurize_pairs([])
        assert matrix.shape == (0, extractor.feature_dim)

    def test_matrix_shape_and_rows(self, extractor):
        pairs = [
            Pair(left=_profile(1, 0.0), right=_profile(2, 10.0), co_label=1),
            Pair(left=_profile(1, 0.0), right=_profile(4, 10.0), co_label=0),
        ]
        matrix = extractor.featurize_pairs(pairs)
        assert matrix.shape == (2, extractor.feature_dim)
        np.testing.assert_allclose(matrix[0], extractor.extract_pair(pairs[0]).as_array())

    def test_friend_pair_scores_higher_social_signal(self, extractor):
        friend_pair = Pair(left=_profile(1, 0.0), right=_profile(2, 10.0), co_label=None)
        stranger_pair = Pair(left=_profile(1, 0.0), right=_profile(4, 10.0), co_label=None)
        matrix = extractor.featurize_pairs([friend_pair, stranger_pair])
        assert matrix[0].sum() > matrix[1].sum()
