"""Tests for repro.social.graph."""

from __future__ import annotations

import pytest

from repro.errors import DataGenerationError
from repro.social import SocialGraph, SocialGraphConfig, covisit_overlap, generate_social_graph


class TestSocialGraphBasics:
    def test_empty_graph(self):
        graph = SocialGraph()
        assert graph.num_users == 0
        assert graph.num_friendships == 0
        assert graph.friends(1) == frozenset()
        assert not graph.are_friends(1, 2)

    def test_add_friendship(self):
        graph = SocialGraph()
        graph.add_friendship(1, 2)
        assert graph.are_friends(1, 2)
        assert graph.are_friends(2, 1)
        assert graph.num_users == 2
        assert graph.num_friendships == 1

    def test_self_loop_raises(self):
        with pytest.raises(DataGenerationError):
            SocialGraph().add_friendship(1, 1)

    def test_duplicate_edge_not_double_counted(self):
        graph = SocialGraph()
        graph.add_friendship(1, 2)
        graph.add_friendship(2, 1)
        assert graph.num_friendships == 1

    def test_add_user_idempotent(self):
        graph = SocialGraph([1])
        graph.add_user(1)
        graph.add_user(2)
        assert graph.num_users == 2

    def test_remove_friendship(self):
        graph = SocialGraph.from_edges([(1, 2), (2, 3)])
        graph.remove_friendship(1, 2)
        assert not graph.are_friends(1, 2)
        assert graph.are_friends(2, 3)
        graph.remove_friendship(5, 6)  # absent edge is a no-op

    def test_edges_sorted_and_unique(self):
        graph = SocialGraph.from_edges([(3, 1), (1, 2)])
        assert graph.edges() == [(1, 2), (1, 3)]

    def test_degree_and_membership(self):
        graph = SocialGraph.from_edges([(1, 2), (1, 3)])
        assert graph.degree(1) == 2
        assert graph.degree(2) == 1
        assert 3 in graph
        assert 9 not in graph
        assert sorted(graph) == [1, 2, 3]
        assert len(graph) == 3


class TestPairwiseSimilarities:
    @pytest.fixture()
    def graph(self) -> SocialGraph:
        # 1 and 2 share mutual friends 3 and 4; 5 hangs off 3; 6 is isolated.
        graph = SocialGraph.from_edges([(1, 3), (1, 4), (2, 3), (2, 4), (3, 5)])
        graph.add_user(6)
        return graph

    def test_common_friends(self, graph):
        assert graph.common_friends(1, 2) == frozenset({3, 4})
        assert graph.common_friends(1, 6) == frozenset()

    def test_friend_jaccard(self, graph):
        assert graph.friend_jaccard(1, 2) == pytest.approx(1.0)
        assert graph.friend_jaccard(1, 6) == 0.0

    def test_adamic_adar_weights_low_degree_more(self, graph):
        import math

        # Mutual friends of 1 and 2 are 3 (degree 3) and 4 (degree 2); users 1
        # and 5 share only the higher-degree friend 3, so their score is lower.
        both_mutuals = graph.adamic_adar(1, 2)
        only_via_3 = graph.adamic_adar(1, 5)
        assert both_mutuals == pytest.approx(1.0 / math.log(3) + 1.0 / math.log(2))
        assert only_via_3 == pytest.approx(1.0 / math.log(3))
        assert both_mutuals > only_via_3

    def test_adamic_adar_degree_one_mutual(self):
        import math

        # The single mutual friend has degree 2 (one edge to each endpoint).
        graph = SocialGraph.from_edges([(1, 3), (2, 3)])
        assert graph.adamic_adar(1, 2) == pytest.approx(1.0 / math.log(2))
        # A mutual friend of degree 1 contributes exactly 1 (pendant node case).
        pendant = SocialGraph.from_edges([(1, 3)])
        pendant.add_user(2)
        assert pendant.adamic_adar(1, 2) == 0.0

    def test_to_networkx_roundtrip(self, graph):
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == graph.num_users
        assert nx_graph.number_of_edges() == graph.num_friendships


class TestCovisitOverlap:
    def test_empty_sets(self):
        assert covisit_overlap(set(), set()) == 0.0

    def test_identical_sets(self):
        assert covisit_overlap({1, 2}, {1, 2}) == 1.0

    def test_partial_overlap(self):
        assert covisit_overlap({1, 2}, {2, 3}) == pytest.approx(1.0 / 3.0)


class TestGeneratedGraph:
    def test_invalid_config_raises(self):
        with pytest.raises(DataGenerationError):
            SocialGraphConfig(background_rate=1.5)
        with pytest.raises(DataGenerationError):
            SocialGraphConfig(covisit_boost=-0.1)
        with pytest.raises(DataGenerationError):
            SocialGraphConfig(max_candidates_per_user=0)

    def test_covers_all_users(self, tiny_dataset):
        store = tiny_dataset.train.store
        graph = generate_social_graph(store, tiny_dataset.registry)
        assert graph.num_users == len(store)

    def test_deterministic_given_seed(self, tiny_dataset):
        store = tiny_dataset.train.store
        config = SocialGraphConfig(seed=9)
        first = generate_social_graph(store, tiny_dataset.registry, config)
        second = generate_social_graph(store, tiny_dataset.registry, config)
        assert first.edges() == second.edges()

    def test_higher_boost_creates_more_friendships(self, tiny_dataset):
        store = tiny_dataset.train.store
        sparse = generate_social_graph(
            store, tiny_dataset.registry, SocialGraphConfig(background_rate=0.0, covisit_boost=0.0, seed=3)
        )
        dense = generate_social_graph(
            store, tiny_dataset.registry, SocialGraphConfig(background_rate=0.3, covisit_boost=1.0, seed=3)
        )
        assert dense.num_friendships > sparse.num_friendships

    def test_no_self_friendships(self, tiny_dataset):
        store = tiny_dataset.train.store
        graph = generate_social_graph(store, tiny_dataset.registry, SocialGraphConfig(background_rate=0.5))
        assert all(a != b for a, b in graph.edges())
