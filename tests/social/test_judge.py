"""Tests for repro.social.judge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.records import Pair, Profile, Tweet, Visit
from repro.errors import NotFittedError, TrainingError
from repro.geo import POIRegistry
from repro.social import (
    SocialCoLocationJudge,
    SocialFeatureExtractor,
    SocialGraph,
    SocialJudgeConfig,
)


class _ConstantBaseJudge:
    """A stand-in base judge returning a fixed probability for every pair."""

    def __init__(self, probability: float = 0.5):
        self.probability = probability

    def predict_proba(self, pairs):
        return np.full(len(pairs), self.probability)


def _profile(uid: int, ts: float, registry: POIRegistry, pid: int | None = None) -> Profile:
    if pid is not None:
        poi = registry.get(pid)
        visits = (Visit(ts=ts - 600.0, lat=poi.center.lat, lon=poi.center.lon),)
    else:
        visits = ()
    tweet = Tweet(uid=uid, ts=ts, content="hello city")
    return Profile(uid=uid, tweet=tweet, visit_history=visits, pid=pid)


def _synthetic_pairs(registry: POIRegistry, count: int = 60) -> tuple[list[Pair], SocialGraph]:
    """Pairs where friendship + shared history perfectly predict co-location."""
    rng = np.random.default_rng(13)
    graph = SocialGraph()
    pairs: list[Pair] = []
    for i in range(count):
        uid_a, uid_b = 1000 + 2 * i, 1001 + 2 * i
        positive = i % 2 == 0
        ts = float(i * 10)
        if positive:
            pid = int(rng.integers(0, len(registry)))
            graph.add_friendship(uid_a, uid_b)
            left = _profile(uid_a, ts, registry, pid=registry.pid_at(pid))
            right = _profile(uid_b, ts + 60.0, registry, pid=registry.pid_at(pid))
            pairs.append(Pair(left=left, right=right, co_label=1))
        else:
            graph.add_user(uid_a)
            graph.add_user(uid_b)
            pid_a = registry.pid_at(int(rng.integers(0, len(registry))))
            remaining = [p.pid for p in registry.pois if p.pid != pid_a]
            pid_b = remaining[int(rng.integers(0, len(remaining)))]
            left = _profile(uid_a, ts, registry, pid=pid_a)
            right = _profile(uid_b, ts + 60.0, registry, pid=pid_b)
            pairs.append(Pair(left=left, right=right, co_label=0))
    return pairs, graph


@pytest.fixture()
def trained_social_judge(small_registry):
    pairs, graph = _synthetic_pairs(small_registry)
    extractor = SocialFeatureExtractor(graph, small_registry)
    judge = SocialCoLocationJudge(_ConstantBaseJudge(), extractor, SocialJudgeConfig(epochs=60))
    judge.fit(pairs)
    return judge, pairs


class TestConfigValidation:
    def test_invalid_epochs_raise(self):
        with pytest.raises(TrainingError):
            SocialJudgeConfig(epochs=0)

    def test_invalid_threshold_raises(self):
        with pytest.raises(TrainingError):
            SocialJudgeConfig(threshold=1.5)


class TestTrainingGuards:
    def test_predict_before_fit_raises(self, small_registry):
        extractor = SocialFeatureExtractor(SocialGraph(), small_registry)
        judge = SocialCoLocationJudge(_ConstantBaseJudge(), extractor)
        with pytest.raises(NotFittedError):
            judge.predict_proba([])

    def test_fit_without_both_classes_raises(self, small_registry):
        pairs, graph = _synthetic_pairs(small_registry, count=4)
        positives = [p for p in pairs if p.is_positive]
        extractor = SocialFeatureExtractor(graph, small_registry)
        judge = SocialCoLocationJudge(_ConstantBaseJudge(), extractor)
        with pytest.raises(TrainingError):
            judge.fit(positives)


class TestTrainedJudge:
    def test_loss_decreases(self, small_registry):
        pairs, graph = _synthetic_pairs(small_registry)
        extractor = SocialFeatureExtractor(graph, small_registry)
        judge = SocialCoLocationJudge(_ConstantBaseJudge(), extractor, SocialJudgeConfig(epochs=40))
        history = judge.fit(pairs)
        assert history.losses[-1] < history.losses[0]

    def test_social_signal_separates_classes(self, trained_social_judge):
        judge, pairs = trained_social_judge
        proba = judge.predict_proba(pairs)
        positives = proba[[i for i, p in enumerate(pairs) if p.is_positive]]
        negatives = proba[[i for i, p in enumerate(pairs) if p.is_negative]]
        # The base judge is uninformative (constant 0.5), so any separation
        # must come from the social / pattern features.
        assert positives.mean() > negatives.mean() + 0.2

    def test_predict_binary_values(self, trained_social_judge):
        judge, pairs = trained_social_judge
        predictions = judge.predict(pairs)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_empty_prediction(self, trained_social_judge):
        judge, _ = trained_social_judge
        assert judge.predict_proba([]).shape == (0,)

    def test_probabilities_in_range(self, trained_social_judge):
        judge, pairs = trained_social_judge
        proba = judge.predict_proba(pairs)
        assert np.all((proba >= 0.0) & (proba <= 1.0))

    def test_feature_weights_named(self, trained_social_judge):
        judge, _ = trained_social_judge
        weights = judge.feature_weights()
        assert "base_logit" in weights
        assert "is_friend" in weights
        assert len(weights) == judge.extractor.feature_dim + 1

    def test_feature_weights_before_fit_raise(self, small_registry):
        extractor = SocialFeatureExtractor(SocialGraph(), small_registry)
        judge = SocialCoLocationJudge(_ConstantBaseJudge(), extractor)
        with pytest.raises(NotFittedError):
            judge.feature_weights()


class TestStackingOnRealJudge:
    def test_stacked_judge_at_least_matches_base(self, fitted_pipeline, tiny_dataset):
        """Stacking social features on the real pipeline should not hurt accuracy."""
        pairs = [p for p in tiny_dataset.train.labeled_pairs if p.is_labeled]
        if not any(p.is_positive for p in pairs) or not any(p.is_negative for p in pairs):
            pytest.skip("tiny dataset split lacks one of the classes")
        graph = SocialGraph()
        for pair in pairs:
            if pair.is_positive:
                try:
                    graph.add_friendship(pair.left.uid, pair.right.uid)
                except Exception:
                    pass
        extractor = SocialFeatureExtractor(graph, tiny_dataset.registry, delta_t=tiny_dataset.delta_t)
        social = SocialCoLocationJudge(fitted_pipeline, extractor, SocialJudgeConfig(epochs=30))
        social.fit(pairs)
        labels = np.array([p.co_label for p in pairs])
        base_acc = ((fitted_pipeline.predict_proba(pairs) >= 0.5).astype(int) == labels).mean()
        social_acc = (social.predict(pairs) == labels).mean()
        assert social_acc >= base_acc - 0.05
