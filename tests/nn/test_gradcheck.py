"""Gradient checking of the autodiff engine against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import MLP, Linear, Tensor
from repro.nn.gradcheck import (
    check_module_gradients,
    check_tensor_gradient,
    max_gradient_error,
    numerical_gradient,
)
from repro.nn.losses import binary_cross_entropy_with_logits, softmax_cross_entropy

TOLERANCE = 1e-5


class TestNumericalGradient:
    def test_quadratic(self):
        value = np.array([1.0, -2.0, 3.0])
        grad = numerical_gradient(lambda x: float(np.sum(x**2)), value)
        np.testing.assert_allclose(grad, 2 * value, atol=1e-6)


class TestTensorGradients:
    def test_elementwise_chain(self):
        value = np.array([[0.3, -0.7], [1.2, 0.05]])
        error = max_gradient_error(lambda t: (t.tanh() * t.sigmoid()).sum(), value)
        assert error < TOLERANCE

    def test_matmul_and_relu(self):
        rng = np.random.default_rng(0)
        weight = Tensor(rng.normal(size=(3, 2)))
        value = rng.normal(size=(4, 3))
        error = max_gradient_error(lambda t: (t @ weight).relu().sum(), value)
        assert error < TOLERANCE

    def test_division_and_log(self):
        value = np.array([0.5, 1.5, 2.5])
        error = max_gradient_error(lambda t: ((t + 1.0).log() / 2.0).sum(), value)
        assert error < TOLERANCE

    def test_analytic_matches_numerical_shapes(self):
        value = np.arange(6, dtype=float).reshape(2, 3) / 10.0
        analytic, numerical = check_tensor_gradient(lambda t: (t * t).sum(), value)
        assert analytic.shape == numerical.shape == value.shape

    @given(
        st.lists(st.floats(min_value=-2.0, max_value=2.0, allow_nan=False), min_size=2, max_size=6)
    )
    @settings(max_examples=25, deadline=None)
    def test_sum_of_exp_property(self, values):
        value = np.array(values)
        error = max_gradient_error(lambda t: t.exp().sum(), value)
        assert error < 1e-4


class TestModuleGradients:
    def test_linear_layer(self):
        rng = np.random.default_rng(3)
        layer = Linear(4, 2, rng=rng)
        inputs = Tensor(rng.normal(size=(5, 4)))
        targets = np.array([0, 1, 1, 0, 1], dtype=np.float64)

        def loss_fn(module):
            logits = module(inputs).sum(axis=-1)
            return binary_cross_entropy_with_logits(logits, targets)

        errors = check_module_gradients(layer, loss_fn)
        assert errors, "expected at least one parameter checked"
        assert max(errors.values()) < 1e-4

    def test_mlp_with_cross_entropy(self):
        rng = np.random.default_rng(5)
        mlp = MLP(3, [4, 3], final_activation=False, rng=rng)
        mlp.eval()  # disable dropout so the loss is deterministic
        inputs = Tensor(rng.normal(size=(6, 3)))
        labels = rng.integers(0, 3, size=6)

        def loss_fn(module):
            return softmax_cross_entropy(module(inputs), labels)

        errors = check_module_gradients(mlp, loss_fn)
        assert max(errors.values()) < 1e-4
