"""Tests for repro.nn.pooling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AttentionPooling,
    LastState,
    MaxOverTime,
    MeanOverTime,
    Tensor,
    make_pooling,
    softmax_over_time,
)
from repro.nn.gradcheck import check_module_gradients


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(41)


class TestSimplePooling:
    def test_mean_over_time(self, rng):
        sequence = rng.normal(size=(5, 3))
        out = MeanOverTime()(Tensor(sequence)).numpy()
        np.testing.assert_allclose(out, sequence.mean(axis=0))

    def test_max_over_time(self, rng):
        sequence = rng.normal(size=(5, 3))
        out = MaxOverTime()(Tensor(sequence)).numpy()
        np.testing.assert_allclose(out, sequence.max(axis=0))

    def test_last_state(self, rng):
        sequence = rng.normal(size=(5, 3))
        out = LastState()(Tensor(sequence)).numpy()
        np.testing.assert_allclose(out, sequence[-1])

    def test_single_step_sequence(self, rng):
        sequence = rng.normal(size=(1, 4))
        np.testing.assert_allclose(MeanOverTime()(Tensor(sequence)).numpy(), sequence[0])
        np.testing.assert_allclose(LastState()(Tensor(sequence)).numpy(), sequence[0])


class TestSoftmaxOverTime:
    def test_sums_to_one(self, rng):
        scores = Tensor(rng.normal(size=(6, 1)))
        weights = softmax_over_time(scores).numpy()
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights >= 0.0)

    def test_stable_for_large_scores(self):
        scores = Tensor(np.array([[1000.0], [1000.0], [999.0]]))
        weights = softmax_over_time(scores).numpy()
        assert np.isfinite(weights).all()
        assert weights.sum() == pytest.approx(1.0)

    def test_peaked_scores_concentrate_weight(self):
        scores = Tensor(np.array([[10.0], [0.0], [0.0]]))
        weights = softmax_over_time(scores).numpy().reshape(-1)
        assert weights[0] > 0.99


class TestAttentionPooling:
    def test_invalid_feature_count_raises(self):
        with pytest.raises(ValueError):
            AttentionPooling(0)

    def test_output_shape(self, rng):
        pooling = AttentionPooling(6, rng=rng)
        sequence = Tensor(rng.normal(size=(7, 6)))
        out = pooling(sequence)
        assert out.numpy().reshape(-1).shape == (6,)

    def test_weights_form_distribution(self, rng):
        pooling = AttentionPooling(4, rng=rng)
        sequence = Tensor(rng.normal(size=(5, 4)))
        weights = pooling.attention_weights(sequence)
        assert weights.shape == (5,)
        assert weights.sum() == pytest.approx(1.0)

    def test_output_is_convex_combination(self, rng):
        pooling = AttentionPooling(3, rng=rng)
        sequence = rng.normal(size=(4, 3))
        out = pooling(Tensor(sequence)).numpy().reshape(-1)
        assert np.all(out <= sequence.max(axis=0) + 1e-9)
        assert np.all(out >= sequence.min(axis=0) - 1e-9)

    def test_gradients_reach_scorer(self, rng):
        pooling = AttentionPooling(3, rng=rng)
        sequence = Tensor(rng.normal(size=(4, 3)))
        loss = (pooling(sequence) ** 2).sum()
        loss.backward()
        for name, param in pooling.named_parameters():
            assert param.grad is not None, name

    def test_gradcheck(self, rng):
        pooling = AttentionPooling(2, attention_dim=2, rng=rng)
        sequence = Tensor(rng.normal(size=(3, 2)))
        errors = check_module_gradients(pooling, lambda m: (m(sequence) ** 2).sum())
        assert max(errors.values()) < 1e-4


class TestFactory:
    def test_known_names(self, rng):
        assert isinstance(make_pooling("mean", 4), MeanOverTime)
        assert isinstance(make_pooling("max", 4), MaxOverTime)
        assert isinstance(make_pooling("last", 4), LastState)
        assert isinstance(make_pooling("attention", 4, rng=rng), AttentionPooling)

    def test_name_is_case_insensitive(self):
        assert isinstance(make_pooling("  MEAN ", 4), MeanOverTime)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_pooling("fancy", 4)
