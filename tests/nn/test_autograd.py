"""Gradient checks and behaviour tests for the autodiff engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concatenate, stack


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad.ravel()[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, atol=1e-5):
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=shape)

    def value(x):
        t = Tensor(x.copy(), requires_grad=True)
        return build_loss(t).item()

    t = Tensor(x0.copy(), requires_grad=True)
    loss = build_loss(t)
    loss.backward()
    analytic = t.grad
    numeric = numeric_gradient(value, x0.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


class TestElementwiseGradients:
    def test_add_mul(self):
        check_gradient(lambda t: ((t * 3.0 + 2.0) * t).sum(), (4, 3))

    def test_sub_div(self):
        check_gradient(lambda t: ((t - 0.5) / (t * t + 2.0)).sum(), (3, 3))

    def test_pow(self):
        check_gradient(lambda t: ((t * t + 1.0) ** 1.5).sum(), (5,))

    def test_exp_log(self):
        check_gradient(lambda t: ((t * t + 1.0).log() + t.exp()).sum(), (4,))

    def test_tanh_sigmoid_relu(self):
        check_gradient(lambda t: (t.tanh() + t.sigmoid() + (t + 0.3).relu()).sum(), (6,))

    def test_abs(self):
        check_gradient(lambda t: (t.abs()).sum(), (7,), seed=3)

    def test_sqrt(self):
        check_gradient(lambda t: ((t * t + 1.0).sqrt()).sum(), (4,))


class TestMatmulAndShapes:
    def test_matmul(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(3, 2))
        check_gradient(lambda t: (t @ Tensor(w)).sum(), (4, 3))

    def test_matmul_right_operand(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 3))
        check_gradient(lambda t: (Tensor(x) @ t).sum(), (3, 2))

    def test_reshape_transpose(self):
        check_gradient(lambda t: (t.reshape(6).transpose()).sum(), (2, 3))

    def test_getitem(self):
        check_gradient(lambda t: (t[1:3, :2] * 2.0).sum(), (4, 3))

    def test_concatenate(self):
        def loss(t):
            return (concatenate([t, t * 2.0], axis=0) ** 2).sum()

        check_gradient(loss, (2, 3))

    def test_stack(self):
        def loss(t):
            return (stack([t, t * 0.5], axis=0)).sum()

        check_gradient(loss, (2, 2))


class TestReductions:
    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), (4, 3))

    def test_mean_axis_keepdims(self):
        check_gradient(lambda t: (t.mean(axis=1, keepdims=True) * t).sum(), (3, 5))

    def test_max(self):
        check_gradient(lambda t: t.max(axis=1).sum(), (3, 4), seed=7)

    def test_broadcast_add(self):
        rng = np.random.default_rng(5)
        b = rng.normal(size=(3,))
        check_gradient(lambda t: ((t + Tensor(b)) ** 2).sum(), (4, 3))

    def test_broadcast_mul_with_grad_on_small(self):
        rng = np.random.default_rng(6)
        big = rng.normal(size=(4, 3))
        check_gradient(lambda t: (Tensor(big) * t).sum(), (3,))


class TestTensorBehaviour:
    def test_backward_requires_grad(self):
        t = Tensor(np.ones(3))
        with pytest.raises(ValueError):
            t.backward()

    def test_backward_nonscalar_requires_grad_arg(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2.0).backward()

    def test_gradient_accumulates_across_backward_calls(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2.0).sum().backward()
        first = t.grad.copy()
        (t * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, 2 * first)

    def test_detach_stops_gradient(self):
        t = Tensor(np.ones(2), requires_grad=True)
        loss = (t.detach() * t).sum()
        loss.backward()
        np.testing.assert_allclose(t.grad, np.ones(2))

    def test_item_and_numpy(self):
        t = Tensor(3.5)
        assert t.item() == 3.5
        assert t.numpy().shape == ()

    def test_shared_node_gradient_counted_once_per_path(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        y = t * t  # dy/dt = 2t = 4
        z = y + y  # dz/dt = 8
        z.sum().backward()
        np.testing.assert_allclose(t.grad, [8.0])

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_sum_grad_is_ones(self, rows, cols):
        t = Tensor(np.random.default_rng(0).normal(size=(rows, cols)), requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((rows, cols)))
