"""Tests for layers, modules, losses and optimisers."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    Dropout,
    Linear,
    Module,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    Tensor,
    binary_cross_entropy_with_logits,
    clip_grad_norm,
    cosine_embedding_loss,
    cosine_similarity,
    l2_embedding_loss,
    l2_normalize,
    l2_regularization,
    log_softmax,
    softmax,
    softmax_cross_entropy,
)


class TestLinearAndMLP:
    def test_linear_shapes(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)

    def test_linear_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_mlp_output_size(self):
        mlp = MLP(4, [8, 5], rng=np.random.default_rng(0))
        assert mlp.out_features == 5
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 5)

    def test_mlp_requires_layers(self):
        with pytest.raises(ValueError):
            MLP(4, [])

    def test_sequential_applies_in_order(self):
        seq = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), ReLU())
        out = seq(Tensor(np.ones((1, 2))))
        assert np.all(out.data >= 0.0)
        assert len(seq) == 2


class TestDropout:
    def test_dropout_identity_in_eval(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_dropout_zeroes_some_in_train(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.train()
        out = drop(Tensor(np.ones((20, 20))))
        assert np.any(out.data == 0.0)

    def test_keep_prob_validation(self):
        with pytest.raises(ValueError):
            Dropout(0.0)


class TestModule:
    def test_named_parameters_recursive(self):
        mlp = MLP(3, [4, 2], rng=np.random.default_rng(0))
        names = [n for n, _ in mlp.named_parameters()]
        assert len(names) == len(set(names))
        assert all(isinstance(p, Parameter) for _, p in mlp.named_parameters())

    def test_state_dict_roundtrip(self):
        mlp = MLP(3, [4], rng=np.random.default_rng(0))
        state = mlp.state_dict()
        mlp2 = MLP(3, [4], rng=np.random.default_rng(99))
        mlp2.load_state_dict(state)
        for (_, a), (_, b) in zip(mlp.named_parameters(), mlp2.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_load_state_dict_rejects_mismatch(self):
        mlp = MLP(3, [4], rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            mlp.load_state_dict({"bogus": np.zeros(1)})

    def test_train_eval_propagates(self):
        mlp = MLP(3, [4], keep_prob=0.5, rng=np.random.default_rng(0))
        mlp.eval()
        assert all(not m.training for m in mlp.modules())
        mlp.train()
        assert all(m.training for m in mlp.modules())

    def test_num_parameters_positive(self):
        mlp = MLP(3, [4], rng=np.random.default_rng(0))
        assert mlp.num_parameters() == 3 * 4 + 4

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward()


class TestLosses:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        probs = softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), atol=1e-9)

    def test_log_softmax_matches_softmax(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(3, 5)))
        np.testing.assert_allclose(np.exp(log_softmax(logits).data), softmax(logits).data)

    def test_cross_entropy_perfect_prediction_small(self):
        logits = np.full((2, 3), -10.0)
        logits[0, 1] = 10.0
        logits[1, 2] = 10.0
        loss = softmax_cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_cross_entropy_validates_shapes(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(Tensor(np.zeros(3)), np.array([0]))

    def test_bce_with_logits_matches_manual(self):
        logits = Tensor(np.array([0.0, 2.0, -2.0]))
        targets = np.array([1.0, 1.0, 0.0])
        loss = binary_cross_entropy_with_logits(logits, targets).item()
        probs = 1.0 / (1.0 + np.exp(-logits.data))
        manual = -np.mean(targets * np.log(probs) + (1 - targets) * np.log(1 - probs))
        assert loss == pytest.approx(manual, rel=1e-9)

    def test_cosine_similarity_bounds(self):
        a = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        b = Tensor(np.random.default_rng(1).normal(size=(5, 4)))
        sims = cosine_similarity(a, b).data
        assert np.all(sims <= 1.0 + 1e-9)
        assert np.all(sims >= -1.0 - 1e-9)

    def test_cosine_embedding_loss_zero_for_identical_positive(self):
        a = Tensor(np.ones((3, 4)))
        loss = cosine_embedding_loss(a, a, np.ones(3))
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_cosine_embedding_loss_negative_pairs_reward_dissimilarity(self):
        a = Tensor(np.array([[1.0, 0.0]]))
        b = Tensor(np.array([[0.0, 1.0]]))
        loss_orthogonal = cosine_embedding_loss(a, b, np.array([-1.0])).item()
        loss_identical = cosine_embedding_loss(a, a, np.array([-1.0])).item()
        assert loss_orthogonal < loss_identical

    def test_l2_embedding_loss_zero_for_identical(self):
        a = Tensor(np.ones((2, 3)))
        assert l2_embedding_loss(a, a, np.ones(2)).item() == pytest.approx(0.0)

    def test_l2_regularization(self):
        params = [Parameter(np.ones(4)), Parameter(2 * np.ones(2))]
        assert l2_regularization(params, 0.5).item() == pytest.approx(0.5 * (4 + 8))

    def test_l2_normalize_unit_norm(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 6)))
        norms = np.linalg.norm(l2_normalize(x).data, axis=1)
        np.testing.assert_allclose(norms, np.ones(3), atol=1e-6)


class TestOptimisers:
    def _quadratic_problem(self):
        target = np.array([1.0, -2.0, 3.0])
        param = Parameter(np.zeros(3))
        return param, target

    def test_sgd_converges_on_quadratic(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            loss = ((param - Tensor(target)) ** 2).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        param, target = self._quadratic_problem()
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            loss = ((param - Tensor(target)) ** 2).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_optimizer_requires_positive_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_lr_decay_reduces_lr(self):
        opt = Adam([Parameter(np.zeros(1))], lr=0.1)
        opt.step_count = 1000
        opt.decay_lr(1e-2)
        assert opt.lr < 0.1

    def test_clip_grad_norm(self):
        param = Parameter(np.zeros(3))
        param.grad = np.array([3.0, 4.0, 0.0])
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.ones(2) * 10.0)
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        param.grad = np.zeros(2)
        opt.step()
        assert np.all(np.abs(param.data) < 10.0)
