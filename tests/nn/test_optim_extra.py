"""Tests for the RMSprop, Adagrad and AdamW optimisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adagrad, AdamW, Linear, RMSprop, Tensor


def _quadratic_loss(layer: Linear, x: np.ndarray, y: np.ndarray):
    prediction = layer(Tensor(x))
    return ((prediction - Tensor(y)) ** 2).mean()


def _train(optimizer_cls, steps: int = 60, **kwargs) -> list[float]:
    rng = np.random.default_rng(5)
    layer = Linear(3, 1, rng=rng)
    x = rng.normal(size=(32, 3))
    true_w = np.array([[1.0], [-2.0], [0.5]])
    y = x @ true_w + 0.01 * rng.normal(size=(32, 1))
    optimizer = optimizer_cls(layer.parameters(), **kwargs)
    losses = []
    for _ in range(steps):
        optimizer.zero_grad()
        loss = _quadratic_loss(layer, x, y)
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    return losses


class TestConvergence:
    def test_rmsprop_reduces_loss(self):
        losses = _train(RMSprop, lr=0.05)
        assert losses[-1] < 0.1 * losses[0]

    def test_adagrad_reduces_loss(self):
        losses = _train(Adagrad, lr=0.5)
        assert losses[-1] < 0.5 * losses[0]

    def test_adamw_reduces_loss(self):
        losses = _train(AdamW, lr=0.05, weight_decay=0.0)
        assert losses[-1] < 0.1 * losses[0]


class TestValidation:
    def test_rmsprop_invalid_alpha_raises(self):
        layer = Linear(2, 1)
        with pytest.raises(ValueError):
            RMSprop(layer.parameters(), lr=0.01, alpha=1.5)

    def test_negative_learning_rate_raises(self):
        layer = Linear(2, 1)
        with pytest.raises(ValueError):
            Adagrad(layer.parameters(), lr=-0.1)

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            AdamW([], lr=0.1)


class TestBehaviour:
    def test_adamw_weight_decay_shrinks_unused_weights(self):
        rng = np.random.default_rng(9)
        layer = Linear(2, 2, rng=rng)
        # Zero gradient: pure decay should shrink weights towards zero.
        optimizer = AdamW(layer.parameters(), lr=0.1, weight_decay=0.5)
        layer.zero_grad()
        layer.weight.grad = np.zeros_like(layer.weight.data)
        layer.bias.grad = np.zeros_like(layer.bias.data)
        norm_before = float(np.linalg.norm(layer.weight.data))
        for _ in range(10):
            optimizer.step()
        norm_after = float(np.linalg.norm(layer.weight.data))
        assert norm_after < norm_before

    def test_adagrad_step_sizes_shrink_over_time(self):
        rng = np.random.default_rng(11)
        layer = Linear(1, 1, rng=rng)
        optimizer = Adagrad(layer.parameters(), lr=1.0)
        deltas = []
        for _ in range(5):
            layer.zero_grad()
            layer.weight.grad = np.ones_like(layer.weight.data)
            layer.bias.grad = np.ones_like(layer.bias.data)
            before = layer.weight.data.copy()
            optimizer.step()
            deltas.append(float(np.abs(layer.weight.data - before).sum()))
        assert deltas == sorted(deltas, reverse=True)

    def test_skips_parameters_without_gradients(self):
        layer = Linear(2, 1)
        optimizer = RMSprop(layer.parameters(), lr=0.1)
        before = layer.weight.data.copy()
        optimizer.step()  # no backward pass has run
        np.testing.assert_allclose(layer.weight.data, before)
