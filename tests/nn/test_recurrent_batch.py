"""Equivalence tests for the batched recurrent forwards.

The module contract (see ``repro.nn.recurrent``) says ``forward`` is the
scalar reference and ``forward_batch`` must match it row by row at every valid
position of a right-padded batch; positions past a row's length are filler the
caller masks out.  These tests pin that contract for every recurrent layer,
the batched convolution and the masked pooling helpers.
"""

import numpy as np
import pytest

from repro.nn import (
    BiGRU,
    BiLSTM,
    Conv2D,
    ConvLSTM,
    LSTM,
    TemporalConv,
    Tensor,
    masked_mean_over_time,
    masked_softmax_over_time,
    softmax_over_time,
    time_mask,
)
from repro.nn.pooling import AttentionPooling

TOLERANCE = dict(rtol=0.0, atol=1e-9)


def ragged_batch(lengths, width, seed=0):
    """Right-padded (B, T, width) array plus the per-row sequences."""
    rng = np.random.default_rng(seed)
    sequences = [rng.normal(size=(length, width)) for length in lengths]
    steps = max(lengths)
    padded = np.zeros((len(lengths), steps, width))
    for row, sequence in enumerate(sequences):
        padded[row, : len(sequence)] = sequence
    return padded, sequences


class TestTimeMask:
    def test_shape_and_values(self):
        mask = time_mask(np.array([3, 1, 0]), 4)
        np.testing.assert_array_equal(
            mask, [[1, 1, 1, 0], [1, 0, 0, 0], [0, 0, 0, 0]]
        )

    def test_negative_lengths_clip_to_zero(self):
        # Conv-output lengths (L - kh + 1) can go negative for short rows.
        assert time_mask(np.array([-2]), 3).sum() == 0.0


@pytest.mark.parametrize("reverse", [False, True])
class TestLSTMBatch:
    def test_matches_scalar_on_valid_positions(self, reverse):
        lstm = LSTM(5, 4, rng=np.random.default_rng(0))
        lengths = [6, 3, 1, 6, 4]
        padded, sequences = ragged_batch(lengths, 5, seed=1)
        batch = lstm.forward_batch(Tensor(padded), np.array(lengths), reverse=reverse)
        assert batch.shape == (5, 6, 4)
        for row, sequence in enumerate(sequences):
            reference = lstm(Tensor(sequence), reverse=reverse)
            np.testing.assert_allclose(
                batch.data[row, : len(sequence)], reference.data, **TOLERANCE
            )

    def test_gradients_flow(self, reverse):
        lstm = LSTM(3, 4, rng=np.random.default_rng(0))
        padded, _ = ragged_batch([4, 2], 3, seed=2)
        out = lstm.forward_batch(Tensor(padded), np.array([4, 2]), reverse=reverse)
        (out * out).sum().backward()
        assert all(p.grad is not None for p in lstm.parameters())


class TestBiLSTMBatch:
    @pytest.mark.parametrize("num_layers", [1, 2])
    def test_concat_output_matches_scalar(self, num_layers):
        bilstm = BiLSTM(4, 5, num_layers=num_layers, rng=np.random.default_rng(0))
        lengths = [7, 4, 7, 2]
        padded, sequences = ragged_batch(lengths, 4, seed=3)
        batch = bilstm.forward_batch(Tensor(padded), np.array(lengths))
        assert batch.shape == (4, 7, 10)
        for row, sequence in enumerate(sequences):
            reference = bilstm(Tensor(sequence))
            np.testing.assert_allclose(
                batch.data[row, : len(sequence)], reference.data, **TOLERANCE
            )

    def test_stacked_channels_matches_scalar(self):
        bilstm = BiLSTM(4, 5, rng=np.random.default_rng(0))
        lengths = [6, 3]
        padded, sequences = ragged_batch(lengths, 4, seed=4)
        batch = bilstm.forward_batch(Tensor(padded), np.array(lengths), stacked_channels=True)
        assert batch.shape == (2, 6, 5, 2)
        for row, sequence in enumerate(sequences):
            reference = bilstm(Tensor(sequence), stacked_channels=True)
            np.testing.assert_allclose(
                batch.data[row, : len(sequence)], reference.data, **TOLERANCE
            )


class TestBiGRUBatch:
    def test_matches_scalar_on_valid_positions(self):
        bigru = BiGRU(4, 3, rng=np.random.default_rng(0))
        lengths = [5, 1, 3]
        padded, sequences = ragged_batch(lengths, 4, seed=5)
        batch = bigru.forward_batch(Tensor(padded), np.array(lengths))
        assert batch.shape == (3, 5, 6)
        for row, sequence in enumerate(sequences):
            reference = bigru(Tensor(sequence))
            np.testing.assert_allclose(
                batch.data[row, : len(sequence)], reference.data, **TOLERANCE
            )


class TestConvLSTMBatch:
    def test_matches_scalar_on_valid_positions(self):
        convlstm = ConvLSTM(width=6, rng=np.random.default_rng(0))
        lengths = [5, 2, 4]
        padded, sequences = ragged_batch(lengths, 6, seed=6)
        batch = convlstm.forward_batch(Tensor(padded), np.array(lengths))
        assert batch.shape == (3, 5, 6)
        for row, sequence in enumerate(sequences):
            reference = convlstm(Tensor(sequence))
            np.testing.assert_allclose(
                batch.data[row, : len(sequence)], reference.data, **TOLERANCE
            )

    def test_gradients_flow(self):
        convlstm = ConvLSTM(width=4, rng=np.random.default_rng(0))
        padded, _ = ragged_batch([3, 2], 4, seed=7)
        out = convlstm.forward_batch(Tensor(padded), np.array([3, 2]))
        (out * out).sum().backward()
        assert all(p.grad is not None for p in convlstm.parameters())


class TestConvBatch:
    def test_conv2d_batch_matches_scalar(self):
        conv = Conv2D(2, 3, kernel_height=3, kernel_width=2, rng=np.random.default_rng(0))
        images = np.random.default_rng(1).normal(size=(4, 6, 5, 2))
        batch = conv.forward_batch(Tensor(images))
        assert batch.shape == (4, 4, 4, 3)
        for row in range(4):
            reference = conv(Tensor(images[row]))
            np.testing.assert_allclose(batch.data[row], reference.data, **TOLERANCE)

    def test_temporal_conv_batch_matches_scalar(self):
        conv = TemporalConv(width=5, rng=np.random.default_rng(0))
        stacked = np.random.default_rng(1).normal(size=(3, 7, 5, 2))
        batch = conv.forward_batch(Tensor(stacked))
        assert batch.shape == (3, 5, 5)
        for row in range(3):
            reference = conv(Tensor(stacked[row]))
            np.testing.assert_allclose(batch.data[row], reference.data, **TOLERANCE)

    def test_temporal_conv_batch_rejects_wrong_shape(self):
        conv = TemporalConv(width=5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv.forward_batch(Tensor(np.zeros((2, 7, 4, 2))))


class TestMaskedPooling:
    def test_masked_mean_matches_per_row_mean(self):
        lengths = np.array([4, 1, 3])
        padded, sequences = ragged_batch(list(lengths), 5, seed=8)
        pooled = masked_mean_over_time(Tensor(padded), time_mask(lengths, 4))
        for row, sequence in enumerate(sequences):
            np.testing.assert_allclose(pooled.data[row], sequence.mean(axis=0), **TOLERANCE)

    def test_masked_softmax_matches_scalar_softmax(self):
        lengths = np.array([5, 2, 4])
        scores = np.random.default_rng(9).normal(size=(3, 5, 1))
        weights = masked_softmax_over_time(Tensor(scores), time_mask(lengths, 5))
        for row, length in enumerate(lengths):
            reference = softmax_over_time(Tensor(scores[row, :length]))
            np.testing.assert_allclose(weights.data[row, :length], reference.data, **TOLERANCE)
            np.testing.assert_array_equal(weights.data[row, length:], 0.0)

    def test_masked_softmax_survives_huge_padded_scores(self):
        # A filler-state score far above the valid peak must not overflow
        # exp() into inf * 0 = NaN; padded positions are zeroed before exp.
        scores = np.zeros((1, 4, 1))
        scores[0, 2:] = 1000.0  # padded positions
        weights = masked_softmax_over_time(Tensor(scores), time_mask(np.array([2]), 4))
        assert np.isfinite(weights.data).all()
        np.testing.assert_allclose(weights.data[0, :2, 0], [0.5, 0.5], **TOLERANCE)
        np.testing.assert_array_equal(weights.data[0, 2:], 0.0)

    def test_attention_pooling_batch_matches_scalar(self):
        pooling = AttentionPooling(6, rng=np.random.default_rng(0))
        lengths = [5, 3, 1]
        padded, sequences = ragged_batch(lengths, 6, seed=10)
        pooled = pooling.forward_batch(Tensor(padded), time_mask(np.array(lengths), 5))
        for row, sequence in enumerate(sequences):
            reference = pooling(Tensor(sequence))
            np.testing.assert_allclose(pooled.data[row], reference.data, **TOLERANCE)
