"""Tests for repro.nn.embedding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, Embedding


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(23)


class TestConstruction:
    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)
        with pytest.raises(ValueError):
            Embedding(4, 0)

    def test_shape(self, rng):
        layer = Embedding(10, 6, rng=rng)
        assert layer.weight.data.shape == (10, 6)

    def test_from_pretrained_copies_vectors(self, rng):
        vectors = rng.normal(size=(5, 3))
        layer = Embedding.from_pretrained(vectors)
        np.testing.assert_allclose(layer.weight.data, vectors)
        vectors[0, 0] = 999.0
        assert layer.weight.data[0, 0] != 999.0

    def test_from_pretrained_requires_2d(self):
        with pytest.raises(ValueError):
            Embedding.from_pretrained(np.zeros(5))

    def test_from_pretrained_frozen_by_default(self, rng):
        layer = Embedding.from_pretrained(rng.normal(size=(4, 2)))
        assert layer.frozen


class TestLookup:
    def test_lookup_shape(self, rng):
        layer = Embedding(10, 4, rng=rng)
        out = layer([1, 3, 3, 7])
        assert out.shape == (4, 4)

    def test_lookup_values_match_rows(self, rng):
        layer = Embedding(10, 4, rng=rng)
        out = layer([2, 5]).numpy()
        np.testing.assert_allclose(out[0], layer.weight.data[2])
        np.testing.assert_allclose(out[1], layer.weight.data[5])

    def test_out_of_range_raises(self, rng):
        layer = Embedding(10, 4, rng=rng)
        with pytest.raises(ValueError):
            layer([10])
        with pytest.raises(ValueError):
            layer([-1])

    def test_requires_1d_input(self, rng):
        layer = Embedding(10, 4, rng=rng)
        with pytest.raises(ValueError):
            layer(np.zeros((2, 2), dtype=int))

    def test_vector_returns_copy(self, rng):
        layer = Embedding(10, 4, rng=rng)
        vec = layer.vector(3)
        vec[0] = 123.0
        assert layer.weight.data[3, 0] != 123.0

    def test_vector_out_of_range_raises(self, rng):
        layer = Embedding(10, 4, rng=rng)
        with pytest.raises(ValueError):
            layer.vector(10)


class TestGradients:
    def test_repeated_ids_accumulate_gradient(self, rng):
        layer = Embedding(6, 3, rng=rng)
        out = layer([2, 2, 4])
        out.sum().backward()
        grad = layer.weight.grad
        # Row 2 appears twice, row 4 once, other rows never.
        np.testing.assert_allclose(grad[2], 2.0)
        np.testing.assert_allclose(grad[4], 1.0)
        np.testing.assert_allclose(grad[0], 0.0)

    def test_frozen_lookup_detached_from_graph(self, rng):
        layer = Embedding(6, 3, rng=rng).freeze()
        out = layer([1, 2])
        assert not out.requires_grad
        assert layer.weight.grad is None

    def test_unfreeze_restores_training(self, rng):
        layer = Embedding(6, 3, rng=rng).freeze().unfreeze()
        out = layer([1])
        out.sum().backward()
        assert layer.weight.grad is not None

    def test_fine_tuning_moves_used_rows_only(self, rng):
        layer = Embedding(5, 2, rng=rng)
        before = layer.weight.data.copy()
        optimizer = Adam(layer.parameters(), lr=0.1)
        for _ in range(3):
            optimizer.zero_grad()
            loss = (layer([0, 1]) ** 2).sum()
            loss.backward()
            optimizer.step()
        after = layer.weight.data
        assert not np.allclose(before[0], after[0])
        np.testing.assert_allclose(before[4], after[4])
