"""Tests for repro.nn.gru."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import GRU, Adam, BiGRU, GRUCell, Tensor
from repro.nn.gradcheck import check_module_gradients


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(17)


class TestGRUCell:
    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            GRUCell(0, 4)
        with pytest.raises(ValueError):
            GRUCell(4, 0)

    def test_output_shape(self, rng):
        cell = GRUCell(3, 5, rng=rng)
        x = Tensor(rng.normal(size=(1, 3)))
        h = Tensor(np.zeros((1, 5)))
        out = cell(x, h)
        assert out.shape == (1, 5)

    def test_output_bounded_by_tanh_and_gates(self, rng):
        cell = GRUCell(3, 5, rng=rng)
        x = Tensor(rng.normal(size=(1, 3)) * 10.0)
        h = Tensor(np.zeros((1, 5)))
        out = cell(x, h)
        assert np.all(np.abs(out.numpy()) <= 1.0 + 1e-9)

    def test_zero_input_keeps_state_near_zero(self, rng):
        cell = GRUCell(3, 4, init_std=0.01, rng=rng)
        x = Tensor(np.zeros((1, 3)))
        h = Tensor(np.zeros((1, 4)))
        out = cell(x, h)
        assert np.all(np.abs(out.numpy()) < 0.1)

    def test_gradients_flow_to_all_parameters(self, rng):
        cell = GRUCell(3, 4, rng=rng)
        x = Tensor(rng.normal(size=(1, 3)))
        h = Tensor(np.zeros((1, 4)))
        loss = (cell(x, h) ** 2).sum()
        loss.backward()
        for name, param in cell.named_parameters():
            assert param.grad is not None, name

    def test_gradcheck(self, rng):
        cell = GRUCell(2, 3, rng=rng)
        x = Tensor(rng.normal(size=(1, 2)))
        h = Tensor(np.zeros((1, 3)))
        errors = check_module_gradients(cell, lambda m: (m(x, h) ** 2).sum())
        assert max(errors.values()) < 1e-4


class TestGRU:
    def test_sequence_output_shape(self, rng):
        gru = GRU(4, 6, rng=rng)
        sequence = Tensor(rng.normal(size=(7, 4)))
        out = gru(sequence)
        assert out.shape == (7, 6)

    def test_reverse_changes_first_state(self, rng):
        gru = GRU(4, 6, rng=rng)
        sequence = Tensor(rng.normal(size=(5, 4)))
        forward = gru(sequence).numpy()
        backward = gru(sequence, reverse=True).numpy()
        assert not np.allclose(forward[0], backward[0])

    def test_single_step_sequence(self, rng):
        gru = GRU(3, 2, rng=rng)
        sequence = Tensor(rng.normal(size=(1, 3)))
        assert gru(sequence).shape == (1, 2)

    def test_training_reduces_loss(self, rng):
        gru = GRU(3, 4, rng=rng)
        sequence = Tensor(rng.normal(size=(6, 3)))
        target = rng.normal(size=(6, 4))
        optimizer = Adam(gru.parameters(), lr=0.05)
        losses = []
        for _ in range(30):
            optimizer.zero_grad()
            output = gru(sequence)
            loss = ((output - Tensor(target)) ** 2).mean()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]


class TestBiGRU:
    def test_output_concatenates_directions(self, rng):
        bigru = BiGRU(4, 5, rng=rng)
        sequence = Tensor(rng.normal(size=(6, 4)))
        out = bigru(sequence)
        assert out.shape == (6, 10)

    def test_parameters_are_distinct_per_direction(self, rng):
        bigru = BiGRU(3, 4, rng=rng)
        names = [name for name, _ in bigru.named_parameters()]
        assert any("forward_gru" in name for name in names)
        assert any("backward_gru" in name for name in names)

    def test_gradients_reach_both_directions(self, rng):
        bigru = BiGRU(3, 4, rng=rng)
        sequence = Tensor(rng.normal(size=(5, 3)))
        loss = (bigru(sequence) ** 2).sum()
        loss.backward()
        grads = {name: param.grad for name, param in bigru.named_parameters()}
        assert all(g is not None for g in grads.values())
