"""Tests for LSTM / BiLSTM / ConvLSTM and the BiLSTM-C convolution."""

import numpy as np
import pytest

from repro.nn import BiLSTM, Conv2D, ConvLSTM, LSTM, LSTMCell, TemporalConv, Tensor


class TestLSTM:
    def test_cell_shapes(self):
        cell = LSTMCell(4, 6, rng=np.random.default_rng(0))
        h = Tensor(np.zeros((1, 6)))
        c = Tensor(np.zeros((1, 6)))
        h2, c2 = cell(Tensor(np.ones((1, 4))), h, c)
        assert h2.shape == (1, 6)
        assert c2.shape == (1, 6)

    def test_lstm_output_shape(self):
        lstm = LSTM(4, 6, rng=np.random.default_rng(0))
        out = lstm(Tensor(np.random.default_rng(1).normal(size=(7, 4))))
        assert out.shape == (7, 6)

    def test_lstm_reverse_differs(self):
        lstm = LSTM(4, 6, rng=np.random.default_rng(0))
        seq = Tensor(np.random.default_rng(1).normal(size=(5, 4)))
        forward = lstm(seq).data
        backward = lstm(seq, reverse=True).data
        assert not np.allclose(forward, backward)

    def test_lstm_gradients_flow(self):
        lstm = LSTM(3, 4, rng=np.random.default_rng(0))
        out = lstm(Tensor(np.random.default_rng(2).normal(size=(4, 3))))
        (out * out).sum().backward()
        assert all(p.grad is not None for p in lstm.parameters())

    def test_lstm_bounded_hidden_state(self):
        lstm = LSTM(3, 4, rng=np.random.default_rng(0))
        out = lstm(Tensor(np.random.default_rng(2).normal(size=(10, 3)) * 10))
        assert np.all(np.abs(out.data) <= 1.0 + 1e-9)


class TestBiLSTM:
    def test_concat_output_shape(self):
        bilstm = BiLSTM(4, 5, rng=np.random.default_rng(0))
        out = bilstm(Tensor(np.random.default_rng(1).normal(size=(6, 4))))
        assert out.shape == (6, 10)

    def test_stacked_channels_shape(self):
        bilstm = BiLSTM(4, 5, rng=np.random.default_rng(0))
        out = bilstm(Tensor(np.random.default_rng(1).normal(size=(6, 4))), stacked_channels=True)
        assert out.shape == (6, 5, 2)

    def test_multi_layer(self):
        bilstm = BiLSTM(4, 5, num_layers=2, rng=np.random.default_rng(0))
        out = bilstm(Tensor(np.random.default_rng(1).normal(size=(6, 4))))
        assert out.shape == (6, 10)

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            BiLSTM(4, 5, num_layers=0)


class TestConvLSTM:
    def test_output_shape_preserves_width(self):
        conv_lstm = ConvLSTM(width=8, rng=np.random.default_rng(0))
        out = conv_lstm(Tensor(np.random.default_rng(1).normal(size=(5, 8))))
        assert out.shape == (5, 8)

    def test_even_kernel_rejected(self):
        from repro.nn.recurrent import ConvLSTMCell

        with pytest.raises(ValueError):
            ConvLSTMCell(width=8, kernel_size=2)

    def test_gradients_flow(self):
        conv_lstm = ConvLSTM(width=6, rng=np.random.default_rng(0))
        out = conv_lstm(Tensor(np.random.default_rng(1).normal(size=(4, 6))))
        (out * out).sum().backward()
        assert all(p.grad is not None for p in conv_lstm.parameters())


class TestConv2D:
    def test_valid_convolution_shape(self):
        conv = Conv2D(2, 5, 3, 4, rng=np.random.default_rng(0))
        out = conv(Tensor(np.random.default_rng(1).normal(size=(7, 4, 2))))
        assert out.shape == (5, 1, 5)

    def test_channel_mismatch_raises(self):
        conv = Conv2D(2, 5, 3, 4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((7, 4, 3))))

    def test_input_smaller_than_kernel_raises(self):
        conv = Conv2D(1, 1, 3, 3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((2, 3, 1))))

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            Conv2D(0, 1, 3, 3)


class TestTemporalConv:
    def test_feature_map_shape(self):
        conv = TemporalConv(width=6, rng=np.random.default_rng(0))
        out = conv(Tensor(np.random.default_rng(1).normal(size=(8, 6, 2))))
        assert out.shape == (6, 6)

    def test_wrong_width_rejected(self):
        conv = TemporalConv(width=6, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((8, 5, 2))))

    def test_gradient_check_small(self):
        rng = np.random.default_rng(3)
        conv = TemporalConv(width=3, rng=rng)
        x0 = rng.normal(size=(4, 3, 2))

        def loss_value(x):
            return (conv(Tensor(x)) ** 2).sum().item()

        x_t = Tensor(x0.copy(), requires_grad=True)
        loss = (conv(x_t) ** 2).sum()
        loss.backward()
        analytic = x_t.grad
        numeric = np.zeros_like(x0)
        eps = 1e-6
        flat = x0.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = loss_value(x0)
            flat[i] = orig - eps
            minus = loss_value(x0)
            flat[i] = orig
            numeric.ravel()[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)
