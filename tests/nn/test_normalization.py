"""Tests for repro.nn.normalization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import BatchNorm1d, LayerNorm, RMSNorm, Tensor
from repro.nn.gradcheck import check_module_gradients


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(31)


class TestLayerNorm:
    def test_invalid_feature_count_raises(self):
        with pytest.raises(ValueError):
            LayerNorm(0)

    def test_output_rows_are_standardised(self, rng):
        layer = LayerNorm(8)
        x = Tensor(rng.normal(loc=3.0, scale=5.0, size=(4, 8)))
        out = layer(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gain_and_bias_applied(self, rng):
        layer = LayerNorm(4)
        layer.gain.data = np.full(4, 2.0)
        layer.bias.data = np.full(4, 1.0)
        x = Tensor(rng.normal(size=(2, 4)))
        out = layer(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_gradcheck(self, rng):
        layer = LayerNorm(3)
        x = Tensor(rng.normal(size=(2, 3)))
        errors = check_module_gradients(layer, lambda m: (m(x) ** 2).sum())
        assert max(errors.values()) < 1e-4

    def test_works_on_sequences(self, rng):
        layer = LayerNorm(6)
        sequence = Tensor(rng.normal(size=(9, 6)))
        assert layer(sequence).shape == (9, 6)


class TestRMSNorm:
    def test_invalid_feature_count_raises(self):
        with pytest.raises(ValueError):
            RMSNorm(-1)

    def test_output_rms_is_one(self, rng):
        layer = RMSNorm(8)
        x = Tensor(rng.normal(scale=4.0, size=(5, 8)))
        out = layer(x).numpy()
        rms = np.sqrt((out**2).mean(axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-3)

    def test_preserves_sign_pattern(self, rng):
        layer = RMSNorm(4)
        x = rng.normal(size=(3, 4))
        out = layer(Tensor(x)).numpy()
        np.testing.assert_array_equal(np.sign(out), np.sign(x))

    def test_gradcheck(self, rng):
        layer = RMSNorm(3)
        x = Tensor(rng.normal(size=(2, 3)))
        errors = check_module_gradients(layer, lambda m: (m(x) ** 2).sum())
        assert max(errors.values()) < 1e-4


class TestBatchNorm1d:
    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            BatchNorm1d(0)
        with pytest.raises(ValueError):
            BatchNorm1d(4, momentum=0.0)

    def test_requires_2d_input(self, rng):
        layer = BatchNorm1d(4)
        with pytest.raises(ValueError):
            layer(Tensor(rng.normal(size=(4,))))

    def test_training_normalises_batch(self, rng):
        layer = BatchNorm1d(5)
        x = Tensor(rng.normal(loc=-2.0, scale=3.0, size=(64, 5)))
        out = layer(x).numpy()
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_statistics_track_batches(self, rng):
        layer = BatchNorm1d(3, momentum=0.5)
        x = Tensor(rng.normal(loc=4.0, size=(128, 3)))
        layer(x)
        assert np.all(layer.running_mean > 1.0)

    def test_eval_mode_uses_running_statistics(self, rng):
        layer = BatchNorm1d(3, momentum=1.0)
        train_batch = Tensor(rng.normal(loc=2.0, size=(256, 3)))
        layer(train_batch)
        layer.eval()
        probe = Tensor(np.full((1, 3), 2.0))
        out = layer(probe).numpy()
        # A point at the training mean should map near zero in eval mode.
        assert np.all(np.abs(out) < 0.2)

    def test_eval_mode_does_not_update_running_stats(self, rng):
        layer = BatchNorm1d(3)
        layer.eval()
        before = layer.running_mean.copy()
        layer(Tensor(rng.normal(loc=10.0, size=(32, 3))))
        np.testing.assert_allclose(layer.running_mean, before)

    def test_gradcheck_in_training_mode(self, rng):
        layer = BatchNorm1d(2)
        x = Tensor(rng.normal(size=(6, 2)))
        errors = check_module_gradients(layer, lambda m: (m(x) ** 2).sum())
        assert max(errors.values()) < 1e-3
