"""Tests for the learning-rate schedulers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import SGD, Parameter
from repro.nn.schedulers import (
    CosineAnnealing,
    ExponentialDecay,
    InverseTimeDecay,
    StepDecay,
    WarmupWrapper,
)


@pytest.fixture
def optimizer():
    return SGD([Parameter(np.zeros(3))], lr=0.1)


class TestInverseTimeDecay:
    def test_matches_formula(self, optimizer):
        scheduler = InverseTimeDecay(optimizer, decay=0.1)
        assert scheduler.step() == pytest.approx(0.1 / 1.1)
        assert scheduler.step() == pytest.approx(0.1 / 1.2)
        assert optimizer.lr == pytest.approx(0.1 / 1.2)

    def test_negative_decay_rejected(self, optimizer):
        with pytest.raises(ConfigurationError):
            InverseTimeDecay(optimizer, decay=-1.0)


class TestExponentialDecay:
    def test_monotonically_decreasing(self, optimizer):
        scheduler = ExponentialDecay(optimizer, gamma=0.9)
        rates = [scheduler.step() for _ in range(5)]
        assert all(later < earlier for earlier, later in zip(rates, rates[1:]))
        assert rates[0] == pytest.approx(0.09)

    def test_invalid_gamma_rejected(self, optimizer):
        with pytest.raises(ConfigurationError):
            ExponentialDecay(optimizer, gamma=1.5)


class TestStepDecay:
    def test_halves_every_step_size(self, optimizer):
        scheduler = StepDecay(optimizer, step_size=2, factor=0.5)
        rates = [scheduler.step() for _ in range(5)]
        assert rates[0] == pytest.approx(0.1)
        assert rates[1] == pytest.approx(0.05)
        assert rates[3] == pytest.approx(0.025)

    def test_invalid_arguments_rejected(self, optimizer):
        with pytest.raises(ConfigurationError):
            StepDecay(optimizer, step_size=0)
        with pytest.raises(ConfigurationError):
            StepDecay(optimizer, factor=0.0)


class TestCosineAnnealing:
    def test_starts_near_base_and_ends_at_min(self, optimizer):
        scheduler = CosineAnnealing(optimizer, total_steps=10, min_lr=0.001)
        rates = [scheduler.step() for _ in range(10)]
        assert rates[0] < 0.1
        assert rates[-1] == pytest.approx(0.001, abs=1e-9)
        assert all(later <= earlier + 1e-12 for earlier, later in zip(rates, rates[1:]))

    def test_invalid_arguments_rejected(self, optimizer):
        with pytest.raises(ConfigurationError):
            CosineAnnealing(optimizer, total_steps=0)
        with pytest.raises(ConfigurationError):
            CosineAnnealing(optimizer, total_steps=5, min_lr=0.0)


class TestWarmupWrapper:
    def test_linear_warmup_then_delegate(self, optimizer):
        scheduler = WarmupWrapper(InverseTimeDecay(optimizer, decay=0.0), warmup_steps=4)
        rates = [scheduler.step() for _ in range(6)]
        assert rates[0] == pytest.approx(0.025)
        assert rates[3] == pytest.approx(0.1)
        assert rates[4] == pytest.approx(0.1)

    def test_scheduler_updates_optimizer_in_training_loop(self, optimizer):
        """The scheduler's rate is what the optimiser actually applies."""
        parameter = optimizer.parameters[0]
        scheduler = ExponentialDecay(optimizer, gamma=0.5)
        parameter.grad = np.ones_like(parameter.data)
        scheduler.step()
        optimizer.step()
        np.testing.assert_allclose(parameter.data, -0.05 * np.ones(3))
