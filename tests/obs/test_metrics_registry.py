"""Tests for the ``repro.obs`` metrics registry.

The registry is the shared substrate under :class:`repro.cluster.ClusterMetrics`,
the tracer's stage histograms and the cross-process ``stats`` wire op, so this
suite pins the contracts everything else leans on: thread-safety under
concurrent observation, declare-or-get idempotence, snapshot/merge arithmetic
and the exact text exposition format.
"""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    format_stage_table,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_is_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value == 4.0


class TestHistogram:
    def test_count_sum_mean(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 6.5
        assert histogram.mean == pytest.approx(6.5 / 3)

    def test_quantile_is_bucket_bound_clamped_to_observed_range(self):
        histogram = MetricsRegistry().histogram("h")  # default latency buckets
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        # rank ceil(0.5 * 4) = 2 lands in the le=2.5 bucket.
        assert histogram.quantile(0.5) == 2.5
        # The le=5.0 bound would overshoot; the observed max clamps it.
        assert histogram.quantile(0.99) == 4.0
        # The observed min floors a bound below every observation.
        assert histogram.quantile(0.0) >= 1.0

    def test_empty_histogram_quantile_is_zero(self):
        assert MetricsRegistry().histogram("h").quantile(0.5) == 0.0

    def test_buckets_must_be_sorted_and_positive_count(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h", buckets=())
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h2", buckets=(5.0, 1.0))

    def test_default_buckets_are_the_shared_latency_ladder(self):
        histogram = MetricsRegistry().histogram("h")
        assert isinstance(histogram, Histogram)
        assert histogram.bounds == DEFAULT_LATENCY_BUCKETS_MS


class TestFamilies:
    def test_same_labels_return_the_same_child(self):
        family = MetricsRegistry().counter("c_total", labels=("path",))
        assert family.labels(path="a") is family.labels(path="a")
        assert family.labels(path="a") is not family.labels(path="b")

    def test_wrong_label_names_are_rejected(self):
        family = MetricsRegistry().counter("c_total", labels=("path",))
        with pytest.raises(ConfigurationError):
            family.labels(route="a")

    def test_declare_is_idempotent_and_shape_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        assert registry.counter("c_total") is first
        with pytest.raises(ConfigurationError):
            registry.gauge("c_total")  # kind mismatch
        with pytest.raises(ConfigurationError):
            registry.counter("c_total", labels=("path",))  # label mismatch


class TestConcurrency:
    def test_eight_threads_match_serial_totals(self):
        """Concurrent increments and observations lose nothing."""
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total")
        histogram = registry.histogram("hammer_ms", buckets=(1.0, 2.0, 4.0))
        per_thread, threads = 5000, 8

        def hammer(seed: int) -> None:
            for step in range(per_thread):
                counter.inc()
                histogram.observe(float((seed + step) % 5))

        workers = [
            threading.Thread(target=hammer, args=(index,)) for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        total = per_thread * threads
        assert counter.value == total
        assert histogram.count == total
        # Every observation cycles 0..4, so the sum is exactly 2 per value.
        assert histogram.sum == 2.0 * total


class TestSnapshotMerge:
    def test_merge_sums_counters_and_histograms_gauges_last_write(self):
        source = MetricsRegistry()
        source.counter("c_total").inc(3)
        source.gauge("g").set(7.0)
        histogram = source.histogram("h", buckets=(1.0, 5.0))
        histogram.observe(0.5)
        histogram.observe(3.0)
        snapshot = source.snapshot()

        target = MetricsRegistry()
        target.gauge("g").set(1.0)
        target.merge(snapshot)
        target.merge(snapshot)
        assert target.get("c_total").labels().value == 6.0
        assert target.get("g").labels().value == 7.0  # last write wins
        merged_histogram = target.get("h").labels()
        assert merged_histogram.count == 4
        assert merged_histogram.sum == 7.0

    def test_merge_requires_matching_histogram_bounds(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 5.0)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("h", buckets=(2.0, 4.0))
        with pytest.raises(ConfigurationError):
            target.merge(source.snapshot())

    def test_merged_builds_a_fresh_registry(self):
        a = MetricsRegistry()
        a.counter("c_total").inc()
        b = MetricsRegistry()
        b.counter("c_total").inc(4)
        merged = MetricsRegistry.merged([a.snapshot(), b.snapshot()])
        assert merged.get("c_total").labels().value == 5.0


class TestExposition:
    def test_text_format_is_stable(self):
        """Golden test: the Prometheus-style exposition, byte for byte."""
        registry = MetricsRegistry()
        requests = registry.counter("demo_requests_total", "Requests served", labels=("path",))
        requests.labels(path="score").inc(3)
        requests.labels(path="serve").inc()
        registry.gauge("demo_queue_depth", "Queue depth").set(2)
        latency = registry.histogram("demo_latency_ms", "Latency", buckets=(1.0, 2.5, 5.0))
        for value in (0.5, 2.0, 7.5):
            latency.observe(value)
        assert registry.to_text() == (
            "# HELP demo_latency_ms Latency\n"
            "# TYPE demo_latency_ms histogram\n"
            'demo_latency_ms_bucket{le="1"} 1\n'
            'demo_latency_ms_bucket{le="2.5"} 2\n'
            'demo_latency_ms_bucket{le="5"} 2\n'
            'demo_latency_ms_bucket{le="+Inf"} 3\n'
            "demo_latency_ms_sum 10\n"
            "demo_latency_ms_count 3\n"
            "# HELP demo_queue_depth Queue depth\n"
            "# TYPE demo_queue_depth gauge\n"
            "demo_queue_depth 2\n"
            "# HELP demo_requests_total Requests served\n"
            "# TYPE demo_requests_total counter\n"
            'demo_requests_total{path="score"} 3\n'
            'demo_requests_total{path="serve"} 1\n'
        )

    def test_stage_table_sorts_heaviest_first(self):
        registry = MetricsRegistry()
        stages = registry.histogram("repro_stage_latency_ms", labels=("stage",))
        stages.labels(stage="gather").observe(10.0)
        stages.labels(stage="score").observe(1.0)
        stages.labels(stage="score").observe(1.0)
        table = format_stage_table(registry)
        lines = table.splitlines()
        assert lines[0].split() == ["stage", "count", "total", "ms", "mean", "ms", "p50", "ms", "p99", "ms"]
        assert lines[1].startswith("gather")
        assert lines[2].startswith("score")

    def test_stage_table_without_stage_metric_is_empty(self):
        assert format_stage_table(MetricsRegistry()) == ""
