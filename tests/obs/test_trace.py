"""Tests for the ``repro.obs`` tracer: spans, activation, hooks, fake clocks."""

import pytest

from repro.obs import (
    STAGE_GATHER,
    STAGE_SCORE,
    STAGES,
    STORE_EVENTS,
    EVENT_HOT_HIT,
    MetricsRegistry,
    Tracer,
    get_tracer,
    tracing,
)
from repro.obs.trace import _NOOP_STAGE


class FakeClock:
    """A monotonic clock that advances only when told — exact durations."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDisabled:
    def test_stage_is_the_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.stage(STAGE_GATHER) is _NOOP_STAGE
        assert tracer.stage(STAGE_SCORE) is _NOOP_STAGE
        with tracer.stage(STAGE_GATHER):
            pass
        assert tracer.registry.get("repro_stage_latency_ms").samples() == []

    def test_record_stage_is_a_noop_when_disabled(self):
        tracer = Tracer(enabled=False)
        trace = tracer.start_trace()
        tracer.record_stage(STAGE_SCORE, 5.0, traces=[trace])
        assert trace.spans == []


class TestStageTiming:
    def test_fake_clock_gives_exact_durations(self):
        clock = FakeClock()
        tracer = Tracer(enabled=True, time_fn=clock)
        trace = tracer.start_trace()
        with tracer.activate(trace):
            with tracer.stage(STAGE_GATHER):
                clock.advance(0.002)
        (span,) = trace.spans
        assert span.name == STAGE_GATHER
        assert span.duration_ms == pytest.approx(2.0)
        assert span.start_ms == pytest.approx(0.0)
        histogram = tracer.registry.get("repro_stage_latency_ms").labels(
            stage=STAGE_GATHER
        )
        assert histogram.count == 1
        assert histogram.sum == pytest.approx(2.0)

    def test_nested_stages_record_parent_ids(self):
        clock = FakeClock()
        tracer = Tracer(enabled=True, time_fn=clock)
        trace = tracer.start_trace()
        with tracer.activate(trace):
            with tracer.stage(STAGE_GATHER):
                with tracer.stage("featurize"):
                    clock.advance(0.001)
        inner, outer = trace.spans  # inner exits (and records) first
        assert inner.name == "featurize"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_stage_without_activation_feeds_only_the_registry(self):
        clock = FakeClock()
        tracer = Tracer(enabled=True, time_fn=clock)
        with tracer.stage(STAGE_SCORE):
            clock.advance(0.001)
        histogram = tracer.registry.get("repro_stage_latency_ms").labels(
            stage=STAGE_SCORE
        )
        assert histogram.count == 1
        assert tracer.current_trace() is None

    def test_record_stage_lands_in_registry_and_every_trace(self):
        tracer = Tracer(enabled=True)
        traces = [tracer.start_trace(), None, tracer.start_trace()]
        tracer.record_stage(STAGE_SCORE, 3.0, traces=traces)
        assert traces[0].duration_of(STAGE_SCORE) == 3.0
        assert traces[2].duration_of(STAGE_SCORE) == 3.0
        histogram = tracer.registry.get("repro_stage_latency_ms").labels(
            stage=STAGE_SCORE
        )
        assert histogram.count == 1  # one shared measurement, counted once

    def test_record_event_feeds_the_event_histogram(self):
        tracer = Tracer(enabled=True)
        tracer.record_event(EVENT_HOT_HIT, 0.25)
        histogram = tracer.registry.get("repro_store_event_ms").labels(
            event=EVENT_HOT_HIT
        )
        assert histogram.count == 1


class TestTraceObject:
    def test_report_shape(self):
        tracer = Tracer(enabled=True)
        trace = tracer.start_trace(trace_id="abc123")
        trace.add(STAGE_GATHER, 1.5)
        report = trace.report()
        assert report == {"trace_id": "abc123", "stages": [[STAGE_GATHER, 1.5]]}

    def test_adopted_trace_id_round_trips(self):
        tracer = Tracer(enabled=True)
        assert tracer.start_trace(trace_id="wire-id").trace_id == "wire-id"

    def test_taxonomies_are_disjoint(self):
        assert not STAGES & STORE_EVENTS


class TestSlowHooks:
    def test_on_slow_fires_above_threshold_only(self):
        tracer = Tracer(enabled=True)
        seen = []
        tracer.on_slow(10.0, lambda trace, ms: seen.append((trace.trace_id, ms)))
        fast, slow = tracer.start_trace("fast"), tracer.start_trace("slow")
        tracer.finish(fast, total_ms=5.0)
        tracer.finish(slow, total_ms=25.0)
        assert seen == [("slow", 25.0)]

    def test_hook_exceptions_never_break_serving(self):
        tracer = Tracer(enabled=True)

        def explode(trace, ms):
            raise RuntimeError("observability must not take down the path")

        tracer.on_slow(0.0, explode)
        tracer.finish(tracer.start_trace(), total_ms=1.0)  # must not raise


class TestScopedTracing:
    def test_tracing_swaps_and_restores_the_process_tracer(self):
        before = get_tracer()
        with tracing() as scoped:
            assert get_tracer() is scoped
            assert scoped.enabled
            assert scoped.registry is not before.registry
        assert get_tracer() is before

    def test_tracing_accepts_an_explicit_registry_and_clock(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        with tracing(registry=registry, time_fn=clock) as scoped:
            with scoped.stage(STAGE_GATHER):
                clock.advance(0.004)
        histogram = registry.get("repro_stage_latency_ms").labels(stage=STAGE_GATHER)
        assert histogram.sum == pytest.approx(4.0)
