"""Tests for the memmap arena cold tier: persistence, tombstones, crash safety."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.store import ArenaStore, FeatureStore


def key(uid, rev=0, ts=0.0):
    return (uid, float(ts), "content", 1, rev)


def row(value, dim=4):
    return np.full(dim, float(value))


def test_satisfies_the_protocol(tmp_path):
    assert isinstance(ArenaStore(tmp_path), FeatureStore)


def test_materialises_lazily_on_first_put(tmp_path):
    arena = ArenaStore(tmp_path / "arena")
    assert not (tmp_path / "arena").exists()  # nothing on disk yet
    arena.put(key(1), row(1.0))
    assert (tmp_path / "arena" / "header.json").exists()
    assert (tmp_path / "arena" / "arena.dat").exists()
    assert np.array_equal(arena.get(key(1)), row(1.0))


def test_rows_survive_close_and_reopen(tmp_path):
    with ArenaStore(tmp_path) as arena:
        arena.put(key(1), row(1.0))
        arena.put(key(2), row(2.0))
    reopened = ArenaStore(tmp_path)
    assert len(reopened) == 2
    assert np.array_equal(reopened.get(key(2)), row(2.0))


def test_rows_survive_without_close_process_crash_semantics(tmp_path):
    arena = ArenaStore(tmp_path)
    arena.put(key(1), row(1.0))
    # No close(), no sync(): simulate the owner dying.  The log was flushed
    # per put and the memmap pages live in the shared page cache, so a new
    # mapping of the same files sees everything.
    del arena
    reopened = ArenaStore(tmp_path)
    assert np.array_equal(reopened.get(key(1)), row(1.0))


def test_replay_tolerates_a_torn_log_tail(tmp_path):
    with ArenaStore(tmp_path) as arena:
        arena.put(key(1), row(1.0))
        arena.put(key(2), row(2.0))
    log = tmp_path / "index.log"
    log.write_text(log.read_text() + '{"op": "put", "key": [3, 0.0, "c')  # torn line
    reopened = ArenaStore(tmp_path)
    assert len(reopened) == 2  # the torn record is skipped, not fatal


def test_replay_refuses_mid_file_corruption(tmp_path):
    """Only a torn *tail* is a crash artefact; damage earlier in the log
    could swallow a del record and alias two keys onto one recycled slot,
    so mapping must fail instead of serving another key's bytes."""
    with ArenaStore(tmp_path) as arena:
        arena.put(key(1), row(1.0))
        arena.put(key(2), row(2.0))
    log = tmp_path / "index.log"
    lines = log.read_text().splitlines()
    lines.insert(1, "not a json record")
    log.write_text("\n".join(lines) + "\n")
    with pytest.raises(ConfigurationError):
        ArenaStore(tmp_path)


def test_read_only_mapping_serves_reads_and_refuses_writes(tmp_path):
    with ArenaStore(tmp_path) as arena:
        arena.put(key(1), row(1.0))
    readonly = ArenaStore(tmp_path, mode="r")
    assert not readonly.writable
    assert np.array_equal(readonly.get(key(1)), row(1.0))
    with pytest.raises(ConfigurationError):
        readonly.put(key(2), row(2.0))
    with pytest.raises(ConfigurationError):
        readonly.clear()


def test_read_only_requires_an_existing_arena(tmp_path):
    with pytest.raises(ConfigurationError):
        ArenaStore(tmp_path / "nothing-here", mode="r")


def test_tombstone_invalidation_recycles_slots(tmp_path):
    arena = ArenaStore(tmp_path, capacity=2)
    arena.put(key(1), row(1.0))
    arena.put(key(2), row(2.0))
    assert arena.invalidate([1]) == 1
    assert key(1) not in arena
    arena.put(key(3), row(3.0))  # reuses the tombstoned slot, no eviction
    assert key(2) in arena and key(3) in arena


def test_full_arena_evicts_fifo(tmp_path):
    arena = ArenaStore(tmp_path, capacity=2)
    arena.put(key(1), row(1.0))
    arena.put(key(2), row(2.0))
    arena.put(key(3), row(3.0))
    assert key(1) not in arena  # oldest insertion overwritten
    assert np.array_equal(arena.get(key(3)), row(3.0))
    assert len(arena) == 2


def test_refreshing_a_key_rejoins_the_fifo_tail(tmp_path):
    arena = ArenaStore(tmp_path, capacity=2)
    arena.put(key(1), row(1.0))
    arena.put(key(2), row(2.0))
    arena.put(key(1), row(1.5))  # refresh: key 2 is now the oldest
    arena.put(key(3), row(3.0))
    assert key(1) in arena and key(2) not in arena
    assert np.array_equal(arena.get(key(1)), row(1.5))


def test_invalidate_stale_sweeps_superseded_revisions(tmp_path):
    arena = ArenaStore(tmp_path)
    arena.put(key(1, rev=1), row(1.0))
    arena.put(key(1, rev=4, ts=9.0), row(4.0))
    assert arena.invalidate_stale() == 1
    assert key(1, rev=4, ts=9.0) in arena


def test_tombstones_survive_restart(tmp_path):
    arena = ArenaStore(tmp_path)
    arena.put(key(1), row(1.0))
    arena.put(key(2), row(2.0))
    arena.invalidate([1])
    del arena  # crash: del records were already flushed
    reopened = ArenaStore(tmp_path)
    assert key(1) not in reopened
    assert key(2) in reopened


def test_close_compacts_the_log(tmp_path):
    arena = ArenaStore(tmp_path)
    for _ in range(5):
        arena.put(key(1), row(1.0))  # 5 log records, 1 live row
    arena.close()
    lines = (tmp_path / "index.log").read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["op"] == "put"


def test_export_copies_rows_out_of_the_mapping(tmp_path):
    arena = ArenaStore(tmp_path)
    arena.put(key(1), row(1.0))
    exported = arena.export()
    arena.put(key(1), row(9.0))  # overwrite the slot in place
    assert np.array_equal(exported[key(1)], row(1.0))


def test_rejects_corrupt_header_and_wrong_dim(tmp_path):
    arena = ArenaStore(tmp_path)
    arena.put(key(1), row(1.0, dim=4))
    with pytest.raises(ConfigurationError):
        arena.put(key(2), row(2.0, dim=5))
    arena.close()
    (tmp_path / "header.json").write_text("not json")
    with pytest.raises(ConfigurationError):
        ArenaStore(tmp_path)


def test_stats_report_cold_occupancy(tmp_path):
    arena = ArenaStore(tmp_path)
    arena.put(key(1), row(1.0))
    arena.put(key(2), row(2.0))
    stats = arena.stats()
    assert stats.cold_size == 2
    assert stats.size == 0  # the arena is nobody's hot tier
