"""Tests for the tiered store: promotion, demotion, write-through, concurrency."""

import threading

import numpy as np
import pytest

from repro.store import ArenaStore, FeatureStore, HotStore, TieredStore


def key(uid, rev=0, ts=0.0):
    return (uid, float(ts), "content", 1, rev)


def row(value, dim=4):
    return np.full(dim, float(value))


@pytest.fixture()
def tiered(tmp_path):
    return TieredStore(HotStore(4), ArenaStore(tmp_path, capacity=64))


def test_satisfies_the_protocol(tiered):
    assert isinstance(tiered, FeatureStore)


def test_degenerates_to_plain_lru_without_a_cold_tier():
    store = TieredStore(HotStore(2))
    store.put(key(1), row(1.0))
    store.put(key(2), row(2.0))
    store.put(key(3), row(3.0))  # evicts key 1 — and there is nowhere to demote
    assert store.get(key(1)) is None
    stats = store.stats()
    assert stats.evictions == 1
    assert stats.demotions == 0 and stats.cold_size == 0


def test_put_writes_through_to_the_cold_tier(tiered):
    tiered.put(key(1), row(1.0))
    assert key(1) in tiered.cold  # durable immediately, not only on eviction
    assert len(tiered.hot) == 1
    assert tiered.stats().cold_size == 1


def test_cold_hit_promotes_back_into_ram(tiered):
    tiered.put(key(1), row(1.0))
    tiered.hot.clear()  # simulate the RAM tier restarting empty
    got = tiered.get(key(1))
    assert np.array_equal(got, row(1.0))
    stats = tiered.stats()
    assert stats.cold_hits == 1 and stats.promotions == 1
    assert key(1) in tiered.hot  # resident again: the next get is a hot hit
    tiered.get(key(1))
    assert tiered.stats().hot_hits == 1


def test_promoted_rows_are_copies_not_arena_views(tiered):
    tiered.put(key(1), row(1.0))
    tiered.hot.clear()
    promoted = tiered.get(key(1))
    tiered.cold.put(key(1), row(9.0))  # overwrite the slot in place
    assert np.array_equal(promoted, row(1.0))


def test_eviction_demotes_instead_of_dropping(tmp_path):
    tiered = TieredStore(HotStore(2), ArenaStore(tmp_path))
    for uid in range(3):
        tiered.put(key(uid), row(uid))
    stats = tiered.stats()
    assert stats.evictions == 1 and stats.demotions == 1
    assert key(0) not in tiered.hot
    assert np.array_equal(tiered.get(key(0)), row(0))  # cold-served, then promoted


def test_capacity_zero_hot_tier_still_serves_from_cold(tmp_path):
    tiered = TieredStore(HotStore(0), ArenaStore(tmp_path))
    tiered.put(key(1), row(1.0))
    assert len(tiered.hot) == 0
    assert np.array_equal(tiered.get(key(1)), row(1.0))
    stats = tiered.stats()
    assert stats.cold_hits == 1 and stats.promotions == 0  # nowhere to promote


def test_invalidate_counts_distinct_keys_across_tiers(tiered):
    tiered.put(key(1, rev=0), row(1.0))
    tiered.put(key(1, rev=1, ts=5.0), row(1.5))
    tiered.put(key(2), row(2.0))
    # key(1, rev=0) lives in both tiers: it must count once, not twice.
    assert tiered.invalidate([1]) == 2
    assert key(1, rev=0) not in tiered
    assert tiered.get(key(1, rev=0)) is None  # the cold copy is gone too
    assert key(2) in tiered


def test_invalidate_stale_sweeps_both_tiers(tiered):
    tiered.put(key(1, rev=1), row(1.0))
    tiered.put(key(1, rev=2, ts=9.0), row(2.0))
    assert tiered.invalidate_stale() == 1
    assert tiered.get(key(1, rev=1)) is None
    assert key(1, rev=2, ts=9.0) in tiered


def test_read_only_cold_tier_serves_but_is_never_mutated(tmp_path):
    with ArenaStore(tmp_path) as writer:
        writer.put(key(1), row(1.0))
    tiered = TieredStore(HotStore(2), ArenaStore(tmp_path, mode="r"))
    assert np.array_equal(tiered.get(key(1)), row(1.0))  # promoted from cold
    tiered.put(key(2), row(2.0))  # hot-only: the mapping is read-only
    assert tiered.invalidate([1]) == 1  # hot copy dropped, cold copy tombstoned
    assert len(tiered.cold) == 1  # the shared arena file itself is untouched


def test_invalidate_against_read_only_cold_does_not_resurrect(tmp_path):
    """A dropped key must stay dead: promotion cannot undo invalidation."""
    with ArenaStore(tmp_path) as writer:
        writer.put(key(1), row(1.0))
        writer.put(key(2), row(2.0))
    tiered = TieredStore(HotStore(4), ArenaStore(tmp_path, mode="r"))
    assert tiered.invalidate([1]) == 1
    assert tiered.get(key(1)) is None  # no cold-hit resurrection
    assert key(1) not in tiered
    assert np.array_equal(tiered.get(key(2)), row(2.0))  # others unaffected
    assert len(tiered.cold) == 2  # arena untouched, key 1 just dead here
    assert tiered.stats().cold_size == 1
    tiered.put(key(1), row(1.5))  # a fresh row supersedes the drop
    assert np.array_equal(tiered.get(key(1)), row(1.5))


def test_invalidate_stale_and_clear_tombstone_read_only_cold(tmp_path):
    with ArenaStore(tmp_path) as writer:
        writer.put(key(1, rev=1), row(1.0))
        writer.put(key(1, rev=2, ts=9.0), row(2.0))
    tiered = TieredStore(HotStore(4), ArenaStore(tmp_path, mode="r"))
    assert tiered.invalidate_stale() == 1
    assert tiered.get(key(1, rev=1)) is None
    assert np.array_equal(tiered.get(key(1, rev=2, ts=9.0)), row(2.0))
    tiered.clear()
    assert tiered.get(key(1, rev=2, ts=9.0)) is None
    assert len(tiered.cold) == 2  # both rows still live for other mappers


def test_export_is_hot_tier_sized(tiered):
    for uid in range(6):  # 6 puts through a 4-row hot tier
        tiered.put(key(uid), row(uid))
    assert len(tiered.export()) == 4
    assert tiered.stats().cold_size == 6


def test_import_rows_lands_in_both_tiers(tiered):
    assert tiered.import_rows({key(uid): row(uid) for uid in range(6)}) == 6
    assert len(tiered.hot) == 4
    assert len(tiered.cold) == 6  # the overflow is cold-served, not lost


def test_clear_empties_both_tiers(tiered):
    tiered.put(key(1), row(1.0))
    tiered.clear()
    assert len(tiered.hot) == 0 and len(tiered.cold) == 0
    assert tiered.get(key(1)) is None


def test_eight_thread_mixed_traffic_stays_consistent(tmp_path):
    """8 threads of interleaved get/put/invalidate leave no torn state.

    Every row is ``full(dim, uid)``, so any successfully read row must be
    internally uniform and match its key — a torn read, cross-key mix-up, or
    slot aliasing would break that invariant immediately.
    """
    tiered = TieredStore(HotStore(32), ArenaStore(tmp_path, capacity=256))
    uids = list(range(24))
    errors = []
    barrier = threading.Barrier(8)

    def worker(seed):
        rng = np.random.default_rng(seed)
        barrier.wait()
        try:
            for step in range(300):
                uid = int(rng.choice(uids))
                action = step % 3
                if action == 0:
                    tiered.put(key(uid), np.full(4, float(uid)))
                elif action == 1:
                    got = tiered.get(key(uid))
                    if got is not None:
                        copied = np.array(got)
                        if not np.all(copied == float(uid)):
                            errors.append((uid, copied))
                else:
                    tiered.invalidate([uid])
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[:3]

    # And the store is still fully functional afterwards.
    tiered.put(key(999), row(7.0))
    assert np.array_equal(tiered.get(key(999)), row(7.0))
    stats = tiered.stats()
    assert stats.size == len(tiered.hot)
    assert stats.cold_size == len(tiered.cold)
