"""Tests for the hot (in-RAM LRU) feature-store tier."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.store import FeatureStore, HotStore, StoreStats


def key(uid, rev=0, ts=0.0):
    return (uid, float(ts), "content", 1, rev)


def row(value, dim=4):
    return np.full(dim, float(value))


def test_satisfies_the_protocol():
    assert isinstance(HotStore(4), FeatureStore)


def test_rejects_negative_capacity():
    with pytest.raises(ConfigurationError):
        HotStore(-1)


def test_get_put_round_trip_and_hit_accounting():
    store = HotStore(4)
    assert store.get(key(1)) is None
    store.put(key(1), row(1.0))
    assert np.array_equal(store.get(key(1)), row(1.0))
    stats = store.stats()
    assert stats == StoreStats(size=1, maxsize=4, evictions=0, hot_hits=1)


def test_put_takes_ownership_without_copy_by_default():
    store = HotStore(4)
    owned = row(1.0)
    store.put(key(1), owned)
    assert store.get(key(1)) is owned


def test_put_copies_views_so_one_row_never_pins_its_base_batch():
    store = HotStore(4)
    batch = np.arange(12.0).reshape(3, 4)  # a featurized (B, D) batch
    store.put(key(1), batch[0])
    cached = store.get(key(1))
    assert cached.base is None  # no reference into the batch keeps it alive
    batch[0] = -1.0
    assert np.array_equal(cached, np.arange(4.0))


def test_put_copy_true_defends_against_borrowed_rows():
    store = HotStore(4)
    borrowed = row(1.0)
    store.put(key(1), borrowed, copy=True)
    borrowed[:] = -1.0
    assert np.array_equal(store.get(key(1)), row(1.0))


def test_lru_eviction_drops_coldest_first():
    evicted = []
    store = HotStore(2, on_evict=lambda k, r: evicted.append(k))
    store.put(key(1), row(1.0))
    store.put(key(2), row(2.0))
    store.get(key(1))  # refresh: key 2 becomes the coldest
    store.put(key(3), row(3.0))
    assert evicted == [key(2)]
    assert key(2) not in store
    assert store.stats().evictions == 1


def test_capacity_zero_is_a_no_op_cache():
    store = HotStore(0)
    store.put(key(1), row(1.0))
    assert len(store) == 0
    assert store.stats().evictions == 0  # dropped puts are not "evictions"
    assert store.import_rows({key(2): row(2.0)}) == 0


def test_invalidate_drops_all_rows_of_the_uids():
    store = HotStore(8)
    store.put(key(1, rev=0), row(1.0))
    store.put(key(1, rev=1, ts=5.0), row(1.5))
    store.put(key(2), row(2.0))
    assert store.invalidate([1]) == 2
    assert len(store) == 1
    assert key(2) in store
    assert store.invalidate([1]) == 0  # already gone


def test_invalidate_stale_keeps_the_watermark_revision():
    store = HotStore(8)
    store.put(key(1, rev=1), row(1.0))
    store.put(key(1, rev=3, ts=9.0), row(3.0))
    store.put(key(2, rev=-1), row(2.0))  # unrevisioned: never stale
    assert store.invalidate_stale() == 1
    assert key(1, rev=3, ts=9.0) in store
    assert key(2, rev=-1) in store


def test_export_import_round_trip_preserves_lru_order():
    source = HotStore(4)
    for uid in range(3):
        source.put(key(uid), row(uid))
    exported = source.export()
    assert list(exported) == [key(0), key(1), key(2)]  # coldest first
    target = HotStore(4)
    assert target.import_rows(exported) == 3
    assert np.array_equal(target.get(key(2)), row(2))


def test_import_respects_the_bound():
    target = HotStore(2)
    imported = target.import_rows({key(uid): row(uid) for uid in range(5)})
    assert imported == 2  # only the hottest (last-iterated) tail survives
    assert key(3) in target and key(4) in target


def test_clear_drops_rows_but_keeps_counters():
    store = HotStore(2)
    store.put(key(1), row(1.0))
    store.get(key(1))
    store.clear()
    assert len(store) == 0
    assert store.stats().hot_hits == 1
