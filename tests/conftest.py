"""Shared fixtures for the test suite.

Dataset generation and pipeline training are the expensive pieces, so the tiny
dataset and a fitted pipeline are session-scoped and shared by every test that
only needs *a* trained model rather than a specific configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.colocation import CoLocationPipeline, JudgeConfig, PipelineConfig
from repro.data import build_dataset, tiny_dataset_config
from repro.data.city import CityConfig, generate_city
from repro.features import HisRectConfig
from repro.geo import GeoPoint, POI, POIRegistry, BoundingPolygon
from repro.ssl import SSLTrainingConfig
from repro.text.skipgram import SkipGramConfig


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_registry() -> POIRegistry:
    """Five POIs laid out on a line, ~400 m apart."""
    center = GeoPoint(40.75, -73.99)
    pois = []
    for pid in range(5):
        poi_center = center.offset(north_m=0.0, east_m=400.0 * pid)
        polygon = BoundingPolygon.regular(poi_center, radius_m=80.0, sides=8)
        pois.append(POI(pid=pid, name=f"poi_{pid}", polygon=polygon, center=poi_center, category="cafe"))
    return POIRegistry(pois)


@pytest.fixture(scope="session")
def small_city():
    """A deterministic 8-POI synthetic city."""
    return generate_city(CityConfig(num_pois=8, num_neighborhoods=2, seed=3))


@pytest.fixture(scope="session")
def tiny_dataset():
    """The tiny synthetic dataset used across integration tests."""
    return build_dataset(tiny_dataset_config(seed=5))


@pytest.fixture(scope="session")
def tiny_pipeline_config() -> PipelineConfig:
    return PipelineConfig(
        hisrect=HisRectConfig(content_dim=8, feature_dim=16, embedding_dim=8),
        ssl=SSLTrainingConfig(batch_size=4, max_iterations=25),
        judge=JudgeConfig(epochs=6),
        skipgram=SkipGramConfig(embedding_dim=12, epochs=1),
    )


@pytest.fixture(scope="session")
def fitted_pipeline(tiny_dataset, tiny_pipeline_config):
    """A HisRect pipeline fitted on the tiny dataset (shared, do not mutate)."""
    return CoLocationPipeline(tiny_pipeline_config).fit(tiny_dataset)
