"""Tests for the historical-visit features (Eq. 1-2) and the one-hot alternative."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Profile, Tweet, Visit
from repro.features import HistoricalVisitFeaturizer, HistoryFeatureConfig, OneHotHistoryFeaturizer


def profile_with_history(visits, ts=10_000.0, uid=1):
    tweet = Tweet(uid=uid, ts=ts, content="x", lat=None, lon=None)
    return Profile(uid=uid, tweet=tweet, visit_history=tuple(visits))


class TestHistoricalVisitFeaturizer:
    def test_dimension_matches_registry(self, small_registry):
        featurizer = HistoricalVisitFeaturizer(small_registry)
        assert featurizer.dimension == len(small_registry)

    def test_empty_history_is_uniform_unit_vector(self, small_registry):
        featurizer = HistoricalVisitFeaturizer(small_registry)
        fv = featurizer.featurize(profile_with_history([]))
        assert fv.shape == (5,)
        assert np.linalg.norm(fv) == pytest.approx(1.0)
        assert np.allclose(fv, fv[0])

    def test_feature_is_unit_norm(self, small_registry):
        featurizer = HistoricalVisitFeaturizer(small_registry)
        poi = small_registry.get(2)
        fv = featurizer.featurize(profile_with_history([Visit(100.0, poi.center.lat, poi.center.lon)]))
        assert np.linalg.norm(fv) == pytest.approx(1.0)

    def test_visited_poi_gets_largest_weight(self, small_registry):
        featurizer = HistoricalVisitFeaturizer(small_registry)
        poi = small_registry.get(3)
        fv = featurizer.featurize(profile_with_history([Visit(9000.0, poi.center.lat, poi.center.lon)]))
        assert fv.argmax() == small_registry.index_of(3)

    def test_recent_visits_dominate_old_visits(self, small_registry):
        config = HistoryFeatureConfig(eps_t=3600.0)
        featurizer = HistoricalVisitFeaturizer(small_registry, config)
        poi_old = small_registry.get(0)
        poi_new = small_registry.get(4)
        visits = [
            Visit(0.0, poi_old.center.lat, poi_old.center.lon),       # very old
            Visit(9_900.0, poi_new.center.lat, poi_new.center.lon),   # recent
        ]
        fv = featurizer.featurize(profile_with_history(visits))
        assert fv[small_registry.index_of(4)] > fv[small_registry.index_of(0)]

    def test_visit_relevance_decreases_with_distance(self, small_registry):
        featurizer = HistoricalVisitFeaturizer(small_registry)
        poi = small_registry.get(0)
        w = featurizer.visit_relevance(poi.center.lat, poi.center.lon)
        # POIs are on a line with increasing distance from POI 0.
        assert np.all(np.diff(w) <= 1e-12)

    def test_batch_shape(self, small_registry):
        featurizer = HistoricalVisitFeaturizer(small_registry)
        profiles = [profile_with_history([]) for _ in range(3)]
        assert featurizer.featurize_batch(profiles).shape == (3, 5)

    def test_invalid_smoothing_rejected(self, small_registry):
        with pytest.raises(ValueError):
            HistoricalVisitFeaturizer(small_registry, HistoryFeatureConfig(eps_d=0.0))

    @given(n_visits=st.integers(min_value=0, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_feature_always_unit_norm(self, small_registry, n_visits):
        featurizer = HistoricalVisitFeaturizer(small_registry)
        poi = small_registry.get(1)
        visits = [Visit(float(i), poi.center.lat, poi.center.lon) for i in range(n_visits)]
        fv = featurizer.featurize(profile_with_history(visits))
        assert np.linalg.norm(fv) == pytest.approx(1.0)


class TestOneHotHistoryFeaturizer:
    def test_counts_only_contained_visits(self, small_registry):
        featurizer = OneHotHistoryFeaturizer(small_registry)
        poi = small_registry.get(1)
        off_poi = poi.center.offset(5000.0, 5000.0)
        visits = [
            Visit(1.0, poi.center.lat, poi.center.lon),
            Visit(2.0, off_poi.lat, off_poi.lon),
        ]
        fv = featurizer.featurize(profile_with_history(visits))
        assert fv.argmax() == small_registry.index_of(1)
        assert np.linalg.norm(fv) == pytest.approx(1.0)

    def test_no_history_uniform(self, small_registry):
        fv = OneHotHistoryFeaturizer(small_registry).featurize(profile_with_history([]))
        assert np.allclose(fv, fv[0])

    def test_ignores_recency(self, small_registry):
        featurizer = OneHotHistoryFeaturizer(small_registry)
        poi = small_registry.get(1)
        recent = featurizer.featurize(profile_with_history([Visit(9999.0, poi.center.lat, poi.center.lon)]))
        old = featurizer.featurize(profile_with_history([Visit(1.0, poi.center.lat, poi.center.lon)]))
        np.testing.assert_allclose(recent, old)
