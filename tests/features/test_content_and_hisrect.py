"""Tests for the content encoders and the HisRect featurizer stack."""

import numpy as np
import pytest

from repro.data import Profile, Tweet, Visit
from repro.errors import ConfigurationError
from repro.features import (
    BiLSTMCContentEncoder,
    BLSTMContentEncoder,
    ContentEncoderConfig,
    ConvLSTMContentEncoder,
    EmbeddingNetwork,
    HisRectConfig,
    HisRectFeaturizer,
    POIClassifier,
    TextVectorizer,
    make_content_encoder,
)
from repro.text import SkipGramConfig, SkipGramModel, Tokenizer, Vocabulary


@pytest.fixture(scope="module")
def vectorizer():
    corpus = [["coffee", "latte", "museum", "exhibit", "park", "sunny"]] * 30
    vocab = Vocabulary.build(corpus, min_count=1)
    skipgram = SkipGramModel(vocab, SkipGramConfig(embedding_dim=10, epochs=1, seed=0))
    skipgram.train([vocab.encode(s) for s in corpus])
    return TextVectorizer(vocab, skipgram, tokenizer=Tokenizer(), max_tokens=12, min_tokens=4)


def profile(content="coffee latte museum", uid=1, ts=100.0, history=()):
    tweet = Tweet(uid=uid, ts=ts, content=content)
    return Profile(uid=uid, tweet=tweet, visit_history=tuple(history))


class TestTextVectorizer:
    def test_vectorize_shape(self, vectorizer):
        matrix = vectorizer.vectorize(profile("coffee latte museum exhibit"))
        assert matrix.shape[1] == 10
        assert matrix.shape[0] >= 4

    def test_empty_content_padded(self, vectorizer):
        matrix = vectorizer.vectorize(profile(""))
        assert matrix.shape == (4, 10)

    def test_truncates_long_tweets(self, vectorizer):
        matrix = vectorizer.vectorize(profile("coffee " * 50))
        assert matrix.shape[0] == 12

    def test_cache_returns_same_array(self, vectorizer):
        p = profile("coffee latte")
        assert vectorizer.vectorize(p) is vectorizer.vectorize(p)


class TestContentEncoders:
    @pytest.mark.parametrize("encoder_cls", [BiLSTMCContentEncoder, BLSTMContentEncoder, ConvLSTMContentEncoder])
    def test_output_dimension(self, vectorizer, encoder_cls):
        encoder = encoder_cls(vectorizer, ContentEncoderConfig(feature_dim=6, seed=1))
        out = encoder.encode(profile("coffee latte museum exhibit park"))
        assert out.shape == (6,)

    def test_factory_known_and_unknown(self, vectorizer):
        assert isinstance(make_content_encoder("bilstm-c", vectorizer), BiLSTMCContentEncoder)
        with pytest.raises(ValueError):
            make_content_encoder("transformer", vectorizer)

    def test_gradients_reach_lstm(self, vectorizer):
        encoder = BiLSTMCContentEncoder(vectorizer, ContentEncoderConfig(feature_dim=6, seed=1))
        out = encoder.encode(profile("coffee latte museum exhibit"))
        (out * out).sum().backward()
        assert any(p.grad is not None for p in encoder.parameters())


class TestHisRectFeaturizer:
    def test_full_feature_shape(self, small_registry, vectorizer):
        featurizer = HisRectFeaturizer(
            small_registry, vectorizer, HisRectConfig(content_dim=6, feature_dim=12)
        )
        features = featurizer.featurize([profile("coffee latte museum"), profile("park sunny", uid=2)])
        assert features.shape == (2, 12)

    def test_history_only_variant_needs_no_vectorizer(self, small_registry):
        featurizer = HisRectFeaturizer(
            small_registry, None, HisRectConfig(use_content=False, feature_dim=12)
        )
        features = featurizer.featurize([profile()])
        assert features.shape == (1, 12)

    def test_content_required_when_enabled(self, small_registry):
        with pytest.raises(ConfigurationError):
            HisRectFeaturizer(small_registry, None, HisRectConfig(use_content=True))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            HisRectConfig(use_history=False, use_content=False)
        with pytest.raises(ConfigurationError):
            HisRectConfig(history_encoding="bogus")
        with pytest.raises(ConfigurationError):
            HisRectConfig(num_fc_layers=0)

    def test_onehot_history_variant(self, small_registry, vectorizer):
        featurizer = HisRectFeaturizer(
            small_registry, vectorizer,
            HisRectConfig(history_encoding="onehot", content_dim=6, feature_dim=12),
        )
        poi = small_registry.get(0)
        p = profile(history=[Visit(1.0, poi.center.lat, poi.center.lon)])
        assert featurizer.featurize([p]).shape == (1, 12)

    def test_forward_requires_profiles(self, small_registry, vectorizer):
        featurizer = HisRectFeaturizer(small_registry, vectorizer, HisRectConfig(content_dim=6, feature_dim=12))
        with pytest.raises(ValueError):
            featurizer([])

    def test_history_profiles_differ_by_visits(self, small_registry, vectorizer):
        featurizer = HisRectFeaturizer(
            small_registry, vectorizer, HisRectConfig(content_dim=6, feature_dim=12, keep_prob=1.0)
        )
        poi0 = small_registry.get(0)
        poi4 = small_registry.get(4)
        p_a = profile(history=[Visit(1.0, poi0.center.lat, poi0.center.lon)], uid=1)
        p_b = profile(history=[Visit(1.0, poi4.center.lat, poi4.center.lon)], uid=2)
        features = featurizer.featurize([p_a, p_b])
        assert not np.allclose(features[0], features[1])


class TestPOIClassifierAndEmbedding:
    def test_classifier_shapes(self):
        classifier = POIClassifier(feature_dim=8, num_pois=5, seed=1)
        features = np.random.default_rng(0).normal(size=(4, 8))
        proba = classifier.predict_proba(features)
        assert proba.shape == (4, 5)
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(4), atol=1e-9)
        assert classifier.predict(features).shape == (4,)

    def test_embedding_normalised(self):
        embedding = EmbeddingNetwork(input_dim=8, embedding_dim=4, seed=1)
        from repro.nn import Tensor

        out = embedding(Tensor(np.random.default_rng(0).normal(size=(3, 8)))).data
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), np.ones(3), atol=1e-6)

    def test_embedding_unnormalised_option(self):
        embedding = EmbeddingNetwork(input_dim=8, embedding_dim=4, normalize=False, seed=1)
        from repro.nn import Tensor

        out = embedding(Tensor(np.random.default_rng(0).normal(size=(3, 8)))).data
        assert not np.allclose(np.linalg.norm(out, axis=1), np.ones(3))
