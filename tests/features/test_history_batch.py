"""Equivalence tests for the vectorised history featurization fast path.

The module contract (see ``repro.features.history``) says the scalar
``featurize`` loop is the reference implementation and ``featurize_batch``
must match it bitwise-or-epsilon.  These tests pin that contract across the
edge cases the batch path handles specially: empty histories, zero-norm
count vectors, duplicate visits and mixed batches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Profile, Tweet, Visit
from repro.features import HistoricalVisitFeaturizer, HistoryFeatureConfig, OneHotHistoryFeaturizer

TOLERANCE = dict(rtol=0.0, atol=1e-9)


def profile_with_history(visits, ts=10_000.0, uid=1):
    tweet = Tweet(uid=uid, ts=ts, content="x", lat=None, lon=None)
    return Profile(uid=uid, tweet=tweet, visit_history=tuple(visits))


def reference_rows(featurizer, profiles):
    """The scalar loop the batch path must reproduce."""
    return np.stack([featurizer.featurize(p) for p in profiles])


def visit_strategy(small_registry):
    """Visits scattered on and around the registry's POI line."""

    def build(poi_index, north_m, east_m, ts):
        anchor = small_registry.pois[poi_index].center
        point = anchor.offset(north_m=north_m, east_m=east_m)
        return Visit(ts=ts, lat=point.lat, lon=point.lon)

    return st.builds(
        build,
        poi_index=st.integers(min_value=0, max_value=4),
        north_m=st.floats(min_value=-2_000.0, max_value=2_000.0, allow_nan=False),
        east_m=st.floats(min_value=-2_000.0, max_value=2_000.0, allow_nan=False),
        ts=st.floats(min_value=0.0, max_value=20_000.0, allow_nan=False),
    )


@pytest.fixture(params=["temporal", "onehot"])
def featurizer(request, small_registry):
    if request.param == "temporal":
        return HistoricalVisitFeaturizer(small_registry, HistoryFeatureConfig(eps_t=3600.0))
    return OneHotHistoryFeaturizer(small_registry)


class TestBatchEquivalence:
    def test_empty_batch_shape(self, featurizer, small_registry):
        assert featurizer.featurize_batch([]).shape == (0, len(small_registry))

    def test_all_empty_histories(self, featurizer):
        profiles = [profile_with_history([], uid=uid) for uid in range(4)]
        batch = featurizer.featurize_batch(profiles)
        np.testing.assert_allclose(batch, reference_rows(featurizer, profiles), **TOLERANCE)
        # Every row is the uniform unit vector.
        assert np.allclose(batch, batch[0, 0])
        np.testing.assert_allclose(np.linalg.norm(batch, axis=1), 1.0)

    def test_empty_histories_interleaved_with_visits(self, featurizer, small_registry):
        poi = small_registry.get(2)
        visit = Visit(100.0, poi.center.lat, poi.center.lon)
        profiles = [
            profile_with_history([], uid=1),
            profile_with_history([visit], uid=2),
            profile_with_history([], uid=3),
            profile_with_history([visit, visit], uid=4),
            profile_with_history([], uid=5),
        ]
        np.testing.assert_allclose(
            featurizer.featurize_batch(profiles), reference_rows(featurizer, profiles), **TOLERANCE
        )

    def test_duplicate_visits(self, featurizer, small_registry):
        poi = small_registry.get(1)
        visit = Visit(50.0, poi.center.lat, poi.center.lon)
        profiles = [profile_with_history([visit] * 7, uid=9)]
        np.testing.assert_allclose(
            featurizer.featurize_batch(profiles), reference_rows(featurizer, profiles), **TOLERANCE
        )

    def test_zero_norm_history_falls_back_to_uniform(self, small_registry):
        # Visits far outside every POI polygon: the one-hot count vector is
        # all zeros, which must normalise to the uniform vector in both paths.
        featurizer = OneHotHistoryFeaturizer(small_registry)
        far = small_registry.pois[0].center.offset(north_m=50_000.0, east_m=50_000.0)
        profiles = [
            profile_with_history([Visit(1.0, far.lat, far.lon)], uid=1),
            profile_with_history([], uid=2),
        ]
        batch = featurizer.featurize_batch(profiles)
        np.testing.assert_allclose(batch, reference_rows(featurizer, profiles), **TOLERANCE)
        assert np.allclose(batch[0], batch[0][0])

    def test_future_visits_clamp_age_to_zero(self, small_registry):
        # A visit timestamped after the profile's tweet (tolerated input):
        # both paths clamp the age at zero.
        featurizer = HistoricalVisitFeaturizer(small_registry)
        poi = small_registry.get(0)
        profiles = [profile_with_history([Visit(99_999.0, poi.center.lat, poi.center.lon)], ts=10.0)]
        np.testing.assert_allclose(
            featurizer.featurize_batch(profiles), reference_rows(featurizer, profiles), **TOLERANCE
        )

    def test_single_batch_distance_pass(self, small_registry, monkeypatch):
        # The tentpole claim: one distances_from_many call per batch, zero
        # per-visit distances_from round-trips.
        featurizer = HistoricalVisitFeaturizer(small_registry)
        calls = {"scalar": 0, "batch": 0}
        scalar, batch = small_registry.distances_from, small_registry.distances_from_many

        def counting_scalar(lat, lon):
            calls["scalar"] += 1
            return scalar(lat, lon)

        def counting_batch(lats, lons):
            calls["batch"] += 1
            return batch(lats, lons)

        monkeypatch.setattr(small_registry, "distances_from", counting_scalar)
        monkeypatch.setattr(small_registry, "distances_from_many", counting_batch)
        poi = small_registry.get(0)
        profiles = [
            profile_with_history([Visit(float(i), poi.center.lat, poi.center.lon)] * 3, uid=i)
            for i in range(5)
        ]
        featurizer.featurize_batch(profiles)
        assert calls == {"scalar": 0, "batch": 1}

    @given(histories=st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_batch_matches_scalar_loop(self, small_registry, histories):
        visits = visit_strategy(small_registry)
        profiles = histories.draw(
            st.lists(
                st.builds(
                    profile_with_history,
                    visits=st.lists(visits, min_size=0, max_size=6),
                    ts=st.floats(min_value=0.0, max_value=20_000.0, allow_nan=False),
                    uid=st.integers(min_value=1, max_value=50),
                ),
                min_size=1,
                max_size=8,
            )
        )
        for featurizer in (
            HistoricalVisitFeaturizer(small_registry, HistoryFeatureConfig(eps_t=3600.0)),
            OneHotHistoryFeaturizer(small_registry),
        ):
            np.testing.assert_allclose(
                featurizer.featurize_batch(profiles),
                reference_rows(featurizer, profiles),
                **TOLERANCE,
            )


class TestFeatureDimUnification:
    def test_history_featurizers_expose_feature_dim(self, small_registry):
        for featurizer in (
            HistoricalVisitFeaturizer(small_registry),
            OneHotHistoryFeaturizer(small_registry),
        ):
            assert featurizer.feature_dim == len(small_registry)
            # The historical alias stays for backwards compatibility.
            assert featurizer.dimension == featurizer.feature_dim

    def test_featurizer_dim_helper(self, small_registry):
        from repro.core import featurizer_dim

        class DimensionOnly:
            dimension = 13

        assert featurizer_dim(HistoricalVisitFeaturizer(small_registry)) == len(small_registry)
        assert featurizer_dim(DimensionOnly()) == 13
        assert featurizer_dim(object()) == 0
        assert featurizer_dim(None, default=0) == 0
