"""Equivalence tests for the batched content encoders and the vectorizer cache.

The module contract (see ``repro.features.content``) says the scalar
``encode`` is the reference implementation and ``encode_batch`` must match it
row by row within 1e-9 across ragged tweet lengths — including all-pad
(empty/whitespace) tweets, ``T = min_tokens`` rows and single-profile batches
— mirroring ``tests/features/test_history_batch.py``'s contract for the
history feature.  The vectorizer tests pin the bounded-LRU fix for the
previously unbounded word-vector cache.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Profile, Tweet
from repro.features import (
    CONTENT_ENCODERS,
    ContentEncoderConfig,
    HisRectConfig,
    HisRectFeaturizer,
    TextVectorizer,
    make_content_encoder,
)
from repro.nn.autograd import concatenate, stack
from repro.text import SkipGramConfig, SkipGramModel, Tokenizer, Vocabulary

TOLERANCE = dict(rtol=0.0, atol=1e-9)

WORDS = ["coffee", "latte", "museum", "exhibit", "park", "sunny", "liberty", "strip"]


def build_vectorizer(**kwargs) -> TextVectorizer:
    corpus = [WORDS] * 30
    vocab = Vocabulary.build(corpus, min_count=1)
    skipgram = SkipGramModel(vocab, SkipGramConfig(embedding_dim=8, epochs=1, seed=0))
    skipgram.train([vocab.encode(s) for s in corpus])
    kwargs.setdefault("max_tokens", 10)
    kwargs.setdefault("min_tokens", 4)
    return TextVectorizer(vocab, skipgram, tokenizer=Tokenizer(), **kwargs)


@pytest.fixture(scope="module")
def vectorizer() -> TextVectorizer:
    return build_vectorizer()


def profile(content: str, uid: int = 1, ts: float = 100.0) -> Profile:
    return Profile(uid=uid, tweet=Tweet(uid=uid, ts=ts, content=content), visit_history=())


def profiles_with_token_counts(counts) -> list[Profile]:
    """One profile per count; ``0`` gives an all-pad (empty-tweet) sequence."""
    rng = np.random.default_rng(sum(counts) + len(counts))
    return [
        profile(" ".join(rng.choice(WORDS, size=count)) if count else "", uid=uid, ts=float(uid))
        for uid, count in enumerate(counts, start=1)
    ]


def reference_rows(encoder, profiles: list[Profile]) -> np.ndarray:
    """The scalar loop the batch path must reproduce."""
    return np.stack([encoder.encode(p).data for p in profiles])


class TestTextVectorizerBatch:
    def test_padding_and_lengths(self, vectorizer):
        batch, lengths = vectorizer.vectorize_batch(
            [profile("coffee latte museum exhibit park sunny"), profile("coffee", uid=2)]
        )
        assert batch.shape == (2, 6, vectorizer.word_dim)
        np.testing.assert_array_equal(lengths, [6, 4])  # short row pads to min_tokens
        np.testing.assert_array_equal(batch[1, 4:], 0.0)  # zero right-padding
        np.testing.assert_allclose(batch[1, :4], vectorizer.vectorize(profile("coffee", uid=2)))

    def test_empty_batch(self, vectorizer):
        batch, lengths = vectorizer.vectorize_batch([])
        assert batch.shape == (0, 4, vectorizer.word_dim)
        assert lengths.shape == (0,)

    def test_min_tokens_floor_of_one(self):
        # min_tokens=0 used to produce an empty (0, M) matrix for empty tweets,
        # which crashed every recurrent encoder; the floor is one pad token.
        vectorizer = build_vectorizer(min_tokens=0)
        assert len(vectorizer.token_ids("")) == 1
        assert vectorizer.vectorize(profile("")).shape == (1, vectorizer.word_dim)


class TestTextVectorizerCache:
    def test_cache_is_bounded_with_lru_eviction(self):
        vectorizer = build_vectorizer(cache_size=3)
        for uid in range(5):
            vectorizer.vectorize(profile("coffee", uid=uid))
        stats = vectorizer.cache_stats
        assert stats.size == 3
        assert stats.maxsize == 3
        assert stats.evictions == 2
        assert stats.misses == 5
        # The oldest entries were evicted, the newest survive.
        assert (0, 0.0 + 100.0, "coffee") not in vectorizer._cache

    def test_hits_move_entries_to_the_back(self):
        vectorizer = build_vectorizer(cache_size=2)
        first, second, third = (profile("coffee", uid=uid) for uid in range(3))
        vectorizer.vectorize(first)
        vectorizer.vectorize(second)
        vectorizer.vectorize(first)  # refresh: second is now the LRU entry
        vectorizer.vectorize(third)
        assert vectorizer.vectorize(first) is vectorizer.vectorize(first)
        stats = vectorizer.cache_stats
        assert stats.evictions == 1
        assert stats.hit_rate > 0.0

    def test_zero_cache_size_disables_caching(self):
        vectorizer = build_vectorizer(cache_size=0)
        p = profile("coffee latte")
        vectorizer.vectorize(p)
        vectorizer.vectorize(p)
        stats = vectorizer.cache_stats
        assert stats.size == 0
        assert stats.misses == 2

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError):
            build_vectorizer(cache_size=-1)


class TestEncodeBatchEquivalence:
    @pytest.mark.parametrize("kind", sorted(CONTENT_ENCODERS))
    def test_ragged_batch_matches_scalar(self, vectorizer, kind):
        encoder = make_content_encoder(kind, vectorizer, ContentEncoderConfig(feature_dim=6, seed=3))
        batch = profiles_with_token_counts([0, 3, 10, 7, 4, 1, 9])
        np.testing.assert_allclose(
            encoder.encode_batch(batch).data, reference_rows(encoder, batch), **TOLERANCE
        )

    @pytest.mark.parametrize("kind", sorted(CONTENT_ENCODERS))
    def test_single_profile_batch(self, vectorizer, kind):
        encoder = make_content_encoder(kind, vectorizer, ContentEncoderConfig(feature_dim=6, seed=3))
        batch = profiles_with_token_counts([5])
        rows = encoder.encode_batch(batch)
        assert rows.shape == (1, 6)
        np.testing.assert_allclose(rows.data, reference_rows(encoder, batch), **TOLERANCE)

    @pytest.mark.parametrize("kind", sorted(CONTENT_ENCODERS))
    def test_min_tokens_rows_only(self, vectorizer, kind):
        # Every row exactly T = min_tokens: the mask is all-ones and the
        # batch degenerates to a plain stacked forward.
        encoder = make_content_encoder(kind, vectorizer, ContentEncoderConfig(feature_dim=6, seed=3))
        batch = profiles_with_token_counts([4, 4, 4])
        np.testing.assert_allclose(
            encoder.encode_batch(batch).data, reference_rows(encoder, batch), **TOLERANCE
        )

    @pytest.mark.parametrize("kind", sorted(CONTENT_ENCODERS))
    def test_empty_and_whitespace_tweets_encode_finite(self, vectorizer, kind):
        # The all-pad sequence must encode without error in both paths and
        # produce a finite feature vector.
        encoder = make_content_encoder(kind, vectorizer, ContentEncoderConfig(feature_dim=6, seed=3))
        batch = [profile(""), profile("   \t  ", uid=2), profile("coffee", uid=3)]
        rows = encoder.encode_batch(batch).data
        assert np.isfinite(rows).all()
        np.testing.assert_allclose(rows, reference_rows(encoder, batch), **TOLERANCE)

    @pytest.mark.parametrize("kind", sorted(CONTENT_ENCODERS))
    def test_empty_profile_list(self, vectorizer, kind):
        encoder = make_content_encoder(kind, vectorizer, ContentEncoderConfig(feature_dim=6, seed=3))
        assert encoder.encode_batch([]).shape == (0, 6)

    @pytest.mark.parametrize("kind", sorted(CONTENT_ENCODERS))
    def test_gradients_flow_through_batch_path(self, vectorizer, kind):
        encoder = make_content_encoder(kind, vectorizer, ContentEncoderConfig(feature_dim=4, seed=3))
        out = encoder.encode_batch(profiles_with_token_counts([5, 2, 0]))
        (out * out).sum().backward()
        grads = [param.grad for _, param in encoder.named_parameters()]
        assert any(g is not None and np.any(g != 0.0) for g in grads)

    @given(counts=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_property_batch_matches_scalar_loop(self, vectorizer, counts):
        batch = profiles_with_token_counts(counts)
        for kind in sorted(CONTENT_ENCODERS):
            encoder = make_content_encoder(
                kind, vectorizer, ContentEncoderConfig(feature_dim=4, seed=7)
            )
            np.testing.assert_allclose(
                encoder.encode_batch(batch).data, reference_rows(encoder, batch), **TOLERANCE
            )

    def test_bilstm_c_rejects_rows_shorter_than_kernel(self):
        vectorizer = build_vectorizer(min_tokens=1)
        encoder = make_content_encoder("bilstm-c", vectorizer, ContentEncoderConfig(feature_dim=4))
        with pytest.raises(ValueError):
            encoder.encode_batch([profile("coffee")])


class TestHisRectBatchPath:
    def hisrect(self, registry, vectorizer, **overrides):
        config = dict(content_dim=6, feature_dim=12, keep_prob=1.0)
        config.update(overrides)
        return HisRectFeaturizer(registry, vectorizer, HisRectConfig(**config))

    def test_forward_matches_scalar_reference(self, small_registry, vectorizer):
        featurizer = self.hisrect(small_registry, vectorizer).eval()
        batch = profiles_with_token_counts([0, 3, 8, 4])
        raw = stack([featurizer.raw_feature(p) for p in batch], axis=0)
        reference = featurizer.combiner(raw).data
        np.testing.assert_allclose(featurizer.forward(batch).data, reference, **TOLERANCE)

    @pytest.mark.parametrize("kind", sorted(CONTENT_ENCODERS))
    def test_forward_matches_reference_for_every_encoder(self, small_registry, vectorizer, kind):
        featurizer = self.hisrect(small_registry, vectorizer, content_encoder=kind).eval()
        batch = profiles_with_token_counts([2, 0, 6])
        raw = stack([featurizer.raw_feature(p) for p in batch], axis=0)
        np.testing.assert_allclose(
            featurizer.forward(batch).data, featurizer.combiner(raw).data, **TOLERANCE
        )

    def test_featurize_batch_matches_featurize(self, small_registry, vectorizer):
        featurizer = self.hisrect(small_registry, vectorizer)
        batch = profiles_with_token_counts([3, 5])
        np.testing.assert_allclose(
            featurizer.featurize_batch(batch), featurizer.featurize(batch), **TOLERANCE
        )
        assert featurizer.featurize_batch([]).shape == (0, 12)

    def test_history_cache_is_bounded(self, small_registry, vectorizer, monkeypatch):
        # The Fv(r) memo is an LRU like the vectorizer/engine caches; batches
        # larger than the bound still featurize correctly row for row.
        monkeypatch.setattr(HisRectFeaturizer, "HISTORY_CACHE_SIZE", 4)
        featurizer = self.hisrect(small_registry, vectorizer).eval()
        batch = profiles_with_token_counts([2] * 10)
        raw = stack([featurizer.raw_feature(p) for p in batch], axis=0)
        reference = featurizer.combiner(raw).data
        np.testing.assert_allclose(featurizer.forward(batch).data, reference, **TOLERANCE)
        assert len(featurizer._history_cache) <= 4

    def test_tweet_only_variant_uses_batch_encoder(self, small_registry, vectorizer):
        featurizer = self.hisrect(small_registry, vectorizer, use_history=False).eval()
        batch = profiles_with_token_counts([4, 0, 7])
        raw = concatenate(
            [featurizer.raw_feature(p).reshape(1, -1) for p in batch], axis=0
        )
        np.testing.assert_allclose(
            featurizer.forward(batch).data, featurizer.combiner(raw).data, **TOLERANCE
        )
