"""Tests for the incremental Eq. (1)-(2) delta path of the history featurizers.

The module contract in ``repro.features.history`` promises that
``featurize_delta`` / ``HistoryDeltaTracker`` produce rows **bit-identical**
to the scratch ``featurize_batch`` path for the same history.  These tests pin
that with ``np.array_equal`` (exact), not ``allclose`` — the delta path runs
the same elementwise kernels and the same segment sum, so any drift is a bug.
The one exception is the batched read path (``delta_rows`` / ``rows_for``),
whose equal-length matmul fast path reassociates the sum: those tests pin the
looser documented ``1e-9`` contract (see :class:`TestBatchedDeltaRows`).
"""

import dataclasses

import numpy as np
import pytest

from repro.data import Profile, Tweet, Visit
from repro.features import (
    HistoricalVisitFeaturizer,
    HistoryDeltaTracker,
    OneHotHistoryFeaturizer,
)

FEATURIZERS = [HistoricalVisitFeaturizer, OneHotHistoryFeaturizer]


def profile_with(visits, ts, uid=1, revision=0):
    tweet = Tweet(uid=uid, ts=ts, content="x", lat=None, lon=None)
    return Profile(uid=uid, tweet=tweet, visit_history=tuple(visits), revision=revision)


def scattered_visits(registry, n, seed=7):
    """Visits jittered around the registry's POIs — some inside, some outside."""
    rng = np.random.default_rng(seed)
    visits = []
    for i in range(n):
        base = registry.get(i % len(registry)).center
        point = base.offset(
            north_m=float(rng.normal(0, 120)), east_m=float(rng.normal(0, 120))
        )
        visits.append(Visit(ts=float(i * 100), lat=point.lat, lon=point.lon))
    return visits


@pytest.mark.parametrize("featurizer_cls", FEATURIZERS)
class TestDeltaEqualsScratch:
    def test_append_only_growth_is_bit_identical(self, small_registry, featurizer_cls):
        featurizer = featurizer_cls(small_registry)
        visits = scattered_visits(small_registry, 12)
        state = None
        for i, visit in enumerate(visits):
            ref_ts = visit.ts + 50.0
            row, state = featurizer.featurize_delta(state, added=[visit], ref_ts=ref_ts)
            scratch = featurizer.featurize_batch([profile_with(visits[: i + 1], ref_ts)])[0]
            assert np.array_equal(row, scratch)

    def test_capped_eviction_is_bit_identical(self, small_registry, featurizer_cls):
        """A full window evicting its oldest visit matches the scratch window."""
        featurizer = featurizer_cls(small_registry)
        visits = scattered_visits(small_registry, 20)
        maxlen = 6
        state = None
        for i, visit in enumerate(visits):
            window = visits[max(0, i + 1 - maxlen) : i + 1]
            removed = 0 if state is None else max(0, len(state) + 1 - maxlen)
            ref_ts = visit.ts + 50.0
            row, state = featurizer.featurize_delta(
                state, added=[visit], removed=removed, ref_ts=ref_ts
            )
            assert len(state) == len(window)
            scratch = featurizer.featurize_batch([profile_with(window, ref_ts)])[0]
            assert np.array_equal(row, scratch)

    def test_empty_history_is_the_uniform_row(self, small_registry, featurizer_cls):
        featurizer = featurizer_cls(small_registry)
        row, state = featurizer.featurize_delta(None, ref_ts=123.0)
        assert len(state) == 0
        scratch = featurizer.featurize_batch([profile_with([], 123.0)])[0]
        assert np.array_equal(row, scratch)

    def test_delta_row_reusable_across_reference_timestamps(
        self, small_registry, featurizer_cls
    ):
        """One state serves many ref_ts values — the state is ts-free."""
        featurizer = featurizer_cls(small_registry)
        visits = scattered_visits(small_registry, 5)
        state = featurizer.update_delta(None, visits)
        for ref_ts in (500.0, 5_000.0, 50_000.0):
            row = featurizer.delta_row(state, ref_ts)
            scratch = featurizer.featurize_batch([profile_with(visits, ref_ts)])[0]
            assert np.array_equal(row, scratch)

    def test_states_are_never_mutated_in_place(self, small_registry, featurizer_cls):
        featurizer = featurizer_cls(small_registry)
        visits = scattered_visits(small_registry, 4)
        base = featurizer.update_delta(None, visits[:2])
        snapshot = (base.ts.copy(), base.rows.copy())
        featurizer.update_delta(base, visits[2:], removed=1)
        assert np.array_equal(base.ts, snapshot[0])
        assert np.array_equal(base.rows, snapshot[1])

    def test_removed_validation(self, small_registry, featurizer_cls):
        featurizer = featurizer_cls(small_registry)
        with pytest.raises(ValueError):
            featurizer.update_delta(None, [], removed=-1)
        with pytest.raises(ValueError):
            featurizer.update_delta(None, [], removed=1)


@pytest.mark.parametrize("featurizer_cls", FEATURIZERS)
class TestHistoryDeltaTracker:
    def test_mirrors_a_capped_deque(self, small_registry, featurizer_cls):
        """Appending visit-by-visit tracks exactly a maxlen deque's window."""
        featurizer = featurizer_cls(small_registry)
        tracker = HistoryDeltaTracker(featurizer, max_history=4)
        visits = scattered_visits(small_registry, 10)
        history = []
        for i, visit in enumerate(visits):
            profile = profile_with(history, visit.ts + 50.0, revision=i)
            row = tracker.row_for(profile)
            scratch = featurizer.featurize_batch([profile])[0]
            assert np.array_equal(row, scratch)
            tracker.append(profile.uid, visit)
            history.append(visit)
            history[:] = history[-4:]

    def test_rebuilds_when_joining_mid_stream(self, small_registry, featurizer_cls):
        featurizer = featurizer_cls(small_registry)
        tracker = HistoryDeltaTracker(featurizer, max_history=None)
        visits = scattered_visits(small_registry, 6)
        profile = profile_with(visits, 99_999.0)
        assert tracker.state_of(profile.uid) is None
        row = tracker.row_for(profile)
        assert np.array_equal(row, featurizer.featurize_batch([profile])[0])
        # The rebuild is retained: the next lookup hits the mirrored state.
        assert tracker.state_of(profile.uid) is not None
        assert len(tracker.state_of(profile.uid)) == len(visits)

    def test_rebuilds_when_history_diverges(self, small_registry, featurizer_cls):
        """A profile whose history the tracker never saw gets a fresh state."""
        featurizer = featurizer_cls(small_registry)
        tracker = HistoryDeltaTracker(featurizer, max_history=None)
        visits = scattered_visits(small_registry, 6)
        for visit in visits[:3]:
            tracker.append(1, visit)
        foreign = profile_with(visits[1:5], 99_999.0)  # different window
        row = tracker.row_for(foreign)
        assert np.array_equal(row, featurizer.featurize_batch([foreign])[0])

    def test_append_batch_matches_per_append(self, small_registry, featurizer_cls):
        featurizer = featurizer_cls(small_registry)
        visits = scattered_visits(small_registry, 8)
        uids = [1, 2, 1, 3, 2, 1, 3, 1]
        one_by_one = HistoryDeltaTracker(featurizer, max_history=3)
        batched = HistoryDeltaTracker(featurizer, max_history=3)
        for uid, visit in zip(uids, visits):
            one_by_one.append(uid, visit)
        batched.append_batch(uids, visits)
        for uid in set(uids):
            a, b = one_by_one.state_of(uid), batched.state_of(uid)
            assert np.array_equal(a.ts, b.ts)
            assert np.array_equal(a.rows, b.rows)

    def test_append_batch_rejects_misaligned_inputs(self, small_registry, featurizer_cls):
        tracker = HistoryDeltaTracker(featurizer_cls(small_registry))
        with pytest.raises(ValueError):
            tracker.append_batch([1, 2], [Visit(1.0, 0.0, 0.0)])

    def test_zero_max_history_tracks_nothing(self, small_registry, featurizer_cls):
        featurizer = featurizer_cls(small_registry)
        tracker = HistoryDeltaTracker(featurizer, max_history=0)
        tracker.append(1, Visit(1.0, 40.75, -73.99))
        assert len(tracker) == 0
        profile = profile_with([], 10.0)
        assert np.array_equal(
            tracker.row_for(profile), featurizer.featurize_batch([profile])[0]
        )
        assert len(tracker) == 0

    def test_reset_and_clear(self, small_registry, featurizer_cls):
        featurizer = featurizer_cls(small_registry)
        tracker = HistoryDeltaTracker(featurizer)
        tracker.append(1, Visit(1.0, 40.75, -73.99))
        tracker.append(2, Visit(2.0, 40.75, -73.99))
        tracker.reset(1)
        assert tracker.state_of(1) is None and tracker.state_of(2) is not None
        tracker.clear()
        assert len(tracker) == 0

    def test_negative_max_history_rejected(self, small_registry, featurizer_cls):
        with pytest.raises(ValueError):
            HistoryDeltaTracker(featurizer_cls(small_registry), max_history=-1)


@pytest.mark.parametrize("featurizer_cls", FEATURIZERS)
class TestBatchedDeltaRows:
    """The batched read path: ``delta_rows`` / ``HistoryDeltaTracker.rows_for``.

    The batch contract is looser than the per-row one: equal-length batches
    take a matmul fast path whose summation order differs from scratch, so
    rows agree within ``1e-9`` (observed ~1e-16) rather than bit-for-bit.
    Mixed-length batches still go through the same segment sum as
    ``delta_row`` and stay exact.
    """

    ATOL = 1e-9

    def test_uniform_length_batch_matches_scratch(self, small_registry, featurizer_cls):
        featurizer = featurizer_cls(small_registry)
        visits = scattered_visits(small_registry, 12)
        states = [featurizer.update_delta(None, visits[k : k + 4]) for k in (0, 4, 8)]
        ref_ts = np.array([2_000.0, 3_000.0, 4_000.0])
        rows = featurizer.delta_rows(states, ref_ts)
        for k, start in enumerate((0, 4, 8)):
            scratch = featurizer.featurize_batch(
                [profile_with(visits[start : start + 4], ref_ts[k])]
            )[0]
            np.testing.assert_allclose(rows[k], scratch, atol=self.ATOL, rtol=0.0)

    def test_mixed_length_batch_is_bit_identical(self, small_registry, featurizer_cls):
        """Ragged batches use the segment sum — exact, like ``delta_row``."""
        featurizer = featurizer_cls(small_registry)
        visits = scattered_visits(small_registry, 10)
        windows = [visits[0:2], visits[2:7], visits[7:10]]
        states = [featurizer.update_delta(None, window) for window in windows]
        ref_ts = np.array([1_500.0, 2_500.0, 3_500.0])
        rows = featurizer.delta_rows(states, ref_ts)
        for k, state in enumerate(states):
            assert np.array_equal(rows[k], featurizer.delta_row(state, float(ref_ts[k])))

    def test_empty_states_get_the_uniform_row(self, small_registry, featurizer_cls):
        featurizer = featurizer_cls(small_registry)
        visits = scattered_visits(small_registry, 5)
        states = [
            featurizer.update_delta(None, visits[:3]),
            featurizer.update_delta(None, []),
            featurizer.update_delta(None, visits[3:]),
        ]
        ref_ts = np.array([900.0, 900.0, 900.0])
        rows = featurizer.delta_rows(states, ref_ts)
        empty_scratch = featurizer.featurize_batch([profile_with([], 900.0)])[0]
        assert np.array_equal(rows[1], empty_scratch)
        for k in (0, 2):
            np.testing.assert_allclose(
                rows[k],
                featurizer.delta_row(states[k], 900.0),
                atol=self.ATOL,
                rtol=0.0,
            )

    def test_all_empty_and_zero_size_batches(self, small_registry, featurizer_cls):
        featurizer = featurizer_cls(small_registry)
        empties = [featurizer.update_delta(None, []) for _ in range(3)]
        rows = featurizer.delta_rows(empties, np.zeros(3))
        uniform = featurizer.featurize_batch([profile_with([], 0.0)])[0]
        for row in rows:
            assert np.array_equal(row, uniform)
        assert featurizer.delta_rows([], np.zeros(0)).shape == (0, featurizer.feature_dim)

    def test_tracker_rows_for_matches_row_for(self, small_registry, featurizer_cls):
        featurizer = featurizer_cls(small_registry)
        tracker = HistoryDeltaTracker(featurizer, max_history=4)
        visits = scattered_visits(small_registry, 16)
        uids = [i % 4 + 1 for i in range(16)]
        tracker.append_batch(uids, visits)
        histories = {uid: [] for uid in set(uids)}
        for uid, visit in zip(uids, visits):
            histories[uid] = (histories[uid] + [visit])[-4:]
        profiles = [
            profile_with(histories[uid], 2_000.0 + uid, uid=uid, revision=4)
            for uid in sorted(histories)
        ]
        batch = tracker.rows_for(profiles)
        for k, profile in enumerate(profiles):
            np.testing.assert_allclose(
                batch[k], tracker.row_for(profile), atol=self.ATOL, rtol=0.0
            )

    def test_tracker_rows_for_rebuilds_unknown_users(self, small_registry, featurizer_cls):
        """A mixed batch — tracked and never-seen users — is still correct."""
        featurizer = featurizer_cls(small_registry)
        tracker = HistoryDeltaTracker(featurizer, max_history=None)
        visits = scattered_visits(small_registry, 8)
        for visit in visits[:3]:
            tracker.append(1, visit)
        known = profile_with(visits[:3], 5_000.0, uid=1, revision=3)
        unknown = profile_with(visits[3:8], 5_000.0, uid=9, revision=5)
        batch = tracker.rows_for([known, unknown])
        for k, profile in enumerate((known, unknown)):
            scratch = featurizer.featurize_batch([profile])[0]
            np.testing.assert_allclose(batch[k], scratch, atol=self.ATOL, rtol=0.0)
        assert tracker.state_of(9) is not None  # the rebuild is retained


class TestRevisionDisambiguatesCappedHistories:
    def test_full_window_slide_changes_the_key(self, small_registry):
        """The capped-history collision the revisioned key exists to prevent.

        A full maxlen window that drops its oldest visit and appends a new one
        at the *same timestamp spacing* keeps ``len(visit_history)`` constant;
        with an unchanged recent tweet the old 4-field key collided and served
        the stale cached row.  The revision field breaks the tie.
        """
        from repro.core import profile_key

        visits = scattered_visits(small_registry, 5)
        window_old = visits[0:4]
        window_new = visits[1:5]
        tweet = Tweet(uid=1, ts=99_999.0, content="same tweet", lat=None, lon=None)
        gen0 = Profile(uid=1, tweet=tweet, visit_history=tuple(window_old), revision=4)
        gen1 = Profile(uid=1, tweet=tweet, visit_history=tuple(window_new), revision=5)
        assert len(gen0.visit_history) == len(gen1.visit_history)
        assert profile_key(gen0) != profile_key(gen1)
        # Without the revision the first four fields collide — the regression.
        assert profile_key(gen0)[:4] == profile_key(gen1)[:4]

    def test_colliding_generations_get_distinct_cached_rows(self, small_registry):
        """An engine serving both generations featurizes each exactly once."""
        from repro.api import ColocationEngine
        from repro.data.records import Pair

        featurizer = HistoricalVisitFeaturizer(small_registry)

        class HistoryJudge:
            def __init__(self):
                self.featurized = 0

            def featurize_profiles(self, profiles):
                self.featurized += len(profiles)
                return featurizer.featurize_batch(list(profiles))

            def score_feature_pairs(self, left, right):
                return np.clip(np.einsum("ij,ij->i", left, right), 0.0, 1.0)

            def predict_proba(self, pairs):
                profiles = [p for pair in pairs for p in pair]
                rows = self.featurize_profiles(profiles)
                return np.clip(
                    np.einsum("ij,ij->i", rows[0::2], rows[1::2]), 0.0, 1.0
                )

        visits = scattered_visits(small_registry, 5)
        tweet = Tweet(uid=1, ts=99_999.0, content="same tweet", lat=None, lon=None)
        gen0 = Profile(uid=1, tweet=tweet, visit_history=tuple(visits[0:4]), revision=4)
        gen1 = Profile(uid=1, tweet=tweet, visit_history=tuple(visits[1:5]), revision=5)
        other = profile_with(visits[:2], 99_999.0, uid=2, revision=2)

        judge = HistoryJudge()
        engine = ColocationEngine(judge)
        first = engine.predict_proba([Pair(gen0, other)])
        second = engine.predict_proba([Pair(gen1, other)])
        # gen1 must NOT reuse gen0's row: the histories differ, so generally
        # the scores differ too.
        expected_gen1 = float(
            np.clip(
                featurizer.featurize_batch([gen1])[0]
                @ featurizer.featurize_batch([other])[0],
                0.0,
                1.0,
            )
        )
        assert second[0] == pytest.approx(expected_gen1, abs=0.0)
        assert first[0] != second[0]
        # Three distinct keys cached: gen0, gen1 and 'other'.
        info = engine.cache_info()
        assert info.size == 3
        assert info.featurized == 3
