"""Tests for the extension content encoders (BiGRU, attention pooling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Profile, Tweet
from repro.features import (
    AttentionContentEncoder,
    BiGRUContentEncoder,
    CONTENT_ENCODERS,
    ContentEncoderConfig,
    HisRectConfig,
    HisRectFeaturizer,
    TextVectorizer,
    make_content_encoder,
)
from repro.text import SkipGramConfig, SkipGramModel, Tokenizer, Vocabulary


@pytest.fixture(scope="module")
def vectorizer() -> TextVectorizer:
    corpus = [["coffee", "latte", "museum", "exhibit", "park", "sunny"]] * 30
    vocab = Vocabulary.build(corpus, min_count=1)
    skipgram = SkipGramModel(vocab, SkipGramConfig(embedding_dim=10, epochs=1, seed=0))
    skipgram.train([vocab.encode(s) for s in corpus])
    return TextVectorizer(vocab, skipgram, tokenizer=Tokenizer(), max_tokens=12, min_tokens=4)


def _profile(content: str = "coffee latte museum", uid: int = 1, ts: float = 100.0) -> Profile:
    return Profile(uid=uid, tweet=Tweet(uid=uid, ts=ts, content=content), visit_history=())


class TestFactoryRegistration:
    def test_new_encoders_registered(self):
        assert "bgru" in CONTENT_ENCODERS
        assert "attention" in CONTENT_ENCODERS

    def test_factory_builds_instances(self, vectorizer):
        assert isinstance(make_content_encoder("bgru", vectorizer), BiGRUContentEncoder)
        assert isinstance(make_content_encoder("attention", vectorizer), AttentionContentEncoder)


class TestEncoderOutputs:
    @pytest.mark.parametrize("encoder_cls", [BiGRUContentEncoder, AttentionContentEncoder])
    def test_output_dimension(self, vectorizer, encoder_cls):
        encoder = encoder_cls(vectorizer, ContentEncoderConfig(feature_dim=6, seed=1))
        out = encoder.encode(_profile("coffee latte museum exhibit park"))
        assert out.shape == (6,)

    @pytest.mark.parametrize("encoder_cls", [BiGRUContentEncoder, AttentionContentEncoder])
    def test_output_finite_and_nonnegative(self, vectorizer, encoder_cls):
        encoder = encoder_cls(vectorizer, ContentEncoderConfig(feature_dim=6, seed=1))
        out = encoder.encode(_profile("museum exhibit sunny")).numpy()
        assert np.isfinite(out).all()
        assert np.all(out >= 0.0)  # both end in a ReLU projection

    @pytest.mark.parametrize("encoder_cls", [BiGRUContentEncoder, AttentionContentEncoder])
    def test_gradients_reach_all_parameters(self, vectorizer, encoder_cls):
        encoder = encoder_cls(vectorizer, ContentEncoderConfig(feature_dim=4, seed=1))
        out = encoder.encode(_profile("coffee latte museum exhibit"))
        (out**2).sum().backward()
        grads = [param.grad for _, param in encoder.named_parameters()]
        assert any(g is not None and np.any(g != 0.0) for g in grads)

    def test_empty_tweet_handled(self, vectorizer):
        encoder = BiGRUContentEncoder(vectorizer, ContentEncoderConfig(feature_dim=4, seed=1))
        out = encoder.encode(_profile(""))
        assert out.shape == (4,)

    def test_attention_weights_distribution(self, vectorizer):
        encoder = AttentionContentEncoder(vectorizer, ContentEncoderConfig(feature_dim=4, seed=1))
        weights = encoder.attention_weights(_profile("coffee latte museum exhibit park"))
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights >= 0.0)


class TestHisRectIntegration:
    @pytest.mark.parametrize("encoder_name", ["bgru", "attention"])
    def test_featurizer_accepts_extension_encoders(self, vectorizer, small_registry, encoder_name):
        config = HisRectConfig(content_encoder=encoder_name, content_dim=6, feature_dim=8)
        featurizer = HisRectFeaturizer(small_registry, vectorizer, config)
        features = featurizer.featurize([_profile("coffee latte"), _profile("museum exhibit", uid=2)])
        assert features.shape == (2, 8)
        assert np.isfinite(features).all()
