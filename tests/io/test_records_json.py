"""Tests for the JSON record codecs and JSONL timeline files."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.records import Pair, Profile, Timeline, Tweet, Visit
from repro.errors import DataGenerationError
from repro.io import (
    pair_from_dict,
    pair_to_dict,
    profile_from_dict,
    profile_to_dict,
    read_timelines_jsonl,
    timeline_from_dict,
    timeline_to_dict,
    tweet_from_dict,
    tweet_to_dict,
    write_timelines_jsonl,
)


def make_tweet(uid=1, ts=100.0, geotagged=True):
    return Tweet(
        uid=uid,
        ts=ts,
        content="coffee at the museum",
        lat=40.7 if geotagged else None,
        lon=-74.0 if geotagged else None,
        true_pid=3 if geotagged else None,
    )


def make_profile(uid=1, ts=200.0, pid=3):
    history = (Visit(ts=50.0, lat=40.7, lon=-74.0), Visit(ts=90.0, lat=40.71, lon=-74.01))
    return Profile(uid=uid, tweet=make_tweet(uid=uid, ts=ts), visit_history=history, pid=pid)


class TestTweetCodec:
    def test_round_trip_geotagged(self):
        tweet = make_tweet()
        assert tweet_from_dict(tweet_to_dict(tweet)) == tweet

    def test_round_trip_non_geotagged(self):
        tweet = make_tweet(geotagged=False)
        rebuilt = tweet_from_dict(tweet_to_dict(tweet))
        assert rebuilt == tweet
        assert not rebuilt.is_geotagged

    def test_missing_required_field_raises(self):
        with pytest.raises(DataGenerationError):
            tweet_from_dict({"ts": 1.0, "content": "hi"})

    def test_extra_keys_are_ignored(self):
        data = tweet_to_dict(make_tweet())
        data["retweets"] = 10
        assert tweet_from_dict(data) == make_tweet()

    @given(
        uid=st.integers(min_value=0, max_value=10_000),
        ts=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        content=st.text(max_size=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, uid, ts, content):
        tweet = Tweet(uid=uid, ts=ts, content=content)
        assert tweet_from_dict(tweet_to_dict(tweet)) == tweet


class TestProfileAndPairCodec:
    def test_profile_round_trip(self):
        profile = make_profile()
        rebuilt = profile_from_dict(profile_to_dict(profile))
        assert rebuilt.uid == profile.uid
        assert rebuilt.pid == profile.pid
        assert tuple(rebuilt.visit_history) == tuple(profile.visit_history)
        assert rebuilt.content == profile.content

    def test_unlabeled_profile_round_trip(self):
        profile = make_profile(pid=None)
        rebuilt = profile_from_dict(profile_to_dict(profile))
        assert rebuilt.pid is None
        assert not rebuilt.is_labeled

    def test_pair_round_trip(self):
        pair = Pair(left=make_profile(uid=1), right=make_profile(uid=2, ts=210.0), co_label=1)
        rebuilt = pair_from_dict(pair_to_dict(pair))
        assert rebuilt.co_label == 1
        assert rebuilt.left.uid == 1 and rebuilt.right.uid == 2

    def test_unlabeled_pair_round_trip(self):
        pair = Pair(left=make_profile(uid=1), right=make_profile(uid=2, ts=210.0), co_label=None)
        assert pair_from_dict(pair_to_dict(pair)).co_label is None


class TestTimelineJsonl:
    def _timelines(self):
        return [
            Timeline(uid=1, tweets=(make_tweet(uid=1, ts=10.0), make_tweet(uid=1, ts=20.0, geotagged=False))),
            Timeline(uid=2, tweets=(make_tweet(uid=2, ts=15.0),)),
        ]

    def test_timeline_round_trip(self):
        timeline = self._timelines()[0]
        rebuilt = timeline_from_dict(timeline_to_dict(timeline))
        assert rebuilt.uid == timeline.uid
        assert len(rebuilt) == len(timeline)

    def test_jsonl_round_trip_plain(self, tmp_path):
        path = tmp_path / "timelines.jsonl"
        count = write_timelines_jsonl(self._timelines(), path)
        assert count == 2
        loaded = list(read_timelines_jsonl(path))
        assert [t.uid for t in loaded] == [1, 2]
        assert loaded[0].tweets[0].content == "coffee at the museum"

    def test_jsonl_round_trip_gzip(self, tmp_path):
        path = tmp_path / "timelines.jsonl.gz"
        write_timelines_jsonl(self._timelines(), path)
        loaded = list(read_timelines_jsonl(path))
        assert len(loaded) == 2

    def test_invalid_json_line_raises(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"uid": 1, "tweets": []}\nnot json\n')
        with pytest.raises(DataGenerationError):
            list(read_timelines_jsonl(path))

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text('{"uid": 1, "tweets": []}\n\n\n')
        assert len(list(read_timelines_jsonl(path))) == 1
