"""Tests for repro.io.social (friendship-graph persistence)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.io import (
    load_social_graph,
    save_social_graph,
    social_graph_from_dict,
    social_graph_to_dict,
)
from repro.social import SocialGraph


@pytest.fixture()
def graph() -> SocialGraph:
    built = SocialGraph.from_edges([(1, 2), (2, 3), (5, 9)])
    built.add_user(7)  # an isolated user must survive the round trip too
    return built


class TestDictCodec:
    def test_roundtrip_preserves_structure(self, graph):
        restored = social_graph_from_dict(social_graph_to_dict(graph))
        assert sorted(restored) == sorted(graph)
        assert restored.edges() == graph.edges()

    def test_dict_contains_format_marker(self, graph):
        data = social_graph_to_dict(graph)
        assert data["format"] == "repro-social-graph"
        assert data["version"] == 1

    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigurationError):
            social_graph_from_dict({"format": "something-else"})

    def test_malformed_edge_rejected(self):
        data = {"format": "repro-social-graph", "version": 1, "users": [1, 2], "friendships": [[1]]}
        with pytest.raises(ConfigurationError):
            social_graph_from_dict(data)

    def test_empty_graph_roundtrip(self):
        restored = social_graph_from_dict(social_graph_to_dict(SocialGraph()))
        assert restored.num_users == 0
        assert restored.num_friendships == 0


class TestFileRoundtrip:
    def test_save_and_load(self, graph, tmp_path):
        path = save_social_graph(graph, tmp_path / "graphs" / "friends.json")
        assert path.exists()
        restored = load_social_graph(path)
        assert restored.edges() == graph.edges()
        assert 7 in restored

    def test_file_is_plain_json(self, graph, tmp_path):
        path = save_social_graph(graph, tmp_path / "friends.json")
        with path.open() as handle:
            data = json.load(handle)
        assert data["friendships"] == [[1, 2], [2, 3], [5, 9]]

    def test_external_document_can_be_ingested(self, tmp_path):
        # A hand-written document, as an external crawler would produce it.
        path = tmp_path / "external.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-social-graph",
                    "version": 1,
                    "users": [10, 11, 12],
                    "friendships": [[10, 11]],
                }
            )
        )
        restored = load_social_graph(path)
        assert restored.are_friends(10, 11)
        assert restored.degree(12) == 0
