"""Tests for city (POI set) persistence."""

import numpy as np
import pytest

from repro.data.city import CityConfig, generate_city
from repro.errors import DataGenerationError
from repro.io import city_from_dict, city_to_dict, load_city, save_city
from repro.io.city import city_from_registry, poi_from_dict, poi_to_dict


class TestPOICodec:
    def test_poi_round_trip(self, small_registry):
        poi = small_registry.pois[0]
        rebuilt = poi_from_dict(poi_to_dict(poi))
        assert rebuilt.pid == poi.pid
        assert rebuilt.name == poi.name
        assert rebuilt.category == poi.category
        assert len(rebuilt.polygon.vertices) == len(poi.polygon.vertices)
        assert rebuilt.center.distance_to(poi.center) < 1.0  # metres

    def test_containment_is_preserved(self, small_registry):
        poi = small_registry.pois[2]
        rebuilt = poi_from_dict(poi_to_dict(poi))
        assert rebuilt.contains(poi.center.lat, poi.center.lon)

    def test_invalid_poi_raises(self):
        with pytest.raises(DataGenerationError):
            poi_from_dict({"pid": 1, "polygon": [[0.0, 0.0]]})


class TestCityRoundTrip:
    def test_dict_round_trip(self, small_city):
        rebuilt = city_from_dict(city_to_dict(small_city))
        assert len(rebuilt.registry) == len(small_city.registry)
        assert rebuilt.config.name == small_city.config.name
        np.testing.assert_allclose(rebuilt.popularity, small_city.popularity)

    def test_file_round_trip(self, small_city, tmp_path):
        path = save_city(small_city, tmp_path / "city.json")
        rebuilt = load_city(path)
        assert [p.pid for p in rebuilt.registry] == [p.pid for p in small_city.registry]

    def test_locate_agrees_after_round_trip(self, small_city):
        rebuilt = city_from_dict(city_to_dict(small_city))
        for poi in small_city.registry:
            located = rebuilt.registry.locate(poi.center.lat, poi.center.lon)
            assert located is not None and located.pid == poi.pid

    def test_missing_pois_raises(self):
        with pytest.raises(DataGenerationError):
            city_from_dict({"config": {}, "pois": []})

    def test_bad_popularity_length_falls_back_to_uniform(self, small_city):
        data = city_to_dict(small_city)
        data["popularity"] = [1.0]
        rebuilt = city_from_dict(data)
        np.testing.assert_allclose(rebuilt.popularity.sum(), 1.0)


class TestCityFromRegistry:
    def test_wraps_registry_with_uniform_popularity(self, small_registry):
        city = city_from_registry(small_registry, name="wrapped")
        assert city.config.name == "wrapped"
        assert len(city.registry) == len(small_registry)
        np.testing.assert_allclose(city.popularity, 1.0 / len(small_registry))

    def test_generated_city_still_loads(self):
        city = generate_city(CityConfig(num_pois=6, num_neighborhoods=2, seed=11))
        rebuilt = city_from_dict(city_to_dict(city))
        assert len(rebuilt.registry) == 6
