"""Tests for whole-dataset persistence (save_dataset / load_dataset)."""

import pytest

from repro.errors import DataGenerationError
from repro.io import load_dataset, save_dataset


@pytest.fixture(scope="module")
def saved_dataset_dir(tmp_path_factory, tiny_dataset):
    directory = tmp_path_factory.mktemp("dataset")
    save_dataset(tiny_dataset, directory)
    return directory


class TestSaveDataset:
    def test_writes_expected_files(self, saved_dataset_dir):
        names = {p.name for p in saved_dataset_dir.iterdir()}
        assert {"dataset.json", "city.json", "train.jsonl.gz", "validation.jsonl.gz", "test.jsonl.gz"} <= names


class TestLoadDataset:
    def test_round_trip_statistics_match(self, saved_dataset_dir, tiny_dataset):
        loaded = load_dataset(saved_dataset_dir)
        assert loaded.statistics() == tiny_dataset.statistics()

    def test_round_trip_preserves_config_and_registry(self, saved_dataset_dir, tiny_dataset):
        loaded = load_dataset(saved_dataset_dir)
        assert loaded.config.pairs.delta_t == tiny_dataset.config.pairs.delta_t
        assert len(loaded.registry) == len(tiny_dataset.registry)
        assert loaded.delta_t == tiny_dataset.delta_t

    def test_round_trip_preserves_pair_labels(self, saved_dataset_dir, tiny_dataset):
        loaded = load_dataset(saved_dataset_dir)
        original_labels = sorted(p.co_label for p in tiny_dataset.train.labeled_pairs)
        loaded_labels = sorted(p.co_label for p in loaded.train.labeled_pairs)
        assert loaded_labels == original_labels

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(DataGenerationError):
            load_dataset(tmp_path)

    def test_missing_split_raises(self, saved_dataset_dir, tmp_path):
        partial = tmp_path / "partial"
        partial.mkdir()
        for name in ("dataset.json", "city.json", "train.jsonl.gz"):
            (partial / name).write_bytes((saved_dataset_dir / name).read_bytes())
        with pytest.raises(DataGenerationError):
            load_dataset(partial)
