"""Tests for fitted-pipeline persistence (save_pipeline / load_pipeline)."""

import numpy as np
import pytest

from repro.colocation import CoLocationPipeline, OnePhaseConfig, PipelineConfig
from repro.errors import ConfigurationError, NotFittedError
from repro.features import HisRectConfig
from repro.io import load_engine, load_pipeline, save_pipeline
from repro.text import SkipGramConfig


@pytest.fixture(scope="module")
def saved_pipeline_dir(tmp_path_factory, fitted_pipeline):
    directory = tmp_path_factory.mktemp("pipeline")
    save_pipeline(fitted_pipeline, directory)
    return directory


class TestSavePipeline:
    def test_requires_fitted_pipeline(self, tmp_path, tiny_pipeline_config):
        with pytest.raises(NotFittedError):
            save_pipeline(CoLocationPipeline(tiny_pipeline_config), tmp_path)

    def test_writes_expected_files(self, saved_pipeline_dir):
        names = {p.name for p in saved_pipeline_dir.iterdir()}
        assert {"pipeline.json", "city.json", "vocabulary.json", "skipgram.npz", "weights.npz"} <= names


class TestLoadPipeline:
    def test_round_trip_predictions_identical(self, saved_pipeline_dir, fitted_pipeline, tiny_dataset):
        loaded = load_pipeline(saved_pipeline_dir)
        pairs = tiny_dataset.test.labeled_pairs or tiny_dataset.train.labeled_pairs[:20]
        np.testing.assert_allclose(
            loaded.predict_proba(pairs), fitted_pipeline.predict_proba(pairs), atol=1e-8
        )

    def test_round_trip_poi_inference_identical(self, saved_pipeline_dir, fitted_pipeline, tiny_dataset):
        loaded = load_pipeline(saved_pipeline_dir)
        profiles = tiny_dataset.train.labeled_profiles[:10]
        np.testing.assert_allclose(
            loaded.infer_poi_proba(profiles), fitted_pipeline.infer_poi_proba(profiles), atol=1e-8
        )
        assert loaded.infer_poi(profiles) == fitted_pipeline.infer_poi(profiles)

    def test_round_trip_features_identical(self, saved_pipeline_dir, fitted_pipeline, tiny_dataset):
        loaded = load_pipeline(saved_pipeline_dir)
        profiles = tiny_dataset.train.labeled_profiles[:5]
        np.testing.assert_allclose(
            loaded.features(profiles), fitted_pipeline.features(profiles), atol=1e-8
        )

    def test_loaded_config_matches(self, saved_pipeline_dir, fitted_pipeline):
        loaded = load_pipeline(saved_pipeline_dir)
        assert loaded.config == fitted_pipeline.config

    def test_vectorizer_settings_round_trip(self, saved_pipeline_dir, fitted_pipeline):
        loaded = load_pipeline(saved_pipeline_dir)
        assert loaded.vectorizer.max_tokens == fitted_pipeline.vectorizer.max_tokens
        assert loaded.vectorizer.min_tokens == fitted_pipeline.vectorizer.min_tokens
        assert loaded.vectorizer.cache_size == fitted_pipeline.vectorizer.cache_size

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_pipeline(tmp_path)

    def test_load_engine_wraps_loaded_pipeline(self, saved_pipeline_dir, fitted_pipeline, tiny_dataset):
        engine = load_engine(saved_pipeline_dir, cache_size=64)
        pairs = tiny_dataset.test.labeled_pairs[:10] or tiny_dataset.train.labeled_pairs[:10]
        np.testing.assert_allclose(
            engine.predict_proba(pairs), fitted_pipeline.predict_proba(pairs), atol=1e-8
        )


class TestOnePhaseRoundTrip:
    """The one-phase persistence path must reproduce predictions bit-for-bit."""

    @pytest.fixture(scope="class")
    def onephase_pipeline(self, tiny_dataset):
        config = PipelineConfig(
            hisrect=HisRectConfig(content_dim=6, feature_dim=12, embedding_dim=6),
            onephase=OnePhaseConfig(max_iterations=15, batch_size=4),
            skipgram=SkipGramConfig(embedding_dim=12, epochs=1),
            mode="one-phase",
        )
        return CoLocationPipeline(config).fit(tiny_dataset)

    def test_one_phase_round_trip_bitwise_identical(
        self, onephase_pipeline, tiny_dataset, tmp_path
    ):
        save_pipeline(onephase_pipeline, tmp_path / "onephase")
        loaded = load_pipeline(tmp_path / "onephase")
        pairs = tiny_dataset.test.labeled_pairs[:20] or tiny_dataset.train.labeled_pairs[:20]
        np.testing.assert_array_equal(
            loaded.predict_proba(pairs), onephase_pipeline.predict_proba(pairs)
        )
        np.testing.assert_array_equal(loaded.predict(pairs), onephase_pipeline.predict(pairs))

    def test_one_phase_round_trip_weights_identical(self, onephase_pipeline, tmp_path):
        save_pipeline(onephase_pipeline, tmp_path / "onephase-weights")
        loaded = load_pipeline(tmp_path / "onephase-weights")
        original_state = onephase_pipeline.onephase.network.state_dict()
        loaded_state = loaded.onephase.network.state_dict()
        assert sorted(original_state) == sorted(loaded_state)
        for key, value in original_state.items():
            np.testing.assert_array_equal(value, loaded_state[key])
