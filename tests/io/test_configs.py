"""Tests for the generic dataclass <-> dict config codec."""

import pytest

from repro.colocation import PipelineConfig
from repro.data import DatasetConfig
from repro.errors import ConfigurationError
from repro.features import HisRectConfig, HistoryFeatureConfig
from repro.io import config_from_dict, config_to_dict
from repro.ssl import SSLTrainingConfig


class TestConfigToDict:
    def test_flat_dataclass(self):
        data = config_to_dict(HistoryFeatureConfig(eps_d=500.0, eps_t=100.0))
        assert data == {"eps_d": 500.0, "eps_t": 100.0}

    def test_nested_dataclasses_become_nested_dicts(self):
        data = config_to_dict(HisRectConfig())
        assert isinstance(data["history"], dict)
        assert data["history"]["eps_d"] == 1000.0

    def test_tuples_become_lists(self):
        data = config_to_dict(DatasetConfig())
        assert isinstance(data["city"]["categories"], list)

    def test_rejects_non_dataclass(self):
        with pytest.raises(ConfigurationError):
            config_to_dict({"not": "a dataclass"})

    def test_rejects_dataclass_type(self):
        with pytest.raises(ConfigurationError):
            config_to_dict(HisRectConfig)


class TestConfigFromDict:
    def test_round_trip_pipeline_config(self):
        original = PipelineConfig(mode="one-phase", min_word_count=5, seed=3)
        rebuilt = config_from_dict(PipelineConfig, config_to_dict(original))
        assert rebuilt == original

    def test_round_trip_dataset_config(self):
        original = DatasetConfig(test_fraction=0.3, max_history=10, seed=9)
        rebuilt = config_from_dict(DatasetConfig, config_to_dict(original))
        assert rebuilt == original

    def test_round_trip_preserves_nested_overrides(self):
        original = PipelineConfig(
            hisrect=HisRectConfig(content_dim=4, history=HistoryFeatureConfig(eps_d=77.0)),
            ssl=SSLTrainingConfig(max_iterations=3),
        )
        rebuilt = config_from_dict(PipelineConfig, config_to_dict(original))
        assert rebuilt.hisrect.history.eps_d == 77.0
        assert rebuilt.ssl.max_iterations == 3
        assert rebuilt == original

    def test_unknown_keys_are_ignored(self):
        data = config_to_dict(HistoryFeatureConfig())
        data["mystery"] = 42
        rebuilt = config_from_dict(HistoryFeatureConfig, data)
        assert rebuilt == HistoryFeatureConfig()

    def test_missing_keys_fall_back_to_defaults(self):
        rebuilt = config_from_dict(HistoryFeatureConfig, {"eps_d": 12.0})
        assert rebuilt.eps_d == 12.0
        assert rebuilt.eps_t == HistoryFeatureConfig().eps_t

    def test_tuple_fields_are_restored_as_tuples(self):
        original = DatasetConfig()
        rebuilt = config_from_dict(DatasetConfig, config_to_dict(original))
        assert isinstance(rebuilt.city.categories, tuple)
        assert rebuilt.city.categories == original.city.categories

    def test_rejects_non_dataclass_type(self):
        with pytest.raises(ConfigurationError):
            config_from_dict(dict, {})

    def test_rejects_non_dict_payload(self):
        with pytest.raises(ConfigurationError):
            config_from_dict(HistoryFeatureConfig, [1, 2, 3])
