"""Tests for the friends-notification service."""

import numpy as np
import pytest

from repro.data.records import Tweet
from repro.errors import ConfigurationError
from repro.service import FriendsNotificationService


class SamePOIJudge:
    """Deterministic stand-in judge: probability 0.9 when both profiles share a pid."""

    def predict_proba(self, pairs):
        return np.array(
            [0.9 if (p.left.pid is not None and p.left.pid == p.right.pid) else 0.1 for p in pairs]
        )


def poi_tweet(registry, uid, ts, poi_index=0):
    poi = registry.pois[poi_index]
    return Tweet(uid=uid, ts=ts, content="here now", lat=poi.center.lat, lon=poi.center.lon)


@pytest.fixture
def service(small_registry):
    return FriendsNotificationService(
        judge=SamePOIJudge(),
        registry=small_registry,
        friendships=[(1, 2), (1, 3)],
        delta_t=3600.0,
        threshold=0.5,
    )


class TestFriendsNotificationService:
    def test_notifies_co_located_friends(self, service, small_registry):
        service.process(poi_tweet(small_registry, uid=1, ts=0.0, poi_index=0))
        notifications = service.process(poi_tweet(small_registry, uid=2, ts=600.0, poi_index=0))
        assert len(notifications) == 1
        notification = notifications[0]
        assert {notification.uid_a, notification.uid_b} == {1, 2}
        assert notification.probability == pytest.approx(0.9)
        assert service.notifications_sent == 1

    def test_no_notification_for_non_friends(self, service, small_registry):
        service.process(poi_tweet(small_registry, uid=4, ts=0.0, poi_index=0))
        assert service.process(poi_tweet(small_registry, uid=5, ts=60.0, poi_index=0)) == []

    def test_no_notification_for_different_pois(self, service, small_registry):
        service.process(poi_tweet(small_registry, uid=1, ts=0.0, poi_index=0))
        assert service.process(poi_tweet(small_registry, uid=2, ts=60.0, poi_index=3)) == []

    def test_no_notification_outside_delta_t(self, service, small_registry):
        service.process(poi_tweet(small_registry, uid=1, ts=0.0, poi_index=0))
        assert service.process(poi_tweet(small_registry, uid=2, ts=7200.0, poi_index=0)) == []

    def test_threshold_is_respected(self, small_registry):
        strict = FriendsNotificationService(
            judge=SamePOIJudge(),
            registry=small_registry,
            friendships=[(1, 2)],
            threshold=0.95,
        )
        strict.process(poi_tweet(small_registry, uid=1, ts=0.0))
        assert strict.process(poi_tweet(small_registry, uid=2, ts=10.0)) == []

    def test_process_many_collects_notifications(self, service, small_registry):
        tweets = [
            poi_tweet(small_registry, uid=2, ts=30.0, poi_index=1),
            poi_tweet(small_registry, uid=1, ts=0.0, poi_index=1),
            poi_tweet(small_registry, uid=3, ts=60.0, poi_index=1),
        ]
        notifications = service.process_many(tweets)
        pairs = {frozenset((n.uid_a, n.uid_b)) for n in notifications}
        assert pairs == {frozenset((1, 2)), frozenset((1, 3))}

    def test_co_located_profiles_batch_api(self, service, small_registry):
        builder_tweets = [
            poi_tweet(small_registry, uid=1, ts=0.0, poi_index=2),
            poi_tweet(small_registry, uid=2, ts=30.0, poi_index=2),
            poi_tweet(small_registry, uid=4, ts=45.0, poi_index=2),
        ]
        profiles = [service.builder.consume(t) for t in sorted(builder_tweets, key=lambda t: t.ts)]
        matches = service.co_located_profiles(profiles)
        assert len(matches) == 1
        left, right, probability = matches[0]
        assert {left.uid, right.uid} == {1, 2}
        assert probability == pytest.approx(0.9)

    def test_friendship_management(self, service):
        assert service.are_friends(1, 2)
        assert not service.are_friends(2, 3)
        service.add_friendship(2, 3)
        assert service.are_friends(3, 2)
        assert service.num_friendships == 3

    def test_invalid_configuration(self, small_registry):
        with pytest.raises(ConfigurationError):
            FriendsNotificationService(object(), small_registry, friendships=[])
        with pytest.raises(ConfigurationError):
            FriendsNotificationService(SamePOIJudge(), small_registry, friendships=[], threshold=2.0)
        with pytest.raises(ConfigurationError):
            FriendsNotificationService(SamePOIJudge(), small_registry, friendships=[(1, 1)])
