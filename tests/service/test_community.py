"""Tests for repro.service.community."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.records import Profile, Tweet
from repro.errors import ConfigurationError
from repro.service import CommunityDetector


class _PidBaseJudge:
    """Scores a pair 0.95 when both profiles share a true POI id, else 0.05."""

    def predict_proba(self, pairs):
        return np.array(
            [0.95 if p.left.tweet.true_pid == p.right.tweet.true_pid else 0.05 for p in pairs]
        )


def _profile(uid: int, ts: float, pid: int) -> Profile:
    tweet = Tweet(uid=uid, ts=ts, content=f"tweet from {uid}", true_pid=pid)
    return Profile(uid=uid, tweet=tweet, visit_history=(), pid=None)


@pytest.fixture()
def two_group_profiles() -> list[Profile]:
    # Users 1-3 co-located at POI 7, users 4-5 at POI 9, all within one hour.
    return [
        _profile(1, 100.0, 7),
        _profile(2, 200.0, 7),
        _profile(3, 300.0, 7),
        _profile(4, 150.0, 9),
        _profile(5, 250.0, 9),
    ]


class TestValidation:
    def test_judge_without_predict_proba_rejected(self):
        with pytest.raises(ConfigurationError):
            CommunityDetector(object())

    def test_invalid_delta_t_rejected(self):
        with pytest.raises(ConfigurationError):
            CommunityDetector(_PidBaseJudge(), delta_t=0.0)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            CommunityDetector(_PidBaseJudge(), edge_threshold=1.2)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            CommunityDetector(_PidBaseJudge(), method="magic")


class TestUserGraph:
    def test_graph_nodes_are_users(self, two_group_profiles):
        detector = CommunityDetector(_PidBaseJudge())
        graph = detector.build_user_graph(two_group_profiles)
        assert set(graph.nodes) == {1, 2, 3, 4, 5}

    def test_edges_only_above_threshold(self, two_group_profiles):
        detector = CommunityDetector(_PidBaseJudge(), edge_threshold=0.5)
        graph = detector.build_user_graph(two_group_profiles)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(1, 4)

    def test_pairs_outside_window_skipped(self):
        detector = CommunityDetector(_PidBaseJudge(), delta_t=60.0)
        profiles = [_profile(1, 0.0, 7), _profile(2, 3600.0, 7)]
        graph = detector.build_user_graph(profiles)
        assert graph.number_of_edges() == 0

    def test_repeat_pairs_keep_max_weight(self):
        detector = CommunityDetector(_PidBaseJudge())
        profiles = [
            _profile(1, 0.0, 7),
            _profile(2, 10.0, 7),
            _profile(1, 20.0, 7),
        ]
        graph = detector.build_user_graph(profiles)
        assert graph[1][2]["weight"] == pytest.approx(0.95)

    def test_empty_profile_list(self):
        detector = CommunityDetector(_PidBaseJudge())
        result = detector.detect([])
        assert result.communities == []
        assert result.num_communities == 0


class TestDetection:
    def test_two_clean_communities(self, two_group_profiles):
        detector = CommunityDetector(_PidBaseJudge())
        result = detector.detect(two_group_profiles)
        partitions = {frozenset(c) for c in result.communities}
        assert frozenset({1, 2, 3}) in partitions
        assert frozenset({4, 5}) in partitions

    def test_components_method_matches_structure(self, two_group_profiles):
        detector = CommunityDetector(_PidBaseJudge(), method="components")
        result = detector.detect(two_group_profiles)
        partitions = {frozenset(c) for c in result.communities}
        assert frozenset({1, 2, 3}) in partitions

    def test_modularity_positive_for_separated_groups(self, two_group_profiles):
        detector = CommunityDetector(_PidBaseJudge())
        result = detector.detect(two_group_profiles)
        assert result.modularity > 0.0

    def test_community_of_lookup(self, two_group_profiles):
        detector = CommunityDetector(_PidBaseJudge())
        result = detector.detect(two_group_profiles)
        assert result.community_of(1) == {1, 2, 3}
        assert result.community_of(999) is None

    def test_communities_sorted_largest_first(self, two_group_profiles):
        detector = CommunityDetector(_PidBaseJudge())
        result = detector.detect(two_group_profiles)
        sizes = [len(c) for c in result.communities]
        assert sizes == sorted(sizes, reverse=True)

    def test_isolated_users_form_singletons(self):
        detector = CommunityDetector(_PidBaseJudge(), method="components")
        profiles = [_profile(1, 0.0, 7), _profile(2, 10.0, 9)]
        result = detector.detect(profiles)
        assert {frozenset(c) for c in result.communities} == {frozenset({1}), frozenset({2})}


class TestMatrixInterface:
    def test_detect_from_matrix(self, two_group_profiles):
        detector = CommunityDetector(_PidBaseJudge())
        n = len(two_group_profiles)
        matrix = np.full((n, n), 0.05)
        for i in range(3):
            for j in range(3):
                matrix[i, j] = 0.9
        matrix[3, 4] = matrix[4, 3] = 0.9
        result = detector.detect_from_matrix(two_group_profiles, matrix)
        partitions = {frozenset(c) for c in result.communities}
        assert frozenset({1, 2, 3}) in partitions
        assert frozenset({4, 5}) in partitions

    def test_detect_from_matrix_shape_mismatch(self, two_group_profiles):
        detector = CommunityDetector(_PidBaseJudge())
        with pytest.raises(ConfigurationError):
            detector.detect_from_matrix(two_group_profiles, np.zeros((2, 2)))


class TestWithFittedPipeline:
    def test_detect_on_real_judge(self, fitted_pipeline, tiny_dataset):
        profiles = tiny_dataset.test.labeled_profiles[:12]
        if len(profiles) < 4:
            pytest.skip("tiny dataset has too few labelled test profiles")
        detector = CommunityDetector(fitted_pipeline, delta_t=tiny_dataset.delta_t)
        result = detector.detect(profiles)
        covered = set().union(*result.communities) if result.communities else set()
        assert covered == {p.uid for p in profiles}
