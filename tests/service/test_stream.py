"""Tests for the online profile builder and the stream scorer's live paths."""

import numpy as np
import pytest

from repro.data.records import Tweet
from repro.errors import DataGenerationError
from repro.service import OnlineProfileBuilder


def poi_tweet(registry, uid, ts, poi_index=0, content="espresso and a view"):
    poi = registry.pois[poi_index]
    return Tweet(uid=uid, ts=ts, content=content, lat=poi.center.lat, lon=poi.center.lon)


def plain_tweet(uid, ts, content="nothing much"):
    return Tweet(uid=uid, ts=ts, content=content)


class TestOnlineProfileBuilder:
    def test_first_profile_has_empty_history(self, small_registry):
        builder = OnlineProfileBuilder(small_registry)
        profile = builder.consume(poi_tweet(small_registry, uid=1, ts=100.0))
        assert profile.visit_history == ()

    def test_history_excludes_current_tweet(self, small_registry):
        builder = OnlineProfileBuilder(small_registry)
        builder.consume(poi_tweet(small_registry, uid=1, ts=100.0))
        profile = builder.consume(poi_tweet(small_registry, uid=1, ts=200.0, poi_index=1))
        assert len(profile.visit_history) == 1
        assert profile.visit_history[0].ts == 100.0

    def test_geotagged_poi_tweet_is_labeled(self, small_registry):
        builder = OnlineProfileBuilder(small_registry)
        profile = builder.consume(poi_tweet(small_registry, uid=1, ts=1.0, poi_index=2))
        assert profile.pid == small_registry.pois[2].pid

    def test_non_geotagged_tweet_is_unlabeled_and_adds_no_history(self, small_registry):
        builder = OnlineProfileBuilder(small_registry)
        profile = builder.consume(plain_tweet(uid=1, ts=1.0))
        assert profile.pid is None
        assert builder.history(1) == ()

    def test_out_of_order_tweet_raises(self, small_registry):
        builder = OnlineProfileBuilder(small_registry)
        builder.consume(plain_tweet(uid=1, ts=100.0))
        with pytest.raises(DataGenerationError):
            builder.consume(plain_tweet(uid=1, ts=50.0))

    def test_out_of_order_allowed_when_not_enforced(self, small_registry):
        builder = OnlineProfileBuilder(small_registry, enforce_order=False)
        builder.consume(plain_tweet(uid=1, ts=100.0))
        profile = builder.consume(plain_tweet(uid=1, ts=50.0))
        assert profile.uid == 1

    def test_max_history_is_enforced(self, small_registry):
        builder = OnlineProfileBuilder(small_registry, max_history=3)
        for step in range(6):
            builder.consume(poi_tweet(small_registry, uid=1, ts=float(step)))
        assert len(builder.history(1)) == 3
        assert builder.history(1)[0].ts == 3.0

    def test_histories_are_per_user(self, small_registry):
        builder = OnlineProfileBuilder(small_registry)
        builder.consume(poi_tweet(small_registry, uid=1, ts=1.0))
        profile = builder.consume(poi_tweet(small_registry, uid=2, ts=2.0))
        assert profile.visit_history == ()
        assert builder.num_users == 2

    def test_consume_many_sorts_by_timestamp(self, small_registry):
        builder = OnlineProfileBuilder(small_registry)
        tweets = [plain_tweet(1, 30.0), plain_tweet(2, 10.0), plain_tweet(1, 20.0)]
        profiles = builder.consume_many(tweets)
        assert [p.ts for p in profiles] == [10.0, 20.0, 30.0]
        assert builder.profiles_built == 3

    def test_negative_max_history_raises(self, small_registry):
        with pytest.raises(DataGenerationError):
            OnlineProfileBuilder(small_registry, max_history=-1)

    def test_zero_max_history_keeps_no_visits(self, small_registry):
        # Regression: deque(maxlen=0 or None) silently meant *unbounded*;
        # max_history=0 must mean "emit profiles with no history at all".
        builder = OnlineProfileBuilder(small_registry, max_history=0)
        for step in range(4):
            profile = builder.consume(poi_tweet(small_registry, uid=1, ts=float(step)))
            assert profile.visit_history == ()
        assert builder.history(1) == ()

    def test_none_max_history_is_unbounded(self, small_registry):
        builder = OnlineProfileBuilder(small_registry, max_history=None)
        for step in range(100):
            builder.consume(poi_tweet(small_registry, uid=1, ts=float(step)))
        assert len(builder.history(1)) == 100


class _StubJudge:
    """Minimal judge for exercising the scorer plumbing without a model."""

    def predict_proba(self, pairs):
        return [0.5] * len(pairs)


class TestStreamScorerOrdering:
    def test_default_is_strict(self, small_registry):
        from repro.service import StreamScorer

        scorer = StreamScorer(_StubJudge(), registry=small_registry)
        scorer.process(plain_tweet(uid=1, ts=100.0))
        with pytest.raises(DataGenerationError):
            scorer.process(plain_tweet(uid=1, ts=50.0))

    def test_enforce_order_false_reaches_the_builder(self, small_registry):
        from repro.service import StreamScorer

        scorer = StreamScorer(_StubJudge(), registry=small_registry, enforce_order=False)
        scorer.process(plain_tweet(uid=1, ts=100.0))
        scored = scorer.process(plain_tweet(uid=1, ts=50.0))  # tolerated, same user: no pairs
        assert scored == []
        assert scorer.builder.enforce_order is False

    def test_max_history_none_reaches_the_builder(self, small_registry):
        from repro.service import StreamScorer

        scorer = StreamScorer(_StubJudge(), registry=small_registry, max_history=None)
        assert scorer.builder.max_history is None


class TestStreamScorerShardedPath:
    def test_micro_batcher_passes_through_and_scores(self, fitted_pipeline):
        """A MicroBatcher speaks the engine surface, so a service can sit
        behind the coalescing front door instead of around it."""
        from repro.api import ColocationEngine
        from repro.cluster import MicroBatcher
        from repro.service import StreamScorer

        engine = ColocationEngine(fitted_pipeline, cache_size=128)
        with MicroBatcher(engine) as batcher:
            scorer = StreamScorer(batcher, delta_t=3600.0)
            assert scorer.engine is batcher  # resolve_engine must not re-wrap it
            registry = batcher.registry
            tweets = [
                poi_tweet(registry, uid=uid, ts=100.0 + uid, poi_index=uid % 2)
                for uid in range(4)
            ]
            scored = scorer.process_many(tweets)
            assert scored
            assert all(0.0 <= s.probability <= 1.0 for s in scored)
        assert batcher.metrics.snapshot().requests > 0  # went through the flusher

    def test_sharded_engine_passes_through_and_scores(self, fitted_pipeline):
        from repro.cluster import ShardedEngine
        from repro.service import StreamScorer

        with ShardedEngine(fitted_pipeline, num_shards=2, cache_size=128) as engine:
            scorer = StreamScorer(engine, delta_t=3600.0)
            assert scorer.engine is engine  # resolve_engine must not re-wrap it
            registry = engine.registry
            tweets = [
                poi_tweet(registry, uid=uid, ts=100.0 + uid, poi_index=uid % 2)
                for uid in range(4)
            ]
            scored = scorer.process_many(tweets)
            assert scored  # Δt-compatible cross-user pairs were judged
            assert all(0.0 <= s.probability <= 1.0 for s in scored)
            assert engine.cache_info().misses > 0  # featurized on the shards

    def test_raw_judge_still_wraps_to_a_single_engine(self, small_registry):
        from repro.api import ColocationEngine
        from repro.service import StreamScorer

        scorer = StreamScorer(_StubJudge(), registry=small_registry)
        assert isinstance(scorer.engine, ColocationEngine)


def stream_tweets(registry, n=24, users=5):
    """A deterministic mixed stream: geo-tagged POI tweets, plain tweets, and
    bursts of tweets sharing one timestamp (to exercise coalescing)."""
    tweets = []
    for step in range(n):
        uid = step % users
        ts = 100.0 + 40.0 * (step // 2)  # pairs of tweets share a timestamp
        if step % 4 == 3:
            tweets.append(plain_tweet(uid=uid, ts=ts, content=f"plain {step}"))
        else:
            tweets.append(
                poi_tweet(
                    registry, uid=uid, ts=ts, poi_index=step % len(registry.pois),
                    content=f"visit {step}",
                )
            )
    return tweets


def assert_scored_equal(got, expected):
    assert len(got) == len(expected)
    for left, right in zip(got, expected):
        assert left.pair.left.uid == right.pair.left.uid
        assert left.pair.right.uid == right.pair.right.uid
        assert left.pair.left.ts == right.pair.left.ts
        assert left.probability == right.probability  # bit-for-bit


class TestStreamScorerIncremental:
    def test_seeded_scores_are_bit_identical_to_scratch(self, fitted_pipeline):
        from repro.api import ColocationEngine
        from repro.service import StreamScorer

        incremental = StreamScorer(
            ColocationEngine(fitted_pipeline, cache_size=512), delta_t=3600.0
        )
        scratch = StreamScorer(
            ColocationEngine(fitted_pipeline, cache_size=512),
            delta_t=3600.0,
            incremental=False,
        )
        assert incremental.incremental and not scratch.incremental
        tweets = stream_tweets(incremental.engine.registry)
        got = [s for tweet in tweets for s in incremental.process(tweet)]
        expected = [s for tweet in tweets for s in scratch.process(tweet)]
        assert got  # the stream produced judged pairs
        assert_scored_equal(got, expected)

    def test_seeded_sharded_scores_are_bit_identical(self, fitted_pipeline):
        from repro.cluster import ShardedEngine
        from repro.service import StreamScorer

        with ShardedEngine(fitted_pipeline, num_shards=2, cache_size=512) as sharded:
            scorer = StreamScorer(sharded, delta_t=3600.0)
            assert scorer.incremental  # per-shard replicas are seedable
            tweets = stream_tweets(sharded.registry)
            got = [s for tweet in tweets for s in scorer.process(tweet)]
        from repro.api import ColocationEngine
        from repro.service import StreamScorer as Scorer

        reference = Scorer(
            ColocationEngine(fitted_pipeline, cache_size=512),
            delta_t=3600.0,
            incremental=False,
        )
        expected = [s for tweet in stream_tweets(reference.engine.registry) for s in reference.process(tweet)]
        assert_scored_equal(got, expected)

    def test_process_many_coalesces_to_batcher_precision(self, fitted_pipeline):
        """Coalesced per-timestamp groups agree with per-tweet calls to the
        MicroBatcher's coalescing tolerance (the BLAS batch shape changes)."""
        from repro.api import ColocationEngine
        from repro.service import StreamScorer

        batched = StreamScorer(
            ColocationEngine(fitted_pipeline, cache_size=512), delta_t=3600.0
        )
        one_by_one = StreamScorer(
            ColocationEngine(fitted_pipeline, cache_size=512), delta_t=3600.0
        )
        tweets = stream_tweets(batched.engine.registry)
        got = batched.process_many(tweets)
        expected = [s for tweet in sorted(tweets, key=lambda t: t.ts) for s in one_by_one.process(tweet)]
        assert got
        assert len(got) == len(expected)
        for left, right in zip(got, expected):
            assert left.pair.left.uid == right.pair.left.uid
            assert left.pair.right.uid == right.pair.right.uid
            assert left.probability == pytest.approx(right.probability, abs=1e-12)
        # the groups really coalesced: fewer engine calls than scoring tweets
        ts_groups = {t.ts for t in tweets}
        assert len(ts_groups) < len(tweets)

    def test_incremental_flag_by_engine_type(self, fitted_pipeline, small_registry):
        from repro.api import ColocationEngine
        from repro.cluster import MicroBatcher
        from repro.service import StreamScorer

        engine = ColocationEngine(fitted_pipeline, cache_size=64)
        assert StreamScorer(engine).incremental
        assert not StreamScorer(engine, incremental=False).incremental
        # a batcher front walks down to its seedable engine
        with MicroBatcher(engine, max_delay_ms=1.0) as batcher:
            assert StreamScorer(batcher).incremental
        # a judge with no feature-level surface cannot be seeded
        assert not StreamScorer(_StubJudge(), registry=small_registry).incremental

    def test_worker_pool_falls_back_to_scratch(self, fitted_pipeline):
        """The pool's featurizers live in worker processes: no seeding, same
        scores."""
        from repro.cluster import WorkerPool
        from repro.service import StreamScorer

        with WorkerPool(fitted_pipeline, num_workers=1, cache_size=512) as pool:
            scorer = StreamScorer(pool, delta_t=3600.0)
            assert not scorer.incremental
            tweets = stream_tweets(pool.registry, n=12)
            got = [s for tweet in tweets for s in scorer.process(tweet)]
        from repro.api import ColocationEngine

        reference = StreamScorer(
            ColocationEngine(fitted_pipeline, cache_size=512),
            delta_t=3600.0,
            incremental=False,
        )
        expected = [
            s
            for tweet in stream_tweets(reference.engine.registry, n=12)
            for s in reference.process(tweet)
        ]
        assert_scored_equal(got, expected)

    def test_seeding_skips_the_history_kernel(self, fitted_pipeline, monkeypatch):
        """The seeded featurizer serves its history rows from the warm memo —
        the engine's gather never runs the scratch Eq. (1)-(2) kernel."""
        from repro.api import ColocationEngine
        from repro.service import StreamScorer

        engine = ColocationEngine(fitted_pipeline, cache_size=512)
        scorer = StreamScorer(engine, delta_t=3600.0)
        assert scorer.incremental
        history = fitted_pipeline.judge.featurizer.history_featurizer
        calls = []
        original = history.featurize_batch
        monkeypatch.setattr(
            history,
            "featurize_batch",
            lambda profiles: calls.append(len(profiles)) or original(profiles),
        )
        for tweet in stream_tweets(engine.registry, n=10):
            scorer.process(tweet)
        # every history row came from the delta tracker's seeded memo; the
        # scratch batch kernel never ran (visit_rows is the delta's own path)
        assert calls == []
