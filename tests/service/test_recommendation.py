"""Tests for repro.service.recommendation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.records import Profile, Tweet
from repro.errors import ConfigurationError
from repro.service import LocalPeopleRecommender, Recommendation
from repro.text import TfidfVectorizer


class _PidBaseJudge:
    """Scores a pair 0.9 when the two profiles carry the same true POI id, else 0.1."""

    def predict_proba(self, pairs):
        return np.array(
            [0.9 if p.left.tweet.true_pid == p.right.tweet.true_pid else 0.1 for p in pairs]
        )


def _profile(uid: int, ts: float, content: str, pid: int = 0) -> Profile:
    tweet = Tweet(uid=uid, ts=ts, content=content, true_pid=pid)
    return Profile(uid=uid, tweet=tweet, visit_history=(), pid=None)


@pytest.fixture()
def recommender() -> LocalPeopleRecommender:
    return LocalPeopleRecommender(_PidBaseJudge(), delta_t=3600.0, colocation_weight=0.7)


@pytest.fixture()
def query() -> Profile:
    return _profile(1, ts=1000.0, content="coffee and jazz downtown", pid=7)


@pytest.fixture()
def candidates() -> list[Profile]:
    return [
        _profile(2, ts=1100.0, content="jazz and coffee by the park", pid=7),   # co-located + similar
        _profile(3, ts=1200.0, content="slot machines all night", pid=3),       # neither
        _profile(4, ts=1300.0, content="coffee downtown again", pid=3),         # similar only
        _profile(5, ts=90000.0, content="jazz and coffee", pid=7),              # outside delta_t
        _profile(1, ts=1050.0, content="my own other tweet", pid=7),            # same user
    ]


class TestValidation:
    def test_judge_without_predict_proba_rejected(self):
        with pytest.raises(ConfigurationError):
            LocalPeopleRecommender(object())

    def test_invalid_delta_t_rejected(self):
        with pytest.raises(ConfigurationError):
            LocalPeopleRecommender(_PidBaseJudge(), delta_t=0.0)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            LocalPeopleRecommender(_PidBaseJudge(), colocation_weight=1.5)

    def test_invalid_top_k_rejected(self, recommender, query, candidates):
        with pytest.raises(ConfigurationError):
            recommender.recommend(query, candidates, top_k=0)


class TestEligibility:
    def test_same_user_excluded(self, recommender, query, candidates):
        results = recommender.recommend(query, candidates, top_k=10)
        assert all(r.uid != query.uid for r in results)

    def test_outside_window_excluded(self, recommender, query, candidates):
        results = recommender.recommend(query, candidates, top_k=10)
        assert all(r.uid != 5 for r in results)

    def test_no_candidates_returns_empty(self, recommender, query):
        assert recommender.recommend(query, [], top_k=3) == []


class TestRanking:
    def test_colocated_and_similar_ranks_first(self, recommender, query, candidates):
        results = recommender.recommend(query, candidates, top_k=3)
        assert results[0].uid == 2

    def test_scores_sorted_descending(self, recommender, query, candidates):
        results = recommender.recommend(query, candidates, top_k=10)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_truncates(self, recommender, query, candidates):
        assert len(recommender.recommend(query, candidates, top_k=1)) == 1

    def test_min_score_filters(self, recommender, query, candidates):
        results = recommender.recommend(query, candidates, top_k=10, min_score=0.5)
        assert all(r.score >= 0.5 for r in results)

    def test_score_blend_respects_weight(self, query, candidates):
        colocation_only = LocalPeopleRecommender(_PidBaseJudge(), colocation_weight=1.0)
        results = colocation_only.recommend(query, candidates, top_k=10)
        for result in results:
            assert result.score == pytest.approx(result.colocation_probability)

    def test_interest_similarity_breaks_ties(self, query, candidates):
        interest_only = LocalPeopleRecommender(_PidBaseJudge(), colocation_weight=0.0)
        results = interest_only.recommend(query, candidates, top_k=10)
        by_uid = {r.uid: r for r in results}
        # Candidate 2 shares words with the query, candidate 3 does not.
        assert by_uid[2].interest_similarity > by_uid[3].interest_similarity

    def test_recommendation_fields(self, recommender, query, candidates):
        result = recommender.recommend(query, candidates, top_k=1)[0]
        assert isinstance(result, Recommendation)
        assert 0.0 <= result.colocation_probability <= 1.0
        assert result.profile.uid == result.uid


class TestBatchAndVectorizer:
    def test_recommend_for_all_covers_every_user(self, recommender, candidates, query):
        profiles = [query] + candidates
        results = recommender.recommend_for_all(profiles, top_k=2)
        assert set(results) == {p.uid for p in profiles}
        for recommendations in results.values():
            assert len(recommendations) <= 2

    def test_prefitted_vectorizer_used(self, query, candidates):
        vectorizer = TfidfVectorizer().fit(
            [query.content] + [c.content for c in candidates]
        )
        recommender = LocalPeopleRecommender(
            _PidBaseJudge(), colocation_weight=0.0, vectorizer=vectorizer
        )
        results = recommender.recommend(query, candidates, top_k=10)
        assert any(r.interest_similarity > 0.0 for r in results)

    def test_degenerate_contents_fall_back_to_zero_interest(self):
        query = _profile(1, ts=0.0, content="", pid=1)
        others = [_profile(2, ts=10.0, content="", pid=1)]
        recommender = LocalPeopleRecommender(_PidBaseJudge(), colocation_weight=0.5)
        results = recommender.recommend(query, others, top_k=1)
        assert results[0].interest_similarity == 0.0


class TestEvaluateRecommender:
    def _labelled_profiles(self) -> list[Profile]:
        # Users 1-3 at POI 7 within one window, users 4-5 at POI 9, plus a
        # user 6 at POI 7 but hours later (never relevant to anyone).
        def labelled(uid, ts, pid):
            tweet = Tweet(uid=uid, ts=ts, content=f"tweet {uid}", true_pid=pid)
            return Profile(uid=uid, tweet=tweet, visit_history=(), pid=pid)

        return [
            labelled(1, 100.0, 7),
            labelled(2, 200.0, 7),
            labelled(3, 300.0, 7),
            labelled(4, 150.0, 9),
            labelled(5, 250.0, 9),
            labelled(6, 90000.0, 7),
        ]

    def test_report_keys_and_bounds(self):
        from repro.service import evaluate_recommender

        recommender = LocalPeopleRecommender(_PidBaseJudge(), delta_t=3600.0)
        report = evaluate_recommender(recommender, self._labelled_profiles(), ks=(1, 3))
        assert "mrr" in report and "precision@1" in report
        assert all(0.0 <= value <= 1.0 for value in report.values())

    def test_informative_judge_beats_uninformative(self):
        from repro.service import evaluate_recommender

        profiles = self._labelled_profiles()

        class _Uninformative:
            def predict_proba(self, pairs):
                return np.full(len(pairs), 0.5)

        informed = LocalPeopleRecommender(_PidBaseJudge(), delta_t=3600.0, colocation_weight=1.0)
        blind = LocalPeopleRecommender(_Uninformative(), delta_t=3600.0, colocation_weight=1.0)
        informed_report = evaluate_recommender(informed, profiles, ks=(1,))
        blind_report = evaluate_recommender(blind, profiles, ks=(1,))
        assert informed_report["precision@1"] >= blind_report["precision@1"]
        assert informed_report["mrr"] >= 0.99

    def test_empty_when_no_colocated_partner(self):
        from repro.service import evaluate_recommender

        def labelled(uid, ts, pid):
            tweet = Tweet(uid=uid, ts=ts, content="x", true_pid=pid)
            return Profile(uid=uid, tweet=tweet, visit_history=(), pid=pid)

        lonely = [labelled(1, 0.0, 7), labelled(2, 10.0, 9)]
        recommender = LocalPeopleRecommender(_PidBaseJudge(), delta_t=3600.0)
        assert evaluate_recommender(recommender, lonely) == {}
