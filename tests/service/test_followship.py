"""Tests for repro.service.followship."""

from __future__ import annotations

import pytest

from repro.data.records import Timeline, Tweet, Visit
from repro.data.store import TimelineStore
from repro.errors import ConfigurationError
from repro.service import FollowshipAnalyzer, FollowshipScore

HOUR = 3600.0


def _visit_at(registry, poi_index: int, ts: float) -> Visit:
    poi = registry.pois[poi_index]
    return Visit(ts=ts, lat=poi.center.lat, lon=poi.center.lon)


def _timeline(registry, uid: int, events: list[tuple[int, float]]) -> Timeline:
    tweets = [
        Tweet(
            uid=uid,
            ts=ts,
            content="checking in",
            lat=registry.pois[poi_index].center.lat,
            lon=registry.pois[poi_index].center.lon,
        )
        for poi_index, ts in events
    ]
    return Timeline(uid=uid, tweets=tuple(tweets))


class TestValidation:
    def test_invalid_window_rejected(self, small_registry):
        with pytest.raises(ConfigurationError):
            FollowshipAnalyzer(small_registry, window_s=0.0)


class TestScorePair:
    def test_follower_trailing_leader_counts(self, small_registry):
        analyzer = FollowshipAnalyzer(small_registry, window_s=2 * HOUR)
        leader = [_visit_at(small_registry, 0, ts=0.0)]
        follower = [_visit_at(small_registry, 0, ts=HOUR)]
        score = analyzer.score_pair(leader, follower, leader_uid=1, follower_uid=2)
        assert score.followed_visits == 1
        assert score.total_follower_visits == 1
        assert score.score == pytest.approx(1.0)

    def test_visit_before_leader_does_not_count(self, small_registry):
        analyzer = FollowshipAnalyzer(small_registry, window_s=2 * HOUR)
        leader = [_visit_at(small_registry, 0, ts=HOUR)]
        follower = [_visit_at(small_registry, 0, ts=0.0)]
        score = analyzer.score_pair(leader, follower)
        assert score.followed_visits == 0

    def test_visit_outside_window_does_not_count(self, small_registry):
        analyzer = FollowshipAnalyzer(small_registry, window_s=HOUR)
        leader = [_visit_at(small_registry, 0, ts=0.0)]
        follower = [_visit_at(small_registry, 0, ts=10 * HOUR)]
        score = analyzer.score_pair(leader, follower)
        assert score.followed_visits == 0

    def test_different_poi_does_not_count(self, small_registry):
        analyzer = FollowshipAnalyzer(small_registry, window_s=2 * HOUR)
        leader = [_visit_at(small_registry, 0, ts=0.0)]
        follower = [_visit_at(small_registry, 1, ts=HOUR)]
        score = analyzer.score_pair(leader, follower)
        assert score.followed_visits == 0

    def test_empty_follower_history_scores_zero(self, small_registry):
        analyzer = FollowshipAnalyzer(small_registry)
        score = analyzer.score_pair([_visit_at(small_registry, 0, ts=0.0)], [])
        assert score.score == 0.0
        assert score.total_follower_visits == 0

    def test_non_poi_visits_ignored(self, small_registry):
        analyzer = FollowshipAnalyzer(small_registry, window_s=2 * HOUR)
        # A visit 50 km away from every POI never maps to a POI event.
        off_poi = Visit(ts=HOUR, lat=41.2, lon=-73.99)
        leader = [_visit_at(small_registry, 0, ts=0.0)]
        score = analyzer.score_pair(leader, [off_poi])
        assert score.total_follower_visits == 0

    def test_score_dataclass_fields(self, small_registry):
        analyzer = FollowshipAnalyzer(small_registry, window_s=2 * HOUR)
        leader = [_visit_at(small_registry, 0, ts=0.0)]
        follower = [_visit_at(small_registry, 0, ts=HOUR), _visit_at(small_registry, 1, ts=HOUR)]
        score = analyzer.score_pair(leader, follower, leader_uid=10, follower_uid=20)
        assert isinstance(score, FollowshipScore)
        assert score.leader_uid == 10
        assert score.follower_uid == 20
        assert score.score == pytest.approx(0.5)


class TestExpectedScore:
    def test_expected_score_between_zero_and_one(self, small_registry):
        analyzer = FollowshipAnalyzer(small_registry, window_s=2 * HOUR)
        leader = [_visit_at(small_registry, 0, ts=float(i) * HOUR) for i in range(4)]
        follower = [_visit_at(small_registry, 0, ts=float(i) * HOUR + 1800.0) for i in range(4)]
        expected = analyzer.expected_score(leader, follower)
        assert 0.0 <= expected <= 1.0

    def test_expected_zero_for_empty_follower(self, small_registry):
        analyzer = FollowshipAnalyzer(small_registry)
        assert analyzer.expected_score([_visit_at(small_registry, 0, 0.0)], []) == 0.0

    def test_observed_exceeds_expectation_for_true_follower(self, small_registry):
        # Follower always arrives 30 minutes after the leader at the same POI;
        # the leader rotates POIs so shuffled timestamps rarely line up.
        analyzer = FollowshipAnalyzer(small_registry, window_s=HOUR)
        leader = [_visit_at(small_registry, i % 5, ts=float(i) * 10 * HOUR) for i in range(10)]
        follower = [
            _visit_at(small_registry, i % 5, ts=float(i) * 10 * HOUR + 1800.0) for i in range(10)
        ]
        observed = analyzer.score_pair(leader, follower).score
        expected = analyzer.expected_score(leader, follower, num_permutations=30)
        assert observed > expected


class TestStoreAnalysis:
    @pytest.fixture()
    def store(self, small_registry) -> TimelineStore:
        leader = _timeline(small_registry, 1, [(0, 0.0), (1, 10 * HOUR), (2, 20 * HOUR)])
        follower = _timeline(
            small_registry, 2, [(0, HOUR), (1, 11 * HOUR), (2, 21 * HOUR)]
        )
        independent = _timeline(small_registry, 3, [(3, 5 * HOUR), (4, 15 * HOUR)])
        return TimelineStore([leader, follower, independent])

    def test_detects_leader_follower_pair(self, small_registry, store):
        analyzer = FollowshipAnalyzer(small_registry, window_s=2 * HOUR)
        results = analyzer.analyze_store(store, min_followed_visits=2)
        assert results
        top = results[0]
        assert (top.leader_uid, top.follower_uid) == (1, 2)
        assert top.score == pytest.approx(1.0)

    def test_independent_user_not_reported(self, small_registry, store):
        analyzer = FollowshipAnalyzer(small_registry, window_s=2 * HOUR)
        results = analyzer.analyze_store(store, min_followed_visits=1)
        assert all(3 not in (r.leader_uid, r.follower_uid) or r.followed_visits == 0 for r in results)

    def test_top_k_limits_results(self, small_registry, store):
        analyzer = FollowshipAnalyzer(small_registry, window_s=2 * HOUR)
        results = analyzer.analyze_store(store, min_followed_visits=1, top_k=1)
        assert len(results) <= 1

    def test_results_sorted_by_score(self, small_registry, store):
        analyzer = FollowshipAnalyzer(small_registry, window_s=2 * HOUR)
        results = analyzer.analyze_store(store, min_followed_visits=1)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)
