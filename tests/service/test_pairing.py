"""Tests for the sliding candidate-pair window."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.records import Profile, Tweet
from repro.errors import ConfigurationError
from repro.service import SlidingPairWindow


def make_profile(uid, ts, lat=None, lon=None):
    return Profile(uid=uid, tweet=Tweet(uid=uid, ts=ts, content="x", lat=lat, lon=lon), visit_history=(), pid=None)


class TestSlidingPairWindow:
    def test_pairs_require_different_users(self):
        window = SlidingPairWindow(delta_t=100.0)
        window.add(make_profile(1, 10.0))
        assert window.add(make_profile(1, 20.0)) == []
        assert len(window.add(make_profile(2, 30.0))) == 2

    def test_pairs_respect_delta_t(self):
        window = SlidingPairWindow(delta_t=50.0)
        window.add(make_profile(1, 0.0))
        candidates = window.add(make_profile(2, 49.0))
        assert len(candidates) == 1
        assert window.add(make_profile(3, 120.0)) == []

    def test_old_profiles_are_evicted(self):
        window = SlidingPairWindow(delta_t=50.0)
        window.add(make_profile(1, 0.0))
        window.add(make_profile(2, 100.0))
        assert len(window) == 1  # the first profile fell out of the window

    def test_candidate_pairs_are_unlabeled(self):
        window = SlidingPairWindow(delta_t=100.0)
        window.add(make_profile(1, 0.0))
        (pair,) = window.add(make_profile(2, 10.0))
        assert pair.co_label is None
        assert {pair.left.uid, pair.right.uid} == {1, 2}

    def test_spatial_gate_filters_distant_profiles(self):
        window = SlidingPairWindow(delta_t=100.0, max_distance_m=1000.0)
        window.add(make_profile(1, 0.0, lat=40.70, lon=-74.00))
        far = window.add(make_profile(2, 10.0, lat=40.90, lon=-74.00))  # ~22 km north
        assert far == []
        near = window.add(make_profile(3, 20.0, lat=40.701, lon=-74.001))
        assert len(near) == 1 and near[0].left.uid == 1

    def test_spatial_gate_ignores_non_geotagged(self):
        window = SlidingPairWindow(delta_t=100.0, max_distance_m=10.0)
        window.add(make_profile(1, 0.0))
        assert len(window.add(make_profile(2, 1.0))) == 1

    def test_max_profiles_cap(self):
        window = SlidingPairWindow(delta_t=1e9, max_profiles=3)
        for uid in range(5):
            window.add(make_profile(uid, float(uid)))
        assert len(window) == 3

    def test_clear(self):
        window = SlidingPairWindow(delta_t=100.0)
        window.add(make_profile(1, 0.0))
        window.clear()
        assert len(window) == 0

    def test_invalid_configuration_raises(self):
        with pytest.raises(ConfigurationError):
            SlidingPairWindow(delta_t=0.0)
        with pytest.raises(ConfigurationError):
            SlidingPairWindow(max_profiles=0)

    @given(
        timestamps=st.lists(st.floats(min_value=0, max_value=10_000, allow_nan=False), min_size=2, max_size=30),
        delta_t=st.floats(min_value=1.0, max_value=5_000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_emitted_pair_satisfies_definition_5(self, timestamps, delta_t):
        """Property: pairs always involve distinct users within delta_t."""
        window = SlidingPairWindow(delta_t=delta_t)
        for uid, ts in enumerate(sorted(timestamps)):
            for pair in window.add(make_profile(uid % 5, ts)):
                assert pair.left.uid != pair.right.uid
                assert abs(pair.left.ts - pair.right.ts) < delta_t


class TestDeltaTBoundary:
    """Pin Definition 5's strict inequality: a gap of exactly Δt is out.

    Both the eviction sweep and the pairing check use ``>= delta_t``; these
    boundary tests keep the vectorization work from drifting either one to a
    non-strict comparison.
    """

    def test_gap_of_exactly_delta_t_is_not_paired(self):
        window = SlidingPairWindow(delta_t=50.0)
        window.add(make_profile(1, 0.0))
        assert window.add(make_profile(2, 50.0)) == []

    def test_gap_just_below_delta_t_is_paired(self):
        window = SlidingPairWindow(delta_t=50.0)
        window.add(make_profile(1, 0.0))
        assert len(window.add(make_profile(2, 49.999))) == 1

    def test_gap_of_exactly_delta_t_is_evicted(self):
        window = SlidingPairWindow(delta_t=50.0)
        window.add(make_profile(1, 0.0))
        window.add(make_profile(2, 50.0))
        # The ts=0 profile aged out (gap == delta_t); only ts=50 remains.
        assert [p.ts for p in window.profiles] == [50.0]

    def test_gap_just_below_delta_t_is_retained(self):
        window = SlidingPairWindow(delta_t=50.0)
        window.add(make_profile(1, 0.0))
        window.add(make_profile(2, 49.999))
        assert [p.ts for p in window.profiles] == [0.0, 49.999]

    def test_eviction_and_pairing_agree_at_the_boundary(self):
        # A profile excluded from pairing by the boundary is also evicted, so
        # the window never retains profiles that can no longer pair.
        window = SlidingPairWindow(delta_t=50.0)
        window.add(make_profile(1, 0.0))
        candidates = window.add(make_profile(2, 50.0))
        assert candidates == []
        assert len(window) == 1
