"""Tests for the skip-gram word-vector model."""

import numpy as np
import pytest

from repro.errors import NotFittedError, TrainingError
from repro.text import SkipGramConfig, SkipGramModel, Vocabulary


def small_corpus():
    """Two 'topics' with disjoint co-occurring words."""
    sentences = []
    for _ in range(40):
        sentences.append(["coffee", "latte", "espresso", "barista"])
        sentences.append(["poker", "jackpot", "slots", "dealer"])
    return sentences


@pytest.fixture(scope="module")
def trained_model():
    corpus = small_corpus()
    vocab = Vocabulary.build(corpus, min_count=1)
    model = SkipGramModel(vocab, SkipGramConfig(embedding_dim=12, epochs=3, seed=1))
    model.train([vocab.encode(s) for s in corpus])
    return vocab, model


class TestSkipGram:
    def test_embeddings_shape(self, trained_model):
        vocab, model = trained_model
        assert model.embeddings.shape == (len(vocab), 12)

    def test_untrained_access_raises(self):
        vocab = Vocabulary.build([["a", "b"]])
        with pytest.raises(NotFittedError):
            SkipGramModel(vocab).embeddings

    def test_empty_sentences_raise(self):
        vocab = Vocabulary.build([["a", "b"]])
        with pytest.raises(TrainingError):
            SkipGramModel(vocab).train([])

    def test_cooccurring_words_more_similar_than_cross_topic(self, trained_model):
        vocab, model = trained_model

        def cos(a, b):
            va = model.vector(vocab.token_to_id[a])
            vb = model.vector(vocab.token_to_id[b])
            return float(va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb) + 1e-12))

        same_topic = cos("coffee", "latte")
        cross_topic = cos("coffee", "poker")
        assert same_topic > cross_topic

    def test_encode_sequence_shape(self, trained_model):
        vocab, model = trained_model
        ids = vocab.encode(["coffee", "latte", "poker"])
        assert model.encode_sequence(ids).shape == (3, 12)

    def test_encode_empty_sequence(self, trained_model):
        _, model = trained_model
        assert model.encode_sequence([]).shape == (0, 12)

    def test_most_similar_returns_neighbours(self, trained_model):
        _, model = trained_model
        neighbours = model.most_similar("coffee", top_k=3)
        assert len(neighbours) == 3
        assert all(isinstance(t, str) for t, _ in neighbours)

    def test_most_similar_unknown_token(self, trained_model):
        _, model = trained_model
        assert model.most_similar("definitely-not-a-word") == []
