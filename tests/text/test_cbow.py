"""Tests for repro.text.cbow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NotFittedError, TrainingError
from repro.text import CBOWConfig, CBOWModel, Tokenizer, Vocabulary


def _toy_corpus() -> list[list[str]]:
    # Two "neighbourhoods" of words that always co-occur, so the model should
    # place same-neighbourhood words closer than cross-neighbourhood words.
    nyc = ["statue", "liberty", "ferry", "harbor"]
    vegas = ["slots", "casino", "strip", "neon"]
    corpus = []
    rng = np.random.default_rng(7)
    for _ in range(80):
        corpus.append(list(rng.permutation(nyc)))
        corpus.append(list(rng.permutation(vegas)))
    return corpus


@pytest.fixture(scope="module")
def trained_model() -> tuple[CBOWModel, Vocabulary]:
    corpus = _toy_corpus()
    vocabulary = Vocabulary.build(corpus, min_count=1)
    sentences = [vocabulary.encode(tokens) for tokens in corpus]
    config = CBOWConfig(embedding_dim=16, epochs=3, window=3, seed=3)
    model = CBOWModel(vocabulary, config).train(sentences)
    return model, vocabulary


class TestTrainingGuards:
    def test_untrained_embeddings_raise(self):
        vocabulary = Vocabulary.build([["a", "b"]])
        with pytest.raises(NotFittedError):
            CBOWModel(vocabulary).embeddings

    def test_empty_vocabulary_raises(self):
        vocabulary = Vocabulary()
        with pytest.raises(TrainingError):
            CBOWModel(vocabulary).train([[0, 1]])

    def test_no_usable_sentences_raises(self):
        vocabulary = Vocabulary.build([["a", "b"]])
        with pytest.raises(TrainingError):
            CBOWModel(vocabulary).train([[0]])


class TestTrainedModel:
    def test_embedding_shape(self, trained_model):
        model, vocabulary = trained_model
        assert model.embeddings.shape == (len(vocabulary), model.embedding_dim)

    def test_embeddings_finite(self, trained_model):
        model, _ = trained_model
        assert np.isfinite(model.embeddings).all()

    def test_encode_sequence_shape(self, trained_model):
        model, vocabulary = trained_model
        ids = vocabulary.encode(["statue", "liberty"])
        assert model.encode_sequence(ids).shape == (2, model.embedding_dim)

    def test_encode_empty_sequence(self, trained_model):
        model, _ = trained_model
        assert model.encode_sequence([]).shape == (0, model.embedding_dim)

    def test_vector_matches_embedding_row(self, trained_model):
        model, vocabulary = trained_model
        token_id = vocabulary.token_to_id["casino"]
        np.testing.assert_allclose(model.vector(token_id), model.embeddings[token_id])

    def test_most_similar_prefers_cooccurring_words(self, trained_model):
        model, _ = trained_model
        neighbours = [token for token, _ in model.most_similar("statue", top_k=3)]
        assert any(token in {"liberty", "ferry", "harbor"} for token in neighbours)

    def test_most_similar_unknown_token_raises(self, trained_model):
        model, _ = trained_model
        with pytest.raises(NotFittedError):
            model.most_similar("notaword")

    def test_deterministic_given_seed(self):
        corpus = _toy_corpus()[:40]
        vocabulary = Vocabulary.build(corpus, min_count=1)
        sentences = [vocabulary.encode(tokens) for tokens in corpus]
        config = CBOWConfig(embedding_dim=8, epochs=1, seed=11)
        first = CBOWModel(vocabulary, config).train(sentences).embeddings
        second = CBOWModel(vocabulary, config).train(sentences).embeddings
        np.testing.assert_allclose(first, second)


class TestIntegrationWithTokenizer:
    def test_train_from_raw_text(self):
        tokenizer = Tokenizer()
        texts = ["having pizza near the statue of liberty", "slots night on the vegas strip"] * 10
        tokenised = [tokenizer(text) for text in texts]
        vocabulary = Vocabulary.build(tokenised, min_count=1)
        sentences = [vocabulary.encode(tokens) for tokens in tokenised]
        model = CBOWModel(vocabulary, CBOWConfig(embedding_dim=8, epochs=1)).train(sentences)
        assert model.embeddings.shape[0] == len(vocabulary)
