"""Tests for repro.text.ngrams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError, VocabularyError
from repro.text import (
    STOPWORD_TOKEN,
    TfidfConfig,
    TfidfVectorizer,
    Tokenizer,
    cosine_similarity_matrix,
    document_similarity,
    extract_all_ngrams,
    extract_ngrams,
    ngram_counts,
)

TOKENS = st.lists(st.sampled_from(["statue", "liberty", "pizza", "park", "strip"]), max_size=10)


class TestExtractNgrams:
    def test_invalid_order_raises(self):
        with pytest.raises(VocabularyError):
            extract_ngrams(["a", "b"], 0)

    def test_unigrams(self):
        assert extract_ngrams(["statue", "liberty"], 1) == [("statue",), ("liberty",)]

    def test_bigrams(self):
        grams = extract_ngrams(["statue", "of", "liberty"], 2, skip_stopword_token=False)
        assert grams == [("statue", "of"), ("of", "liberty")]

    def test_order_longer_than_sequence(self):
        assert extract_ngrams(["hi"], 3) == []

    def test_skips_stopword_sentinel(self):
        tokens = ["statue", STOPWORD_TOKEN, "liberty"]
        grams = extract_ngrams(tokens, 2)
        assert grams == []
        grams_kept = extract_ngrams(tokens, 2, skip_stopword_token=False)
        assert len(grams_kept) == 2

    def test_extract_all_orders(self):
        grams = extract_all_ngrams(["times", "square", "crowd"], max_order=2)
        assert ("times",) in grams
        assert ("times", "square") in grams

    def test_ngram_counts_aggregates_corpus(self):
        counts = ngram_counts([["a", "b"], ["a", "c"]], max_order=1)
        assert counts[("a",)] == 2
        assert counts[("b",)] == 1

    @settings(max_examples=30, deadline=None)
    @given(TOKENS, st.integers(min_value=1, max_value=4))
    def test_count_matches_length_formula(self, tokens, order):
        grams = extract_ngrams(tokens, order, skip_stopword_token=False)
        assert len(grams) == max(0, len(tokens) - order + 1)


class TestTfidfVectorizer:
    CORPUS = [
        "amazing pizza slice in brooklyn tonight",
        "brooklyn bridge walk with friends",
        "pizza and pasta near times square",
        "slots and shows on the vegas strip",
        "vegas strip lights are wild tonight",
    ]

    def test_fit_empty_corpus_raises(self):
        with pytest.raises(VocabularyError):
            TfidfVectorizer().fit([])

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            TfidfVectorizer().transform_one("hello world")

    def test_fit_transform_shape(self):
        vectorizer = TfidfVectorizer()
        matrix = vectorizer.fit_transform(self.CORPUS)
        assert matrix.shape == (len(self.CORPUS), vectorizer.num_features)

    def test_vectors_are_unit_norm(self):
        matrix = TfidfVectorizer().fit_transform(self.CORPUS)
        norms = np.linalg.norm(matrix, axis=1)
        np.testing.assert_allclose(norms[norms > 0], 1.0, atol=1e-9)

    def test_unseen_ngrams_ignored(self):
        vectorizer = TfidfVectorizer().fit(self.CORPUS)
        vector = vectorizer.transform_one("completely novel words only")
        assert np.allclose(vector, 0.0)

    def test_min_document_frequency_filters(self):
        config = TfidfConfig(min_document_frequency=2)
        vectorizer = TfidfVectorizer(config=config).fit(self.CORPUS)
        names = {" ".join(gram) for gram in vectorizer.feature_names}
        assert "pizza" in names
        assert "pasta" not in names  # appears in a single document

    def test_no_surviving_features_raises(self):
        config = TfidfConfig(min_document_frequency=10)
        with pytest.raises(VocabularyError):
            TfidfVectorizer(config=config).fit(self.CORPUS)

    def test_max_features_caps_vocabulary(self):
        config = TfidfConfig(max_features=3)
        vectorizer = TfidfVectorizer(config=config).fit(self.CORPUS)
        assert vectorizer.num_features == 3

    def test_bigram_features(self):
        config = TfidfConfig(max_order=2)
        vectorizer = TfidfVectorizer(config=config).fit(self.CORPUS)
        assert any(len(gram) == 2 for gram in vectorizer.feature_names)

    def test_related_documents_more_similar(self):
        vectorizer = TfidfVectorizer()
        matrix = vectorizer.fit_transform(self.CORPUS)
        vegas_pair = document_similarity(matrix[3], matrix[4])
        cross_city = document_similarity(matrix[0], matrix[3])
        assert vegas_pair > cross_city

    def test_accepts_pretokenized_documents(self):
        vectorizer = TfidfVectorizer().fit([["vegas", "strip"], ["brooklyn", "pizza"]])
        vector = vectorizer.transform_one(["vegas", "strip"])
        assert vector.sum() > 0.0

    def test_transform_empty_iterable(self):
        vectorizer = TfidfVectorizer().fit(self.CORPUS)
        matrix = vectorizer.transform([])
        assert matrix.shape == (0, vectorizer.num_features)

    def test_custom_tokenizer_is_used(self):
        tokenizer = Tokenizer(replace_stopwords=False)
        vectorizer = TfidfVectorizer(tokenizer=tokenizer).fit(self.CORPUS)
        assert vectorizer.num_features > 0


class TestSimilarityHelpers:
    def test_cosine_similarity_matrix_diagonal(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(4, 6))
        sims = cosine_similarity_matrix(matrix)
        np.testing.assert_allclose(np.diag(sims), 1.0, atol=1e-9)

    def test_cosine_similarity_matrix_requires_2d(self):
        with pytest.raises(VocabularyError):
            cosine_similarity_matrix(np.zeros(3))

    def test_zero_rows_do_not_produce_nan(self):
        matrix = np.zeros((2, 4))
        sims = cosine_similarity_matrix(matrix)
        assert np.isfinite(sims).all()

    def test_document_similarity_zero_vectors(self):
        assert document_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_document_similarity_identical(self):
        vector = np.array([1.0, 2.0, 3.0])
        assert document_similarity(vector, vector) == pytest.approx(1.0)
