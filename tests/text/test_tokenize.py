"""Tests for tokenisation and vocabularies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VocabularyError
from repro.text import STOPWORD_TOKEN, UNKNOWN_TOKEN, Tokenizer, Vocabulary


class TestTokenizer:
    def test_lowercases_and_splits(self):
        tokens = Tokenizer().tokenize("Coffee At The Museum")
        assert "coffee" in tokens
        assert "museum" in tokens

    def test_stopwords_replaced_with_sentinel(self):
        tokens = Tokenizer().tokenize("the museum")
        assert tokens[0] == STOPWORD_TOKEN
        assert tokens[1] == "museum"

    def test_stopwords_dropped_when_disabled(self):
        tokens = Tokenizer(replace_stopwords=False).tokenize("the museum")
        assert tokens == ["museum"]

    def test_punctuation_removed(self):
        tokens = Tokenizer().tokenize("great!!! #vegas @friend")
        assert "#vegas" in tokens
        assert "@friend" in tokens

    def test_empty_text(self):
        assert Tokenizer().tokenize("") == []

    def test_callable(self):
        tokenizer = Tokenizer()
        assert tokenizer("museum") == tokenizer.tokenize("museum")


class TestVocabulary:
    def test_build_includes_sentinels(self):
        vocab = Vocabulary.build([["a", "b"], ["a"]])
        assert UNKNOWN_TOKEN in vocab
        assert STOPWORD_TOKEN in vocab

    def test_min_count_filters(self):
        vocab = Vocabulary.build([["rare", "common", "common"]], min_count=2)
        assert "common" in vocab
        assert "rare" not in vocab

    def test_max_size_caps(self):
        vocab = Vocabulary.build([[f"w{i}" for i in range(50)]], max_size=10)
        assert len(vocab) <= 10

    def test_encode_unknown_maps_to_unk(self):
        vocab = Vocabulary.build([["known"]])
        ids = vocab.encode(["known", "never-seen"])
        assert ids[1] == vocab.unknown_id
        assert ids[0] != vocab.unknown_id

    def test_encode_decode_roundtrip_for_known_tokens(self):
        vocab = Vocabulary.build([["alpha", "beta", "gamma"]])
        tokens = ["alpha", "beta", "gamma"]
        assert vocab.decode(vocab.encode(tokens)) == tokens

    def test_empty_vocabulary_encode_raises(self):
        with pytest.raises(VocabularyError):
            Vocabulary().encode(["x"])

    @given(st.lists(st.sampled_from(["cafe", "museum", "park", "show"]), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_encode_length_preserved(self, tokens):
        vocab = Vocabulary.build([["cafe", "museum", "park", "show"]])
        assert len(vocab.encode(tokens)) == len(tokens)
