"""Tests for repro.geo.quadtree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geo import BoundingBox, IndexedPoint, QuadTree, haversine_m, radius_to_bbox

NYC_BOUNDS = BoundingBox(min_lat=40.5, min_lon=-74.3, max_lat=40.95, max_lon=-73.6)

LAT = st.floats(min_value=40.5, max_value=40.95, allow_nan=False)
LON = st.floats(min_value=-74.3, max_value=-73.6, allow_nan=False)


def _random_points(count: int, seed: int = 3) -> list[IndexedPoint]:
    rng = np.random.default_rng(seed)
    lats = rng.uniform(NYC_BOUNDS.min_lat, NYC_BOUNDS.max_lat, size=count)
    lons = rng.uniform(NYC_BOUNDS.min_lon, NYC_BOUNDS.max_lon, size=count)
    return [IndexedPoint(i, float(lat), float(lon)) for i, (lat, lon) in enumerate(zip(lats, lons))]


class TestBoundingBox:
    def test_degenerate_box_raises(self):
        with pytest.raises(GeometryError):
            BoundingBox(min_lat=1.0, min_lon=0.0, max_lat=0.0, max_lon=1.0)

    def test_contains_inclusive_edges(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains(0.0, 0.0)
        assert box.contains(1.0, 1.0)
        assert not box.contains(1.0001, 0.5)

    def test_intersects_overlapping(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(0.5, 0.5, 2.0, 2.0)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_intersects_disjoint(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(2.0, 2.0, 3.0, 3.0)
        assert not a.intersects(b)

    def test_min_distance_inside_is_zero(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.min_distance_m(0.5, 0.5) == 0.0

    def test_min_distance_outside_positive(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.min_distance_m(2.0, 0.5) > 0.0

    def test_quadrants_cover_parent(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        quadrants = box.quadrants()
        assert len(quadrants) == 4
        # Every corner of the parent lies in exactly one child.
        for lat, lon in [(0.1, 0.1), (0.9, 0.1), (0.1, 0.9), (0.9, 0.9)]:
            assert sum(q.contains(lat, lon) for q in quadrants) >= 1

    def test_radius_to_bbox_covers_circle(self):
        box = radius_to_bbox(40.7, -74.0, 1000.0)
        # Points just under 1 km north/east must be inside the box.
        assert box.contains(40.7088, -74.0)
        assert box.contains(40.7, -73.9895)

    def test_radius_to_bbox_negative_radius_raises(self):
        with pytest.raises(GeometryError):
            radius_to_bbox(40.7, -74.0, -1.0)


class TestQuadTreeBasics:
    def test_empty_tree(self):
        tree = QuadTree(NYC_BOUNDS)
        assert len(tree) == 0
        assert tree.nearest(40.7, -74.0) == []

    def test_insert_outside_bounds_raises(self):
        tree = QuadTree(NYC_BOUNDS)
        with pytest.raises(GeometryError):
            tree.insert(1, 10.0, 10.0)

    def test_invalid_leaf_capacity_raises(self):
        with pytest.raises(GeometryError):
            QuadTree(NYC_BOUNDS, leaf_capacity=0)

    def test_invalid_max_depth_raises(self):
        with pytest.raises(GeometryError):
            QuadTree(NYC_BOUNDS, max_depth=0)

    def test_from_points_empty_raises(self):
        with pytest.raises(GeometryError):
            QuadTree.from_points([])

    def test_len_counts_inserted_points(self):
        points = _random_points(50)
        tree = QuadTree.from_points(points)
        assert len(tree) == 50

    def test_iteration_returns_all_points(self):
        points = _random_points(80)
        tree = QuadTree.from_points(points)
        assert sorted(p.item_id for p in tree) == list(range(80))

    def test_splitting_creates_depth(self):
        points = _random_points(200)
        tree = QuadTree.from_points(points, leaf_capacity=4)
        assert tree.depth() >= 2

    def test_nearest_invalid_k_raises(self):
        tree = QuadTree.from_points(_random_points(10))
        with pytest.raises(GeometryError):
            tree.nearest(40.7, -74.0, k=0)


class TestQuadTreeQueries:
    @pytest.fixture(scope="class")
    def points(self) -> list[IndexedPoint]:
        return _random_points(300, seed=11)

    @pytest.fixture(scope="class")
    def tree(self, points) -> QuadTree:
        return QuadTree.from_points(points, leaf_capacity=8)

    def test_query_bbox_matches_bruteforce(self, tree, points):
        box = BoundingBox(40.70, -74.05, 40.80, -73.90)
        expected = {p.item_id for p in points if box.contains(p.lat, p.lon)}
        found = {p.item_id for p in tree.query_bbox(box)}
        assert found == expected

    def test_query_radius_matches_bruteforce(self, tree, points):
        lat, lon, radius = 40.75, -73.98, 3000.0
        expected = {
            p.item_id for p in points if haversine_m(lat, lon, p.lat, p.lon) <= radius
        }
        found = {p.item_id for p, _ in tree.query_radius(lat, lon, radius)}
        assert found == expected

    def test_query_radius_sorted_by_distance(self, tree):
        results = tree.query_radius(40.75, -73.98, 5000.0)
        distances = [d for _, d in results]
        assert distances == sorted(distances)

    def test_nearest_matches_bruteforce(self, tree, points):
        lat, lon = 40.72, -74.0
        brute = sorted(points, key=lambda p: haversine_m(lat, lon, p.lat, p.lon))
        for k in (1, 5, 17):
            expected = [p.item_id for p in brute[:k]]
            found = [p.item_id for p, _ in tree.nearest(lat, lon, k=k)]
            assert found == expected

    def test_nearest_k_larger_than_size(self, points):
        tree = QuadTree.from_points(points[:5])
        results = tree.nearest(40.75, -73.98, k=50)
        assert len(results) == 5

    def test_nearest_distances_increasing(self, tree):
        results = tree.nearest(40.8, -73.95, k=10)
        distances = [d for _, d in results]
        assert distances == sorted(distances)


class TestQuadTreeProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(LAT, LON), min_size=1, max_size=60), LAT, LON)
    def test_nearest_agrees_with_bruteforce(self, coords, query_lat, query_lon):
        points = [IndexedPoint(i, lat, lon) for i, (lat, lon) in enumerate(coords)]
        tree = QuadTree(NYC_BOUNDS, leaf_capacity=4)
        for point in points:
            tree.insert(point.item_id, point.lat, point.lon)
        nearest_point, nearest_distance = tree.nearest(query_lat, query_lon, k=1)[0]
        brute_best = min(
            haversine_m(query_lat, query_lon, p.lat, p.lon) for p in points
        )
        assert nearest_distance == pytest.approx(brute_best, rel=1e-9, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(LAT, LON), min_size=1, max_size=60))
    def test_every_inserted_point_is_retrievable(self, coords):
        tree = QuadTree(NYC_BOUNDS, leaf_capacity=2, max_depth=12)
        for i, (lat, lon) in enumerate(coords):
            tree.insert(i, lat, lon)
        assert len(tree) == len(coords)
        assert sorted(p.item_id for p in tree) == list(range(len(coords)))
