"""Tests for repro.geo.polygon."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geo import BoundingPolygon, GeoPoint


def square(center: GeoPoint, half_m: float = 100.0) -> BoundingPolygon:
    return BoundingPolygon(
        (
            center.offset(-half_m, -half_m),
            center.offset(-half_m, half_m),
            center.offset(half_m, half_m),
            center.offset(half_m, -half_m),
        )
    )


class TestBoundingPolygon:
    def test_requires_three_vertices(self):
        with pytest.raises(GeometryError):
            BoundingPolygon((GeoPoint(0, 0), GeoPoint(0, 1)))

    def test_from_latlon_pairs(self):
        polygon = BoundingPolygon.from_latlon_pairs([(0.0, 0.0), (0.0, 1.0), (1.0, 0.5)])
        assert len(polygon.vertices) == 3

    def test_center_inside_square(self):
        center = GeoPoint(40.75, -73.99)
        polygon = square(center)
        assert polygon.contains(center.lat, center.lon)

    def test_far_point_outside(self):
        center = GeoPoint(40.75, -73.99)
        polygon = square(center)
        outside = center.offset(5000.0, 5000.0)
        assert not polygon.contains(outside.lat, outside.lon)

    def test_vertex_counts_as_inside(self):
        polygon = BoundingPolygon.from_latlon_pairs([(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)])
        assert polygon.contains(0.0, 0.5)  # on an edge

    def test_centroid_of_square_is_center(self):
        center = GeoPoint(40.75, -73.99)
        polygon = square(center)
        c = polygon.centroid()
        assert c.lat == pytest.approx(center.lat, abs=1e-9)
        assert c.lon == pytest.approx(center.lon, abs=1e-9)

    def test_bounding_box_encloses_vertices(self):
        center = GeoPoint(40.75, -73.99)
        polygon = square(center)
        min_lat, min_lon, max_lat, max_lon = polygon.bounding_box()
        for v in polygon.vertices:
            assert min_lat <= v.lat <= max_lat
            assert min_lon <= v.lon <= max_lon


class TestRegularPolygon:
    def test_requires_three_sides(self):
        with pytest.raises(GeometryError):
            BoundingPolygon.regular(GeoPoint(0, 0), 100.0, sides=2)

    def test_requires_positive_radius(self):
        with pytest.raises(GeometryError):
            BoundingPolygon.regular(GeoPoint(0, 0), -5.0)

    @given(radius=st.floats(min_value=20.0, max_value=500.0), sides=st.integers(min_value=3, max_value=16))
    @settings(max_examples=25, deadline=None)
    def test_center_always_inside_regular_polygon(self, radius, sides):
        center = GeoPoint(40.75, -73.99)
        polygon = BoundingPolygon.regular(center, radius, sides=sides)
        assert polygon.contains_point(center)

    @given(radius=st.floats(min_value=20.0, max_value=500.0))
    @settings(max_examples=25, deadline=None)
    def test_point_beyond_radius_outside(self, radius):
        center = GeoPoint(40.75, -73.99)
        polygon = BoundingPolygon.regular(center, radius, sides=12)
        outside = center.offset(radius * 3.0, 0.0)
        assert not polygon.contains_point(outside)


class TestContainsBatch:
    @given(
        north_m=st.floats(min_value=-400.0, max_value=400.0, allow_nan=False),
        east_m=st.floats(min_value=-400.0, max_value=400.0, allow_nan=False),
        sides=st.integers(min_value=3, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matches_scalar_contains(self, north_m, east_m, sides):
        import numpy as np

        center = GeoPoint(40.75, -73.99)
        polygon = BoundingPolygon.regular(center, 150.0, sides=sides)
        point = center.offset(north_m, east_m)
        batch = polygon.contains_batch(np.array([point.lat]), np.array([point.lon]))
        assert bool(batch[0]) == polygon.contains(point.lat, point.lon)

    def test_batch_over_mixed_points(self):
        import numpy as np

        center = GeoPoint(40.75, -73.99)
        polygon = square(center)
        points = [center, center.offset(50.0, 50.0), center.offset(500.0, 0.0), center.offset(0.0, -99.0)]
        lats = np.array([p.lat for p in points])
        lons = np.array([p.lon for p in points])
        batch = polygon.contains_batch(lats, lons)
        expected = [polygon.contains(p.lat, p.lon) for p in points]
        assert batch.tolist() == expected

    def test_on_vertex_and_edge_points_count_as_inside(self):
        import numpy as np

        polygon = BoundingPolygon.from_latlon_pairs([(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)])
        lats = np.array([0.0, 0.0, 0.5])  # a vertex, an edge midpoint, an interior edge point
        lons = np.array([0.0, 0.5, 0.0])
        batch = polygon.contains_batch(lats, lons)
        assert batch.all()
        for lat, lon in zip(lats, lons):
            assert polygon.contains(lat, lon)

    def test_empty_input(self):
        import numpy as np

        polygon = square(GeoPoint(40.75, -73.99))
        assert polygon.contains_batch(np.empty(0), np.empty(0)).shape == (0,)
