"""Tests for repro.geo.polygon."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geo import BoundingPolygon, GeoPoint


def square(center: GeoPoint, half_m: float = 100.0) -> BoundingPolygon:
    return BoundingPolygon(
        (
            center.offset(-half_m, -half_m),
            center.offset(-half_m, half_m),
            center.offset(half_m, half_m),
            center.offset(half_m, -half_m),
        )
    )


class TestBoundingPolygon:
    def test_requires_three_vertices(self):
        with pytest.raises(GeometryError):
            BoundingPolygon((GeoPoint(0, 0), GeoPoint(0, 1)))

    def test_from_latlon_pairs(self):
        polygon = BoundingPolygon.from_latlon_pairs([(0.0, 0.0), (0.0, 1.0), (1.0, 0.5)])
        assert len(polygon.vertices) == 3

    def test_center_inside_square(self):
        center = GeoPoint(40.75, -73.99)
        polygon = square(center)
        assert polygon.contains(center.lat, center.lon)

    def test_far_point_outside(self):
        center = GeoPoint(40.75, -73.99)
        polygon = square(center)
        outside = center.offset(5000.0, 5000.0)
        assert not polygon.contains(outside.lat, outside.lon)

    def test_vertex_counts_as_inside(self):
        polygon = BoundingPolygon.from_latlon_pairs([(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)])
        assert polygon.contains(0.0, 0.5)  # on an edge

    def test_centroid_of_square_is_center(self):
        center = GeoPoint(40.75, -73.99)
        polygon = square(center)
        c = polygon.centroid()
        assert c.lat == pytest.approx(center.lat, abs=1e-9)
        assert c.lon == pytest.approx(center.lon, abs=1e-9)

    def test_bounding_box_encloses_vertices(self):
        center = GeoPoint(40.75, -73.99)
        polygon = square(center)
        min_lat, min_lon, max_lat, max_lon = polygon.bounding_box()
        for v in polygon.vertices:
            assert min_lat <= v.lat <= max_lat
            assert min_lon <= v.lon <= max_lon


class TestRegularPolygon:
    def test_requires_three_sides(self):
        with pytest.raises(GeometryError):
            BoundingPolygon.regular(GeoPoint(0, 0), 100.0, sides=2)

    def test_requires_positive_radius(self):
        with pytest.raises(GeometryError):
            BoundingPolygon.regular(GeoPoint(0, 0), -5.0)

    @given(radius=st.floats(min_value=20.0, max_value=500.0), sides=st.integers(min_value=3, max_value=16))
    @settings(max_examples=25, deadline=None)
    def test_center_always_inside_regular_polygon(self, radius, sides):
        center = GeoPoint(40.75, -73.99)
        polygon = BoundingPolygon.regular(center, radius, sides=sides)
        assert polygon.contains_point(center)

    @given(radius=st.floats(min_value=20.0, max_value=500.0))
    @settings(max_examples=25, deadline=None)
    def test_point_beyond_radius_outside(self, radius):
        center = GeoPoint(40.75, -73.99)
        polygon = BoundingPolygon.regular(center, radius, sides=12)
        outside = center.offset(radius * 3.0, 0.0)
        assert not polygon.contains_point(outside)
