"""Tests for repro.geo.trajectory."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.records import Visit
from repro.errors import GeometryError
from repro.geo import (
    GeoPoint,
    covisit_count,
    covisit_jaccard,
    detect_stay_points,
    mean_hop_m,
    radius_of_gyration_m,
    summarize,
    total_displacement_m,
    visit_entropy,
    visited_pois,
)

BASE = GeoPoint(40.75, -73.99)


def _visit(ts: float, north_m: float = 0.0, east_m: float = 0.0) -> Visit:
    point = BASE.offset(north_m=north_m, east_m=east_m)
    return Visit(ts=ts, lat=point.lat, lon=point.lon)


class TestDisplacementAndGyration:
    def test_empty_history_zero(self):
        assert total_displacement_m([]) == 0.0
        assert radius_of_gyration_m([]) == 0.0
        assert mean_hop_m([]) == 0.0

    def test_single_visit_zero(self):
        visits = [_visit(0.0)]
        assert total_displacement_m(visits) == 0.0
        assert radius_of_gyration_m(visits) == 0.0

    def test_straight_line_displacement(self):
        visits = [_visit(0.0), _visit(60.0, north_m=300.0), _visit(120.0, north_m=600.0)]
        assert total_displacement_m(visits) == pytest.approx(600.0, rel=0.02)

    def test_displacement_respects_timestamp_order(self):
        # Same points, shuffled input order: displacement must use ts order.
        ordered = [_visit(0.0), _visit(60.0, north_m=300.0), _visit(120.0, north_m=600.0)]
        shuffled = [ordered[2], ordered[0], ordered[1]]
        assert total_displacement_m(shuffled) == pytest.approx(total_displacement_m(ordered))

    def test_mean_hop(self):
        visits = [_visit(0.0), _visit(60.0, east_m=400.0), _visit(120.0, east_m=800.0)]
        assert mean_hop_m(visits) == pytest.approx(400.0, rel=0.02)

    def test_gyration_of_symmetric_pair(self):
        visits = [_visit(0.0, east_m=-500.0), _visit(60.0, east_m=500.0)]
        assert radius_of_gyration_m(visits) == pytest.approx(500.0, rel=0.02)

    def test_commuter_has_smaller_gyration_than_explorer(self):
        commuter = [_visit(t, east_m=(t % 2) * 200.0) for t in range(10)]
        explorer = [_visit(t, east_m=t * 800.0, north_m=t * 500.0) for t in range(10)]
        assert radius_of_gyration_m(commuter) < radius_of_gyration_m(explorer)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-2000, max_value=2000), min_size=2, max_size=15))
    def test_displacement_nonnegative_and_triangle(self, offsets):
        visits = [_visit(float(i * 60), east_m=offset) for i, offset in enumerate(offsets)]
        total = total_displacement_m(visits)
        direct = visits[0]
        last = visits[-1]
        from repro.geo import haversine_m

        assert total >= haversine_m(direct.lat, direct.lon, last.lat, last.lon) - 1e-6


class TestStayPoints:
    def test_invalid_thresholds_raise(self):
        with pytest.raises(GeometryError):
            detect_stay_points([], distance_threshold_m=0.0)
        with pytest.raises(GeometryError):
            detect_stay_points([], time_threshold_s=-1.0)

    def test_no_stay_point_for_fast_mover(self):
        visits = [_visit(t * 60.0, east_m=t * 1000.0) for t in range(5)]
        assert detect_stay_points(visits, distance_threshold_m=200.0) == []

    def test_detects_long_dwell(self):
        # 40 minutes within 50 m, then a jump away.
        visits = [_visit(t * 600.0, east_m=(t % 2) * 30.0) for t in range(5)]
        visits.append(_visit(4000.0, east_m=5000.0))
        stay_points = detect_stay_points(visits, distance_threshold_m=200.0, time_threshold_s=1200.0)
        assert len(stay_points) == 1
        assert stay_points[0].num_visits == 5
        assert stay_points[0].duration >= 1200.0

    def test_stay_point_centroid_near_cluster(self):
        visits = [_visit(t * 900.0, east_m=10.0 * t) for t in range(4)]
        stay_points = detect_stay_points(visits, distance_threshold_m=500.0, time_threshold_s=1800.0)
        assert len(stay_points) == 1
        assert stay_points[0].lat == pytest.approx(BASE.lat, abs=1e-3)


class TestPOIStatistics:
    def test_visit_entropy_empty(self, small_registry):
        assert visit_entropy([], small_registry) == 0.0

    def test_visit_entropy_single_poi_zero(self, small_registry):
        poi = small_registry.pois[0]
        visits = [Visit(ts=float(i), lat=poi.center.lat, lon=poi.center.lon) for i in range(5)]
        assert visit_entropy(visits, small_registry) == pytest.approx(0.0)

    def test_visit_entropy_two_pois_positive(self, small_registry):
        first, second = small_registry.pois[0], small_registry.pois[1]
        visits = [
            Visit(ts=0.0, lat=first.center.lat, lon=first.center.lon),
            Visit(ts=1.0, lat=second.center.lat, lon=second.center.lon),
        ]
        assert visit_entropy(visits, small_registry) > 0.5

    def test_visited_pois_in_order(self, small_registry):
        first, second = small_registry.pois[0], small_registry.pois[1]
        visits = [
            Visit(ts=10.0, lat=second.center.lat, lon=second.center.lon),
            Visit(ts=1.0, lat=first.center.lat, lon=first.center.lon),
        ]
        assert visited_pois(visits, small_registry) == [first.pid, second.pid]

    def test_summarize_fields(self, small_registry):
        poi = small_registry.pois[0]
        visits = [
            Visit(ts=0.0, lat=poi.center.lat, lon=poi.center.lon),
            Visit(ts=600.0, lat=poi.center.lat + 0.001, lon=poi.center.lon),
        ]
        summary = summarize(visits, small_registry)
        assert summary.num_visits == 2
        assert summary.total_displacement_m > 0.0
        assert summary.duration_s == pytest.approx(600.0)


class TestCoVisitSignals:
    def test_jaccard_empty_histories(self, small_registry):
        assert covisit_jaccard([], [], small_registry) == 0.0

    def test_jaccard_identical_histories(self, small_registry):
        poi = small_registry.pois[0]
        visits = [Visit(ts=0.0, lat=poi.center.lat, lon=poi.center.lon)]
        assert covisit_jaccard(visits, visits, small_registry) == 1.0

    def test_jaccard_disjoint_histories(self, small_registry):
        first, second = small_registry.pois[0], small_registry.pois[1]
        visits_a = [Visit(ts=0.0, lat=first.center.lat, lon=first.center.lon)]
        visits_b = [Visit(ts=0.0, lat=second.center.lat, lon=second.center.lon)]
        assert covisit_jaccard(visits_a, visits_b, small_registry) == 0.0

    def test_covisit_count_requires_same_window(self, small_registry):
        poi = small_registry.pois[0]
        visits_a = [Visit(ts=0.0, lat=poi.center.lat, lon=poi.center.lon)]
        visits_b_near = [Visit(ts=1800.0, lat=poi.center.lat, lon=poi.center.lon)]
        visits_b_far = [Visit(ts=7200.0, lat=poi.center.lat, lon=poi.center.lon)]
        assert covisit_count(visits_a, visits_b_near, small_registry, delta_t=3600.0) == 1
        assert covisit_count(visits_a, visits_b_far, small_registry, delta_t=3600.0) == 0

    def test_covisit_count_ignores_non_poi_visits(self, small_registry):
        off_poi = [_visit(0.0, north_m=50_000.0)]
        poi = small_registry.pois[0]
        at_poi = [Visit(ts=0.0, lat=poi.center.lat, lon=poi.center.lon)]
        assert covisit_count(off_poi, at_poi, small_registry) == 0
