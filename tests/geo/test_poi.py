"""Tests for repro.geo.poi."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geo import POI, BoundingPolygon, GeoPoint, POIRegistry


def make_poi(pid: int, center: GeoPoint, radius: float = 80.0) -> POI:
    return POI.from_polygon(pid, f"poi_{pid}", BoundingPolygon.regular(center, radius), category="park")


class TestPOI:
    def test_from_polygon_sets_center(self):
        center = GeoPoint(40.75, -73.99)
        poi = make_poi(1, center)
        assert poi.center.distance_to(center) < 1.0

    def test_contains_center(self):
        poi = make_poi(1, GeoPoint(40.75, -73.99))
        assert poi.contains(poi.center.lat, poi.center.lon)

    def test_distance_to(self):
        poi = make_poi(1, GeoPoint(40.75, -73.99))
        far = poi.center.offset(1000.0, 0.0)
        assert poi.distance_to(far.lat, far.lon) == pytest.approx(1000.0, rel=0.01)


class TestPOIRegistry:
    def test_empty_registry_rejected(self):
        with pytest.raises(GeometryError):
            POIRegistry([])

    def test_duplicate_pids_rejected(self):
        center = GeoPoint(40.75, -73.99)
        with pytest.raises(GeometryError):
            POIRegistry([make_poi(1, center), make_poi(1, center.offset(500, 0))])

    def test_len_iter_contains(self, small_registry):
        assert len(small_registry) == 5
        assert 0 in small_registry
        assert 99 not in small_registry
        assert len(list(small_registry)) == 5

    def test_get_and_index_roundtrip(self, small_registry):
        for poi in small_registry:
            assert small_registry.get(poi.pid) is poi
            assert small_registry.pid_at(small_registry.index_of(poi.pid)) == poi.pid

    def test_get_unknown_raises(self, small_registry):
        with pytest.raises(GeometryError):
            small_registry.get(12345)

    def test_distances_from_has_one_entry_per_poi(self, small_registry):
        poi = small_registry.get(0)
        distances = small_registry.distances_from(poi.center.lat, poi.center.lon)
        assert distances.shape == (5,)
        assert distances[0] == pytest.approx(0.0, abs=1.0)

    def test_nearest_returns_containing_poi_center(self, small_registry):
        poi = small_registry.get(2)
        nearest, distance = small_registry.nearest(poi.center.lat, poi.center.lon)
        assert nearest.pid == 2
        assert distance < 1.0

    def test_min_distance_matches_nearest(self, small_registry):
        point = small_registry.get(1).center.offset(150.0, 0.0)
        _, distance = small_registry.nearest(point.lat, point.lon)
        assert small_registry.min_distance(point.lat, point.lon) == pytest.approx(distance)

    def test_locate_inside_poi(self, small_registry):
        poi = small_registry.get(3)
        located = small_registry.locate(poi.center.lat, poi.center.lon)
        assert located is not None
        assert located.pid == 3

    def test_locate_outside_all_pois(self, small_registry):
        far = small_registry.get(0).center.offset(10_000.0, 10_000.0)
        assert small_registry.locate(far.lat, far.lon) is None

    def test_top_k_nearest_sorted(self, small_registry):
        poi = small_registry.get(0)
        results = small_registry.top_k_nearest(poi.center.lat, poi.center.lon, k=3)
        assert len(results) == 3
        distances = [d for _, d in results]
        assert distances == sorted(distances)
        assert results[0][0].pid == 0

    def test_top_k_capped_at_registry_size(self, small_registry):
        poi = small_registry.get(0)
        results = small_registry.top_k_nearest(poi.center.lat, poi.center.lon, k=100)
        assert len(results) == len(small_registry)

    def test_center_arrays_aligned(self, small_registry):
        assert small_registry.center_lats.shape == (5,)
        assert small_registry.center_lons.shape == (5,)
        assert np.all(np.isfinite(small_registry.center_lats))


class TestLocateBatch:
    def test_matches_scalar_locate(self, small_registry):
        rng = np.random.default_rng(3)
        anchor = small_registry.get(0).center
        lats, lons = [], []
        for _ in range(200):
            point = anchor.offset(
                north_m=float(rng.uniform(-300.0, 300.0)),
                east_m=float(rng.uniform(-300.0, 2_000.0)),
            )
            lats.append(point.lat)
            lons.append(point.lon)
        lats, lons = np.array(lats), np.array(lons)
        located = small_registry.locate_batch(lats, lons)
        assert (located >= 0).any()  # the sweep crosses several POI polygons
        assert (located == -1).any()
        for i in range(len(lats)):
            poi = small_registry.locate(lats[i], lons[i])
            if poi is None:
                assert located[i] == -1
            else:
                assert located[i] == small_registry.index_of(poi.pid)

    def test_poi_centers_locate_to_themselves(self, small_registry):
        located = small_registry.locate_batch(
            small_registry.center_lats, small_registry.center_lons
        )
        assert located.tolist() == list(range(len(small_registry)))

    def test_empty_input(self, small_registry):
        assert small_registry.locate_batch(np.empty(0), np.empty(0)).shape == (0,)

    def test_mismatched_shapes_raise(self, small_registry):
        with pytest.raises(GeometryError):
            small_registry.locate_batch(np.zeros(2), np.zeros(3))

    def test_distances_from_many_matches_rows(self, small_registry):
        points = [small_registry.get(1).center.offset(123.0, -45.0), small_registry.get(4).center]
        lats = np.array([p.lat for p in points])
        lons = np.array([p.lon for p in points])
        matrix = small_registry.distances_from_many(lats, lons)
        assert matrix.shape == (2, len(small_registry))
        for i in range(2):
            np.testing.assert_allclose(
                matrix[i], small_registry.distances_from(lats[i], lons[i]), rtol=1e-12, atol=1e-9
            )
