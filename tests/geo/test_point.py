"""Tests for repro.geo.point."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geo import (
    GeoPoint,
    centroid,
    equirectangular_m,
    haversine_m,
    many_to_many_m,
    pairwise_distance_m,
    point_to_many_m,
)

LAT = st.floats(min_value=-80.0, max_value=80.0, allow_nan=False)
LON = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)


class TestGeoPoint:
    def test_valid_point(self):
        p = GeoPoint(40.7, -74.0)
        assert p.lat == 40.7
        assert p.lon == -74.0
        assert p.as_tuple() == (40.7, -74.0)

    def test_invalid_latitude_raises(self):
        with pytest.raises(GeometryError):
            GeoPoint(91.0, 0.0)

    def test_invalid_longitude_raises(self):
        with pytest.raises(GeometryError):
            GeoPoint(0.0, 181.0)

    def test_distance_to_self_is_zero(self):
        p = GeoPoint(40.7, -74.0)
        assert p.distance_to(p) == 0.0

    def test_offset_north_moves_latitude(self):
        p = GeoPoint(40.7, -74.0)
        q = p.offset(north_m=1000.0, east_m=0.0)
        assert q.lat > p.lat
        assert q.lon == pytest.approx(p.lon)

    def test_offset_distance_roundtrip(self):
        p = GeoPoint(40.7, -74.0)
        q = p.offset(north_m=300.0, east_m=400.0)
        assert p.distance_to(q) == pytest.approx(500.0, rel=0.01)

    def test_offset_east_moves_longitude(self):
        p = GeoPoint(40.7, -74.0)
        q = p.offset(north_m=0.0, east_m=500.0)
        assert q.lon > p.lon


class TestDistances:
    def test_haversine_known_value(self):
        # Central Park to Times Square is roughly 4 km.
        d = haversine_m(40.7829, -73.9654, 40.7580, -73.9855)
        assert 3000.0 < d < 4000.0

    def test_equirectangular_close_to_haversine_at_city_scale(self):
        d_h = haversine_m(40.75, -73.99, 40.76, -73.97)
        d_e = equirectangular_m(40.75, -73.99, 40.76, -73.97)
        assert d_e == pytest.approx(d_h, rel=1e-3)

    @given(lat1=LAT, lon1=LON, lat2=LAT, lon2=LON)
    @settings(max_examples=50, deadline=None)
    def test_haversine_symmetry_and_nonnegative(self, lat1, lon1, lat2, lon2):
        d12 = haversine_m(lat1, lon1, lat2, lon2)
        d21 = haversine_m(lat2, lon2, lat1, lon1)
        assert d12 >= 0.0
        assert d12 == pytest.approx(d21, rel=1e-9, abs=1e-6)

    @given(lat=LAT, lon=LON)
    @settings(max_examples=30, deadline=None)
    def test_zero_distance_to_self(self, lat, lon):
        assert haversine_m(lat, lon, lat, lon) == 0.0
        assert equirectangular_m(lat, lon, lat, lon) == 0.0

    def test_point_to_many_matches_scalar(self):
        lats = np.array([40.75, 40.76, 40.80])
        lons = np.array([-73.99, -73.97, -73.90])
        vector = point_to_many_m(40.7, -74.0, lats, lons)
        for i in range(3):
            assert vector[i] == pytest.approx(equirectangular_m(40.7, -74.0, lats[i], lons[i]))

    def test_pairwise_requires_same_shape(self):
        with pytest.raises(GeometryError):
            pairwise_distance_m([1.0], [2.0], [1.0, 2.0], [3.0, 4.0])

    def test_pairwise_distance_values(self):
        d = pairwise_distance_m([40.7, 40.7], [-74.0, -74.0], [40.7, 40.71], [-74.0, -74.0])
        assert d[0] == 0.0
        assert d[1] > 1000.0


class TestManyToMany:
    def test_matches_point_to_many_rows(self):
        rng = np.random.default_rng(7)
        lats1 = rng.uniform(40.5, 41.0, size=17)
        lons1 = rng.uniform(-74.2, -73.8, size=17)
        lats2 = rng.uniform(40.5, 41.0, size=9)
        lons2 = rng.uniform(-74.2, -73.8, size=9)
        matrix = many_to_many_m(lats1, lons1, lats2, lons2)
        assert matrix.shape == (17, 9)
        for i in range(len(lats1)):
            np.testing.assert_allclose(
                matrix[i], point_to_many_m(lats1[i], lons1[i], lats2, lons2), rtol=1e-12, atol=1e-9
            )

    def test_matches_equirectangular_entries(self):
        matrix = many_to_many_m([40.7], [-74.0], [40.71, 40.8], [-74.0, -73.9])
        assert matrix[0, 0] == pytest.approx(equirectangular_m(40.7, -74.0, 40.71, -74.0), rel=1e-12)
        assert matrix[0, 1] == pytest.approx(equirectangular_m(40.7, -74.0, 40.8, -73.9), rel=1e-12)

    def test_zero_distance_diagonal(self):
        lats, lons = np.array([40.7, 40.8]), np.array([-74.0, -73.9])
        matrix = many_to_many_m(lats, lons, lats, lons)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_empty_sides(self):
        assert many_to_many_m([], [], [40.7], [-74.0]).shape == (0, 1)
        assert many_to_many_m([40.7], [-74.0], [], []).shape == (1, 0)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(GeometryError):
            many_to_many_m([40.7], [-74.0, -73.9], [40.7], [-74.0])
        with pytest.raises(GeometryError):
            many_to_many_m([[40.7]], [[-74.0]], [40.7], [-74.0])

    @given(lat1=LAT, lon1=LON, lat2=LAT, lon2=LON)
    @settings(max_examples=30, deadline=None)
    def test_property_agrees_with_scalar_equirectangular(self, lat1, lon1, lat2, lon2):
        matrix = many_to_many_m([lat1], [lon1], [lat2], [lon2])
        assert matrix[0, 0] == pytest.approx(
            equirectangular_m(lat1, lon1, lat2, lon2), rel=1e-9, abs=1e-6
        )


class TestCentroid:
    def test_centroid_of_single_point(self):
        p = GeoPoint(40.7, -74.0)
        assert centroid([p]) == p

    def test_centroid_is_mean(self):
        c = centroid([GeoPoint(40.0, -74.0), GeoPoint(41.0, -73.0)])
        assert c.lat == pytest.approx(40.5)
        assert c.lon == pytest.approx(-73.5)

    def test_centroid_of_nothing_raises(self):
        with pytest.raises(GeometryError):
            centroid([])
