"""Tests for repro.geo.geohash."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geo import geohash, haversine_m

LAT = st.floats(min_value=-85.0, max_value=85.0, allow_nan=False)
LON = st.floats(min_value=-179.9, max_value=179.9, allow_nan=False)


class TestEncodeDecode:
    def test_known_value_wikipedia_reference(self):
        # The canonical reference example from the geohash specification.
        assert geohash.encode(57.64911, 10.40744, precision=11) == "u4pruydqqvj"

    def test_known_prefixes_nyc_and_vegas(self):
        # Manhattan falls in the dr5r cell, the Las Vegas Strip in 9qqj.
        assert geohash.encode(40.758, -73.9855, precision=7).startswith("dr5r")
        assert geohash.encode(36.1147, -115.1728, precision=6).startswith("9qqj")

    def test_decode_centre_close_to_original(self):
        code = geohash.encode(40.758, -73.9855, precision=9)
        cell = geohash.decode(code)
        assert cell.lat == pytest.approx(40.758, abs=1e-3)
        assert cell.lon == pytest.approx(-73.9855, abs=1e-3)

    def test_decode_bounds_contain_centre(self):
        cell = geohash.decode("dr5ru")
        min_lat, min_lon, max_lat, max_lon = cell.bounds
        assert min_lat <= cell.lat <= max_lat
        assert min_lon <= cell.lon <= max_lon

    def test_invalid_latitude_raises(self):
        with pytest.raises(GeometryError):
            geohash.encode(95.0, 0.0)

    def test_invalid_precision_raises(self):
        with pytest.raises(GeometryError):
            geohash.encode(0.0, 0.0, precision=0)

    def test_decode_empty_raises(self):
        with pytest.raises(GeometryError):
            geohash.decode("")

    def test_decode_invalid_character_raises(self):
        with pytest.raises(GeometryError):
            geohash.decode("dr5a")  # 'a' is not in the geohash alphabet

    @settings(max_examples=60, deadline=None)
    @given(LAT, LON, st.integers(min_value=4, max_value=10))
    def test_roundtrip_error_bounded_by_cell_size(self, lat, lon, precision):
        code = geohash.encode(lat, lon, precision)
        cell = geohash.decode(code)
        assert abs(cell.lat - lat) <= cell.lat_error * 1.0000001
        assert abs(cell.lon - lon) <= cell.lon_error * 1.0000001

    @settings(max_examples=60, deadline=None)
    @given(LAT, LON, st.integers(min_value=2, max_value=10))
    def test_prefix_property(self, lat, lon, precision):
        longer = geohash.encode(lat, lon, precision)
        shorter = geohash.encode(lat, lon, precision - 1)
        assert longer.startswith(shorter)


class TestNeighbors:
    def test_neighbors_count(self):
        result = geohash.neighbors("dr5ru")
        assert len(result) == 8
        assert len(set(result.values())) == 8

    def test_adjacent_invalid_direction_raises(self):
        with pytest.raises(GeometryError):
            geohash.adjacent("dr5ru", "q")

    def test_adjacent_empty_raises(self):
        with pytest.raises(GeometryError):
            geohash.adjacent("", "n")

    def test_adjacent_roundtrip_north_south(self):
        code = "dr5ru"
        assert geohash.adjacent(geohash.adjacent(code, "n"), "s") == code

    def test_adjacent_roundtrip_east_west(self):
        code = "9qqj7"
        assert geohash.adjacent(geohash.adjacent(code, "e"), "w") == code

    def test_expand_includes_center(self):
        cells = geohash.expand("dr5ru")
        assert "dr5ru" in cells
        assert len(cells) == 9

    def test_neighbors_are_adjacent_cells(self):
        code = geohash.encode(40.75, -73.99, precision=6)
        center = geohash.decode(code)
        for neighbor_code in geohash.neighbors(code).values():
            neighbor = geohash.decode(neighbor_code)
            distance = haversine_m(center.lat, center.lon, neighbor.lat, neighbor.lon)
            # Neighbouring precision-6 cells are at most a few km apart.
            assert distance < 5000.0


class TestBucketingHelpers:
    def test_precision_for_radius_monotonic(self):
        coarse = geohash.precision_for_radius(100_000.0)
        fine = geohash.precision_for_radius(100.0)
        assert fine >= coarse

    def test_precision_for_radius_invalid_raises(self):
        with pytest.raises(GeometryError):
            geohash.precision_for_radius(0.0)

    def test_shared_prefix_length(self):
        assert geohash.shared_prefix_length("dr5ru", "dr5rv") == 4
        assert geohash.shared_prefix_length("dr5ru", "9qqj7") == 0
        assert geohash.shared_prefix_length("dr5", "dr5ru") == 3

    def test_grid_distance_zero_for_same_cell(self):
        assert geohash.grid_distance("dr5ru", "dr5ru") == 0.0

    def test_bucket_points_groups_nearby(self):
        points = [
            (0, 40.7580, -73.9855),
            (1, 40.7581, -73.9856),  # metres away from point 0
            (2, 36.1147, -115.1728),  # Las Vegas
        ]
        buckets = geohash.bucket_points(points, precision=6)
        bucket_of = {pid: key for key, pids in buckets.items() for pid in pids}
        assert bucket_of[0] == bucket_of[1]
        assert bucket_of[0] != bucket_of[2]

    def test_cell_dimensions_decrease_with_precision(self):
        h5, w5 = geohash.cell_dimensions_m(5)
        h7, w7 = geohash.cell_dimensions_m(7)
        assert h7 < h5 and w7 < w5

    def test_cell_dimensions_beyond_table(self):
        h11, w11 = geohash.cell_dimensions_m(11)
        h10, w10 = geohash.cell_dimensions_m(10)
        assert h11 < h10 and w11 < w10

    def test_cell_dimensions_invalid_raises(self):
        with pytest.raises(GeometryError):
            geohash.cell_dimensions_m(0)

    def test_covering_cells_contains_disc(self):
        lat, lon, radius = 40.75, -73.99, 400.0
        cells = geohash.covering_cells(lat, lon, radius)
        # A point on the edge of the disc must be in one of the covering cells.
        probe = geohash.encode(lat + 0.003, lon, precision=len(cells[0]))
        assert probe in cells

    def test_haversine_cell_error_positive(self):
        assert geohash.haversine_cell_error_m(7, lat=40.0) > 0.0
