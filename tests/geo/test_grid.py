"""Tests for repro.geo.grid."""

import pytest

from repro.geo import UniformGridIndex


class TestUniformGridIndex:
    def test_rejects_nonpositive_cell(self):
        with pytest.raises(ValueError):
            UniformGridIndex(cell_m=0.0)

    def test_empty_index_returns_no_candidates(self):
        grid = UniformGridIndex()
        assert list(grid.candidates(40.0, -74.0)) == []

    def test_inserted_item_is_candidate_inside_its_box(self):
        grid = UniformGridIndex(cell_m=500.0)
        grid.insert(7, (40.750, -73.995, 40.755, -73.990))
        assert 7 in grid.candidates(40.752, -73.992)

    def test_item_not_candidate_far_away(self):
        grid = UniformGridIndex(cell_m=200.0)
        grid.insert(7, (40.750, -73.995, 40.7505, -73.9945))
        assert 7 not in grid.candidates(40.90, -73.50)

    def test_len_counts_cell_entries(self):
        grid = UniformGridIndex(cell_m=100.0)
        grid.insert(1, (40.750, -73.995, 40.7505, -73.9945))
        assert len(grid) >= 1

    def test_large_box_spans_multiple_cells(self):
        grid = UniformGridIndex(cell_m=100.0)
        grid.insert(1, (40.750, -73.995, 40.760, -73.985))
        # Any point inside that box should see the item.
        assert 1 in grid.candidates(40.751, -73.994)
        assert 1 in grid.candidates(40.759, -73.986)
