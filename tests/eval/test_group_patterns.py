"""Tests for the Table 8 group-pattern sampler and evaluators."""

import numpy as np
import pytest

from repro.data import Profile, Tweet
from repro.eval import (
    GROUP_PATTERNS,
    GroupPatternSampler,
    evaluate_clustering_judge,
    evaluate_poi_inference_judge,
)
from repro.eval.group_patterns import GroupSample


def make_profiles(small_registry):
    """Many users at POI 0 and POI 1 within the same hour, plus POI 2 visitors."""
    profiles = []
    uid = 0
    for pid in (0, 1, 2):
        poi = small_registry.get(pid)
        for _ in range(8):
            tweet = Tweet(uid=uid, ts=100.0 + uid, content="x", lat=poi.center.lat, lon=poi.center.lon)
            profiles.append(Profile(uid=uid, tweet=tweet, pid=pid))
            uid += 1
    return profiles


class TestGroupPatternSampler:
    def test_patterns_defined(self):
        assert set(GROUP_PATTERNS) == {"5-0", "4-1", "3-2", "3-1-1", "2-2-1"}
        assert all(sum(sizes) == 5 for sizes in GROUP_PATTERNS.values())

    @pytest.mark.parametrize("pattern", list(GROUP_PATTERNS))
    def test_sample_respects_pattern(self, small_registry, pattern):
        sampler = GroupPatternSampler(make_profiles(small_registry), seed=3)
        sample = sampler.sample(pattern)
        assert sample is not None
        assert len(sample.profiles) == 5
        sizes = sorted(
            [sample.labels.count(label) for label in set(sample.labels)], reverse=True
        )
        assert tuple(sizes) == tuple(sorted(GROUP_PATTERNS[pattern], reverse=True))
        # All profiles in a group share the POI; different groups differ.
        by_label = {}
        for profile, label in zip(sample.profiles, sample.labels):
            by_label.setdefault(label, set()).add(profile.pid)
        assert all(len(pids) == 1 for pids in by_label.values())

    def test_sample_distinct_users(self, small_registry):
        sampler = GroupPatternSampler(make_profiles(small_registry), seed=3)
        sample = sampler.sample("5-0")
        assert len({p.uid for p in sample.profiles}) == 5

    def test_sample_many_bounded(self, small_registry):
        sampler = GroupPatternSampler(make_profiles(small_registry), seed=3)
        samples = sampler.sample_many("3-2", 4)
        assert 0 < len(samples) <= 4

    def test_impossible_pattern_returns_none(self, small_registry):
        poi = small_registry.get(0)
        # Only two users available: a 5-0 group cannot be formed.
        profiles = [
            Profile(uid=i, tweet=Tweet(i, 10.0 + i, "x", lat=poi.center.lat, lon=poi.center.lon), pid=0)
            for i in range(2)
        ]
        sampler = GroupPatternSampler(profiles, seed=3)
        assert sampler.sample("5-0") is None


class _OracleMatrixJudge:
    """Probability matrix straight from the ground-truth labels."""

    def __init__(self, labels):
        self.labels = labels

    def probability_matrix(self, profiles):
        n = len(profiles)
        matrix = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                matrix[i, j] = 1.0 if self.labels[i] == self.labels[j] else 0.0
        return matrix


class _OraclePOIJudge:
    def infer_poi(self, profiles):
        return [p.pid for p in profiles]


class _UselessPOIJudge:
    def infer_poi(self, profiles):
        return [0 for _ in profiles]


class TestEvaluators:
    def test_oracle_clustering_judge_scores_one(self, small_registry):
        sampler = GroupPatternSampler(make_profiles(small_registry), seed=3)
        samples = sampler.sample_many("3-2", 3)
        # Oracle needs per-sample labels, so wrap each sample individually.
        correct = 0
        for sample in samples:
            score = evaluate_clustering_judge(_OracleMatrixJudge(sample.labels), [sample])
            correct += score
        assert correct == len(samples)

    def test_oracle_poi_judge_scores_one(self, small_registry):
        sampler = GroupPatternSampler(make_profiles(small_registry), seed=3)
        samples = sampler.sample_many("4-1", 3)
        assert evaluate_poi_inference_judge(_OraclePOIJudge(), samples) == 1.0

    def test_useless_judge_fails_multi_group_patterns(self, small_registry):
        sampler = GroupPatternSampler(make_profiles(small_registry), seed=3)
        samples = sampler.sample_many("3-2", 3)
        assert evaluate_poi_inference_judge(_UselessPOIJudge(), samples) == 0.0

    def test_empty_samples_score_zero(self):
        assert evaluate_clustering_judge(_OracleMatrixJudge([]), []) == 0.0
        assert evaluate_poi_inference_judge(_OraclePOIJudge(), []) == 0.0
