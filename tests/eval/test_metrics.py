"""Tests for metrics, ROC/AUC, Acc@K, balanced folds, t-SNE and reports."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Pair, Profile, Tweet
from repro.eval import (
    accuracy_at_k,
    balanced_test_folds,
    binary_metrics,
    format_series,
    format_table,
    pair_labels,
    roc_auc_score,
    roc_curve,
    silhouette_score,
    tsne_embed,
)


class TestBinaryMetrics:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 1, 0])
        m = binary_metrics(y, y)
        assert m.accuracy == 1.0 and m.recall == 1.0 and m.precision == 1.0 and m.f1 == 1.0

    def test_all_wrong(self):
        m = binary_metrics(np.array([0, 1]), np.array([1, 0]))
        assert m.accuracy == 0.0
        assert m.f1 == 0.0

    def test_known_confusion(self):
        y_true = np.array([1, 1, 1, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0, 0])
        m = binary_metrics(y_true, y_pred)
        assert m.recall == pytest.approx(2 / 3)
        assert m.precision == pytest.approx(2 / 3)
        assert m.accuracy == pytest.approx(4 / 6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            binary_metrics(np.array([1]), np.array([1, 0]))

    def test_empty_inputs(self):
        m = binary_metrics(np.array([]), np.array([]))
        assert m.accuracy == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_metrics_in_unit_interval(self, labels):
        rng = np.random.default_rng(0)
        y_true = np.array(labels)
        y_pred = rng.integers(0, 2, size=len(labels))
        m = binary_metrics(y_true, y_pred)
        for value in (m.accuracy, m.recall, m.precision, m.f1):
            assert 0.0 <= value <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=40))
    @settings(max_examples=20, deadline=None)
    def test_f1_is_harmonic_mean(self, labels):
        rng = np.random.default_rng(1)
        y_true = np.array(labels)
        y_pred = rng.integers(0, 2, size=len(labels))
        m = binary_metrics(y_true, y_pred)
        if m.precision + m.recall > 0:
            expected = 2 * m.precision * m.recall / (m.precision + m.recall)
            assert m.f1 == pytest.approx(expected)


class TestROC:
    def test_perfect_classifier_auc_one(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(y, scores) == pytest.approx(1.0)

    def test_inverted_classifier_auc_zero(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(y, scores) == pytest.approx(0.0)

    def test_random_scores_auc_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=2000)
        scores = rng.random(2000)
        assert 0.45 < roc_auc_score(y, scores) < 0.55

    def test_curve_monotone_and_bounded(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=100)
        scores = rng.random(100)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all((tpr >= 0) & (tpr <= 1))
        assert fpr[0] == 0.0


class TestAccuracyAtK:
    def test_top1(self):
        scores = np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]])
        assert accuracy_at_k(np.array([0, 1]), scores, 1) == 1.0

    def test_k_larger_than_classes(self):
        scores = np.array([[0.7, 0.2, 0.1]])
        assert accuracy_at_k(np.array([2]), scores, 10) == 1.0

    def test_monotone_in_k(self):
        rng = np.random.default_rng(0)
        scores = rng.random((30, 8))
        truth = rng.integers(0, 8, size=30)
        accs = [accuracy_at_k(truth, scores, k) for k in range(1, 9)]
        assert all(a <= b + 1e-12 for a, b in zip(accs, accs[1:]))
        assert accs[-1] == 1.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            accuracy_at_k(np.array([0]), np.zeros(3), 1)


def make_pair(label, ts=0.0):
    a = Profile(uid=1, tweet=Tweet(1, ts, "a"), pid=0)
    b = Profile(uid=2, tweet=Tweet(2, ts + 1, "b"), pid=0 if label else 1)
    return Pair(a, b, co_label=label)


class TestBalancedFolds:
    def test_each_fold_contains_all_positives(self):
        pairs = [make_pair(1) for _ in range(5)] + [make_pair(0) for _ in range(20)]
        folds = balanced_test_folds(pairs, num_folds=4, seed=1)
        assert len(folds) == 4
        for fold in folds:
            assert sum(1 for p in fold if p.is_positive) == 5

    def test_negatives_partitioned(self):
        pairs = [make_pair(1)] + [make_pair(0) for _ in range(9)]
        folds = balanced_test_folds(pairs, num_folds=3, seed=1)
        negative_total = sum(sum(1 for p in fold if p.is_negative) for fold in folds)
        assert negative_total == 9

    def test_no_negatives_single_fold(self):
        pairs = [make_pair(1), make_pair(1)]
        folds = balanced_test_folds(pairs)
        assert len(folds) == 1

    def test_pair_labels_rejects_unlabeled(self):
        a = Profile(uid=1, tweet=Tweet(1, 0, "a"))
        b = Profile(uid=2, tweet=Tweet(2, 1, "b"))
        with pytest.raises(ValueError):
            pair_labels([Pair(a, b, None)])


class TestTSNE:
    def test_embed_shape(self):
        rng = np.random.default_rng(0)
        out = tsne_embed(rng.normal(size=(30, 8)))
        assert out.shape == (30, 2)
        assert np.all(np.isfinite(out))

    def test_empty_and_tiny_inputs(self):
        assert tsne_embed(np.zeros((0, 4))).shape == (0, 2)
        assert tsne_embed(np.zeros((2, 4))).shape == (2, 2)

    def test_separates_well_separated_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(20, 6)) + 20.0
        b = rng.normal(size=(20, 6)) - 20.0
        coords = tsne_embed(np.vstack([a, b]))
        labels = np.array([0] * 20 + [1] * 20)
        assert silhouette_score(coords, labels) > 0.3

    def test_silhouette_degenerate_cases(self):
        assert silhouette_score(np.zeros((2, 2)), np.array([0, 0])) == 0.0
        assert silhouette_score(np.zeros((5, 2)), np.zeros(5, dtype=int)) == 0.0


class TestReports:
    def test_format_table_contains_rows_and_columns(self):
        text = format_table({"A": {"Acc": 0.5}, "B": {"Acc": 0.75}}, title="T")
        assert "T" in text and "A" in text and "0.7500" in text

    def test_format_table_empty(self):
        assert format_table({}, title="empty") == "empty"

    def test_format_series(self):
        text = format_series({"f1": [0.1, 0.2]}, [1, 2], title="S", x_label="k")
        assert "S" in text and "k" in text and "0.2000" in text
