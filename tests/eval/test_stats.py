"""Tests for the statistical comparison helpers."""

import numpy as np
import pytest

from repro.eval import (
    bootstrap_metric,
    confusion_matrix,
    mcnemar_test,
    paired_fold_ttest,
)


class TestConfusionMatrix:
    def test_counts(self):
        y_true = np.array([0, 0, 1, 1, 1])
        y_pred = np.array([0, 1, 1, 0, 1])
        matrix = confusion_matrix(y_true, y_pred)
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 2]])

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 2]), np.array([0, 1]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0]))


class TestBootstrapMetric:
    @staticmethod
    def _accuracy(y_true, y_pred):
        return float(np.mean(y_true == (y_pred >= 0.5)))

    def test_interval_contains_point_estimate(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 2, size=200)
        scores = np.where(y_true == 1, 0.7, 0.3) + rng.normal(0, 0.2, size=200)
        interval = bootstrap_metric(y_true, scores, self._accuracy, num_resamples=200)
        assert interval.lower <= interval.point <= interval.upper
        assert interval.point in interval

    def test_perfect_predictor_has_degenerate_interval(self):
        y_true = np.array([0, 1] * 50)
        scores = y_true.astype(float)
        interval = bootstrap_metric(y_true, scores, self._accuracy, num_resamples=100)
        assert interval.lower == interval.upper == interval.point == 1.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            bootstrap_metric(np.array([]), np.array([]), self._accuracy)
        with pytest.raises(ValueError):
            bootstrap_metric(np.array([1]), np.array([1.0]), self._accuracy, confidence=1.5)


class TestMcNemar:
    def test_identical_predictions_not_significant(self):
        y_true = np.array([0, 1, 0, 1, 1])
        predictions = np.array([0, 1, 1, 1, 0])
        result = mcnemar_test(y_true, predictions, predictions)
        assert result.p_value == 1.0
        assert not result.significant

    def test_clearly_better_judge_is_significant(self):
        rng = np.random.default_rng(2)
        y_true = rng.integers(0, 2, size=400)
        good = y_true.copy()
        bad = np.where(rng.random(400) < 0.5, y_true, 1 - y_true)
        result = mcnemar_test(y_true, good, bad)
        assert result.second_only == 0
        assert result.significant

    def test_small_sample_uses_exact_test(self):
        y_true = np.array([1, 1, 1, 0, 0, 0])
        first = np.array([1, 1, 1, 0, 0, 0])
        second = np.array([0, 1, 1, 0, 0, 1])
        result = mcnemar_test(y_true, first, second)
        assert 0.0 <= result.p_value <= 1.0
        assert result.first_only == 2 and result.second_only == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mcnemar_test(np.array([0, 1]), np.array([0]), np.array([0, 1]))


class TestPairedFoldTTest:
    def test_identical_scores_give_p_one(self):
        statistic, p_value = paired_fold_ttest([0.8, 0.7, 0.9], [0.8, 0.7, 0.9])
        assert statistic == 0.0 and p_value == 1.0

    def test_consistent_improvement_is_detected(self):
        first = [0.80, 0.82, 0.78, 0.81, 0.79]
        second = [0.70, 0.71, 0.69, 0.72, 0.68]
        statistic, p_value = paired_fold_ttest(first, second)
        assert statistic > 0
        assert p_value < 0.01

    def test_needs_at_least_two_folds(self):
        with pytest.raises(ValueError):
            paired_fold_ttest([0.5], [0.4])
