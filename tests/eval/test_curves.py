"""Tests for precision-recall and calibration curves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    average_precision,
    best_f1_threshold,
    calibration_curve,
    expected_calibration_error,
    f1_at_threshold,
    precision_recall_curve,
)


class TestPrecisionRecallCurve:
    def test_perfect_ranking(self):
        y_true = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        precision, recall, thresholds = precision_recall_curve(y_true, scores)
        assert precision[-1] == 1.0 and recall[-1] == 0.0
        assert average_precision(y_true, scores) == pytest.approx(1.0)

    def test_worst_ranking(self):
        y_true = np.array([1, 1, 0, 0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert average_precision(y_true, scores) < 0.6

    def test_shapes_are_consistent(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 2, size=50)
        scores = rng.random(50)
        precision, recall, thresholds = precision_recall_curve(y_true, scores)
        assert len(precision) == len(recall) == len(thresholds) + 1

    def test_input_validation(self):
        with pytest.raises(ValueError):
            precision_recall_curve(np.array([0, 2]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            precision_recall_curve(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            precision_recall_curve(np.array([0, 1]), np.array([0.5]))

    @given(
        labels=st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=40),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounds_property(self, labels, seed):
        y_true = np.array(labels)
        scores = np.random.default_rng(seed).random(len(labels))
        precision, recall, _ = precision_recall_curve(y_true, scores)
        assert np.all((precision >= 0) & (precision <= 1))
        assert np.all((recall >= 0) & (recall <= 1))
        assert 0.0 <= average_precision(y_true, scores) <= 1.0 + 1e-9


class TestF1Thresholding:
    def test_f1_at_half(self):
        y_true = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.4, 0.6, 0.1])
        assert f1_at_threshold(y_true, scores, 0.5) == pytest.approx(0.5)

    def test_best_threshold_recovers_perfect_split(self):
        y_true = np.array([0, 0, 1, 1, 1])
        scores = np.array([0.1, 0.3, 0.7, 0.8, 0.9])
        threshold, value = best_f1_threshold(y_true, scores)
        assert value == pytest.approx(1.0)
        assert 0.3 < threshold <= 0.7


class TestCalibration:
    def test_perfectly_calibrated_constant_bins(self):
        y_true = np.array([1, 0, 1, 0, 1, 0, 1, 0])
        scores = np.full(8, 0.5)
        assert expected_calibration_error(y_true, scores, num_bins=5) == pytest.approx(0.0)

    def test_overconfident_scores_have_large_error(self):
        y_true = np.array([0, 0, 0, 0, 1])
        scores = np.array([0.95, 0.9, 0.92, 0.96, 0.99])
        assert expected_calibration_error(y_true, scores, num_bins=5) > 0.5

    def test_curve_counts_sum_to_samples(self):
        rng = np.random.default_rng(1)
        y_true = rng.integers(0, 2, size=30)
        scores = rng.random(30)
        _, _, counts = calibration_curve(y_true, scores, num_bins=6)
        assert counts.sum() == 30

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            calibration_curve(np.array([0, 1]), np.array([0.2, 0.8]), num_bins=0)
