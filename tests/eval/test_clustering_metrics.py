"""Tests for repro.eval.clustering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.eval import (
    adjusted_rand_index,
    clustering_report,
    contingency_table,
    labels_from_partition,
    normalized_mutual_information,
    pairwise_f1,
    purity,
    rand_index,
)

LABELS = st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=20)


class TestContingencyTable:
    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            contingency_table([1, 2], [1])

    def test_counts(self):
        table = contingency_table([0, 0, 1, 1], [0, 0, 0, 1])
        assert table.sum() == 4
        assert table.shape == (2, 2)
        assert table[0, 0] == 2

    def test_string_labels_supported(self):
        table = contingency_table(["a", "a", "b"], ["x", "y", "y"])
        assert table.sum() == 3


class TestRandIndices:
    def test_identical_partitions(self):
        labels = [0, 0, 1, 1, 2]
        assert rand_index(labels, labels) == 1.0
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_label_permutation_invariant(self):
        true = [0, 0, 1, 1]
        predicted = [5, 5, 9, 9]
        assert adjusted_rand_index(true, predicted) == pytest.approx(1.0)

    def test_completely_split_prediction(self):
        true = [0, 0, 0, 0]
        predicted = [0, 1, 2, 3]
        assert adjusted_rand_index(true, predicted) == pytest.approx(0.0, abs=1e-9)

    def test_ari_can_be_negative(self):
        true = [0, 0, 1, 1]
        predicted = [0, 1, 0, 1]
        assert adjusted_rand_index(true, predicted) <= 0.0

    def test_single_item(self):
        assert rand_index([0], [0]) == 1.0
        assert adjusted_rand_index([0], [5]) == 1.0

    @settings(max_examples=40, deadline=None)
    @given(LABELS)
    def test_ari_bounded_above_by_one(self, labels):
        predicted = list(reversed(labels))
        assert adjusted_rand_index(labels, predicted) <= 1.0 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(LABELS)
    def test_rand_index_in_unit_interval(self, labels):
        predicted = list(reversed(labels))
        assert 0.0 <= rand_index(labels, predicted) <= 1.0


class TestNMIAndPurity:
    def test_identical_partitions_nmi_one(self):
        labels = [0, 1, 1, 2, 2, 2]
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_independent_partitions_low_nmi(self):
        true = [0, 0, 1, 1]
        predicted = [0, 1, 0, 1]
        assert normalized_mutual_information(true, predicted) == pytest.approx(0.0, abs=1e-9)

    def test_single_cluster_both_sides(self):
        assert normalized_mutual_information([0, 0, 0], [7, 7, 7]) == 1.0

    def test_purity_perfect(self):
        assert purity([0, 0, 1], [4, 4, 5]) == 1.0

    def test_purity_mixed_cluster(self):
        # One predicted cluster holding 2 of class 0 and 1 of class 1.
        assert purity([0, 0, 1], [3, 3, 3]) == pytest.approx(2.0 / 3.0)

    def test_purity_singletons_always_one(self):
        assert purity([0, 0, 1, 1], [0, 1, 2, 3]) == 1.0

    @settings(max_examples=40, deadline=None)
    @given(LABELS)
    def test_nmi_and_purity_bounded(self, labels):
        predicted = sorted(labels)
        assert 0.0 <= normalized_mutual_information(labels, predicted) <= 1.0 + 1e-9
        assert 0.0 < purity(labels, predicted) <= 1.0


class TestPairwiseF1:
    def test_identical(self):
        assert pairwise_f1([0, 0, 1], [5, 5, 6]) == 1.0

    def test_all_singletons_vs_grouped(self):
        assert pairwise_f1([0, 0, 0], [0, 1, 2]) == 0.0

    def test_partial_overlap(self):
        true = [0, 0, 1, 1]
        predicted = [0, 0, 0, 1]
        value = pairwise_f1(true, predicted)
        assert 0.0 < value < 1.0

    def test_single_item(self):
        assert pairwise_f1([0], [9]) == 1.0

    def test_no_positive_pairs_on_either_side(self):
        assert pairwise_f1([0, 1], [2, 3]) == 1.0


class TestHelpers:
    def test_labels_from_partition(self):
        partition = [frozenset({1, 2}), frozenset({3})]
        labels = labels_from_partition(partition, [1, 2, 3, 4])
        assert labels[0] == labels[1]
        assert labels[2] != labels[0]
        assert labels[3] not in (labels[0], labels[2])

    def test_clustering_report_keys_and_bounds(self):
        report = clustering_report([0, 0, 1, 1], [0, 0, 1, 2])
        assert set(report) == {"rand_index", "adjusted_rand_index", "nmi", "purity", "pairwise_f1"}
        for name, value in report.items():
            if name == "adjusted_rand_index":
                assert -1.0 <= value <= 1.0
            else:
                assert 0.0 <= value <= 1.0

    def test_report_perfect_prediction(self):
        report = clustering_report([0, 1, 1], [2, 3, 3])
        assert all(value == pytest.approx(1.0) for value in report.values())

    def test_numpy_array_inputs(self):
        true = np.array([0, 0, 1, 1])
        predicted = np.array([1, 1, 0, 0])
        assert adjusted_rand_index(true, predicted) == pytest.approx(1.0)
