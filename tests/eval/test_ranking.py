"""Tests for repro.eval.ranking."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.eval import (
    average_precision_at_k,
    dcg_at_k,
    hit_rate_at_k,
    mean_average_precision,
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    ranking_report,
    recall_at_k,
    reciprocal_rank,
)

RANKED = ["a", "b", "c", "d", "e"]


class TestPrecisionRecallHit:
    def test_invalid_k_raises(self):
        with pytest.raises(ConfigurationError):
            precision_at_k(RANKED, {"a"}, 0)
        with pytest.raises(ConfigurationError):
            recall_at_k(RANKED, {"a"}, 0)
        with pytest.raises(ConfigurationError):
            hit_rate_at_k(RANKED, {"a"}, 0)

    def test_perfect_top_k(self):
        assert precision_at_k(RANKED, {"a", "b"}, 2) == 1.0
        assert recall_at_k(RANKED, {"a", "b"}, 2) == 1.0
        assert hit_rate_at_k(RANKED, {"a", "b"}, 2) == 1.0

    def test_partial_top_k(self):
        assert precision_at_k(RANKED, {"a", "e"}, 2) == 0.5
        assert recall_at_k(RANKED, {"a", "e"}, 2) == 0.5

    def test_no_relevant_items(self):
        assert precision_at_k(RANKED, set(), 3) == 0.0
        assert recall_at_k(RANKED, set(), 3) == 0.0
        assert hit_rate_at_k(RANKED, set(), 3) == 0.0

    def test_empty_ranking(self):
        assert precision_at_k([], {"a"}, 3) == 0.0
        assert recall_at_k([], {"a"}, 3) == 0.0

    def test_k_beyond_ranking_length(self):
        assert precision_at_k(["a"], {"a"}, 10) == 1.0
        assert recall_at_k(["a"], {"a", "b"}, 10) == 0.5

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=20), unique=True, max_size=10),
        st.sets(st.integers(min_value=0, max_value=20), max_size=10),
        st.integers(min_value=1, max_value=12),
    )
    def test_bounds_property(self, ranked, relevant, k):
        for metric in (precision_at_k, recall_at_k, hit_rate_at_k):
            value = metric(ranked, relevant, k)
            assert 0.0 <= value <= 1.0


class TestReciprocalRank:
    def test_first_position(self):
        assert reciprocal_rank(RANKED, {"a"}) == 1.0

    def test_third_position(self):
        assert reciprocal_rank(RANKED, {"c"}) == pytest.approx(1.0 / 3.0)

    def test_missing_item(self):
        assert reciprocal_rank(RANKED, {"z"}) == 0.0

    def test_mrr_average(self):
        rankings = [RANKED, RANKED]
        relevants = [{"a"}, {"b"}]
        assert mean_reciprocal_rank(rankings, relevants) == pytest.approx((1.0 + 0.5) / 2.0)

    def test_mrr_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            mean_reciprocal_rank([RANKED], [{"a"}, {"b"}])

    def test_mrr_empty_batch(self):
        assert mean_reciprocal_rank([], []) == 0.0


class TestNDCG:
    def test_dcg_known_value(self):
        # relevances 3, 2 at ranks 1, 2: (2^3-1)/log2(2) + (2^2-1)/log2(3)
        expected = 7.0 + 3.0 / 1.5849625007211562
        assert dcg_at_k([3.0, 2.0], 2) == pytest.approx(expected)

    def test_perfect_ordering_scores_one(self):
        relevance = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["a", "b", "c"], relevance, 3) == pytest.approx(1.0)

    def test_reversed_ordering_below_one(self):
        relevance = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["c", "b", "a"], relevance, 3) < 1.0

    def test_no_positive_relevance(self):
        assert ndcg_at_k(RANKED, {}, 3) == 0.0

    def test_invalid_k_raises(self):
        with pytest.raises(ConfigurationError):
            ndcg_at_k(RANKED, {"a": 1.0}, 0)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision_at_k(["a", "b", "x"], {"a", "b"}) == pytest.approx(1.0)

    def test_interleaved_ranking(self):
        # relevant at ranks 1 and 3: (1/1 + 2/3) / 2
        assert average_precision_at_k(["a", "x", "b"], {"a", "b"}) == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    def test_no_relevant(self):
        assert average_precision_at_k(RANKED, set()) == 0.0

    def test_no_hits(self):
        assert average_precision_at_k(RANKED, {"z"}) == 0.0

    def test_map_batches(self):
        value = mean_average_precision([["a", "b"], ["b", "a"]], [{"a"}, {"a"}])
        assert value == pytest.approx((1.0 + 0.5) / 2.0)

    def test_map_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            mean_average_precision([RANKED], [])


class TestReport:
    def test_report_keys(self):
        report = ranking_report([RANKED], [{"a"}], ks=(1, 3))
        assert set(report) == {"mrr", "precision@1", "recall@1", "hit@1", "precision@3", "recall@3", "hit@3"}

    def test_report_values_bounded(self):
        report = ranking_report([RANKED, RANKED], [{"a"}, {"z"}], ks=(2,))
        assert all(0.0 <= value <= 1.0 for value in report.values())

    def test_report_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            ranking_report([RANKED], [{"a"}, {"b"}])
