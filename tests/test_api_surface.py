"""Snapshot tests of the public API surface and its deprecation shims.

These tests pin the exported names of the new top-level packages so an
accidental rename or a dropped export fails loudly, and they prove the legacy
entry points still work — behind a DeprecationWarning — after the engine
redesign.
"""

import warnings

import numpy as np
import pytest


class TestExportedNames:
    def test_repro_api_surface(self):
        import repro.api

        assert sorted(repro.api.__all__) == [
            "CallCacheStats",
            "ColocationEngine",
            "EngineCacheInfo",
            "JudgeRequest",
            "JudgeResponse",
            "JudgementCore",
        ]
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None

    def test_repro_cluster_surface(self):
        import repro.cluster

        assert sorted(repro.cluster.__all__) == [
            "ClusterMetrics",
            "ClusterMetricsSnapshot",
            "MicroBatcher",
            "ShardedEngine",
            "WorkerPool",
            "shard_index",
        ]
        for name in repro.cluster.__all__:
            assert getattr(repro.cluster, name) is not None

    def test_repro_core_surface(self):
        import repro.core

        assert sorted(repro.core.__all__) == [
            "CoLocationJudge",
            "FEATURIZE_CHUNK",
            "FeatureSpaceJudge",
            "ProfileKey",
            "RevisionedKeyIndex",
            "TrainableApproach",
            "TrainingStrategy",
            "UNREVISIONED",
            "featurize_in_chunks",
            "featurizer_dim",
            "key_revision",
            "pairwise_probability_matrix",
            "profile_key",
            "shared_poi_probability_matrix",
            "superseded_keys",
        ]
        for name in repro.core.__all__:
            assert getattr(repro.core, name) is not None

    def test_repro_registry_surface(self):
        import repro.registry

        assert sorted(repro.registry.__all__) == [
            "ComponentSpec",
            "build",
            "is_registered",
            "kinds",
            "names",
            "register",
            "spec",
        ]
        for name in repro.registry.__all__:
            assert getattr(repro.registry, name) is not None

    def test_top_level_lazy_exports(self):
        import repro
        from repro.api import ColocationEngine, JudgeRequest, JudgeResponse
        from repro.cluster import MicroBatcher, ShardedEngine

        assert repro.ColocationEngine is ColocationEngine
        assert repro.JudgeRequest is JudgeRequest
        assert repro.JudgeResponse is JudgeResponse
        assert repro.ShardedEngine is ShardedEngine
        assert repro.MicroBatcher is MicroBatcher
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestDeprecationShims:
    def test_colocation_modes_warns(self):
        import repro.colocation

        with pytest.warns(DeprecationWarning, match="MODES is deprecated"):
            modes = repro.colocation.MODES
        assert set(modes) == {"two-phase", "one-phase"}

    def test_pipeline_module_modes_warns(self):
        import repro.colocation.pipeline as pipeline_module

        with pytest.warns(DeprecationWarning, match="MODES is deprecated"):
            modes = pipeline_module.MODES
        assert set(modes) == {"two-phase", "one-phase"}

    def test_service_judge_keyword_warns_and_works(self):
        from repro.service import CommunityDetector

        class Stub:
            def predict_proba(self, pairs):
                return np.full(len(pairs), 0.7)

        with pytest.warns(DeprecationWarning, match="judge= keyword is deprecated"):
            detector = CommunityDetector(judge=Stub())
        assert detector.judge.__class__ is Stub

    def test_raw_judge_positional_does_not_warn(self):
        from repro.service import LocalPeopleRecommender

        class Stub:
            def predict_proba(self, pairs):
                return np.zeros(len(pairs))

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            recommender = LocalPeopleRecommender(Stub())
        assert recommender.engine.judge.__class__ is Stub

    def test_cli_mode_flag_warns(self):
        import argparse

        from repro.cli.main import _selected_judge

        args = argparse.Namespace(mode="one-phase", judge=None)
        with pytest.warns(DeprecationWarning, match="--mode is deprecated"):
            assert _selected_judge(args) == "one-phase"
        args = argparse.Namespace(mode="two-phase", judge=None)
        with pytest.warns(DeprecationWarning):
            assert _selected_judge(args) == "hisrect"

    def test_cli_judge_defaults_to_hisrect(self):
        import argparse

        from repro.cli.main import _selected_judge

        assert _selected_judge(argparse.Namespace(mode=None, judge=None)) == "hisrect"
        assert _selected_judge(argparse.Namespace(mode=None, judge="tg-ti-c")) == "tg-ti-c"
