"""Tests for the timeline store, profile/pair builders and dataset assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    HOUR_SECONDS,
    PairBuilder,
    PairBuilderConfig,
    Profile,
    ProfileBuilder,
    Timeline,
    TimelineStore,
    Tweet,
    build_dataset,
    split_pairs,
    tiny_dataset_config,
)
from repro.errors import DataGenerationError


def geo_tweet(uid, ts, lat, lon, content="words"):
    return Tweet(uid=uid, ts=ts, content=content, lat=lat, lon=lon)


@pytest.fixture()
def store(small_registry):
    poi0 = small_registry.get(0).center
    poi1 = small_registry.get(1).center
    timelines = [
        Timeline(uid=1, tweets=(
            geo_tweet(1, 100.0, poi0.lat, poi0.lon),
            geo_tweet(1, 5000.0, poi1.lat, poi1.lon),
            Tweet(uid=1, ts=6000.0, content="no geo"),
        )),
        Timeline(uid=2, tweets=(
            geo_tweet(2, 5100.0, poi1.lat, poi1.lon),
            geo_tweet(2, 9000.0, poi0.lat, poi0.lon),
        )),
    ]
    return TimelineStore(timelines)


class TestTimelineStore:
    def test_basic_counts(self, store):
        assert len(store) == 2
        assert store.num_tweets() == 5
        assert store.num_geotagged() == 4

    def test_duplicate_uid_rejected(self):
        t = Timeline(uid=1, tweets=(Tweet(1, 0.0, "x"),))
        with pytest.raises(DataGenerationError):
            TimelineStore([t, t])

    def test_visits_before(self, store):
        visits = store.visits_before(1, 5000.0)
        assert len(visits) == 1
        assert visits[0].ts == 100.0

    def test_tweets_in_window(self, store):
        window = store.tweets_in_window(4900.0, 5200.0)
        assert {t.uid for t in window} == {1, 2}

    def test_unknown_user_raises(self, store):
        with pytest.raises(DataGenerationError):
            store.timeline(42)

    def test_subset(self, store):
        sub = store.subset([1])
        assert len(sub) == 1
        assert 2 not in sub

    def test_all_contents(self, store):
        assert len(store.all_contents()) == 5


class TestProfileBuilder:
    def test_labels_follow_poi_containment(self, store, small_registry):
        builder = ProfileBuilder(small_registry)
        profiles = builder.build_all(store)
        assert len(profiles) == 4
        assert all(p.is_labeled for p in profiles)

    def test_history_accumulates(self, store, small_registry):
        builder = ProfileBuilder(small_registry)
        profiles = builder.build_all(store)
        user1 = sorted([p for p in profiles if p.uid == 1], key=lambda p: p.ts)
        assert len(user1[0].visit_history) == 0
        assert len(user1[1].visit_history) == 1

    def test_max_history_cap(self, store, small_registry):
        builder = ProfileBuilder(small_registry, max_history=0)
        profiles = builder.build_all(store)
        assert all(len(p.visit_history) == 0 for p in profiles)

    def test_invalid_index_rejected(self, store, small_registry):
        with pytest.raises(DataGenerationError):
            ProfileBuilder(small_registry).build_profile(store, 1, 10)


class TestPairBuilder:
    def test_pairs_respect_delta_t_and_users(self, store, small_registry):
        profiles = ProfileBuilder(small_registry).build_all(store)
        labeled, unlabeled = PairBuilder(PairBuilderConfig(delta_t=HOUR_SECONDS)).build(profiles)
        assert unlabeled == []
        for pair in labeled:
            assert pair.left.uid != pair.right.uid
            assert pair.time_gap < HOUR_SECONDS

    def test_positive_pair_detected(self, store, small_registry):
        profiles = ProfileBuilder(small_registry).build_all(store)
        labeled, _ = PairBuilder(PairBuilderConfig(delta_t=HOUR_SECONDS)).build(profiles)
        positives, negatives = split_pairs(labeled)
        # user1@poi1 at ts=5000 and user2@poi1 at ts=5100 co-occur.
        assert len(positives) == 1
        assert positives[0].left.pid == positives[0].right.pid

    def test_downsampling_caps_negatives(self, small_registry):
        poi0 = small_registry.get(0).center
        poi1 = small_registry.get(1).center
        profiles = []
        for uid in range(12):
            center = poi0 if uid % 2 == 0 else poi1
            tweet = geo_tweet(uid, 100.0 + uid, center.lat, center.lon)
            profiles.append(Profile(uid=uid, tweet=tweet, pid=uid % 2))
        config = PairBuilderConfig(delta_t=HOUR_SECONDS, max_negative_pairs=5, seed=1)
        labeled, _ = PairBuilder(config).build(profiles)
        _, negatives = split_pairs(labeled)
        assert len(negatives) == 5

    @given(fraction=st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=10, deadline=None)
    def test_negative_fraction_never_exceeds_total(self, small_registry, fraction):
        poi0 = small_registry.get(0).center
        poi1 = small_registry.get(1).center
        profiles = []
        for uid in range(8):
            center = poi0 if uid % 2 == 0 else poi1
            tweet = geo_tweet(uid, 200.0 + uid, center.lat, center.lon)
            profiles.append(Profile(uid=uid, tweet=tweet, pid=uid % 2))
        config = PairBuilderConfig(delta_t=HOUR_SECONDS, negative_keep_fraction=fraction, seed=2)
        labeled, _ = PairBuilder(config).build(profiles)
        positives, negatives = split_pairs(labeled)
        assert len(negatives) <= 16  # total possible cross-POI pairs
        assert len(positives) >= 1

    def test_invalid_delta_t(self):
        with pytest.raises(DataGenerationError):
            PairBuilder(PairBuilderConfig(delta_t=0.0))


class TestDataset:
    def test_tiny_dataset_structure(self, tiny_dataset):
        stats = tiny_dataset.statistics()
        assert set(stats) == {"Training", "Validation", "Testing"}
        assert stats["Training"]["timelines"] > 0
        assert stats["Training"]["labeled_profiles"] > 0

    def test_splits_are_disjoint_users(self, tiny_dataset):
        train_users = set(tiny_dataset.train.store.user_ids)
        test_users = set(tiny_dataset.test.store.user_ids)
        val_users = set(tiny_dataset.validation.store.user_ids)
        assert train_users.isdisjoint(test_users)
        assert train_users.isdisjoint(val_users)

    def test_labeled_profiles_have_known_pois(self, tiny_dataset):
        for profile in tiny_dataset.train.labeled_profiles:
            assert profile.pid in tiny_dataset.registry

    def test_pairs_within_delta_t(self, tiny_dataset):
        for pair in tiny_dataset.train.labeled_pairs[:200]:
            assert pair.time_gap < tiny_dataset.delta_t
            assert pair.left.uid != pair.right.uid

    def test_pair_labels_match_pids(self, tiny_dataset):
        for pair in tiny_dataset.train.labeled_pairs[:200]:
            expected = 1 if pair.left.pid == pair.right.pid else 0
            assert pair.co_label == expected

    def test_training_corpus_nonempty(self, tiny_dataset):
        assert len(tiny_dataset.training_corpus()) > 0

    def test_deterministic_given_config(self):
        a = build_dataset(tiny_dataset_config(seed=5))
        b = build_dataset(tiny_dataset_config(seed=5))
        assert a.statistics() == b.statistics()
