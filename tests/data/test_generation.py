"""Tests for the synthetic substrate: language, city, mobility, timelines."""

import numpy as np
import pytest

from repro.data import (
    CATEGORY_WORDS,
    CityConfig,
    LanguageModelConfig,
    MobilityConfig,
    MobilityModel,
    TimelineConfig,
    TimelineSimulator,
    TweetLanguageModel,
    generate_city,
    lv_like_config,
    nyc_like_config,
)
from repro.errors import DataGenerationError


class TestLanguageModel:
    def test_generate_without_poi_uses_background(self, small_city):
        model = TweetLanguageModel()
        rng = np.random.default_rng(0)
        text = model.generate(rng, None)
        assert len(text.split()) >= model.config.min_length

    def test_poi_tweets_mention_poi_tokens(self, small_city):
        model = TweetLanguageModel(LanguageModelConfig(poi_word_prob=0.9, category_word_prob=0.05,
                                                       noise_tweet_prob=0.0))
        rng = np.random.default_rng(0)
        poi = small_city.registry.pois[0]
        model.register_poi(poi)
        texts = " ".join(model.generate(rng, poi) for _ in range(10))
        assert any(token in texts for token in model.poi_tokens(poi.pid))

    def test_poi_tokens_empty_for_unknown(self):
        assert TweetLanguageModel().poi_tokens(999) == ()

    def test_category_words_exist_for_all_categories(self):
        assert "generic" in CATEGORY_WORDS
        for words in CATEGORY_WORDS.values():
            assert len(words) >= 5


class TestCityGeneration:
    def test_city_has_requested_pois(self, small_city):
        assert len(small_city.registry) == 8

    def test_popularity_is_distribution(self, small_city):
        assert small_city.popularity.shape == (8,)
        assert small_city.popularity.sum() == pytest.approx(1.0)
        assert np.all(small_city.popularity > 0)

    def test_popular_pids(self, small_city):
        top = small_city.popular_pids(3)
        assert len(top) == 3
        assert len(set(top)) == 3

    def test_too_few_pois_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_city(CityConfig(num_pois=1))

    def test_deterministic_given_seed(self):
        a = generate_city(CityConfig(num_pois=6, seed=9))
        b = generate_city(CityConfig(num_pois=6, seed=9))
        np.testing.assert_allclose(a.popularity, b.popularity)
        assert [p.name for p in a.registry] == [p.name for p in b.registry]

    def test_presets(self):
        nyc = generate_city(nyc_like_config(num_pois=12))
        lv = generate_city(lv_like_config(num_pois=8))
        assert nyc.name == "NYC-like" and len(nyc.registry) == 12
        assert lv.name == "LV-like" and len(lv.registry) == 8
        assert all(p.category in lv.config.categories for p in lv.registry)


class TestMobility:
    def test_population_size(self, small_city):
        model = MobilityModel(small_city, MobilityConfig(seed=1))
        users = model.build_population(10)
        assert len(users) == 10
        assert all(len(u.favorite_indices) >= 1 for u in users)

    def test_favorite_weights_sum_to_one(self, small_city):
        model = MobilityModel(small_city, MobilityConfig(seed=1))
        user = model.build_user(0)
        assert sum(user.favorite_weights) == pytest.approx(1.0)

    def test_destination_in_favorites_with_full_return_probability(self, small_city):
        model = MobilityModel(small_city, MobilityConfig(return_probability=1.0, seed=1))
        user = model.build_user(0)
        rng = np.random.default_rng(2)
        for _ in range(20):
            assert model.sample_destination(user, rng) in user.favorite_indices

    def test_as_distribution(self, small_city):
        model = MobilityModel(small_city, MobilityConfig(seed=1))
        user = model.build_user(0)
        dist = user.as_distribution(len(small_city.registry))
        assert dist.sum() == pytest.approx(1.0)

    def test_invalid_config_rejected(self, small_city):
        with pytest.raises(DataGenerationError):
            MobilityModel(small_city, MobilityConfig(favorites_per_user=0))
        with pytest.raises(DataGenerationError):
            MobilityModel(small_city, MobilityConfig(return_probability=1.5))


class TestTimelineSimulation:
    @pytest.fixture(scope="class")
    def simulation(self, small_city):
        config = TimelineConfig(num_users=20, num_days=5, slots_per_day=3, seed=4)
        return TimelineSimulator(small_city, config).simulate()

    def test_produces_timelines(self, simulation):
        assert len(simulation.timelines) > 0
        assert all(len(t) > 0 for t in simulation.timelines)

    def test_visit_log_pois_valid(self, simulation, small_city):
        for _, _, pid, _ in simulation.visit_log:
            assert pid in small_city.registry

    def test_geotag_fraction_reasonable(self, simulation):
        tweets = [t for timeline in simulation.timelines for t in timeline.tweets]
        geo = sum(1 for t in tweets if t.is_geotagged)
        assert 0 < geo < len(tweets)

    def test_timestamps_within_horizon(self, simulation):
        horizon = 5 * 24 * 3600.0
        for timeline in simulation.timelines:
            for tweet in timeline.tweets:
                assert 0.0 <= tweet.ts <= horizon

    def test_needs_two_users(self, small_city):
        with pytest.raises(DataGenerationError):
            TimelineSimulator(small_city, TimelineConfig(num_users=1))
