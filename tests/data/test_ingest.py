"""Tests for ingesting external tweet data into a ColocationDataset."""

import pytest

from repro.data import (
    Timeline,
    Tweet,
    dataset_from_timelines,
    split_timelines,
    timelines_from_tweets,
    tweets_from_dicts,
)
from repro.errors import DataGenerationError


def poi_tweet(registry, uid, ts, pid, content="latte art at the gallery"):
    poi = registry.get(pid)
    return Tweet(uid=uid, ts=ts, content=content, lat=poi.center.lat, lon=poi.center.lon)


def plain_tweet(uid, ts, content="thinking out loud"):
    return Tweet(uid=uid, ts=ts, content=content)


class TestTweetsFromDicts:
    def test_parses_minimal_rows(self):
        rows = [
            {"uid": 1, "ts": 10.0, "content": "hello"},
            {"uid": 2, "ts": 20.0, "content": "brunch", "lat": 40.7, "lon": -74.0},
        ]
        tweets = tweets_from_dicts(rows)
        assert len(tweets) == 2
        assert not tweets[0].is_geotagged
        assert tweets[1].is_geotagged

    def test_invalid_row_raises(self):
        with pytest.raises(DataGenerationError):
            tweets_from_dicts([{"ts": 1.0}])


class TestTimelinesFromTweets:
    def test_groups_by_user_and_sorts_by_time(self):
        tweets = [plain_tweet(2, 30.0), plain_tweet(1, 20.0), plain_tweet(1, 10.0)]
        timelines = timelines_from_tweets(tweets)
        assert [t.uid for t in timelines] == [1, 2]
        assert [t.ts for t in timelines[0].tweets] == [10.0, 20.0]


class TestSplitTimelines:
    def _timelines(self, count=20):
        return [Timeline(uid=i, tweets=(plain_tweet(i, float(i)),)) for i in range(count)]

    def test_split_sizes(self):
        train, validation, test = split_timelines(self._timelines(), 0.2, 0.1, seed=3)
        assert len(test) == 4
        assert len(train) + len(validation) + len(test) == 20

    def test_splits_are_disjoint(self):
        train, validation, test = split_timelines(self._timelines(), 0.25, 0.2, seed=5)
        ids = [t.uid for t in train + validation + test]
        assert len(ids) == len(set(ids)) == 20

    def test_invalid_fraction_raises(self):
        with pytest.raises(DataGenerationError):
            split_timelines(self._timelines(), 1.5, 0.1)

    def test_empty_training_split_raises(self):
        with pytest.raises(DataGenerationError):
            split_timelines(self._timelines(count=2), 0.9, 0.9)


class TestDatasetFromTimelines:
    def _timelines(self, registry, num_users=12):
        timelines = []
        for uid in range(num_users):
            pid = registry.pois[uid % len(registry)].pid
            tweets = (
                poi_tweet(registry, uid, 100.0 + uid, pid),
                poi_tweet(registry, uid, 2000.0 + uid, pid),
                plain_tweet(uid, 5000.0 + uid),
            )
            timelines.append(Timeline(uid=uid, tweets=tweets))
        return timelines

    def test_builds_all_three_splits(self, small_registry):
        dataset = dataset_from_timelines(self._timelines(small_registry), small_registry, name="ext")
        assert dataset.name == "ext"
        assert len(dataset.train.store) > 0
        stats = dataset.statistics()
        assert set(stats) == {"Training", "Validation", "Testing"}

    def test_profiles_are_labeled_from_registry(self, small_registry):
        dataset = dataset_from_timelines(self._timelines(small_registry), small_registry)
        labeled = dataset.train.labeled_profiles
        assert labeled, "POI tweets must yield labelled profiles"
        for profile in labeled:
            assert profile.pid in {poi.pid for poi in small_registry}

    def test_accepts_city_objects(self, small_city):
        registry = small_city.registry
        dataset = dataset_from_timelines(self._timelines(registry), small_city)
        assert dataset.city is small_city

    def test_too_few_usable_timelines_raises(self, small_registry):
        timelines = [Timeline(uid=0, tweets=(plain_tweet(0, 1.0),))]
        with pytest.raises(DataGenerationError):
            dataset_from_timelines(timelines, small_registry)

    def test_require_poi_tweet_can_be_disabled(self, small_registry):
        timelines = self._timelines(small_registry)[:4] + [
            Timeline(uid=99, tweets=(plain_tweet(99, 1.0),))
        ]
        dataset = dataset_from_timelines(timelines, small_registry, require_poi_tweet=False)
        total = len(dataset.train.store) + len(dataset.validation.store) + len(dataset.test.store)
        assert total == 5
