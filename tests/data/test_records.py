"""Tests for the core data records (Tweet, Visit, Timeline, Profile, Pair)."""

import pytest

from repro.data import Pair, Profile, Timeline, Tweet, Visit, average_visits_per_profile


def make_tweet(uid=1, ts=100.0, content="hello museum", lat=None, lon=None, pid=None):
    return Tweet(uid=uid, ts=ts, content=content, lat=lat, lon=lon, true_pid=pid)


class TestTweet:
    def test_geotag_detection(self):
        assert not make_tweet().is_geotagged
        assert make_tweet(lat=40.7, lon=-74.0).is_geotagged

    def test_half_coordinates_not_geotagged(self):
        assert not Tweet(uid=1, ts=0.0, content="", lat=40.7, lon=None).is_geotagged


class TestTimeline:
    def test_tweets_sorted_by_time(self):
        timeline = Timeline(uid=1, tweets=(make_tweet(ts=50.0), make_tweet(ts=10.0)))
        assert [t.ts for t in timeline.tweets] == [10.0, 50.0]

    def test_geotagged_filter(self):
        timeline = Timeline(
            uid=1, tweets=(make_tweet(ts=1.0), make_tweet(ts=2.0, lat=40.7, lon=-74.0))
        )
        assert len(timeline.geotagged()) == 1

    def test_visits_before_strictly_earlier(self):
        timeline = Timeline(
            uid=1,
            tweets=(
                make_tweet(ts=1.0, lat=40.7, lon=-74.0),
                make_tweet(ts=5.0, lat=40.71, lon=-74.0),
            ),
        )
        visits = timeline.visits_before(5.0)
        assert len(visits) == 1
        assert visits[0].ts == 1.0

    def test_len(self):
        assert len(Timeline(uid=1, tweets=(make_tweet(),))) == 1


class TestProfile:
    def test_property_shortcuts(self):
        tweet = make_tweet(ts=7.0, content="abc", lat=40.7, lon=-74.0)
        profile = Profile(uid=1, tweet=tweet, visit_history=(), pid=3)
        assert profile.ts == 7.0
        assert profile.content == "abc"
        assert profile.lat == 40.7
        assert profile.is_labeled

    def test_unlabeled_profile(self):
        profile = Profile(uid=1, tweet=make_tweet())
        assert not profile.is_labeled

    def test_without_history(self):
        profile = Profile(uid=1, tweet=make_tweet(), visit_history=(Visit(1.0, 40.7, -74.0),), pid=2)
        stripped = profile.without_history()
        assert stripped.visit_history == ()
        assert stripped.pid == 2
        assert len(profile.visit_history) == 1  # original untouched

    def test_without_content(self):
        profile = Profile(uid=1, tweet=make_tweet(content="secret words"), pid=2)
        stripped = profile.without_content()
        assert stripped.content == ""
        assert stripped.ts == profile.ts
        assert stripped.pid == 2


class TestPair:
    def test_positive_negative_unlabeled(self):
        a = Profile(uid=1, tweet=make_tweet(ts=1.0), pid=5)
        b = Profile(uid=2, tweet=make_tweet(uid=2, ts=2.0), pid=5)
        positive = Pair(a, b, co_label=1)
        negative = Pair(a, b, co_label=0)
        unlabeled = Pair(a, b, co_label=None)
        assert positive.is_positive and positive.is_labeled
        assert negative.is_negative and not negative.is_positive
        assert not unlabeled.is_labeled

    def test_time_gap(self):
        a = Profile(uid=1, tweet=make_tweet(ts=10.0))
        b = Profile(uid=2, tweet=make_tweet(uid=2, ts=4.0))
        assert Pair(a, b).time_gap == 6.0


class TestAverageVisits:
    def test_empty(self):
        assert average_visits_per_profile([]) == 0.0

    def test_mean(self):
        p1 = Profile(uid=1, tweet=make_tweet(), visit_history=(Visit(1, 40.7, -74.0),) * 2)
        p2 = Profile(uid=2, tweet=make_tweet(uid=2), visit_history=())
        assert average_visits_per_profile([p1, p2]) == 1.0
