"""Tests for the TG-TI-C and N-Gram-Gauss baselines."""

import numpy as np
import pytest

from repro.baselines import NGramGaussBaseline, NGramGaussConfig, TGTICBaseline, TGTICConfig
from repro.data import Pair, Profile, Tweet
from repro.errors import NotFittedError, TrainingError


def labeled_profile(registry, pid, uid, ts, content):
    poi = registry.get(pid)
    tweet = Tweet(uid=uid, ts=ts, content=content, lat=poi.center.lat, lon=poi.center.lon)
    return Profile(uid=uid, tweet=tweet, pid=pid)


@pytest.fixture()
def training_profiles(small_registry):
    """POI 0 tweets talk about coffee, POI 4 tweets talk about poker."""
    profiles = []
    for i in range(12):
        profiles.append(labeled_profile(small_registry, 0, uid=i, ts=1000.0 * i,
                                        content="coffee latte espresso morning"))
        profiles.append(labeled_profile(small_registry, 4, uid=100 + i, ts=1000.0 * i + 50,
                                        content="poker jackpot slots dealer"))
    return profiles


class TestTGTIC:
    def test_requires_training_data(self, small_registry):
        with pytest.raises(TrainingError):
            TGTICBaseline(small_registry).fit([])

    def test_unfitted_raises(self, small_registry, training_profiles):
        with pytest.raises(NotFittedError):
            TGTICBaseline(small_registry).infer_poi_proba(training_profiles[:1])

    def test_infers_topically_matching_poi(self, small_registry, training_profiles):
        model = TGTICBaseline(small_registry, TGTICConfig(top_k=5)).fit(training_profiles)
        query = labeled_profile(small_registry, 0, uid=999, ts=500.0, content="coffee latte please")
        assert model.infer_poi([query])[0] == 0
        query2 = labeled_profile(small_registry, 4, uid=998, ts=500.0, content="poker slots tonight")
        assert model.infer_poi([query2])[0] == 4

    def test_proba_rows_sum_to_one(self, small_registry, training_profiles):
        model = TGTICBaseline(small_registry).fit(training_profiles)
        proba = model.infer_poi_proba(training_profiles[:4])
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(4), atol=1e-9)

    def test_pair_prediction_uses_poi_equality(self, small_registry, training_profiles):
        model = TGTICBaseline(small_registry).fit(training_profiles)
        a = labeled_profile(small_registry, 0, uid=1, ts=0.0, content="coffee latte")
        b = labeled_profile(small_registry, 0, uid=2, ts=10.0, content="espresso coffee")
        c = labeled_profile(small_registry, 4, uid=3, ts=20.0, content="poker chips")
        preds = model.predict([Pair(a, b, 1), Pair(a, c, 0)])
        assert preds[0] == 1
        assert preds[1] == 0

    def test_empty_pairs(self, small_registry, training_profiles):
        model = TGTICBaseline(small_registry).fit(training_profiles)
        assert model.predict([]).shape == (0,)
        assert model.predict_proba([]).shape == (0,)


class TestNGramGauss:
    def test_requires_training_data(self, small_registry):
        with pytest.raises(TrainingError):
            NGramGaussBaseline(small_registry).fit([])

    def test_geo_specific_ngrams_found(self, small_registry, training_profiles):
        model = NGramGaussBaseline(small_registry, NGramGaussConfig(min_count=3)).fit(training_profiles)
        assert model.num_geo_specific_ngrams > 0

    def test_locate_near_training_poi(self, small_registry, training_profiles):
        model = NGramGaussBaseline(small_registry).fit(training_profiles)
        query = labeled_profile(small_registry, 0, uid=999, ts=0.0, content="coffee latte")
        location = model.locate(query)
        assert location is not None
        assert small_registry.nearest(*location)[0].pid == 0

    def test_locate_unknown_words_returns_none(self, small_registry, training_profiles):
        model = NGramGaussBaseline(small_registry).fit(training_profiles)
        query = labeled_profile(small_registry, 0, uid=999, ts=0.0, content="zebra quantum xylophone")
        assert model.locate(query) is None

    def test_unknown_words_give_uniform_distribution(self, small_registry, training_profiles):
        model = NGramGaussBaseline(small_registry).fit(training_profiles)
        query = labeled_profile(small_registry, 0, uid=999, ts=0.0, content="zebra quantum xylophone")
        proba = model.infer_poi_proba([query])
        np.testing.assert_allclose(proba[0], np.full(len(small_registry), 1.0 / len(small_registry)))

    def test_infer_poi_matches_topic(self, small_registry, training_profiles):
        model = NGramGaussBaseline(small_registry).fit(training_profiles)
        query = labeled_profile(small_registry, 4, uid=999, ts=0.0, content="poker jackpot")
        assert model.infer_poi([query])[0] == 4

    def test_proba_rows_sum_to_one(self, small_registry, training_profiles):
        model = NGramGaussBaseline(small_registry).fit(training_profiles)
        proba = model.infer_poi_proba(training_profiles[:3])
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(3), atol=1e-9)
