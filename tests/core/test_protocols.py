"""Tests for the repro.core judge protocols and strategy dispatch."""

import numpy as np
import pytest

from repro.core import (
    CoLocationJudge,
    FeatureSpaceJudge,
    pairwise_probability_matrix,
    profile_key,
)
from repro.errors import ConfigurationError, NotFittedError


class TestProtocolConformance:
    def test_pipeline_is_a_judge(self, fitted_pipeline):
        assert isinstance(fitted_pipeline, CoLocationJudge)
        assert isinstance(fitted_pipeline, FeatureSpaceJudge)

    def test_hisrect_judge_is_a_judge(self, fitted_pipeline):
        assert isinstance(fitted_pipeline.judge, CoLocationJudge)
        assert isinstance(fitted_pipeline.judge, FeatureSpaceJudge)

    def test_comp2loc_is_a_judge(self, fitted_pipeline):
        comp2loc = fitted_pipeline.comp2loc()
        assert isinstance(comp2loc, CoLocationJudge)
        assert isinstance(comp2loc, FeatureSpaceJudge)

    def test_baseline_is_a_judge(self, small_registry):
        from repro.baselines import TGTICBaseline

        assert isinstance(TGTICBaseline(small_registry), CoLocationJudge)


class TestStrategyDispatch:
    def test_pipeline_resolves_strategy_by_mode(self, fitted_pipeline):
        assert fitted_pipeline.strategy.name == "two-phase"

    def test_unfitted_pipeline_raises_not_fitted(self, tiny_pipeline_config):
        from repro.colocation import CoLocationPipeline

        pipeline = CoLocationPipeline(tiny_pipeline_config)
        with pytest.raises(NotFittedError):
            pipeline.predict_proba([])
        with pytest.raises(NotFittedError):
            pipeline.featurize_profiles([])

    def test_guards_survive_python_O(self, tiny_pipeline_config):
        """The fit guards are real exceptions, not asserts (python -O safe)."""
        from repro.colocation import CoLocationPipeline

        pipeline = CoLocationPipeline(tiny_pipeline_config)
        with pytest.raises(NotFittedError):
            pipeline.probability_matrix([])
        with pytest.raises(NotFittedError):
            pipeline.infer_poi_proba([])
        with pytest.raises(NotFittedError):
            pipeline.comp2loc()


class TestPairwiseMatrix:
    def test_matches_judge_matrix(self, fitted_pipeline, tiny_dataset):
        """The generic fallback agrees with the judge's feature-level matrix."""
        profiles = tiny_dataset.train.labeled_profiles[:6]
        judge = fitted_pipeline.judge
        np.testing.assert_allclose(
            pairwise_probability_matrix(judge, profiles),
            judge.probability_matrix(profiles),
            atol=1e-8,
        )

    def test_degenerate_sizes(self, fitted_pipeline, tiny_dataset):
        judge = fitted_pipeline.judge
        assert pairwise_probability_matrix(judge, []).shape == (0, 0)
        single = pairwise_probability_matrix(judge, tiny_dataset.train.labeled_profiles[:1])
        assert single.shape == (1, 1)

    def test_social_judge_uses_generic_matrix(self, fitted_pipeline, tiny_dataset):
        from repro.social import (
            SocialCoLocationJudge,
            SocialFeatureExtractor,
            SocialGraphConfig,
            generate_social_graph,
        )

        graph = generate_social_graph(
            tiny_dataset.train.store, tiny_dataset.registry, SocialGraphConfig(seed=3)
        )
        extractor = SocialFeatureExtractor(graph, tiny_dataset.registry, delta_t=tiny_dataset.delta_t)
        social = SocialCoLocationJudge(fitted_pipeline, extractor)
        social.fit(tiny_dataset.train.labeled_pairs)
        assert isinstance(social, CoLocationJudge)
        profiles = tiny_dataset.train.labeled_profiles[:5]
        matrix = social.probability_matrix(profiles)
        assert matrix.shape == (5, 5)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)


class TestProfileKey:
    def test_key_fields(self, tiny_dataset):
        profile = tiny_dataset.train.labeled_profiles[0]
        assert profile_key(profile) == (
            profile.uid,
            profile.ts,
            profile.content,
            len(profile.visit_history),
            profile.revision,
        )

    def test_unstamped_revision_maps_to_sentinel(self, tiny_dataset):
        import dataclasses

        from repro.core import UNREVISIONED

        profile = dataclasses.replace(
            tiny_dataset.train.labeled_profiles[0], revision=None
        )
        assert profile_key(profile)[4] == UNREVISIONED

    def test_grown_history_changes_the_key(self, tiny_dataset):
        """Same uid/ts/content but a longer visit history must not collide."""
        import dataclasses

        from repro.data.records import Visit

        profile = tiny_dataset.train.labeled_profiles[0]
        grown = dataclasses.replace(
            profile,
            visit_history=profile.visit_history + (Visit(ts=profile.ts, lat=0.0, lon=0.0),),
        )
        assert profile_key(grown) != profile_key(profile)
