"""Tests for the component registry (repro.registry)."""

import dataclasses

import pytest

import repro.registry as registry
from repro.colocation import CoLocationPipeline, PipelineConfig
from repro.core import CoLocationJudge, TrainableApproach, TrainingStrategy
from repro.errors import ConfigurationError

#: Every judge name the acceptance criteria require to be buildable.
JUDGE_NAMES = (
    "hisrect",
    "hisrect-sl",
    "history-only",
    "tweet-only",
    "one-hot",
    "blstm",
    "convlstm",
    "one-phase",
    "comp2loc",
    "social",
    "tg-ti-c",
    "n-gram-gauss",
)


class TestRegistryBasics:
    def test_all_kinds_present(self):
        assert set(registry.kinds()) >= {"judge", "baseline", "featurizer", "preset", "strategy"}

    def test_judge_names(self):
        assert set(registry.names("judge")) == set(JUDGE_NAMES)

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError):
            registry.build("frobnicator", "x")

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            registry.build("judge", "does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            registry.register("judge", "hisrect", factory=lambda cfg: None)

    def test_is_registered(self):
        assert registry.is_registered("judge", "hisrect")
        assert not registry.is_registered("judge", "nope")

    def test_spec_carries_description(self):
        assert registry.spec("judge", "hisrect").description


class TestJudgeConstruction:
    @pytest.mark.parametrize("name", JUDGE_NAMES)
    def test_every_judge_constructible_and_trainable(self, name):
        approach = registry.build("judge", name, {})
        assert isinstance(approach, TrainableApproach)
        assert isinstance(approach, CoLocationJudge)

    def test_config_dict_reaches_the_pipeline(self):
        approach = registry.build("judge", "one-phase", {"seed": 123})
        assert isinstance(approach, CoLocationPipeline)
        assert approach.config.mode == "one-phase"
        assert approach.config.seed == 123

    def test_variant_forces_featurizer_fields(self):
        history_only = registry.build("judge", "history-only", {})
        assert history_only.config.hisrect.use_content is False
        tweet_only = registry.build("judge", "tweet-only", {})
        assert tweet_only.config.hisrect.use_history is False
        one_hot = registry.build("judge", "one-hot", {})
        assert one_hot.config.hisrect.history_encoding == "onehot"
        no_ssl = registry.build("judge", "hisrect-sl", {})
        assert no_ssl.config.ssl.use_unlabeled is False

    def test_pipeline_config_round_trips(self):
        pipeline = registry.build("judge", "hisrect", {"seed": 41})
        rebuilt = registry.build("judge", "hisrect", pipeline.to_config())
        assert rebuilt.config == pipeline.config


class TestOtherKinds:
    def test_featurizer_variant_builds_config(self):
        config = registry.build("featurizer", "history-only", {"feature_dim": 24})
        assert config.use_content is False
        assert config.feature_dim == 24

    def test_preset_builds_dataset_config(self):
        config = registry.build("preset", "nyc", {"scale": 0.3, "seed": 9})
        assert dataclasses.is_dataclass(config)

    def test_strategies_register_both_modes(self):
        assert registry.names("strategy") == ("one-phase", "two-phase")
        strategy = registry.build("strategy", "two-phase")
        assert isinstance(strategy, TrainingStrategy)
        assert strategy.supports("poi-inference")
        assert not registry.build("strategy", "one-phase").supports("probability-matrix")

    def test_invalid_mode_is_a_registry_error(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(mode="three-phase")


class TestTrainedBaselineViaRegistry:
    """End-to-end: a registry-built baseline trains and judges a dataset."""

    def test_tg_ti_c_full_cycle(self, tiny_dataset):
        approach = registry.build("judge", "tg-ti-c", {"top_k": 5})
        approach.fit(tiny_dataset)
        pairs = tiny_dataset.test.labeled_pairs[:8] or tiny_dataset.train.labeled_pairs[:8]
        proba = approach.predict_proba(pairs)
        assert proba.shape == (len(pairs),)
        assert ((proba >= 0.0) & (proba <= 1.0)).all()
        profiles = [p.left for p in pairs]
        matrix = approach.probability_matrix(profiles)
        assert matrix.shape == (len(profiles), len(profiles))
