"""CLI contract: exit codes, JSON schema, baseline round-trip, entry points."""

import json
import subprocess
import sys

import pytest

from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.cli.main import main as hisrect_main

CLEAN_SOURCE = 'GREETING = "hello"\n\n\ndef greet():\n    return GREETING\n'
# Aimed at a wire-path name so wire-safety fires.
BAD_SOURCE = "import pickle\n"


@pytest.fixture
def project(tmp_path):
    """A tiny tree with one clean file and one wire-safety violation."""
    pkg = tmp_path / "src" / "repro" / "cluster"
    pkg.mkdir(parents=True)
    (pkg / "wire.py").write_text(BAD_SOURCE)
    (pkg / "clean.py").write_text(CLEAN_SOURCE)
    return tmp_path


def run_main(args):
    return main([str(arg) for arg in args])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_SOURCE)
        assert run_main([tmp_path, "--no-baseline"]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, project, capsys):
        assert run_main([project / "src", "--no-baseline"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "[wire-safety]" in out
        assert "FAILED" in out

    def test_unknown_rule_is_a_usage_error(self, project):
        assert run_main([project / "src", "--rules", "no-such-rule"]) == EXIT_USAGE

    def test_missing_path_is_a_usage_error(self, tmp_path):
        assert run_main([tmp_path / "nowhere"]) == EXIT_USAGE

    def test_syntax_error_is_a_finding(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        assert run_main([tmp_path, "--no-baseline"]) == EXIT_FINDINGS
        assert "[syntax-error]" in capsys.readouterr().out


class TestJsonFormat:
    def test_schema(self, project, capsys):
        code = run_main([project / "src", "--no-baseline", "--format", "json"])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert set(payload["rules"]) == {
            "decision-path",
            "lock-discipline",
            "metric-hygiene",
            "stage-taxonomy",
            "wire-safety",
        }
        assert payload["files"] == 2
        assert payload["summary"]["new"] == payload["summary"]["total"] == 1
        assert payload["summary"]["baselined"] == 0
        (finding,) = payload["findings"]
        assert finding["rule"] == "wire-safety"
        assert finding["path"].endswith("repro/cluster/wire.py")
        assert isinstance(finding["line"], int) and finding["line"] >= 1
        assert "pickle" in finding["message"]
        assert finding["hint"]
        assert finding["baselined"] is False


class TestBaselineRoundTrip:
    def test_write_suppress_then_regress(self, project, capsys):
        baseline = project / "baseline.json"
        args = [project / "src", "--baseline", baseline]

        # A missing baseline file is an empty baseline: the finding fails the run.
        assert run_main(args) == EXIT_FINDINGS

        # Grandfather it, and the same tree now passes (reported as baselined).
        assert run_main(args + ["--write-baseline"]) == EXIT_CLEAN
        fingerprints = json.loads(baseline.read_text())["fingerprints"]
        assert len(fingerprints) == 1 and "wire-safety" in fingerprints[0]
        capsys.readouterr()
        assert run_main(args) == EXIT_CLEAN
        assert "1 baselined" in capsys.readouterr().out

        # Fixing the violation leaves a stale entry, still exit 0.
        wire = project / "src" / "repro" / "cluster" / "wire.py"
        wire.write_text(CLEAN_SOURCE)
        capsys.readouterr()
        assert run_main(args) == EXIT_CLEAN
        assert "stale baseline" in capsys.readouterr().out

        # Removing the baseline after a regression fails again.
        wire.write_text(BAD_SOURCE)
        baseline.unlink()
        assert run_main(args) == EXIT_FINDINGS

    def test_corrupt_baseline_is_a_usage_error(self, project):
        baseline = project / "baseline.json"
        baseline.write_text("not json")
        assert run_main([project / "src", "--baseline", baseline]) == EXIT_USAGE


class TestEntryPoints:
    def test_repro_hisrect_check_subcommand(self, project, capsys):
        code = hisrect_main(["check", str(project / "src"), "--no-baseline"])
        assert code == EXIT_FINDINGS
        assert "[wire-safety]" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("decision-path", "wire-safety", "lock-discipline",
                        "stage-taxonomy", "metric-hygiene"):
            assert rule_id in out

    def test_python_dash_m_entry_point(self, project):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(project / "src"), "--no-baseline"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == EXIT_FINDINGS
        assert "[wire-safety]" in result.stdout
