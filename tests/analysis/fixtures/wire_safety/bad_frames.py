"""Known-bad: a frame id redeclared (how peers come to disagree)."""

FRAME_HELLO = 1
FRAME_HELLO = 9  # noqa: F811
