"""Known-bad: executable serialization in a wire-path module."""

import pickle


def decode_body(body):
    return pickle.loads(body)


def run_remote(expression):
    return eval(expression)


class Payload:
    def __reduce__(self):
        return (Payload, ())
