"""Known-bad: a payload-sized read with no header length check first."""

import struct

_HEADER = struct.Struct("!BI")


def recv_frame(sock):
    header = _recv_exactly(sock, _HEADER.size)  # noqa: F821
    frame_type, length = _HEADER.unpack(header)
    body = _recv_exactly(sock, length)  # noqa: F821  <- forged length, unbounded alloc
    return frame_type, body
