"""Known-good: frame constants declared once, length-checked reads."""

FRAME_HELLO = 1
FRAME_CALL = 2

_HEADER = None  # stands in for struct.Struct("!BI")


def _parse_header(header, max_frame_bytes):
    frame_type, length = 1, 0
    if length > max_frame_bytes:
        raise ValueError("frame too large")
    return frame_type, length


def recv_frame(sock, max_frame_bytes):
    header = _recv_exactly(sock, _HEADER.size)  # noqa: F821
    frame_type, length = _parse_header(header, max_frame_bytes)
    body = _recv_exactly(sock, length)  # noqa: F821
    return frame_type, body
