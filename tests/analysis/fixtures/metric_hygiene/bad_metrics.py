"""Known-bad: unprefixed/camel-case names and conflicting redeclarations."""


def declare(registry):
    registry.counter("requestsTotal", "no prefix, camelCase")
    registry.counter("repro_fixture_flips_total", "fine the first time")
    registry.gauge("repro_fixture_flips_total", "same name, different kind")
    registry.histogram("repro_fixture_lat_ms", "default buckets")
    registry.histogram("repro_fixture_lat_ms", "other buckets", buckets=(1.0, 5.0))
