"""Known-good: repro_-prefixed snake_case, one signature per name."""

_LATENCY_METRIC = "repro_fixture_latency_ms"


def declare(registry):
    requests = registry.counter("repro_fixture_requests_total", "requests completed")
    depth = registry.gauge("repro_fixture_queue_depth", "queue depth at flush")
    latency = registry.histogram(_LATENCY_METRIC, "request latency (ms)")
    return requests, depth, latency


def declare_again(registry):
    # declare-or-get with the identical signature is fine
    return registry.counter("repro_fixture_requests_total", "requests completed")
