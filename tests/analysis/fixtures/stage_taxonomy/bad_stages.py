"""Known-bad: invented stage names (the PR 9 retrofit, statically caught)."""


def rogue(tracer, stage_name):
    with tracer.stage("bogus"):  # not a member of STAGES
        pass
    tracer.record_event("warm_hit", 0.2)  # not a member of STORE_EVENTS
    tracer.record_stage(STAGE_PRIVATE, 1.0)  # noqa: F821  not a canonical constant
    tracer.record_stage(stage_name, 1.0)  # a variable cannot be verified either
    tracer.record_stage("shard_" + stage_name, 1.0)  # computed: taxonomy is closed
