"""Known-good: canonical constants (preferred) and in-set literals."""

from repro.obs import EVENT_HOT_HIT, STAGE_FEATURIZE, get_tracer


def timed_featurize(judge, batch):
    tracer = get_tracer()
    with tracer.stage(STAGE_FEATURIZE):
        rows = judge.featurize_profiles(batch)
    tracer.record_event(EVENT_HOT_HIT, 0.01)
    tracer.record_stage("gather", 0.5)  # a literal is fine iff it is in the set
    return rows
