"""Known-bad: featurization serialized behind a cache lock (the PR 4 bug)."""

import threading


class SlowEngine:
    def __init__(self, judge):
        self.judge = judge
        self._lock = threading.Lock()
        self._cache = {}

    def resolve(self, batch):
        with self._lock:
            rows = self.judge.featurize_profiles(batch)  # collapses concurrency
            for key, row in zip(batch, rows):
                self._cache[key] = row
        return rows

    def encode(self, texts):
        with self._lock:
            return self.judge.encode_batch(texts)
