"""Known-bad: a guarded field read and written outside its lock."""

import threading


class RacyCounters:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock

    def record(self):
        self._hits += 1  # no lock: lost updates under concurrency

    def snapshot(self):
        return self._hits  # unguarded read
