"""Known-good: guarded fields touched only under their lock."""

import threading


class GoodCounters:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock

    def record(self, hit):
        row = self.featurize(hit)  # hot work happens before the lock
        with self._lock:
            if hit:
                self._hits += 1
            else:
                self._misses += 1
        return row

    def _drain(self):  # holds: _lock
        hits, self._hits = self._hits, 0
        return hits

    def featurize(self, hit):
        return [hit]
