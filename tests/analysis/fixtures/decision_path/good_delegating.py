"""Known-good: a transport that delegates every decision to the core."""


class GoodTransport:
    def __init__(self, judge, threshold=None):
        if threshold is not None and not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self._core = JudgementCore(judge, explicit_threshold=threshold)  # noqa: F821

    def predict_proba(self, pairs):
        return self._core.predict_proba(pairs)

    def predict(self, pairs):
        return self._core.predict(pairs)

    def probability_matrix(self, profiles):
        return self._core.probability_matrix(profiles)

    def serve(self, request):
        return self._core.serve(request)

    def serve_batch(self, requests):
        return self._core.serve_batch(requests)
