"""Known-bad: a core-owning transport that dropped a decision surface."""


class ShrunkTransport:
    def __init__(self, judge):
        self._core = JudgementCore(judge)  # noqa: F821

    def predict_proba(self, pairs):
        return self._core.predict_proba(pairs)

    def predict(self, pairs):
        return self._core.predict(pairs)

    def probability_matrix(self, profiles):
        return self._core.probability_matrix(profiles)

    def serve(self, request):
        return self._core.serve(request)

    # serve_batch is gone: the five-surface contract is broken.
