"""Known-bad: a transport re-deciding with its own threshold cut."""


class ForkedTransport:
    def __init__(self, judge, threshold=0.5):
        self._core = JudgementCore(judge, explicit_threshold=threshold)  # noqa: F821

    def predict_proba(self, pairs):
        return self._core.predict_proba(pairs)

    def predict(self, pairs):
        # The forked serve logic PR 5 had to unwind: decide locally.
        probabilities = self.predict_proba(pairs)
        return (probabilities >= self.threshold).astype(int)

    def probability_matrix(self, profiles):
        return self._core.probability_matrix(profiles)

    def serve(self, request):
        return self._core.serve(request)

    def serve_batch(self, requests):
        return self._core.serve_batch(requests)

    def decide_feature_pairs(self, rows):
        return rows
