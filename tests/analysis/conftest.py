"""Shared helpers: run the analyzer over fixture snippets under pretend paths."""

import pathlib

import pytest

from repro.analysis import Analyzer, SourceFile
from repro.analysis.framework import resolve_rules

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def analyze_text(text: str, pretend_path: str, rules: list[str] | None = None):
    """Findings from one in-memory snippet aimed at a pretend module path."""
    analyzer = Analyzer(resolve_rules(rules))
    return analyzer.run([SourceFile.from_text(text, pretend_path)])


def analyze_fixture(relpath: str, pretend_path: str, rules: list[str] | None = None):
    text = (FIXTURES / relpath).read_text()
    return analyze_text(text, pretend_path, rules)


@pytest.fixture
def repo_source():
    """Real source text of a repo file, for mutation tests."""

    def _read(relpath: str) -> str:
        return (REPO_ROOT / relpath).read_text()

    return _read
