"""Golden-fixture self-tests for every rule, plus the acceptance mutations:

each rule flags its known-bad fixture and passes its known-good one, the
real tree is clean (the committed baseline stays empty), and the two
regressions the checker exists to prevent — deleting a JudgementCore
delegation, inventing a stage literal — fail the check when injected into
the real sources.
"""

import re

from conftest import REPO_ROOT, analyze_fixture, analyze_text

from repro.analysis import Analyzer, SourceFile
from repro.analysis.framework import collect_files, load_sources

SHARDED = "src/repro/cluster/sharded.py"
WIRE = "src/repro/cluster/wire.py"
WORKER = "src/repro/cluster/worker.py"
GATEWAY = "src/repro/cluster/gateway.py"
ENGINE = "src/repro/api/engine.py"
BATCHER = "src/repro/cluster/batcher.py"


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


# ------------------------------------------------------------- decision-path
class TestDecisionPath:
    def test_good_delegating_transport_is_clean(self):
        findings = analyze_fixture(
            "decision_path/good_delegating.py", SHARDED, rules=["decision-path"]
        )
        assert findings == []

    def test_inline_threshold_cut_is_flagged(self):
        findings = analyze_fixture(
            "decision_path/bad_inline_threshold.py", SHARDED, rules=["decision-path"]
        )
        messages = " | ".join(finding.message for finding in findings)
        assert "ordering comparison against a threshold" in messages
        assert "decide_feature_pairs" in messages  # reimplemented helper
        assert "does not call through self._core" in messages  # forked predict

    def test_missing_surface_is_flagged(self):
        findings = analyze_fixture(
            "decision_path/bad_missing_delegation.py", SHARDED, rules=["decision-path"]
        )
        assert any("missing decision surface 'serve_batch'" in f.message for f in findings)

    def test_rule_is_scoped_to_transport_modules(self):
        text = (
            "def cut(probabilities, threshold):\n"
            "    return probabilities >= threshold\n"
        )
        # repro.api.core is the sanctioned home of exactly this comparison.
        assert analyze_text(text, "src/repro/api/core.py", rules=["decision-path"]) == []


# --------------------------------------------------------------- wire-safety
class TestWireSafety:
    def test_good_wire_module_is_clean(self):
        assert analyze_fixture("wire_safety/good_wire.py", WIRE, rules=["wire-safety"]) == []

    def test_pickle_eval_reduce_are_flagged(self):
        findings = analyze_fixture("wire_safety/bad_pickle.py", WIRE, rules=["wire-safety"])
        messages = " | ".join(finding.message for finding in findings)
        assert "import of 'pickle'" in messages
        assert "'pickle.loads' call" in messages
        assert "call to 'eval'" in messages
        assert "'__reduce__' defined" in messages

    def test_redeclared_frame_constant_is_flagged(self):
        findings = analyze_fixture("wire_safety/bad_frames.py", WIRE, rules=["wire-safety"])
        assert any("redeclared" in finding.message for finding in findings)

    def test_frame_constant_outside_wire_home_is_flagged(self):
        findings = analyze_text("FRAME_ROGUE = 9\n", WORKER, rules=["wire-safety"])
        assert any("outside" in finding.message for finding in findings)

    def test_unchecked_payload_read_is_flagged(self):
        findings = analyze_fixture(
            "wire_safety/bad_unchecked_read.py", WIRE, rules=["wire-safety"]
        )
        assert any("without a prior header length check" in f.message for f in findings)

    def test_rule_is_scoped_to_wire_modules(self):
        # The worker bundle exception aside, pickle elsewhere is not this rule's beat.
        assert analyze_text("import pickle\n", "src/repro/io/pipeline.py",
                            rules=["wire-safety"]) == []

    def test_inline_waiver_suppresses_a_documented_exception(self):
        text = "import pickle  # repro: allow(wire-safety) — disk bundle, never on the wire\n"
        assert analyze_text(text, WORKER, rules=["wire-safety"]) == []


# ----------------------------------------------------------- lock-discipline
class TestLockDiscipline:
    def test_good_guarded_class_is_clean(self):
        findings = analyze_fixture(
            "lock_discipline/good_guarded.py", ENGINE, rules=["lock-discipline"]
        )
        assert findings == []

    def test_unguarded_access_is_flagged(self):
        findings = analyze_fixture(
            "lock_discipline/bad_unguarded.py", ENGINE, rules=["lock-discipline"]
        )
        assert len(findings) == 2  # the bare write and the bare read
        assert all("guarded-by '_lock'" in finding.message for finding in findings)

    def test_featurize_inside_lock_is_flagged(self):
        findings = analyze_fixture(
            "lock_discipline/bad_featurize_in_lock.py", ENGINE, rules=["lock-discipline"]
        )
        messages = " | ".join(finding.message for finding in findings)
        assert "'featurize_profiles' called inside a lock body" in messages
        assert "'encode_batch' called inside a lock body" in messages


# ------------------------------------------------------------ stage-taxonomy
class TestStageTaxonomy:
    def test_good_stages_are_clean(self):
        findings = analyze_fixture(
            "stage_taxonomy/good_stages.py", GATEWAY, rules=["stage-taxonomy"]
        )
        assert findings == []

    def test_bad_stages_are_flagged(self):
        findings = analyze_fixture(
            "stage_taxonomy/bad_stages.py", GATEWAY, rules=["stage-taxonomy"]
        )
        messages = " | ".join(finding.message for finding in findings)
        assert "'bogus' is not a canonical stage name" in messages
        assert "'warm_hit' is not a canonical store event name" in messages
        assert "'STAGE_PRIVATE' is not one of the canonical" in messages
        assert "dynamic stage name" in messages


# ------------------------------------------------------------ metric-hygiene
class TestMetricHygiene:
    def test_good_metrics_are_clean(self):
        findings = analyze_fixture(
            "metric_hygiene/good_metrics.py", BATCHER, rules=["metric-hygiene"]
        )
        assert findings == []

    def test_bad_metrics_are_flagged(self):
        findings = analyze_fixture(
            "metric_hygiene/bad_metrics.py", BATCHER, rules=["metric-hygiene"]
        )
        messages = " | ".join(finding.message for finding in findings)
        assert "'requestsTotal' is not repro_-prefixed snake_case" in messages
        assert "redeclared as gauge" in messages
        assert "redeclared with buckets=(1.0, 5.0)" in messages


# -------------------------------------------------- acceptance: the real tree
class TestRealTree:
    def test_src_tree_is_clean_with_empty_baseline(self):
        sources, parse_errors = load_sources(collect_files([str(REPO_ROOT / "src")]))
        assert parse_errors == []
        assert Analyzer().run(sources) == []

    def test_deleting_sharded_delegation_fails_the_check(self, repo_source):
        real = repo_source(SHARDED)
        mutated = real.replace(
            "return self._core.predict(pairs)",
            "return (self.predict_proba(pairs) >= self.threshold).astype(int)",
        )
        assert mutated != real
        findings = Analyzer().run([SourceFile.from_text(mutated, SHARDED)])
        assert "decision-path" in rule_ids(findings)

        deleted = re.sub(r"    def predict\(self.*?\n\n", "", real, count=1, flags=re.S)
        assert deleted != real
        findings = Analyzer().run([SourceFile.from_text(deleted, SHARDED)])
        assert any(
            "missing decision surface 'predict'" in finding.message for finding in findings
        )

    def test_bogus_stage_literal_fails_in_every_transport(self, repo_source):
        rogue = '\n\ndef _rogue(tracer):\n    with tracer.stage("bogus"):\n        pass\n'
        for path in (ENGINE, SHARDED, BATCHER, GATEWAY):
            mutated = repo_source(path) + rogue
            findings = Analyzer().run([SourceFile.from_text(mutated, path)])
            assert "stage-taxonomy" in rule_ids(findings), path
