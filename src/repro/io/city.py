"""Save and load synthetic cities (POI polygons, categories, popularity).

The city file is plain JSON so POI sets extracted from real sources (e.g. an
OpenStreetMap dump) can be hand-written in the same format and loaded with
:func:`load_city`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

import numpy as np

from repro.data.city import City, CityConfig
from repro.errors import DataGenerationError, GeometryError
from repro.geo.poi import POI, POIRegistry
from repro.geo.polygon import BoundingPolygon
from repro.io.configs import config_from_dict, config_to_dict


def poi_to_dict(poi: POI) -> dict[str, Any]:
    """JSON-friendly representation of a POI."""
    return {
        "pid": poi.pid,
        "name": poi.name,
        "category": poi.category,
        "center": [poi.center.lat, poi.center.lon],
        "polygon": [[v.lat, v.lon] for v in poi.polygon.vertices],
    }


def poi_from_dict(data: dict[str, Any]) -> POI:
    """Rebuild a POI from :func:`poi_to_dict` output.

    The saved ``center`` is restored verbatim when present (recomputing the
    centroid from the polygon perturbs the last float bits, which would break
    bitwise round-trips of pipelines whose features depend on POI centers);
    hand-written records without a center fall back to the centroid.
    """
    try:
        polygon = BoundingPolygon.from_latlon_pairs([(float(lat), float(lon)) for lat, lon in data["polygon"]])
        pid = int(data["pid"])
        name = str(data.get("name", f"poi_{data['pid']}"))
        category = str(data.get("category", "generic"))
        center = data.get("center")
        if center is not None:
            from repro.geo.point import GeoPoint

            poi = POI(
                pid=pid,
                name=name,
                polygon=polygon,
                center=GeoPoint(float(center[0]), float(center[1])),
                category=category,
            )
        else:
            poi = POI.from_polygon(pid=pid, name=name, polygon=polygon, category=category)
    except (KeyError, TypeError, ValueError, GeometryError) as exc:
        raise DataGenerationError(f"invalid POI record: {data!r}") from exc
    return poi


def city_to_dict(city: City) -> dict[str, Any]:
    """JSON-friendly representation of a city (config, POIs, popularity)."""
    return {
        "config": config_to_dict(city.config),
        "pois": [poi_to_dict(p) for p in city.registry],
        "popularity": [float(x) for x in np.asarray(city.popularity)],
    }


def city_from_dict(data: dict[str, Any]) -> City:
    """Rebuild a city from :func:`city_to_dict` output."""
    config = config_from_dict(CityConfig, data.get("config", {}))
    pois = [poi_from_dict(p) for p in data.get("pois", [])]
    if not pois:
        raise DataGenerationError("city record contains no POIs")
    registry = POIRegistry(pois)
    popularity = np.asarray(data.get("popularity", []), dtype=float)
    if popularity.size != len(pois):
        popularity = np.full(len(pois), 1.0 / len(pois))
    return City(config=config, registry=registry, popularity=popularity)


def save_city(city: City, path: str | pathlib.Path) -> pathlib.Path:
    """Write a city to a JSON file; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(city_to_dict(city), indent=2))
    return path


def load_city(path: str | pathlib.Path) -> City:
    """Load a city from a JSON file written by :func:`save_city`."""
    path = pathlib.Path(path)
    return city_from_dict(json.loads(path.read_text()))


def city_from_registry(registry: POIRegistry, name: str = "ingested-city") -> City:
    """Wrap a bare POI registry into a :class:`City` with uniform popularity.

    Useful when ingesting real data: the POI set is known but no synthetic
    popularity model applies.
    """
    num_pois = len(registry)
    if num_pois == 0:
        raise DataGenerationError("cannot build a city from an empty POI registry")
    config = CityConfig(name=name, num_pois=num_pois)
    return City(config=config, registry=registry, popularity=np.full(num_pois, 1.0 / num_pois))
