"""Save and load full co-location datasets.

A dataset is written as a directory::

    <dir>/
      dataset.json            # name + DatasetConfig
      city.json               # POIs, categories, popularity
      train.jsonl.gz          # timelines of the training split
      validation.jsonl.gz
      test.jsonl.gz

Only the raw timelines are persisted; profiles and pairs are rebuilt on load
with the saved configuration, exactly as :func:`repro.data.build_dataset`
builds them, so the two representations cannot drift apart.
"""

from __future__ import annotations

import json
import pathlib

from repro.data.dataset import ColocationDataset, DatasetConfig, DatasetSplit
from repro.data.profiles import PairBuilder, ProfileBuilder
from repro.data.store import TimelineStore
from repro.errors import DataGenerationError
from repro.geo.poi import POIRegistry
from repro.io.city import load_city, save_city
from repro.io.configs import config_from_dict, config_to_dict
from repro.io.records_json import read_timelines_jsonl, write_timelines_jsonl

#: Split names in canonical order.
SPLITS = ("train", "validation", "test")


def build_split(
    name: str,
    store: TimelineStore,
    registry: POIRegistry,
    config: DatasetConfig,
    keep_unlabeled_pairs: bool,
) -> DatasetSplit:
    """Build one :class:`DatasetSplit` from a timeline store and a config.

    This mirrors the split construction inside :func:`repro.data.build_dataset`
    and is shared by the dataset loader and the ingest helpers.
    """
    profile_builder = ProfileBuilder(registry, max_history=config.max_history)
    profiles = profile_builder.build_all(store)
    labeled = [p for p in profiles if p.is_labeled]
    unlabeled = [p for p in profiles if not p.is_labeled]
    labeled_pairs, unlabeled_pairs = PairBuilder(config.pairs).build(profiles)
    return DatasetSplit(
        name=name,
        store=store,
        labeled_profiles=labeled,
        unlabeled_profiles=unlabeled,
        labeled_pairs=labeled_pairs,
        unlabeled_pairs=unlabeled_pairs if keep_unlabeled_pairs else [],
    )


def save_dataset(dataset: ColocationDataset, directory: str | pathlib.Path) -> pathlib.Path:
    """Write a dataset to ``directory``; returns the directory path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {"name": dataset.name, "config": config_to_dict(dataset.config)}
    (directory / "dataset.json").write_text(json.dumps(manifest, indent=2))
    save_city(dataset.city, directory / "city.json")
    for split_name, split in zip(SPLITS, (dataset.train, dataset.validation, dataset.test)):
        write_timelines_jsonl(split.store, directory / f"{split_name}.jsonl.gz")
    return directory


def load_dataset(directory: str | pathlib.Path) -> ColocationDataset:
    """Load a dataset from a directory written by :func:`save_dataset`."""
    directory = pathlib.Path(directory)
    manifest_path = directory / "dataset.json"
    if not manifest_path.exists():
        raise DataGenerationError(f"{directory} does not contain a dataset.json manifest")
    manifest = json.loads(manifest_path.read_text())
    config = config_from_dict(DatasetConfig, manifest.get("config", {}))
    city = load_city(directory / "city.json")

    splits: dict[str, DatasetSplit] = {}
    for split_name in SPLITS:
        path = directory / f"{split_name}.jsonl.gz"
        if not path.exists():
            raise DataGenerationError(f"dataset directory is missing {path.name}")
        store = TimelineStore(read_timelines_jsonl(path))
        splits[split_name] = build_split(
            split_name,
            store,
            city.registry,
            config,
            keep_unlabeled_pairs=(split_name == "train"),
        )

    return ColocationDataset(
        name=manifest.get("name", city.name),
        config=config,
        city=city,
        train=splits["train"],
        validation=splits["validation"],
        test=splits["test"],
    )
