"""JSON codecs for the paper's record types and JSONL timeline files.

The on-disk formats are deliberately plain: one JSON object per record, keyed
by the paper's own field names, so timelines exported here can be produced by
any external tool (or by a real Twitter crawl) and fed back through
:mod:`repro.data.ingest`.
"""

from __future__ import annotations

import gzip
import json
import pathlib
from typing import Any, Iterable, Iterator

from repro.data.records import Pair, Profile, Timeline, Tweet, Visit
from repro.errors import DataGenerationError

# --------------------------------------------------------------------- tweets


def tweet_to_dict(tweet: Tweet) -> dict[str, Any]:
    """JSON-friendly representation of a tweet."""
    return {
        "uid": tweet.uid,
        "ts": tweet.ts,
        "content": tweet.content,
        "lat": tweet.lat,
        "lon": tweet.lon,
        "true_pid": tweet.true_pid,
    }


def tweet_from_dict(data: dict[str, Any]) -> Tweet:
    """Rebuild a tweet from :func:`tweet_to_dict` output (extra keys ignored)."""
    try:
        return Tweet(
            uid=int(data["uid"]),
            ts=float(data["ts"]),
            content=str(data.get("content", "")),
            lat=None if data.get("lat") is None else float(data["lat"]),
            lon=None if data.get("lon") is None else float(data["lon"]),
            true_pid=None if data.get("true_pid") is None else int(data["true_pid"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataGenerationError(f"invalid tweet record: {data!r}") from exc


# --------------------------------------------------------------------- visits


def visit_to_dict(visit: Visit) -> dict[str, Any]:
    """JSON-friendly representation of a visit."""
    return {"ts": visit.ts, "lat": visit.lat, "lon": visit.lon}


def visit_from_dict(data: dict[str, Any]) -> Visit:
    """Rebuild a visit from :func:`visit_to_dict` output."""
    try:
        return Visit(ts=float(data["ts"]), lat=float(data["lat"]), lon=float(data["lon"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise DataGenerationError(f"invalid visit record: {data!r}") from exc


# ------------------------------------------------------------------ timelines


def timeline_to_dict(timeline: Timeline) -> dict[str, Any]:
    """JSON-friendly representation of a timeline."""
    return {"uid": timeline.uid, "tweets": [tweet_to_dict(t) for t in timeline.tweets]}


def timeline_from_dict(data: dict[str, Any]) -> Timeline:
    """Rebuild a timeline from :func:`timeline_to_dict` output."""
    try:
        uid = int(data["uid"])
        tweets = tuple(tweet_from_dict(t) for t in data.get("tweets", []))
    except (KeyError, TypeError, ValueError) as exc:
        raise DataGenerationError(f"invalid timeline record: {data!r}") from exc
    return Timeline(uid=uid, tweets=tweets)


# ------------------------------------------------------------------- profiles


def profile_to_dict(profile: Profile) -> dict[str, Any]:
    """JSON-friendly representation of a profile."""
    return {
        "uid": profile.uid,
        "tweet": tweet_to_dict(profile.tweet),
        "visit_history": [visit_to_dict(v) for v in profile.visit_history],
        "pid": profile.pid,
        "revision": profile.revision,
    }


def profile_from_dict(data: dict[str, Any]) -> Profile:
    """Rebuild a profile from :func:`profile_to_dict` output."""
    try:
        return Profile(
            uid=int(data["uid"]),
            tweet=tweet_from_dict(data["tweet"]),
            visit_history=tuple(visit_from_dict(v) for v in data.get("visit_history", [])),
            pid=None if data.get("pid") is None else int(data["pid"]),
            revision=None if data.get("revision") is None else int(data["revision"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataGenerationError(f"invalid profile record: {data!r}") from exc


# ---------------------------------------------------------------------- pairs


def pair_to_dict(pair: Pair) -> dict[str, Any]:
    """JSON-friendly representation of a pair."""
    return {
        "left": profile_to_dict(pair.left),
        "right": profile_to_dict(pair.right),
        "co_label": pair.co_label,
    }


def pair_from_dict(data: dict[str, Any]) -> Pair:
    """Rebuild a pair from :func:`pair_to_dict` output."""
    try:
        return Pair(
            left=profile_from_dict(data["left"]),
            right=profile_from_dict(data["right"]),
            co_label=None if data.get("co_label") is None else int(data["co_label"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataGenerationError(f"invalid pair record: {data!r}") from exc


# ---------------------------------------------------------------- JSONL files


def _open_text(path: pathlib.Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_timelines_jsonl(timelines: Iterable[Timeline], path: str | pathlib.Path) -> int:
    """Write timelines to a JSONL (or ``.jsonl.gz``) file; returns the count written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with _open_text(path, "w") as handle:
        for timeline in timelines:
            handle.write(json.dumps(timeline_to_dict(timeline)) + "\n")
            count += 1
    return count


def read_timelines_jsonl(path: str | pathlib.Path) -> Iterator[Timeline]:
    """Yield timelines from a JSONL (or ``.jsonl.gz``) file written by this module."""
    path = pathlib.Path(path)
    with _open_text(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DataGenerationError(f"{path}:{line_number}: invalid JSON") from exc
            yield timeline_from_dict(data)
