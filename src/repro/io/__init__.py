"""Persistence for datasets, records and fitted pipelines.

* :mod:`repro.io.configs` — generic (nested) dataclass <-> dict conversion used
  by every saver.
* :mod:`repro.io.records_json` — JSON codecs for the paper's record types
  (tweets, visits, timelines, profiles, pairs) and JSONL timeline files.
* :mod:`repro.io.city` — save/load synthetic cities (POI polygons + popularity).
* :mod:`repro.io.datasets` — save/load a full :class:`ColocationDataset` as a
  directory of JSON + JSONL files.
* :mod:`repro.io.pipeline` — save/load a fitted
  :class:`repro.colocation.CoLocationPipeline` (configs, vocabulary, skip-gram
  vectors and every network's weights).
* :mod:`repro.io.social` — save/load friendship graphs for the §7 social
  extension.
"""

from repro.io.city import city_from_dict, city_to_dict, load_city, save_city
from repro.io.configs import config_from_dict, config_to_dict
from repro.io.datasets import load_dataset, save_dataset
from repro.io.pipeline import load_engine, load_pipeline, save_pipeline
from repro.io.records_json import (
    pair_from_dict,
    pair_to_dict,
    profile_from_dict,
    profile_to_dict,
    read_timelines_jsonl,
    timeline_from_dict,
    timeline_to_dict,
    tweet_from_dict,
    tweet_to_dict,
    write_timelines_jsonl,
)
from repro.io.social import (
    load_social_graph,
    save_social_graph,
    social_graph_from_dict,
    social_graph_to_dict,
)

__all__ = [
    "config_to_dict",
    "config_from_dict",
    "tweet_to_dict",
    "tweet_from_dict",
    "timeline_to_dict",
    "timeline_from_dict",
    "profile_to_dict",
    "profile_from_dict",
    "pair_to_dict",
    "pair_from_dict",
    "write_timelines_jsonl",
    "read_timelines_jsonl",
    "city_to_dict",
    "city_from_dict",
    "save_city",
    "load_city",
    "save_dataset",
    "load_dataset",
    "save_pipeline",
    "load_pipeline",
    "load_engine",
    "social_graph_to_dict",
    "social_graph_from_dict",
    "save_social_graph",
    "load_social_graph",
]
