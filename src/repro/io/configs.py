"""Generic (nested) dataclass <-> plain-dict conversion.

The library's configuration objects (``PipelineConfig``, ``DatasetConfig`` and
friends) are nested dataclasses of primitives and tuples.  These two helpers
turn them into JSON-friendly dictionaries and back, preserving the nested
structure, so savers do not need one hand-written codec per config class.
"""

from __future__ import annotations

import dataclasses
import types
import typing
from typing import Any, Type, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


def config_to_dict(config: Any) -> dict[str, Any]:
    """Convert a (possibly nested) dataclass instance into plain dictionaries."""
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise ConfigurationError(f"config_to_dict expects a dataclass instance, got {config!r}")
    return _encode(config)


def _encode(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _encode(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, (tuple, list, set, frozenset)):
        return [_encode(item) for item in value]
    if isinstance(value, dict):
        return {key: _encode(item) for key, item in value.items()}
    return value


def config_from_dict(cls: Type[T], data: dict[str, Any]) -> T:
    """Rebuild a dataclass instance (recursively) from :func:`config_to_dict` output.

    Unknown keys are ignored so configs saved by newer library versions still
    load; missing keys fall back to the dataclass defaults.
    """
    if not dataclasses.is_dataclass(cls):
        raise ConfigurationError(f"config_from_dict expects a dataclass type, got {cls!r}")
    if not isinstance(data, dict):
        raise ConfigurationError(f"expected a dict to rebuild {cls.__name__}, got {type(data).__name__}")
    hints = typing.get_type_hints(cls)
    kwargs: dict[str, Any] = {}
    for field in dataclasses.fields(cls):
        if field.name not in data:
            continue
        kwargs[field.name] = _decode(hints.get(field.name, Any), data[field.name])
    return cls(**kwargs)  # type: ignore[return-value]


def _decode(annotation: Any, value: Any) -> Any:
    if value is None:
        return None
    annotation = _strip_optional(annotation)
    if dataclasses.is_dataclass(annotation) and isinstance(value, dict):
        return config_from_dict(annotation, value)
    origin = typing.get_origin(annotation)
    if origin in (tuple, set, frozenset) and isinstance(value, list):
        args = typing.get_args(annotation)
        item_annotation = args[0] if args else Any
        items = [_decode(item_annotation, item) for item in value]
        return origin(items)
    if origin is list and isinstance(value, list):
        args = typing.get_args(annotation)
        item_annotation = args[0] if args else Any
        return [_decode(item_annotation, item) for item in value]
    return value


def _strip_optional(annotation: Any) -> Any:
    """``X | None`` -> ``X`` so nested dataclasses survive optional annotations."""
    origin = typing.get_origin(annotation)
    if origin is typing.Union or origin is types.UnionType:
        args = [a for a in typing.get_args(annotation) if a is not type(None)]
        if len(args) == 1:
            return args[0]
    return annotation
