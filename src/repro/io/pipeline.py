"""Save and load fitted :class:`repro.colocation.CoLocationPipeline` objects.

A fitted pipeline is written as a directory::

    <dir>/
      pipeline.json      # PipelineConfig + text-stack settings + format version
      city.json          # the POI registry the featurizer was trained against
      vocabulary.json    # token list + counts
      skipgram.npz       # input/output word vectors
      weights.npz        # state_dicts of every network, keys prefixed by component

Loading rebuilds every network from the saved configuration and restores the
weights, so the returned pipeline predicts exactly like the one that was saved
(dropout layers are left in eval mode).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.colocation.judge import HisRectCoLocationJudge
from repro.colocation.onephase import OnePhaseModel
from repro.colocation.pipeline import CoLocationPipeline, PipelineConfig
from repro.errors import ConfigurationError, NotFittedError
from repro.features.content import TextVectorizer
from repro.features.hisrect import EmbeddingNetwork, HisRectFeaturizer, POIClassifier
from repro.io.city import city_from_registry, load_city, save_city
from repro.io.configs import config_from_dict, config_to_dict
from repro.text.skipgram import SkipGramModel
from repro.text.tokenize import Tokenizer, Vocabulary

#: On-disk format version (bumped on incompatible layout changes).
FORMAT_VERSION = 1


# --------------------------------------------------------------------- saving


def _prefixed(prefix: str, state: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    return {f"{prefix}/{key}": value for key, value in state.items()}


def save_pipeline(pipeline: CoLocationPipeline, directory: str | pathlib.Path) -> pathlib.Path:
    """Write a fitted pipeline to ``directory``; returns the directory path."""
    if not getattr(pipeline, "_fitted", False):
        raise NotFittedError("save_pipeline() requires a fitted CoLocationPipeline")
    if pipeline.featurizer is None:
        raise NotFittedError("the pipeline has no featurizer to save")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    manifest: dict[str, object] = {
        "format_version": FORMAT_VERSION,
        "config": config_to_dict(pipeline.config),
        "num_pois": len(pipeline.featurizer.registry),
    }

    # Text stack (absent for History-only pipelines).
    if pipeline.vectorizer is not None and pipeline.vocabulary is not None and pipeline.skipgram is not None:
        manifest["text_stack"] = {
            "max_tokens": pipeline.vectorizer.max_tokens,
            "min_tokens": pipeline.vectorizer.min_tokens,
            "cache_size": pipeline.vectorizer.cache_size,
        }
        vocab = pipeline.vocabulary
        (directory / "vocabulary.json").write_text(
            json.dumps(
                {
                    "id_to_token": vocab.id_to_token,
                    "counts": {token: int(count) for token, count in vocab.counts.items()},
                }
            )
        )
        np.savez_compressed(
            directory / "skipgram.npz",
            input_vectors=pipeline.skipgram.embeddings,
            output_vectors=pipeline.skipgram._output_vectors,
        )

    save_city(city_from_registry(pipeline.featurizer.registry), directory / "city.json")

    weights: dict[str, np.ndarray] = {}
    weights.update(_prefixed("featurizer", pipeline.featurizer.state_dict()))
    if pipeline.config.mode == "one-phase":
        if pipeline.onephase is None:
            raise NotFittedError("one-phase pipeline has no trained model to save")
        weights.update(_prefixed("onephase", pipeline.onephase.network.state_dict()))
    else:
        if pipeline.classifier is None or pipeline.embedding is None or pipeline.judge is None:
            raise NotFittedError("two-phase pipeline is missing trained components")
        weights.update(_prefixed("classifier", pipeline.classifier.state_dict()))
        weights.update(_prefixed("embedding", pipeline.embedding.state_dict()))
        weights.update(_prefixed("judge", pipeline.judge.network.state_dict()))
    np.savez_compressed(directory / "weights.npz", **weights)

    (directory / "pipeline.json").write_text(json.dumps(manifest, indent=2))
    return directory


# -------------------------------------------------------------------- loading


def _split_weights(archive: np.lib.npyio.NpzFile) -> dict[str, dict[str, np.ndarray]]:
    groups: dict[str, dict[str, np.ndarray]] = {}
    for key in archive.files:
        prefix, _, name = key.partition("/")
        groups.setdefault(prefix, {})[name] = archive[key]
    return groups


def _load_vocabulary(path: pathlib.Path) -> Vocabulary:
    data = json.loads(path.read_text())
    vocab = Vocabulary()
    for token in data["id_to_token"]:
        vocab._add(token)
    vocab.counts.update({token: int(count) for token, count in data.get("counts", {}).items()})
    return vocab


def load_pipeline(directory: str | pathlib.Path) -> CoLocationPipeline:
    """Load a fitted pipeline from a directory written by :func:`save_pipeline`."""
    directory = pathlib.Path(directory)
    manifest_path = directory / "pipeline.json"
    if not manifest_path.exists():
        raise ConfigurationError(f"{directory} does not contain a pipeline.json manifest")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported pipeline format version {manifest.get('format_version')!r}"
        )
    config = config_from_dict(PipelineConfig, manifest["config"])
    city = load_city(directory / "city.json")
    registry = city.registry

    pipeline = CoLocationPipeline(config)

    # ------------------------------------------------------------- text stack
    vectorizer = None
    if config.hisrect.use_content:
        text_settings = manifest.get("text_stack", {})
        vocabulary = _load_vocabulary(directory / "vocabulary.json")
        skipgram = SkipGramModel(vocabulary, config.skipgram)
        with np.load(directory / "skipgram.npz") as vectors:
            skipgram._input_vectors = vectors["input_vectors"]
            skipgram._output_vectors = vectors["output_vectors"]
        vectorizer = TextVectorizer(
            vocabulary,
            skipgram,
            tokenizer=Tokenizer(),
            max_tokens=int(text_settings.get("max_tokens", 16)),
            min_tokens=int(text_settings.get("min_tokens", 4)),
            cache_size=int(text_settings.get("cache_size", 4096)),
        )
        pipeline.vocabulary = vocabulary
        pipeline.skipgram = skipgram
        pipeline.vectorizer = vectorizer

    # --------------------------------------------------------------- networks
    with np.load(directory / "weights.npz") as archive:
        groups = _split_weights(archive)

    featurizer = HisRectFeaturizer(registry, vectorizer, config.hisrect)
    featurizer.load_state_dict(groups.get("featurizer", {}))
    featurizer.eval()
    pipeline.featurizer = featurizer

    if config.mode == "one-phase":
        onephase = OnePhaseModel(featurizer, config.onephase)
        onephase.network.load_state_dict(groups.get("onephase", {}))
        onephase.network.eval()
        onephase._fitted = True
        pipeline.onephase = onephase
    else:
        classifier = POIClassifier(
            feature_dim=config.hisrect.feature_dim,
            num_pois=int(manifest.get("num_pois", len(registry))),
            num_layers=config.classifier_layers,
            keep_prob=config.hisrect.keep_prob,
            init_std=config.hisrect.init_std,
            seed=config.seed + 1,
        )
        classifier.load_state_dict(groups.get("classifier", {}))
        classifier.eval()
        embedding = EmbeddingNetwork(
            input_dim=config.hisrect.feature_dim,
            embedding_dim=config.hisrect.embedding_dim,
            num_layers=config.hisrect.num_embedding_layers,
            normalize=True,
            init_std=config.hisrect.init_std,
            seed=config.seed + 2,
        )
        embedding.load_state_dict(groups.get("embedding", {}))
        embedding.eval()
        judge = HisRectCoLocationJudge(featurizer, config.judge)
        judge.network.load_state_dict(groups.get("judge", {}))
        judge.network.eval()
        judge._fitted = True
        pipeline.classifier = classifier
        pipeline.embedding = embedding
        pipeline.judge = judge

    pipeline._fitted = True
    return pipeline


def load_engine(directory: str | pathlib.Path, **engine_kwargs):
    """Load a saved pipeline and wrap it in a :class:`repro.api.ColocationEngine`.

    The one-call path from a ``save_pipeline`` directory to a serving-ready
    engine; ``engine_kwargs`` are forwarded to the engine constructor
    (``cache_size``, ``threshold``, ``batch_size``).
    """
    from repro.api import ColocationEngine

    return ColocationEngine(load_pipeline(directory), **engine_kwargs)
