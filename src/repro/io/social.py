"""Persistence for friendship graphs (the §7 social extension).

A friendship graph is external data in a real deployment (it comes from the
platform's follower/friend API, not from the model), so it needs its own
save/load path: a small JSON document holding the user list and the edge
list.  The format is deliberately trivial so crawled graphs can be produced by
any external tool and ingested here.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.errors import ConfigurationError
from repro.social.graph import SocialGraph

#: Format marker written into every saved graph document.
FORMAT_NAME = "repro-social-graph"
FORMAT_VERSION = 1


def social_graph_to_dict(graph: SocialGraph) -> dict[str, Any]:
    """The JSON-serialisable representation of a friendship graph."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "users": sorted(graph),
        "friendships": [list(edge) for edge in graph.edges()],
    }


def social_graph_from_dict(data: dict[str, Any]) -> SocialGraph:
    """Rebuild a friendship graph from its dictionary representation."""
    if data.get("format") != FORMAT_NAME:
        raise ConfigurationError("not a repro social-graph document")
    graph = SocialGraph(int(uid) for uid in data.get("users", []))
    for edge in data.get("friendships", []):
        if len(edge) != 2:
            raise ConfigurationError(f"malformed friendship edge: {edge!r}")
        graph.add_friendship(int(edge[0]), int(edge[1]))
    return graph


def save_social_graph(graph: SocialGraph, path: str | pathlib.Path) -> pathlib.Path:
    """Write a friendship graph to a JSON file; returns the path written."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(social_graph_to_dict(graph), handle, indent=2, sort_keys=True)
    return target


def load_social_graph(path: str | pathlib.Path) -> SocialGraph:
    """Read a friendship graph from a JSON file written by :func:`save_social_graph`."""
    source = pathlib.Path(path)
    with source.open("r", encoding="utf-8") as handle:
        data = json.load(handle)
    return social_graph_from_dict(data)
