"""TG-TI-C baseline (Paraskevopoulos & Palpanas, 2016).

The original method geolocalises a non-geo-tagged tweet by comparing its
content with geo-tagged tweets posted in the same period, exploiting both
textual similarity and the time-evolution of local topics.  The reproduction
follows that recipe at POI granularity:

* training tweets (labelled profiles) are indexed with TF-IDF vectors and their
  posting hour-of-day;
* a query tweet is compared (cosine similarity) against training tweets whose
  hour-of-day is within a window, boosting temporally close tweets;
* the similarity mass of the top-``k`` neighbours is aggregated per POI, giving
  a POI score distribution.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.baselines.base import LocationInferenceBaseline
from repro.data.records import Profile
from repro.data.timelines import DAY_SECONDS, HOUR_SECONDS
from repro.errors import TrainingError
from repro.geo.poi import POIRegistry
from repro.text.tokenize import Tokenizer


@dataclass
class TGTICConfig:
    """Hyper-parameters of the TG-TI-C reproduction."""

    #: Number of nearest training tweets aggregated per query.
    top_k: int = 15
    #: Hour-of-day window within which training tweets are considered.
    hour_window: float = 4.0
    #: Weighting applied to tweets posted at a similar hour (time-evolution term).
    temporal_boost: float = 0.5


class TGTICBaseline(LocationInferenceBaseline):
    """Similarity-based tweet geolocalisation with a temporal component."""

    def __init__(self, registry: POIRegistry, config: TGTICConfig | None = None):
        super().__init__(registry)
        self.config = config or TGTICConfig()
        self._tokenizer = Tokenizer(replace_stopwords=False)
        self._vocab_index: dict[str, int] = {}
        self._idf: np.ndarray | None = None
        self._train_matrix: np.ndarray | None = None
        self._train_hours: np.ndarray | None = None
        self._train_poi_index: np.ndarray | None = None

    # ---------------------------------------------------------------- fitting
    def fit(self, labeled_profiles: list[Profile]) -> "TGTICBaseline":
        if not labeled_profiles:
            raise TrainingError("TG-TI-C needs labelled training profiles")
        documents = [self._tokenizer.tokenize(p.content) for p in labeled_profiles]
        document_frequency: dict[str, int] = defaultdict(int)
        for tokens in documents:
            for token in set(tokens):
                document_frequency[token] += 1
        self._vocab_index = {token: i for i, token in enumerate(sorted(document_frequency))}
        n_docs = len(documents)
        self._idf = np.zeros(len(self._vocab_index))
        for token, index in self._vocab_index.items():
            self._idf[index] = np.log((1.0 + n_docs) / (1.0 + document_frequency[token])) + 1.0
        self._train_matrix = np.stack([self._vectorize(tokens) for tokens in documents])
        self._train_hours = np.array(
            [(p.ts % DAY_SECONDS) / HOUR_SECONDS for p in labeled_profiles]
        )
        self._train_poi_index = np.array(
            [self.registry.index_of(p.pid) for p in labeled_profiles], dtype=int
        )
        self._fitted = True
        return self

    def _vectorize(self, tokens: list[str]) -> np.ndarray:
        assert self._idf is not None
        vector = np.zeros(len(self._vocab_index))
        for token in tokens:
            index = self._vocab_index.get(token)
            if index is not None:
                vector[index] += 1.0
        vector *= self._idf
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector

    # -------------------------------------------------------------- inference
    def infer_poi_proba(self, profiles: list[Profile]) -> np.ndarray:
        self._require_fitted()
        assert self._train_matrix is not None
        assert self._train_hours is not None
        assert self._train_poi_index is not None
        cfg = self.config
        if not profiles:
            return np.zeros((0, len(self.registry)))
        scores = np.zeros((len(profiles), len(self.registry)))
        for row, profile in enumerate(profiles):
            query = self._vectorize(self._tokenizer.tokenize(profile.content))
            similarity = self._train_matrix @ query
            hour = (profile.ts % DAY_SECONDS) / HOUR_SECONDS
            hour_gap = np.abs(self._train_hours - hour)
            hour_gap = np.minimum(hour_gap, 24.0 - hour_gap)
            temporal = np.where(hour_gap <= cfg.hour_window, 1.0 + cfg.temporal_boost, 1.0)
            weighted = similarity * temporal
            top = np.argsort(-weighted)[: cfg.top_k]
            for index in top:
                if weighted[index] <= 0:
                    continue
                scores[row, self._train_poi_index[index]] += weighted[index]
            if scores[row].sum() == 0:
                scores[row] = 1.0
            scores[row] /= scores[row].sum()
        return scores


from repro.baselines.base import register_baseline

register_baseline(
    "tg-ti-c",
    TGTICBaseline,
    TGTICConfig,
    "TG-TI-C: TF-IDF + hour-of-day tweet geolocalisation (naive co-location)",
)
