"""Shared machinery for the naive location-inference baselines.

Both TG-TI-C and N-Gram-Gauss are *location inference* methods: they predict a
POI distribution for each profile independently.  Their co-location judgement
is then the naive composition the paper describes — infer both POIs and check
whether they coincide.  :class:`LocationInferenceBaseline` provides that
composition plus the Acc@K interface so the POI-inference experiment (Figure 4)
can treat every approach uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.data.records import Pair, Profile
from repro.errors import NotFittedError
from repro.geo.poi import POIRegistry


class LocationInferenceBaseline:
    """Base class: subclasses implement ``fit`` and ``infer_poi_proba``."""

    def __init__(self, registry: POIRegistry):
        self.registry = registry
        self._fitted = False

    # --------------------------------------------------------------- interface
    def fit(self, labeled_profiles: list[Profile]) -> "LocationInferenceBaseline":
        raise NotImplementedError

    def infer_poi_proba(self, profiles: list[Profile]) -> np.ndarray:
        """Per-profile POI score distributions, shape ``(B, |P|)``, rows sum to 1."""
        raise NotImplementedError

    # ------------------------------------------------------------- conveniences
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")

    def infer_poi(self, profiles: list[Profile]) -> list[int]:
        """Hard POI (pid) predictions."""
        proba = self.infer_poi_proba(profiles)
        return [self.registry.pid_at(int(i)) for i in proba.argmax(axis=1)]

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """Naive co-location: 1 iff both profiles are inferred at the same POI."""
        if not pairs:
            return np.zeros(0, dtype=int)
        left = np.array(self.infer_poi([p.left for p in pairs]))
        right = np.array(self.infer_poi([p.right for p in pairs]))
        return (left == right).astype(int)

    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Soft score: probability both profiles share a POI under the model."""
        if not pairs:
            return np.zeros(0)
        left = self.infer_poi_proba([p.left for p in pairs])
        right = self.infer_poi_proba([p.right for p in pairs])
        return np.sum(left * right, axis=1)

    def _uniform(self, count: int) -> np.ndarray:
        return np.full((count, len(self.registry)), 1.0 / len(self.registry))
