"""Shared machinery for the naive location-inference baselines.

Both TG-TI-C and N-Gram-Gauss are *location inference* methods: they predict a
POI distribution for each profile independently.  Their co-location judgement
is then the naive composition the paper describes — infer both POIs and check
whether they coincide.  :class:`LocationInferenceBaseline` provides that
composition plus the Acc@K interface so the POI-inference experiment (Figure 4)
can treat every approach uniformly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.protocols import shared_poi_probability_matrix
from repro.data.records import Pair, Profile
from repro.errors import NotFittedError
from repro.geo.poi import POIRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.dataset import ColocationDataset


class LocationInferenceBaseline:
    """Base class: subclasses implement ``fit`` and ``infer_poi_proba``."""

    def __init__(self, registry: POIRegistry):
        self.registry = registry
        self._fitted = False

    # --------------------------------------------------------------- interface
    def fit(self, labeled_profiles: list[Profile]) -> "LocationInferenceBaseline":
        raise NotImplementedError

    def infer_poi_proba(self, profiles: list[Profile]) -> np.ndarray:
        """Per-profile POI score distributions, shape ``(B, |P|)``, rows sum to 1."""
        raise NotImplementedError

    # ------------------------------------------------------------- conveniences
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")

    def infer_poi(self, profiles: list[Profile]) -> list[int]:
        """Hard POI (pid) predictions."""
        proba = self.infer_poi_proba(profiles)
        return [self.registry.pid_at(int(i)) for i in proba.argmax(axis=1)]

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """Naive co-location: 1 iff both profiles are inferred at the same POI."""
        if not pairs:
            return np.zeros(0, dtype=int)
        left = np.array(self.infer_poi([p.left for p in pairs]))
        right = np.array(self.infer_poi([p.right for p in pairs]))
        return (left == right).astype(int)

    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Soft score: probability both profiles share a POI under the model."""
        if not pairs:
            return np.zeros(0)
        left = self.infer_poi_proba([p.left for p in pairs])
        right = self.infer_poi_proba([p.right for p in pairs])
        return np.sum(left * right, axis=1)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """Pairwise shared-POI probability matrix (``P P^T`` of the POI scores)."""
        if len(profiles) < 2:
            return np.zeros((len(profiles), len(profiles)))
        return shared_poi_probability_matrix(self.infer_poi_proba(profiles))

    def fit_dataset(self, dataset: "ColocationDataset") -> "LocationInferenceBaseline":
        """Fit on a dataset's labelled training profiles (TrainableApproach)."""
        return self.fit(dataset.train.labeled_profiles)

    def _uniform(self, count: int) -> np.ndarray:
        return np.full((count, len(self.registry)), 1.0 / len(self.registry))


class BaselineApproach:
    """Registry adapter: bind a baseline class to a dataset at fit time.

    The baselines need the dataset's :class:`POIRegistry` at construction,
    which a plain configuration dictionary cannot carry.  This wrapper holds
    the class and its config, builds the model inside :meth:`fit` and then
    delegates the whole :class:`repro.core.CoLocationJudge` surface, so
    ``repro.registry.build("judge", "tg-ti-c", cfg).fit(dataset)`` works like
    any other approach.
    """

    def __init__(self, baseline_cls: type[LocationInferenceBaseline], config: Any = None):
        self.baseline_cls = baseline_cls
        self.config = config
        self.model: LocationInferenceBaseline | None = None

    def to_config(self) -> dict[str, Any]:
        from repro.io.configs import config_to_dict

        return config_to_dict(self.config) if self.config is not None else {}

    def fit(self, dataset: "ColocationDataset") -> "BaselineApproach":
        """Build the baseline against the dataset's POI registry and train it."""
        self.model = self.baseline_cls(dataset.registry, self.config)
        self.model.fit_dataset(dataset)
        return self

    def _require_model(self) -> LocationInferenceBaseline:
        if self.model is None:
            raise NotFittedError(f"{self.baseline_cls.__name__} has not been fitted")
        return self.model

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        return self._require_model().predict(pairs)

    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        return self._require_model().predict_proba(pairs)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        return self._require_model().probability_matrix(profiles)

    def infer_poi(self, profiles: list[Profile]) -> list[int]:
        return self._require_model().infer_poi(profiles)

    def infer_poi_proba(self, profiles: list[Profile]) -> np.ndarray:
        return self._require_model().infer_poi_proba(profiles)


def register_baseline(
    name: str,
    baseline_cls: type[LocationInferenceBaseline],
    config_cls: type,
    description: str,
) -> None:
    """Self-register a baseline under both the ``judge`` and ``baseline`` kinds."""
    from repro.registry import register

    def factory(config: dict | None = None) -> BaselineApproach:
        from repro.io.configs import config_from_dict

        return BaselineApproach(baseline_cls, config_from_dict(config_cls, config or {}))

    register("judge", name, factory=factory, description=description)
    register("baseline", name, factory=factory, description=description)
