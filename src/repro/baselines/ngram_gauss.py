"""N-Gram-Gauss baseline (Flatow et al., WSDM 2015).

The original method fits a Gaussian to the coordinates of every geo-specific
n-gram and uses the spread of that Gaussian to decide whether the n-gram has a
narrow geographic scope; a tweet is then located by combining the Gaussians of
its geo-specific n-grams.  The reproduction:

* collects unigrams and bigrams from labelled training profiles;
* fits an isotropic Gaussian (mean lat/lon + variance in metres²) per n-gram
  with enough occurrences;
* keeps only n-grams whose spatial spread is below a threshold (geo-specific);
* locates a query tweet at the precision-weighted mean of its geo-specific
  n-grams and scores POIs by their distance to that location.

Tweets with no geo-specific n-gram fall back to a uniform POI distribution,
which is why this family of approaches trails HisRect in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import LocationInferenceBaseline
from repro.data.records import Profile
from repro.errors import TrainingError
from repro.geo.poi import POIRegistry
from repro.geo.point import point_to_many_m
from repro.text.tokenize import Tokenizer


@dataclass
class NGramGaussConfig:
    """Hyper-parameters of the N-Gram-Gauss reproduction."""

    #: Minimum number of occurrences before an n-gram gets a Gaussian.
    min_count: int = 3
    #: Maximum spatial standard deviation (metres) for an n-gram to count as geo-specific.
    max_spread_m: float = 2_000.0
    #: Softmax temperature (metres) converting POI distances into scores.
    distance_scale_m: float = 500.0
    #: Longest n-gram length considered (2 = unigrams + bigrams).
    max_n: int = 2


class NGramGaussBaseline(LocationInferenceBaseline):
    """Gaussian models over geo-specific n-grams."""

    def __init__(self, registry: POIRegistry, config: NGramGaussConfig | None = None):
        super().__init__(registry)
        self.config = config or NGramGaussConfig()
        self._tokenizer = Tokenizer(replace_stopwords=False)
        #: n-gram -> (mean_lat, mean_lon, spread_m)
        self._models: dict[tuple[str, ...], tuple[float, float, float]] = {}

    def _ngrams(self, tokens: list[str]) -> list[tuple[str, ...]]:
        grams: list[tuple[str, ...]] = []
        for n in range(1, self.config.max_n + 1):
            grams.extend(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))
        return grams

    # ---------------------------------------------------------------- fitting
    def fit(self, labeled_profiles: list[Profile]) -> "NGramGaussBaseline":
        if not labeled_profiles:
            raise TrainingError("N-Gram-Gauss needs labelled training profiles")
        coordinates: dict[tuple[str, ...], list[tuple[float, float]]] = {}
        for profile in labeled_profiles:
            if profile.lat is None or profile.lon is None:
                continue
            tokens = self._tokenizer.tokenize(profile.content)
            for gram in set(self._ngrams(tokens)):
                coordinates.setdefault(gram, []).append((profile.lat, profile.lon))

        cfg = self.config
        self._models = {}
        for gram, points in coordinates.items():
            if len(points) < cfg.min_count:
                continue
            lats = np.array([p[0] for p in points])
            lons = np.array([p[1] for p in points])
            mean_lat = float(lats.mean())
            mean_lon = float(lons.mean())
            distances = point_to_many_m(mean_lat, mean_lon, lats, lons)
            spread = float(np.sqrt(np.mean(distances**2)))
            if spread <= cfg.max_spread_m:
                self._models[gram] = (mean_lat, mean_lon, spread)
        self._fitted = True
        return self

    @property
    def num_geo_specific_ngrams(self) -> int:
        """How many n-grams received a geo-specific Gaussian."""
        return len(self._models)

    # -------------------------------------------------------------- inference
    def locate(self, profile: Profile) -> tuple[float, float] | None:
        """Precision-weighted location estimate, or None with no geo-specific n-gram."""
        self._require_fitted()
        tokens = self._tokenizer.tokenize(profile.content)
        weights, lats, lons = [], [], []
        for gram in self._ngrams(tokens):
            model = self._models.get(gram)
            if model is None:
                continue
            mean_lat, mean_lon, spread = model
            weight = 1.0 / (spread + 1.0) ** 2
            weights.append(weight)
            lats.append(mean_lat)
            lons.append(mean_lon)
        if not weights:
            return None
        weights_arr = np.array(weights)
        weights_arr /= weights_arr.sum()
        return float(np.dot(weights_arr, lats)), float(np.dot(weights_arr, lons))

    def infer_poi_proba(self, profiles: list[Profile]) -> np.ndarray:
        self._require_fitted()
        if not profiles:
            return np.zeros((0, len(self.registry)))
        scores = np.zeros((len(profiles), len(self.registry)))
        for row, profile in enumerate(profiles):
            location = self.locate(profile)
            if location is None:
                scores[row] = 1.0 / len(self.registry)
                continue
            distances = self.registry.distances_from(*location)
            logits = -distances / self.config.distance_scale_m
            logits -= logits.max()
            weights = np.exp(logits)
            scores[row] = weights / weights.sum()
        return scores


from repro.baselines.base import register_baseline

register_baseline(
    "n-gram-gauss",
    NGramGaussBaseline,
    NGramGaussConfig,
    "N-Gram-Gauss: Gaussians over geo-specific n-grams (naive co-location)",
)
