"""Naive location-inference baselines: TG-TI-C and N-Gram-Gauss."""

from repro.baselines.base import LocationInferenceBaseline
from repro.baselines.ngram_gauss import NGramGaussBaseline, NGramGaussConfig
from repro.baselines.tg_ti_c import TGTICBaseline, TGTICConfig

__all__ = [
    "LocationInferenceBaseline",
    "TGTICBaseline",
    "TGTICConfig",
    "NGramGaussBaseline",
    "NGramGaussConfig",
]
