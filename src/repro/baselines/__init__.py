"""Naive location-inference baselines: TG-TI-C and N-Gram-Gauss.

Both baselines self-register in :mod:`repro.registry` under the ``"judge"``
and ``"baseline"`` kinds (names ``"tg-ti-c"`` and ``"n-gram-gauss"``) via
:class:`repro.baselines.base.BaselineApproach`, which binds them to a
dataset's POI registry at fit time.
"""

from repro.baselines.base import BaselineApproach, LocationInferenceBaseline
from repro.baselines.ngram_gauss import NGramGaussBaseline, NGramGaussConfig
from repro.baselines.tg_ti_c import TGTICBaseline, TGTICConfig

__all__ = [
    "LocationInferenceBaseline",
    "BaselineApproach",
    "TGTICBaseline",
    "TGTICConfig",
    "NGramGaussBaseline",
    "NGramGaussConfig",
]
