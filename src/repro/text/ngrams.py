"""N-gram extraction and TF-IDF weighting over tweet contents.

The paper's ``N-Gram-Gauss`` baseline works on geo-specific n-grams and its
``TG-TI-C`` baseline compares tweets by content similarity; both need the
same low-level machinery: n-gram extraction from tokenised tweets and a
document-frequency-aware vectoriser.  Centralising it here keeps the baseline
modules small and lets the social-extension features reuse the exact same
representation.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import NotFittedError, VocabularyError
from repro.text.tokenize import STOPWORD_TOKEN, Tokenizer


def extract_ngrams(
    tokens: Sequence[str],
    order: int,
    skip_stopword_token: bool = True,
) -> list[tuple[str, ...]]:
    """All contiguous n-grams of a given ``order`` from a token sequence.

    N-grams containing the ``</s>`` stop-word sentinel are skipped by default
    because a stop word inside a phrase breaks its location specificity
    ("statue </s> liberty" is not the landmark phrase).
    """
    if order < 1:
        raise VocabularyError("n-gram order must be at least 1")
    ngrams: list[tuple[str, ...]] = []
    for start in range(len(tokens) - order + 1):
        gram = tuple(tokens[start : start + order])
        if skip_stopword_token and STOPWORD_TOKEN in gram:
            continue
        ngrams.append(gram)
    return ngrams


def extract_all_ngrams(
    tokens: Sequence[str],
    max_order: int = 3,
    skip_stopword_token: bool = True,
) -> list[tuple[str, ...]]:
    """Unigrams up to ``max_order``-grams, concatenated."""
    grams: list[tuple[str, ...]] = []
    for order in range(1, max_order + 1):
        grams.extend(extract_ngrams(tokens, order, skip_stopword_token=skip_stopword_token))
    return grams


def ngram_counts(
    documents: Iterable[Sequence[str]],
    max_order: int = 3,
) -> Counter:
    """Corpus-wide counts of every n-gram up to ``max_order``."""
    counts: Counter = Counter()
    for tokens in documents:
        counts.update(extract_all_ngrams(tokens, max_order=max_order))
    return counts


@dataclass
class TfidfConfig:
    """Configuration of the TF-IDF vectoriser."""

    max_order: int = 1
    min_document_frequency: int = 1
    max_features: int | None = None
    sublinear_tf: bool = True
    normalize: bool = True


@dataclass
class TfidfVectorizer:
    """A sparse-free TF-IDF vectoriser over tokenised documents.

    The vectoriser learns an n-gram vocabulary and inverse-document-frequency
    weights from a corpus, then maps documents to dense vectors.  Cosine
    similarity between such vectors is the content-similarity signal used by
    the TG-TI-C baseline and the social co-posting feature.
    """

    config: TfidfConfig = field(default_factory=TfidfConfig)
    tokenizer: Tokenizer | None = None
    _feature_index: dict[tuple[str, ...], int] = field(default_factory=dict, repr=False)
    _idf: np.ndarray | None = field(default=None, repr=False)

    def _tokenize(self, document: str | Sequence[str]) -> list[str]:
        if isinstance(document, str):
            tokenizer = self.tokenizer or Tokenizer(replace_stopwords=False)
            return tokenizer(document)
        return list(document)

    @property
    def num_features(self) -> int:
        """Size of the learned n-gram vocabulary."""
        return len(self._feature_index)

    @property
    def feature_names(self) -> list[tuple[str, ...]]:
        """The learned n-grams, ordered by feature index."""
        ordered = sorted(self._feature_index.items(), key=lambda item: item[1])
        return [gram for gram, _ in ordered]

    def fit(self, documents: Iterable[str | Sequence[str]]) -> "TfidfVectorizer":
        """Learn the n-gram vocabulary and IDF weights from a corpus."""
        tokenised = [self._tokenize(doc) for doc in documents]
        if not tokenised:
            raise VocabularyError("TfidfVectorizer.fit received an empty corpus")
        document_frequency: Counter = Counter()
        for tokens in tokenised:
            grams = set(extract_all_ngrams(tokens, max_order=self.config.max_order))
            document_frequency.update(grams)
        eligible = [
            (gram, df)
            for gram, df in document_frequency.most_common()
            if df >= self.config.min_document_frequency
        ]
        if self.config.max_features is not None:
            eligible = eligible[: self.config.max_features]
        if not eligible:
            raise VocabularyError("no n-gram satisfied the document-frequency threshold")
        self._feature_index = {gram: index for index, (gram, _) in enumerate(eligible)}
        num_documents = len(tokenised)
        idf = np.zeros(len(eligible))
        for gram, df in eligible:
            idf[self._feature_index[gram]] = math.log((1.0 + num_documents) / (1.0 + df)) + 1.0
        self._idf = idf
        return self

    def _require_fitted(self) -> None:
        if self._idf is None or not self._feature_index:
            raise NotFittedError("TfidfVectorizer has not been fitted")

    def transform_one(self, document: str | Sequence[str]) -> np.ndarray:
        """Vectorise a single document."""
        self._require_fitted()
        assert self._idf is not None
        tokens = self._tokenize(document)
        counts = Counter(extract_all_ngrams(tokens, max_order=self.config.max_order))
        vector = np.zeros(len(self._feature_index))
        for gram, count in counts.items():
            index = self._feature_index.get(gram)
            if index is None:
                continue
            tf = 1.0 + math.log(count) if self.config.sublinear_tf else float(count)
            vector[index] = tf * self._idf[index]
        if self.config.normalize:
            norm = float(np.linalg.norm(vector))
            if norm > 0.0:
                vector /= norm
        return vector

    def transform(self, documents: Iterable[str | Sequence[str]]) -> np.ndarray:
        """Vectorise a corpus into a ``(num_documents, num_features)`` matrix."""
        rows = [self.transform_one(doc) for doc in documents]
        if not rows:
            return np.zeros((0, len(self._feature_index)))
        return np.vstack(rows)

    def fit_transform(self, documents: Sequence[str | Sequence[str]]) -> np.ndarray:
        """Fit on a corpus and return its document-term matrix."""
        return self.fit(documents).transform(documents)


def cosine_similarity_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities between the rows of a matrix."""
    if matrix.ndim != 2:
        raise VocabularyError("expected a 2-D document-term matrix")
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    unit = matrix / norms
    return unit @ unit.T


def document_similarity(first: np.ndarray, second: np.ndarray) -> float:
    """Cosine similarity between two document vectors (0 when either is empty)."""
    norm_a = float(np.linalg.norm(first))
    norm_b = float(np.linalg.norm(second))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(first, second) / (norm_a * norm_b))
