"""Skip-gram word embeddings with negative sampling (Mikolov et al., 2013).

The paper trains word vectors on the contents of all training-timeline tweets
with the skip-gram algorithm and represents each word as an ``M``-dimensional
vector before feeding the sequence into the BiLSTM-C encoder.  This module is a
NumPy implementation of skip-gram with negative sampling, sized for the
reproduction's synthetic corpora.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import NotFittedError, TrainingError
from repro.text.tokenize import Vocabulary


@dataclass
class SkipGramConfig:
    """Hyperparameters for skip-gram training."""

    embedding_dim: int = 32
    window: int = 3
    negatives: int = 5
    epochs: int = 2
    learning_rate: float = 0.05
    min_learning_rate: float = 0.005
    seed: int = 13


class SkipGramModel:
    """Skip-gram with negative sampling over integer-encoded sentences."""

    def __init__(self, vocabulary: Vocabulary, config: SkipGramConfig | None = None):
        self.vocabulary = vocabulary
        self.config = config or SkipGramConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._input_vectors: np.ndarray | None = None
        self._output_vectors: np.ndarray | None = None
        self._noise_distribution: np.ndarray | None = None

    # ------------------------------------------------------------------ setup
    def _initialise(self) -> None:
        vocab_size = len(self.vocabulary)
        dim = self.config.embedding_dim
        if vocab_size == 0:
            raise TrainingError("cannot train skip-gram on an empty vocabulary")
        bound = 0.5 / dim
        self._input_vectors = self._rng.uniform(-bound, bound, size=(vocab_size, dim))
        self._output_vectors = np.zeros((vocab_size, dim))
        counts = np.array(
            [max(1, self.vocabulary.counts.get(token, 1)) for token in self.vocabulary.id_to_token],
            dtype=np.float64,
        )
        noise = counts**0.75
        self._noise_distribution = noise / noise.sum()

    @property
    def embedding_dim(self) -> int:
        return self.config.embedding_dim

    @property
    def embeddings(self) -> np.ndarray:
        """The trained input vectors, one row per vocabulary id."""
        if self._input_vectors is None:
            raise NotFittedError("SkipGramModel has not been trained")
        return self._input_vectors

    # --------------------------------------------------------------- training
    def train(self, sentences: Iterable[Sequence[int]]) -> "SkipGramModel":
        """Train on integer-encoded sentences (lists of vocabulary ids)."""
        self._initialise()
        assert self._input_vectors is not None
        assert self._output_vectors is not None
        assert self._noise_distribution is not None

        sentences = [list(s) for s in sentences if len(s) >= 2]
        if not sentences:
            raise TrainingError("skip-gram received no usable sentences")

        pairs = self._build_pairs(sentences)
        total_steps = self.config.epochs * len(pairs)
        lr_span = self.config.learning_rate - self.config.min_learning_rate
        step = 0
        for _ in range(self.config.epochs):
            self._rng.shuffle(pairs)
            for center, context in pairs:
                lr = self.config.learning_rate - lr_span * (step / max(1, total_steps))
                self._train_pair(center, context, lr)
                step += 1
        return self

    def _build_pairs(self, sentences: list[list[int]]) -> np.ndarray:
        window = self.config.window
        centers: list[int] = []
        contexts: list[int] = []
        for sentence in sentences:
            length = len(sentence)
            for i, center in enumerate(sentence):
                lo = max(0, i - window)
                hi = min(length, i + window + 1)
                for j in range(lo, hi):
                    if j != i:
                        centers.append(center)
                        contexts.append(sentence[j])
        if not centers:
            raise TrainingError("skip-gram produced no training pairs")
        return np.stack([np.array(centers), np.array(contexts)], axis=1)

    def _train_pair(self, center: int, context: int, lr: float) -> None:
        assert self._input_vectors is not None
        assert self._output_vectors is not None
        assert self._noise_distribution is not None
        negatives = self._rng.choice(
            len(self.vocabulary), size=self.config.negatives, p=self._noise_distribution
        )
        v_in = self._input_vectors[center]
        targets = np.concatenate(([context], negatives))
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        v_out = self._output_vectors[targets]  # (k+1, dim)
        scores = v_out @ v_in
        preds = 1.0 / (1.0 + np.exp(-scores))
        errors = preds - labels  # (k+1,)
        grad_in = errors @ v_out
        self._output_vectors[targets] -= lr * np.outer(errors, v_in)
        self._input_vectors[center] -= lr * grad_in

    # -------------------------------------------------------------- inference
    def vector(self, token_id: int) -> np.ndarray:
        """The embedding of a vocabulary id."""
        return self.embeddings[token_id]

    def encode_sequence(self, token_ids: Sequence[int]) -> np.ndarray:
        """Stack embeddings for a token-id sequence into a ``(T, M)`` matrix."""
        if len(token_ids) == 0:
            return np.zeros((0, self.config.embedding_dim))
        return self.embeddings[np.asarray(token_ids, dtype=np.int64)]

    def most_similar(self, token: str, top_k: int = 5) -> list[tuple[str, float]]:
        """Nearest neighbours of a token by cosine similarity (diagnostics)."""
        if token not in self.vocabulary:
            return []
        idx = self.vocabulary.token_to_id[token]
        matrix = self.embeddings
        query = matrix[idx]
        norms = np.linalg.norm(matrix, axis=1) * (np.linalg.norm(query) + 1e-12) + 1e-12
        sims = matrix @ query / norms
        order = np.argsort(-sims)
        results = []
        for i in order:
            if int(i) == idx:
                continue
            results.append((self.vocabulary.id_to_token[int(i)], float(sims[int(i)])))
            if len(results) >= top_k:
                break
        return results
