"""Tokenisation and vocabulary handling for tweet content.

The paper lower-cases tweets, replaces every stop word with a ``</s>`` symbol,
and only keeps words that appear more than a frequency threshold when training
word embeddings.  :class:`Tokenizer` implements that normalisation and
:class:`Vocabulary` maps the surviving tokens to dense integer ids.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import VocabularyError

#: Sentinel token the paper substitutes for stop words.
STOPWORD_TOKEN = "</s>"

#: Token used for words never seen in training.
UNKNOWN_TOKEN = "<unk>"

#: A compact English stop-word list (subset of the ranks.nl list the paper cites).
DEFAULT_STOPWORDS = frozenset(
    """a about above after again all am an and any are as at be because been
    before being below between both but by could did do does doing down during
    each few for from further had has have having he her here hers him his how
    i if in into is it its just me more most my no nor not of off on once only
    or other our out over own same she so some such than that the their them
    then there these they this those through to too under until up very was we
    were what when where which while who whom why will with you your""".split()
)

_TOKEN_RE = re.compile(r"[a-z0-9_#@']+")


@dataclass
class Tokenizer:
    """Splits tweet text into normalised tokens.

    Parameters
    ----------
    stopwords:
        Words to replace with :data:`STOPWORD_TOKEN`.
    replace_stopwords:
        When False, stop words are dropped instead of replaced (useful for the
        n-gram baselines which do not want the sentinel flooding their models).
    """

    stopwords: frozenset[str] = DEFAULT_STOPWORDS
    replace_stopwords: bool = True

    def tokenize(self, text: str) -> list[str]:
        """Tokenise a raw tweet into lower-case tokens with stop-word handling."""
        tokens = _TOKEN_RE.findall(text.lower())
        result = []
        for token in tokens:
            if token in self.stopwords:
                if self.replace_stopwords:
                    result.append(STOPWORD_TOKEN)
            else:
                result.append(token)
        return result

    def __call__(self, text: str) -> list[str]:
        return self.tokenize(text)


@dataclass
class Vocabulary:
    """A token-to-id mapping built from a corpus with a minimum-count filter."""

    token_to_id: dict[str, int] = field(default_factory=dict)
    id_to_token: list[str] = field(default_factory=list)
    counts: Counter = field(default_factory=Counter)

    @classmethod
    def build(
        cls,
        token_sequences: Iterable[Sequence[str]],
        min_count: int = 1,
        max_size: int | None = None,
    ) -> "Vocabulary":
        """Build a vocabulary from token sequences.

        ``min_count`` mirrors the paper's "only consider words appearing more
        than 10 times" rule (scaled down by callers for small corpora).  The
        unknown and stop-word sentinels are always present.
        """
        counts: Counter = Counter()
        for tokens in token_sequences:
            counts.update(tokens)
        vocab = cls()
        vocab.counts = counts
        vocab._add(UNKNOWN_TOKEN)
        vocab._add(STOPWORD_TOKEN)
        eligible = [
            (token, count)
            for token, count in counts.most_common()
            if count >= min_count and token not in (UNKNOWN_TOKEN, STOPWORD_TOKEN)
        ]
        if max_size is not None:
            eligible = eligible[: max(0, max_size - 2)]
        for token, _ in eligible:
            vocab._add(token)
        return vocab

    def _add(self, token: str) -> int:
        if token in self.token_to_id:
            return self.token_to_id[token]
        idx = len(self.id_to_token)
        self.token_to_id[token] = idx
        self.id_to_token.append(token)
        return idx

    def __len__(self) -> int:
        return len(self.id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self.token_to_id

    @property
    def unknown_id(self) -> int:
        return self.token_to_id[UNKNOWN_TOKEN]

    def encode(self, tokens: Sequence[str]) -> list[int]:
        """Map tokens to ids, falling back to the unknown id."""
        if not self.id_to_token:
            raise VocabularyError("vocabulary is empty")
        unk = self.unknown_id
        return [self.token_to_id.get(token, unk) for token in tokens]

    def decode(self, ids: Sequence[int]) -> list[str]:
        """Map ids back to tokens."""
        return [self.id_to_token[i] for i in ids]
