"""Text substrate: tokenisation, vocabularies, n-grams, TF-IDF and word vectors."""

from repro.text.cbow import CBOWConfig, CBOWModel
from repro.text.ngrams import (
    TfidfConfig,
    TfidfVectorizer,
    cosine_similarity_matrix,
    document_similarity,
    extract_all_ngrams,
    extract_ngrams,
    ngram_counts,
)
from repro.text.skipgram import SkipGramConfig, SkipGramModel
from repro.text.tokenize import (
    DEFAULT_STOPWORDS,
    STOPWORD_TOKEN,
    UNKNOWN_TOKEN,
    Tokenizer,
    Vocabulary,
)

__all__ = [
    "Tokenizer",
    "Vocabulary",
    "SkipGramModel",
    "SkipGramConfig",
    "CBOWModel",
    "CBOWConfig",
    "TfidfVectorizer",
    "TfidfConfig",
    "extract_ngrams",
    "extract_all_ngrams",
    "ngram_counts",
    "cosine_similarity_matrix",
    "document_similarity",
    "DEFAULT_STOPWORDS",
    "STOPWORD_TOKEN",
    "UNKNOWN_TOKEN",
]
