"""Continuous-bag-of-words (CBOW) word vectors.

The paper uses skip-gram to pre-train word vectors; CBOW is the companion
architecture from the same word2vec family that predicts a centre word from
the average of its context vectors.  The reproduction ships it as an
alternative pre-training strategy for the content encoder ablations: both
models expose the same ``embeddings`` / ``vector`` / ``most_similar``
interface so they are drop-in replacements for each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import NotFittedError, TrainingError
from repro.text.tokenize import Vocabulary


@dataclass
class CBOWConfig:
    """Hyperparameters for CBOW training."""

    embedding_dim: int = 32
    window: int = 3
    negatives: int = 5
    epochs: int = 2
    learning_rate: float = 0.05
    min_learning_rate: float = 0.005
    seed: int = 29


class CBOWModel:
    """CBOW with negative sampling over integer-encoded sentences."""

    def __init__(self, vocabulary: Vocabulary, config: CBOWConfig | None = None):
        self.vocabulary = vocabulary
        self.config = config or CBOWConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._input_vectors: np.ndarray | None = None
        self._output_vectors: np.ndarray | None = None
        self._noise_distribution: np.ndarray | None = None

    # ------------------------------------------------------------------ setup
    def _initialise(self) -> None:
        vocab_size = len(self.vocabulary)
        if vocab_size == 0:
            raise TrainingError("cannot train CBOW on an empty vocabulary")
        dim = self.config.embedding_dim
        bound = 0.5 / dim
        self._input_vectors = self._rng.uniform(-bound, bound, size=(vocab_size, dim))
        self._output_vectors = np.zeros((vocab_size, dim))
        counts = np.array(
            [max(1, self.vocabulary.counts.get(token, 1)) for token in self.vocabulary.id_to_token],
            dtype=np.float64,
        )
        noise = counts**0.75
        self._noise_distribution = noise / noise.sum()

    @property
    def embedding_dim(self) -> int:
        return self.config.embedding_dim

    @property
    def embeddings(self) -> np.ndarray:
        """The trained input vectors, one row per vocabulary id."""
        if self._input_vectors is None:
            raise NotFittedError("CBOWModel has not been trained")
        return self._input_vectors

    # --------------------------------------------------------------- training
    def _build_examples(self, sentences: list[list[int]]) -> list[tuple[list[int], int]]:
        window = self.config.window
        examples: list[tuple[list[int], int]] = []
        for sentence in sentences:
            for position, center in enumerate(sentence):
                lo = max(0, position - window)
                hi = min(len(sentence), position + window + 1)
                context = [sentence[i] for i in range(lo, hi) if i != position]
                if context:
                    examples.append((context, center))
        return examples

    def train(self, sentences: Iterable[Sequence[int]]) -> "CBOWModel":
        """Train on integer-encoded sentences (lists of vocabulary ids)."""
        self._initialise()
        assert self._input_vectors is not None
        assert self._output_vectors is not None
        assert self._noise_distribution is not None

        usable = [list(s) for s in sentences if len(s) >= 2]
        if not usable:
            raise TrainingError("CBOW received no usable sentences")

        examples = self._build_examples(usable)
        total_steps = max(1, self.config.epochs * len(examples))
        lr_span = self.config.learning_rate - self.config.min_learning_rate
        step = 0
        for _ in range(self.config.epochs):
            self._rng.shuffle(examples)
            for context, center in examples:
                lr = self.config.learning_rate - lr_span * (step / total_steps)
                self._train_example(context, center, lr)
                step += 1
        return self

    def _train_example(self, context: list[int], center: int, lr: float) -> None:
        assert self._input_vectors is not None
        assert self._output_vectors is not None
        assert self._noise_distribution is not None
        context_array = np.asarray(context, dtype=np.intp)
        hidden = self._input_vectors[context_array].mean(axis=0)

        negatives = self._rng.choice(
            len(self._noise_distribution),
            size=self.config.negatives,
            p=self._noise_distribution,
        )
        targets = np.concatenate(([center], negatives))
        labels = np.zeros(len(targets))
        labels[0] = 1.0

        output_rows = self._output_vectors[targets]
        scores = output_rows @ hidden
        predictions = 1.0 / (1.0 + np.exp(-scores))
        errors = predictions - labels

        hidden_gradient = errors @ output_rows
        self._output_vectors[targets] -= lr * np.outer(errors, hidden)
        self._input_vectors[context_array] -= lr * hidden_gradient / len(context)

    # -------------------------------------------------------------- inference
    def vector(self, token_id: int) -> np.ndarray:
        """The vector of one vocabulary id."""
        return self.embeddings[token_id]

    def encode_sequence(self, token_ids: Sequence[int]) -> np.ndarray:
        """Stack the vectors of a token-id sequence into a ``(T, dim)`` array."""
        if not token_ids:
            return np.zeros((0, self.embedding_dim))
        return self.embeddings[np.asarray(token_ids, dtype=np.intp)]

    def most_similar(self, token: str, top_k: int = 5) -> list[tuple[str, float]]:
        """Nearest-neighbour tokens of ``token`` by cosine similarity."""
        if token not in self.vocabulary:
            raise NotFittedError(f"token {token!r} is not in the vocabulary")
        vectors = self.embeddings
        query = vectors[self.vocabulary.token_to_id[token]]
        norms = np.linalg.norm(vectors, axis=1) * (np.linalg.norm(query) + 1e-12)
        norms[norms == 0.0] = 1e-12
        similarities = vectors @ query / norms
        order = np.argsort(-similarities)
        results: list[tuple[str, float]] = []
        for index in order:
            candidate = self.vocabulary.id_to_token[index]
            if candidate == token:
                continue
            results.append((candidate, float(similarities[index])))
            if len(results) == top_k:
                break
        return results
