"""Geographic points and distance computations.

The paper measures spatial distances ``d(a, b)`` between visits, profiles and
POIs in metres.  We provide both the exact haversine distance and a fast
equirectangular approximation that is accurate at city scale (the paper's
datasets are single metropolitan areas), plus vectorised variants used by the
featurizer when scoring a visit against every POI at once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError

#: Mean Earth radius in metres (IUGG value), used by all distance helpers.
EARTH_RADIUS_M = 6_371_008.8


def _validate_latlon(lat: float, lon: float) -> None:
    if not (-90.0 <= lat <= 90.0):
        raise GeometryError(f"latitude {lat!r} outside [-90, 90]")
    if not (-180.0 <= lon <= 180.0):
        raise GeometryError(f"longitude {lon!r} outside [-180, 180]")


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A WGS84 latitude/longitude pair.

    Attributes
    ----------
    lat:
        Latitude in decimal degrees, in ``[-90, 90]``.
    lon:
        Longitude in decimal degrees, in ``[-180, 180]``.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        _validate_latlon(self.lat, self.lon)

    def distance_to(self, other: "GeoPoint") -> float:
        """Return the haversine distance to ``other`` in metres."""
        return haversine_m(self.lat, self.lon, other.lat, other.lon)

    def offset(self, north_m: float, east_m: float) -> "GeoPoint":
        """Return a new point displaced by the given metre offsets.

        Uses the local flat-earth approximation, which is what the synthetic
        city generator needs when laying out POIs a few kilometres apart.
        """
        dlat = math.degrees(north_m / EARTH_RADIUS_M)
        dlon = math.degrees(east_m / (EARTH_RADIUS_M * math.cos(math.radians(self.lat))))
        return GeoPoint(self.lat + dlat, self.lon + dlon)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(lat, lon)``."""
        return (self.lat, self.lon)


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Exact great-circle distance between two lat/lon points, in metres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def equirectangular_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Fast city-scale approximation of the distance in metres.

    Error is below 0.1% for separations under ~50 km, far tighter than the
    smoothing factors (``eps_d`` = 1000 m) used by the HisRect feature.
    """
    phi_m = math.radians((lat1 + lat2) / 2.0)
    x = math.radians(lon2 - lon1) * math.cos(phi_m)
    y = math.radians(lat2 - lat1)
    return EARTH_RADIUS_M * math.hypot(x, y)


def pairwise_distance_m(
    lats1: Sequence[float] | np.ndarray,
    lons1: Sequence[float] | np.ndarray,
    lats2: Sequence[float] | np.ndarray,
    lons2: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Vectorised equirectangular distances between two aligned coordinate arrays.

    Both coordinate pairs must have the same length; the result is a 1-D array
    of metres.
    """
    lats1 = np.asarray(lats1, dtype=np.float64)
    lons1 = np.asarray(lons1, dtype=np.float64)
    lats2 = np.asarray(lats2, dtype=np.float64)
    lons2 = np.asarray(lons2, dtype=np.float64)
    if lats1.shape != lons1.shape or lats2.shape != lons2.shape or lats1.shape != lats2.shape:
        raise GeometryError("coordinate arrays must share the same shape")
    phi_m = np.radians((lats1 + lats2) / 2.0)
    x = np.radians(lons2 - lons1) * np.cos(phi_m)
    y = np.radians(lats2 - lats1)
    return EARTH_RADIUS_M * np.hypot(x, y)


def point_to_many_m(lat: float, lon: float, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """Distances in metres from one point to many points (vectorised)."""
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    phi_m = np.radians((lats + lat) / 2.0)
    x = np.radians(lons - lon) * np.cos(phi_m)
    y = np.radians(lats - lat)
    return EARTH_RADIUS_M * np.hypot(x, y)


def many_to_many_m(
    lats1: Sequence[float] | np.ndarray,
    lons1: Sequence[float] | np.ndarray,
    lats2: Sequence[float] | np.ndarray,
    lons2: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Broadcast equirectangular distance matrix, in metres.

    Returns the ``(len(lats1), len(lats2))`` matrix whose ``[i, j]`` entry is
    the distance from ``(lats1[i], lons1[i])`` to ``(lats2[j], lons2[j])``.
    Row ``i`` agrees with ``point_to_many_m(lats1[i], lons1[i], lats2, lons2)``
    to within a few float64 ulps (≲ 1e-12 relative): the expensive
    ``cos((a + b) / 2)`` of the midpoint latitude is factored through the
    angle-sum identity into per-side sin/cos vectors, so the only O(N1 · N2)
    work is cheap arithmetic — no transcendentals on the broadcast matrix.
    """
    lats1 = np.asarray(lats1, dtype=np.float64)
    lons1 = np.asarray(lons1, dtype=np.float64)
    lats2 = np.asarray(lats2, dtype=np.float64)
    lons2 = np.asarray(lons2, dtype=np.float64)
    if lats1.ndim != 1 or lons1.ndim != 1 or lats2.ndim != 1 or lons2.ndim != 1:
        raise GeometryError("coordinate arrays must be one-dimensional")
    if lats1.shape != lons1.shape or lats2.shape != lons2.shape:
        raise GeometryError("latitude and longitude arrays must share the same shape")
    rlats1 = np.radians(lats1)
    rlats2 = np.radians(lats2)
    # cos((p1 + p2) / 2) == cos(p1/2)cos(p2/2) - sin(p1/2)sin(p2/2):
    # trig on the two 1-D halves instead of the full (N1, N2) matrix.  The
    # broadcast work below runs in-place on two (N1, N2) buffers — at this
    # size allocation (page faulting) costs as much as the arithmetic.
    half1, half2 = rlats1 / 2.0, rlats2 / 2.0
    out = np.multiply.outer(np.cos(half1), np.cos(half2))
    out -= np.multiply.outer(np.sin(half1), np.sin(half2))
    scratch = np.subtract(np.radians(lons2)[None, :], np.radians(lons1)[:, None])
    out *= scratch  # x = Δlon * cos(phi_m)
    out *= out  # x²
    np.subtract(rlats2[None, :], rlats1[:, None], out=scratch)
    scratch *= scratch  # y²
    out += scratch
    np.sqrt(out, out=out)
    out *= EARTH_RADIUS_M
    return out


def centroid(points: Iterable[GeoPoint]) -> GeoPoint:
    """Arithmetic centroid of a set of points (adequate at city scale)."""
    pts = list(points)
    if not pts:
        raise GeometryError("cannot compute the centroid of zero points")
    return GeoPoint(
        sum(p.lat for p in pts) / len(pts),
        sum(p.lon for p in pts) / len(pts),
    )
