"""Geospatial substrate: points, distances, polygons, POIs and spatial indexing."""

from repro.geo.geohash import (
    GeohashCell,
    adjacent,
    bucket_points,
    cell_dimensions_m,
    covering_cells,
    decode,
    encode,
    expand,
    grid_distance,
    neighbors,
    precision_for_radius,
    shared_prefix_length,
)
from repro.geo.grid import UniformGridIndex
from repro.geo.poi import POI, POIRegistry
from repro.geo.point import (
    EARTH_RADIUS_M,
    GeoPoint,
    centroid,
    equirectangular_m,
    haversine_m,
    many_to_many_m,
    pairwise_distance_m,
    point_to_many_m,
)
from repro.geo.polygon import BoundingPolygon
from repro.geo.quadtree import BoundingBox, IndexedPoint, QuadTree, bulk_load, radius_to_bbox
from repro.geo.trajectory import (
    StayPoint,
    TrajectorySummary,
    covisit_count,
    covisit_jaccard,
    detect_stay_points,
    mean_hop_m,
    radius_of_gyration_m,
    summarize,
    total_displacement_m,
    visit_entropy,
    visited_pois,
)

__all__ = [
    "EARTH_RADIUS_M",
    "GeoPoint",
    "BoundingPolygon",
    "POI",
    "POIRegistry",
    "UniformGridIndex",
    "haversine_m",
    "equirectangular_m",
    "many_to_many_m",
    "pairwise_distance_m",
    "point_to_many_m",
    "centroid",
    # Quadtree
    "QuadTree",
    "BoundingBox",
    "IndexedPoint",
    "bulk_load",
    "radius_to_bbox",
    # Geohash
    "GeohashCell",
    "encode",
    "decode",
    "adjacent",
    "neighbors",
    "expand",
    "precision_for_radius",
    "shared_prefix_length",
    "grid_distance",
    "bucket_points",
    "cell_dimensions_m",
    "covering_cells",
    # Trajectory analytics
    "StayPoint",
    "TrajectorySummary",
    "total_displacement_m",
    "radius_of_gyration_m",
    "visit_entropy",
    "mean_hop_m",
    "summarize",
    "detect_stay_points",
    "visited_pois",
    "covisit_jaccard",
    "covisit_count",
]
