"""POIs and the POI registry.

Definition 1 of the paper: a POI is ``(pid, bp, lat, lon)``.  The registry is
the ``P`` set of the paper — it answers the queries the featurizer, the
affinity-graph builder and the data generator need:

* ``distances_from(lat, lon)``: distance from a point to every POI (vectorised,
  used by Eq. 1 of the paper);
* ``nearest(lat, lon)``: the closest POI and its distance (``d(r, P)``);
* ``locate(lat, lon)``: the POI whose bounding polygon contains the point, if
  any (this is how geo-tagged tweets become *POI tweets*).

``locate`` is accelerated with a uniform grid index so that converting hundreds
of thousands of synthetic geo-tagged tweets into visits stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geo.grid import UniformGridIndex
from repro.geo.point import GeoPoint, many_to_many_m, point_to_many_m
from repro.geo.polygon import BoundingPolygon


@dataclass(frozen=True)
class POI:
    """A point of interest (paper Definition 1).

    Attributes
    ----------
    pid:
        Integer identifier, unique within a registry.
    name:
        Human-readable name (used by the tweet language model).
    polygon:
        Bounding polygon of the POI.
    center:
        Central point of the polygon.
    category:
        Free-form category label (e.g. ``"museum"``); the synthetic language
        model uses it to share vocabulary between POIs of the same kind.
    """

    pid: int
    name: str
    polygon: BoundingPolygon
    center: GeoPoint
    category: str = "generic"

    @classmethod
    def from_polygon(
        cls, pid: int, name: str, polygon: BoundingPolygon, category: str = "generic"
    ) -> "POI":
        """Create a POI whose center is the polygon centroid."""
        return cls(pid=pid, name=name, polygon=polygon, center=polygon.centroid(), category=category)

    def contains(self, lat: float, lon: float) -> bool:
        """True when the coordinate lies inside the POI's bounding polygon."""
        return self.polygon.contains(lat, lon)

    def distance_to(self, lat: float, lon: float) -> float:
        """Distance in metres from the POI center to the coordinate."""
        return self.center.distance_to(GeoPoint(lat, lon))


class POIRegistry:
    """The POI set ``P`` with vectorised distance queries and containment lookup."""

    def __init__(self, pois: Iterable[POI], grid_cell_m: float = 500.0):
        self._pois: list[POI] = list(pois)
        if not self._pois:
            raise GeometryError("a POIRegistry needs at least one POI")
        pids = [p.pid for p in self._pois]
        if len(set(pids)) != len(pids):
            raise GeometryError("POI identifiers must be unique")
        self._by_pid = {p.pid: p for p in self._pois}
        self._lats = np.array([p.center.lat for p in self._pois], dtype=np.float64)
        self._lons = np.array([p.center.lon for p in self._pois], dtype=np.float64)
        self._index_of_pid = {p.pid: i for i, p in enumerate(self._pois)}
        self._grid = UniformGridIndex(cell_m=grid_cell_m)
        for i, poi in enumerate(self._pois):
            self._grid.insert(i, poi.polygon.bounding_box())

    def __len__(self) -> int:
        return len(self._pois)

    def __iter__(self) -> Iterator[POI]:
        return iter(self._pois)

    def __contains__(self, pid: int) -> bool:
        return pid in self._by_pid

    @property
    def pois(self) -> Sequence[POI]:
        """The POIs in registry (index) order."""
        return tuple(self._pois)

    @property
    def center_lats(self) -> np.ndarray:
        """Latitudes of all POI centers, in registry order."""
        return self._lats

    @property
    def center_lons(self) -> np.ndarray:
        """Longitudes of all POI centers, in registry order."""
        return self._lons

    def get(self, pid: int) -> POI:
        """Return the POI with the given identifier."""
        try:
            return self._by_pid[pid]
        except KeyError as exc:
            raise GeometryError(f"unknown POI id {pid!r}") from exc

    def index_of(self, pid: int) -> int:
        """Return the dense registry index of a POI id (used as a class label)."""
        try:
            return self._index_of_pid[pid]
        except KeyError as exc:
            raise GeometryError(f"unknown POI id {pid!r}") from exc

    def pid_at(self, index: int) -> int:
        """Return the POI id stored at a dense registry index."""
        return self._pois[index].pid

    def distances_from(self, lat: float, lon: float) -> np.ndarray:
        """Distances in metres from ``(lat, lon)`` to every POI center (Eq. 1 input)."""
        return point_to_many_m(lat, lon, self._lats, self._lons)

    def distances_from_many(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """The ``(N, |P|)`` distance matrix from N points to every POI center.

        Row ``i`` agrees with ``distances_from(lats[i], lons[i])`` to within a
        few float64 ulps (see :func:`repro.geo.point.many_to_many_m`); this is
        the single broadcast computation behind the vectorised Eq. (1)
        featurization path.
        """
        return many_to_many_m(lats, lons, self._lats, self._lons)

    def nearest(self, lat: float, lon: float) -> tuple[POI, float]:
        """Return the nearest POI and its distance ``d(r, P)`` in metres."""
        distances = self.distances_from(lat, lon)
        idx = int(np.argmin(distances))
        return self._pois[idx], float(distances[idx])

    def min_distance(self, lat: float, lon: float) -> float:
        """The paper's ``d(r, P)`` — the smallest distance to any POI."""
        return float(np.min(self.distances_from(lat, lon)))

    def locate(self, lat: float, lon: float) -> POI | None:
        """Return the POI whose bounding polygon contains the point, if any.

        When several polygons overlap the first inserted match wins, which is
        deterministic given a fixed registry order.
        """
        for idx in self._grid.candidates(lat, lon):
            poi = self._pois[idx]
            if poi.contains(lat, lon):
                return poi
        return None

    def locate_batch(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Dense registry indices of the containing POI for many points at once.

        Returns an ``(N,)`` int array; ``-1`` marks points inside no POI.
        Each entry matches ``locate`` exactly (first inserted polygon wins):
        cell assignment is one vectorised computation, points are grouped per
        distinct grid cell, and each candidate polygon tests a whole group
        through the vectorised ray-casting of
        :meth:`repro.geo.polygon.BoundingPolygon.contains_batch`.
        """
        lats = np.asarray(lats, dtype=np.float64)
        lons = np.asarray(lons, dtype=np.float64)
        if lats.shape != lons.shape:
            raise GeometryError("latitude and longitude arrays must share the same shape")
        result = np.full(len(lats), -1, dtype=np.int64)
        if len(lats) == 0:
            return result
        cells = self._grid.cells_of_batch(lats, lons)
        # Regroup candidate pairs POI-major: one vectorised ray-cast per
        # candidate polygon over all its query points beats one call per grid
        # cell (many cells hold only a handful of points).  Candidates are
        # processed in ascending registry index, which is their grid insertion
        # order, so "first inserted polygon wins" is preserved.
        points_by_candidate: dict[int, list[int]] = {}
        cached_candidates: dict[tuple[int, int], Iterable[int]] = {}
        for point, cell in enumerate(map(tuple, cells.tolist())):
            candidates = cached_candidates.get(cell)
            if candidates is None:
                candidates = self._grid.candidates_in_cell(cell)
                cached_candidates[cell] = candidates
            for idx in candidates:
                points_by_candidate.setdefault(idx, []).append(point)
        for idx in sorted(points_by_candidate):
            points = np.array(points_by_candidate[idx], dtype=np.int64)
            points = points[result[points] == -1]
            if len(points) == 0:
                continue
            hit = self._pois[idx].polygon.contains_batch(lats[points], lons[points])
            result[points[hit]] = idx
        return result

    def top_k_nearest(self, lat: float, lon: float, k: int) -> list[tuple[POI, float]]:
        """The ``k`` closest POIs and their distances, nearest first."""
        distances = self.distances_from(lat, lon)
        k = min(k, len(self._pois))
        order = np.argsort(distances)[:k]
        return [(self._pois[int(i)], float(distances[int(i)])) for i in order]
