"""A uniform grid index over lat/lon bounding boxes.

Point-in-polygon lookups against every POI would be O(|P|) per geo-tagged
tweet.  The grid buckets POI bounding boxes into fixed-size cells (in metres,
converted to degrees at the latitude of the first inserted item) so that
``locate`` only tests the handful of POIs whose boxes overlap the query cell.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable

import numpy as np


class UniformGridIndex:
    """Buckets integer item ids by the grid cells their bounding boxes cover."""

    def __init__(self, cell_m: float = 500.0):
        if cell_m <= 0:
            raise ValueError("cell_m must be positive")
        self._cell_m = cell_m
        self._cells: dict[tuple[int, int], list[int]] = defaultdict(list)
        self._deg_lat: float | None = None
        self._deg_lon: float | None = None

    def _ensure_scale(self, lat: float) -> None:
        """Fix the degree size of a cell using the latitude of the first item."""
        if self._deg_lat is None:
            meters_per_deg_lat = 111_320.0
            meters_per_deg_lon = 111_320.0 * max(0.1, math.cos(math.radians(lat)))
            self._deg_lat = self._cell_m / meters_per_deg_lat
            self._deg_lon = self._cell_m / meters_per_deg_lon

    def _cell_of(self, lat: float, lon: float) -> tuple[int, int]:
        assert self._deg_lat is not None and self._deg_lon is not None
        return (int(math.floor(lat / self._deg_lat)), int(math.floor(lon / self._deg_lon)))

    def insert(self, item_id: int, bbox: tuple[float, float, float, float]) -> None:
        """Insert an item covering the ``(min_lat, min_lon, max_lat, max_lon)`` box."""
        min_lat, min_lon, max_lat, max_lon = bbox
        self._ensure_scale((min_lat + max_lat) / 2.0)
        r0, c0 = self._cell_of(min_lat, min_lon)
        r1, c1 = self._cell_of(max_lat, max_lon)
        for r in range(min(r0, r1), max(r0, r1) + 1):
            for c in range(min(c0, c1), max(c0, c1) + 1):
                self._cells[(r, c)].append(item_id)

    def candidates(self, lat: float, lon: float) -> Iterable[int]:
        """Item ids whose bounding boxes may contain the query point."""
        if self._deg_lat is None:
            return ()
        return self.candidates_in_cell(self._cell_of(lat, lon))

    def cells_of_batch(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Grid cells of many query points at once, shape ``(N, 2)``.

        One vectorised floor-divide replaces N scalar :meth:`_cell_of` calls;
        the batch ``locate`` path groups points by the returned cells so the
        bucket dictionary is consulted once per distinct cell.
        """
        lats = np.asarray(lats, dtype=np.float64)
        lons = np.asarray(lons, dtype=np.float64)
        if self._deg_lat is None or len(lats) == 0:
            return np.zeros((len(lats), 2), dtype=np.int64)
        cells = np.empty((len(lats), 2), dtype=np.int64)
        cells[:, 0] = np.floor(lats / self._deg_lat)
        cells[:, 1] = np.floor(lons / self._deg_lon)
        return cells

    def candidates_in_cell(self, cell: tuple[int, int]) -> Iterable[int]:
        """Item ids bucketed in one grid cell (for batch lookups)."""
        if self._deg_lat is None:
            return ()
        return tuple(self._cells.get(cell, ()))

    def __len__(self) -> int:
        return sum(len(v) for v in self._cells.values())
