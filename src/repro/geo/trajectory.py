"""Trajectory analytics over visit sequences.

A user's visit history (Definition 3 sequences extracted from geo-tagged
tweets) is a trajectory.  The paper's featurizer only consumes per-visit
distances to POIs, but validating the synthetic mobility substrate — and the
followship / community services built on top of the judge — needs standard
trajectory statistics: radius of gyration, total displacement, stay points,
visitation entropy and pairwise co-visit overlap.

All functions accept the :class:`repro.data.records.Visit` record (anything
with ``ts``, ``lat`` and ``lon`` attributes works).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geo.poi import POIRegistry
from repro.geo.point import haversine_m


@dataclass(frozen=True, slots=True)
class StayPoint:
    """A contiguous run of visits that stays within a small radius.

    ``lat``/``lon`` is the centroid of the member visits, ``arrival_ts`` /
    ``departure_ts`` the timestamps of the first and last member.
    """

    lat: float
    lon: float
    arrival_ts: float
    departure_ts: float
    num_visits: int

    @property
    def duration(self) -> float:
        """Seconds spent at the stay point."""
        return self.departure_ts - self.arrival_ts


@dataclass(frozen=True, slots=True)
class TrajectorySummary:
    """Aggregate statistics of one visit sequence."""

    num_visits: int
    total_displacement_m: float
    radius_of_gyration_m: float
    visit_entropy: float
    mean_hop_m: float
    duration_s: float


def _as_sorted(visits: Iterable) -> list:
    ordered = sorted(visits, key=lambda v: v.ts)
    return ordered


def total_displacement_m(visits: Sequence) -> float:
    """Sum of hop distances between consecutive visits (in timestamp order)."""
    ordered = _as_sorted(visits)
    if len(ordered) < 2:
        return 0.0
    return float(
        sum(
            haversine_m(a.lat, a.lon, b.lat, b.lon)
            for a, b in zip(ordered[:-1], ordered[1:])
        )
    )


def radius_of_gyration_m(visits: Sequence) -> float:
    """Root-mean-square distance of the visits from their centroid.

    The classic human-mobility statistic: small for home/work commuters,
    large for explorers.  Returns 0 for empty or single-visit histories.
    """
    if len(visits) < 2:
        return 0.0
    lats = np.array([v.lat for v in visits], dtype=float)
    lons = np.array([v.lon for v in visits], dtype=float)
    center_lat = float(lats.mean())
    center_lon = float(lons.mean())
    squared = [
        haversine_m(center_lat, center_lon, lat, lon) ** 2
        for lat, lon in zip(lats, lons)
    ]
    return float(math.sqrt(sum(squared) / len(squared)))


def visit_entropy(visits: Sequence, registry: POIRegistry) -> float:
    """Shannon entropy (nats) of the distribution of visited POIs.

    Visits that fall inside no registered POI are pooled into a single
    "elsewhere" pseudo-location, mirroring how the featurizer treats them as
    diffuse evidence rather than discarding them.
    """
    if not visits:
        return 0.0
    counts: dict[int, int] = {}
    for visit in visits:
        poi = registry.locate(visit.lat, visit.lon)
        key = poi.pid if poi is not None else -1
        counts[key] = counts.get(key, 0) + 1
    total = sum(counts.values())
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log(p)
    return entropy


def mean_hop_m(visits: Sequence) -> float:
    """Average hop distance between consecutive visits."""
    ordered = _as_sorted(visits)
    if len(ordered) < 2:
        return 0.0
    return total_displacement_m(ordered) / (len(ordered) - 1)


def duration_s(visits: Sequence) -> float:
    """Time span covered by the visit sequence."""
    if len(visits) < 2:
        return 0.0
    timestamps = [v.ts for v in visits]
    return float(max(timestamps) - min(timestamps))


def summarize(visits: Sequence, registry: POIRegistry | None = None) -> TrajectorySummary:
    """Build a :class:`TrajectorySummary` for one visit history."""
    entropy = visit_entropy(visits, registry) if registry is not None else 0.0
    return TrajectorySummary(
        num_visits=len(visits),
        total_displacement_m=total_displacement_m(visits),
        radius_of_gyration_m=radius_of_gyration_m(visits),
        visit_entropy=entropy,
        mean_hop_m=mean_hop_m(visits),
        duration_s=duration_s(visits),
    )


def detect_stay_points(
    visits: Sequence,
    distance_threshold_m: float = 200.0,
    time_threshold_s: float = 1200.0,
) -> list[StayPoint]:
    """Detect stay points: runs of visits within a radius lasting long enough.

    The classic Li/Zheng stay-point algorithm: grow a window of consecutive
    visits while every member stays within ``distance_threshold_m`` of the
    window anchor; emit a stay point when the window spans at least
    ``time_threshold_s`` seconds.
    """
    if distance_threshold_m <= 0:
        raise GeometryError("distance_threshold_m must be positive")
    if time_threshold_s < 0:
        raise GeometryError("time_threshold_s must be non-negative")
    ordered = _as_sorted(visits)
    stay_points: list[StayPoint] = []
    i = 0
    n = len(ordered)
    while i < n:
        j = i + 1
        while j < n:
            hop = haversine_m(ordered[i].lat, ordered[i].lon, ordered[j].lat, ordered[j].lon)
            if hop > distance_threshold_m:
                break
            j += 1
        window = ordered[i:j]
        if len(window) >= 2 and (window[-1].ts - window[0].ts) >= time_threshold_s:
            stay_points.append(
                StayPoint(
                    lat=float(np.mean([v.lat for v in window])),
                    lon=float(np.mean([v.lon for v in window])),
                    arrival_ts=window[0].ts,
                    departure_ts=window[-1].ts,
                    num_visits=len(window),
                )
            )
            i = j
        else:
            i += 1
    return stay_points


def visited_pois(visits: Sequence, registry: POIRegistry) -> list[int]:
    """POI ids visited, in timestamp order, skipping visits outside any POI."""
    pids: list[int] = []
    for visit in _as_sorted(visits):
        poi = registry.locate(visit.lat, visit.lon)
        if poi is not None:
            pids.append(poi.pid)
    return pids


def covisit_jaccard(first: Sequence, second: Sequence, registry: POIRegistry) -> float:
    """Jaccard overlap of the POI sets visited by two users.

    This is the pairwise signal the social-extension judge uses as a
    "frequent pattern shared by users" feature (the paper's future-work
    direction in Section 7).
    """
    set_a = set(visited_pois(first, registry))
    set_b = set(visited_pois(second, registry))
    if not set_a and not set_b:
        return 0.0
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def covisit_count(
    first: Sequence,
    second: Sequence,
    registry: POIRegistry,
    delta_t: float = 3600.0,
) -> int:
    """Number of visit pairs at the same POI within ``delta_t`` seconds.

    A direct, history-level analogue of the paper's co-location label: it
    counts how many times the two users' *historical* visits already put them
    in the same POI during the same time window.
    """
    events_a = [
        (registry.locate(v.lat, v.lon), v.ts) for v in first
    ]
    events_b = [
        (registry.locate(v.lat, v.lon), v.ts) for v in second
    ]
    count = 0
    for poi_a, ts_a in events_a:
        if poi_a is None:
            continue
        for poi_b, ts_b in events_b:
            if poi_b is None or poi_b.pid != poi_a.pid:
                continue
            if abs(ts_a - ts_b) < delta_t:
                count += 1
    return count
