"""Bounding polygons for POIs.

The paper defines a POI as ``(pid, bp, lat, lon)`` where ``bp`` is a bounding
polygon obtained from OpenStreetMap and ``(lat, lon)`` is its central point.
This module provides the polygon primitive: point-in-polygon containment
(ray casting), centroid and a convenience constructor for regular polygons that
the synthetic city generator uses in place of OSM building footprints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geo.point import GeoPoint


@dataclass(frozen=True)
class BoundingPolygon:
    """A simple (non self-intersecting) polygon in lat/lon space.

    Vertices are stored in order; the polygon is implicitly closed (the last
    vertex connects back to the first).
    """

    vertices: tuple[GeoPoint, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise GeometryError("a bounding polygon needs at least 3 vertices")

    @classmethod
    def from_latlon_pairs(cls, pairs: Sequence[tuple[float, float]]) -> "BoundingPolygon":
        """Build a polygon from ``(lat, lon)`` tuples."""
        return cls(tuple(GeoPoint(lat, lon) for lat, lon in pairs))

    @classmethod
    def regular(cls, center: GeoPoint, radius_m: float, sides: int = 8) -> "BoundingPolygon":
        """Build a regular polygon of the given metric radius around ``center``.

        The synthetic city generator uses these as stand-ins for OSM building
        footprints; ``radius_m`` controls the POI extent.
        """
        if sides < 3:
            raise GeometryError("a regular polygon needs at least 3 sides")
        if radius_m <= 0:
            raise GeometryError("radius_m must be positive")
        vertices = []
        for k in range(sides):
            theta = 2.0 * math.pi * k / sides
            vertices.append(center.offset(radius_m * math.cos(theta), radius_m * math.sin(theta)))
        return cls(tuple(vertices))

    def centroid(self) -> GeoPoint:
        """Arithmetic centroid of the vertices."""
        n = len(self.vertices)
        return GeoPoint(
            sum(v.lat for v in self.vertices) / n,
            sum(v.lon for v in self.vertices) / n,
        )

    def contains(self, lat: float, lon: float) -> bool:
        """Ray-casting point-in-polygon test.

        Points exactly on an edge are treated as inside, which matches the
        paper's usage (a geo-tag on a POI boundary still counts as a visit).
        """
        n = len(self.vertices)
        inside = False
        j = n - 1
        for i in range(n):
            yi, xi = self.vertices[i].lat, self.vertices[i].lon
            yj, xj = self.vertices[j].lat, self.vertices[j].lon
            if _on_segment(lat, lon, yi, xi, yj, xj):
                return True
            intersects = ((yi > lat) != (yj > lat)) and (
                lon < (xj - xi) * (lat - yi) / (yj - yi) + xi
            )
            if intersects:
                inside = not inside
            j = i
        return inside

    def contains_point(self, point: GeoPoint) -> bool:
        """Point-in-polygon test for a :class:`GeoPoint`."""
        return self.contains(point.lat, point.lon)

    def _edge_arrays(self) -> tuple[np.ndarray, ...]:
        """Per-edge vertex coordinates as ``(V,)`` arrays, lazily cached.

        ``(yi, xi)`` is each edge's first endpoint, ``(yj, xj)`` its second
        (the predecessor vertex, matching the scalar ray-cast's iteration).
        """
        cached = self.__dict__.get("_edges")
        if cached is None:
            yi = np.array([v.lat for v in self.vertices], dtype=np.float64)
            xi = np.array([v.lon for v in self.vertices], dtype=np.float64)
            yj = np.roll(yi, 1)
            xj = np.roll(xi, 1)
            cached = (yi, xi, yj, xj)
            # Frozen dataclass: stash through __dict__ (pure cache, not state).
            object.__setattr__(self, "_edges", cached)
        return cached

    def contains_batch(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Vectorised ray-casting over many query points at once.

        Returns a boolean array; entry ``i`` equals ``contains(lats[i],
        lons[i])`` exactly (the same arithmetic runs element-wise over an
        ``(edges, points)`` broadcast, including the on-edge tolerance), with
        none of the per-point Python overhead.
        """
        lats = np.asarray(lats, dtype=np.float64)[None, :]
        lons = np.asarray(lons, dtype=np.float64)[None, :]
        yi, xi, yj, xj = (a[:, None] for a in self._edge_arrays())
        cross = (lons - xi) * (yj - yi) - (lats - yi) * (xj - xi)
        on_edge = (
            (np.abs(cross) <= 1e-12)
            & (lons >= np.minimum(xi, xj) - 1e-12)
            & (lons <= np.maximum(xi, xj) + 1e-12)
            & (lats >= np.minimum(yi, yj) - 1e-12)
            & (lats <= np.maximum(yi, yj) + 1e-12)
        )
        straddles = (yi > lats) != (yj > lats)
        with np.errstate(divide="ignore", invalid="ignore"):
            # Where an edge does not straddle the ray, the division may hit
            # 0/0; `straddles` masks those lanes just like the scalar
            # short-circuit does.
            intersects = straddles & (lons < (xj - xi) * (lats - yi) / (yj - yi) + xi)
        # Ray-cast parity: odd number of crossed edges == inside.
        inside = np.bitwise_xor.reduce(intersects, axis=0)
        return inside | on_edge.any(axis=0)

    def bounding_box(self) -> tuple[float, float, float, float]:
        """Return ``(min_lat, min_lon, max_lat, max_lon)``."""
        lats = [v.lat for v in self.vertices]
        lons = [v.lon for v in self.vertices]
        return (min(lats), min(lons), max(lats), max(lons))


def _on_segment(lat: float, lon: float, y1: float, x1: float, y2: float, x2: float) -> bool:
    """Return True when (lat, lon) lies on the segment (y1,x1)-(y2,x2)."""
    cross = (lon - x1) * (y2 - y1) - (lat - y1) * (x2 - x1)
    if abs(cross) > 1e-12:
        return False
    within_x = min(x1, x2) - 1e-12 <= lon <= max(x1, x2) + 1e-12
    within_y = min(y1, y2) - 1e-12 <= lat <= max(y1, y2) + 1e-12
    return within_x and within_y
