"""Geohash encoding, decoding and neighbourhood expansion.

Geohashes give the reproduction a cheap, hierarchy-friendly spatial key: two
profiles whose recent tweets share a geohash prefix are close, and candidate
generation for the affinity graph, the sliding pair window and the social
co-visit miner can bucket by geohash instead of computing all-pairs distances.

The implementation follows the standard base-32 interleaved-bit scheme
(longitude first), so the output is interchangeable with other geohash
libraries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError

#: The canonical geohash base-32 alphabet (no a, i, l, o).
BASE32 = "0123456789bcdefghjkmnpqrstuvwxyz"

_BASE32_INDEX = {char: index for index, char in enumerate(BASE32)}

#: Approximate cell sizes (lat metres, lon metres at the equator) by precision.
CELL_SIZE_M = {
    1: (5_003_530.0, 5_003_530.0),
    2: (625_441.0, 1_250_882.0),
    3: (156_360.0, 156_360.0),
    4: (19_545.0, 39_090.0),
    5: (4_886.0, 4_886.0),
    6: (610.8, 1_221.6),
    7: (152.7, 152.7),
    8: (19.1, 38.2),
    9: (4.77, 4.77),
    10: (0.596, 1.19),
}


@dataclass(frozen=True, slots=True)
class GeohashCell:
    """A decoded geohash cell: centre point plus half-widths in degrees."""

    geohash: str
    lat: float
    lon: float
    lat_error: float
    lon_error: float

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """``(min_lat, min_lon, max_lat, max_lon)`` of the cell."""
        return (
            self.lat - self.lat_error,
            self.lon - self.lon_error,
            self.lat + self.lat_error,
            self.lon + self.lon_error,
        )


def _validate(lat: float, lon: float, precision: int) -> None:
    if not (-90.0 <= lat <= 90.0):
        raise GeometryError(f"latitude {lat} outside [-90, 90]")
    if not (-180.0 <= lon <= 180.0):
        raise GeometryError(f"longitude {lon} outside [-180, 180]")
    if not (1 <= precision <= 12):
        raise GeometryError(f"geohash precision must be in [1, 12], got {precision}")


def encode(lat: float, lon: float, precision: int = 8) -> str:
    """Encode a point to a geohash string of ``precision`` characters."""
    _validate(lat, lon, precision)
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    chars: list[str] = []
    bit = 0
    value = 0
    even_bit = True  # longitude bits on even positions
    while len(chars) < precision:
        if even_bit:
            mid = (lon_lo + lon_hi) / 2.0
            if lon >= mid:
                value = (value << 1) | 1
                lon_lo = mid
            else:
                value <<= 1
                lon_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2.0
            if lat >= mid:
                value = (value << 1) | 1
                lat_lo = mid
            else:
                value <<= 1
                lat_hi = mid
        even_bit = not even_bit
        bit += 1
        if bit == 5:
            chars.append(BASE32[value])
            bit = 0
            value = 0
    return "".join(chars)


def decode(geohash: str) -> GeohashCell:
    """Decode a geohash to its cell centre and half-widths."""
    if not geohash:
        raise GeometryError("cannot decode an empty geohash")
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    even_bit = True
    for char in geohash.lower():
        if char not in _BASE32_INDEX:
            raise GeometryError(f"invalid geohash character {char!r}")
        value = _BASE32_INDEX[char]
        for shift in range(4, -1, -1):
            bit = (value >> shift) & 1
            if even_bit:
                mid = (lon_lo + lon_hi) / 2.0
                if bit:
                    lon_lo = mid
                else:
                    lon_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2.0
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even_bit = not even_bit
    lat = (lat_lo + lat_hi) / 2.0
    lon = (lon_lo + lon_hi) / 2.0
    return GeohashCell(
        geohash=geohash.lower(),
        lat=lat,
        lon=lon,
        lat_error=(lat_hi - lat_lo) / 2.0,
        lon_error=(lon_hi - lon_lo) / 2.0,
    )


_NEIGHBOR_TABLE = {
    "n": ("p0r21436x8zb9dcf5h7kjnmqesgutwvy", "bc01fg45238967deuvhjyznpkmstqrwx"),
    "s": ("14365h7k9dcfesgujnmqp0r2twvyx8zb", "238967debc01fg45kmstqrwxuvhjyznp"),
    "e": ("bc01fg45238967deuvhjyznpkmstqrwx", "p0r21436x8zb9dcf5h7kjnmqesgutwvy"),
    "w": ("238967debc01fg45kmstqrwxuvhjyznp", "14365h7k9dcfesgujnmqp0r2twvyx8zb"),
}

_BORDER_TABLE = {
    "n": ("prxz", "bcfguvyz"),
    "s": ("028b", "0145hjnp"),
    "e": ("bcfguvyz", "prxz"),
    "w": ("0145hjnp", "028b"),
}


def adjacent(geohash: str, direction: str) -> str:
    """The geohash of the neighbouring cell in ``direction`` (n/s/e/w)."""
    if direction not in _NEIGHBOR_TABLE:
        raise GeometryError(f"direction must be one of n/s/e/w, got {direction!r}")
    if not geohash:
        raise GeometryError("cannot take the neighbour of an empty geohash")
    geohash = geohash.lower()
    last = geohash[-1]
    parent = geohash[:-1]
    parity = len(geohash) % 2  # 1 for odd length, 0 for even
    neighbor_row = _NEIGHBOR_TABLE[direction][parity]
    border_row = _BORDER_TABLE[direction][parity]
    if last in border_row and parent:
        parent = adjacent(parent, direction)
    return parent + BASE32[neighbor_row.index(last)]


def neighbors(geohash: str) -> dict[str, str]:
    """The eight neighbouring geohashes keyed by compass direction."""
    north = adjacent(geohash, "n")
    south = adjacent(geohash, "s")
    return {
        "n": north,
        "ne": adjacent(north, "e"),
        "e": adjacent(geohash, "e"),
        "se": adjacent(south, "e"),
        "s": south,
        "sw": adjacent(south, "w"),
        "w": adjacent(geohash, "w"),
        "nw": adjacent(north, "w"),
    }


def expand(geohash: str) -> list[str]:
    """The geohash plus its eight neighbours (a 3x3 search window)."""
    return [geohash.lower()] + sorted(neighbors(geohash).values())


def precision_for_radius(radius_m: float) -> int:
    """Smallest precision whose cell is still wider than ``radius_m``.

    Useful when bucketing points so that any two points within ``radius_m``
    of each other are guaranteed to fall in the same cell or in adjacent
    cells (and are therefore found by an :func:`expand` lookup).
    """
    if radius_m <= 0:
        raise GeometryError("radius must be positive")
    for precision in range(12, 0, -1):
        lat_m, lon_m = CELL_SIZE_M.get(precision, (0.019, 0.037))
        if min(lat_m, lon_m) >= radius_m:
            return precision
    return 1


def shared_prefix_length(first: str, second: str) -> int:
    """Number of leading characters two geohashes share."""
    count = 0
    for a, b in zip(first.lower(), second.lower()):
        if a != b:
            break
        count += 1
    return count


def grid_distance(first: str, second: str) -> float:
    """Great-circle distance in metres between two geohash cell centres."""
    from repro.geo.point import haversine_m

    cell_a = decode(first)
    cell_b = decode(second)
    return haversine_m(cell_a.lat, cell_a.lon, cell_b.lat, cell_b.lon)


def bucket_points(
    points: list[tuple[int, float, float]], precision: int = 7
) -> dict[str, list[int]]:
    """Group ``(item_id, lat, lon)`` triples by their geohash cell."""
    buckets: dict[str, list[int]] = {}
    for item_id, lat, lon in points:
        key = encode(lat, lon, precision)
        buckets.setdefault(key, []).append(item_id)
    return buckets


def cell_dimensions_m(precision: int) -> tuple[float, float]:
    """Approximate (height, width) in metres of a cell at ``precision``."""
    if precision in CELL_SIZE_M:
        return CELL_SIZE_M[precision]
    if precision < 1:
        raise GeometryError("precision must be at least 1")
    # Each extra character divides the cell by 32; alternate 4x8 / 8x4 splits.
    height, width = CELL_SIZE_M[10]
    for level in range(11, precision + 1):
        if level % 2 == 1:
            height /= 8.0
            width /= 4.0
        else:
            height /= 4.0
            width /= 8.0
    return (height, width)


def covering_cells(lat: float, lon: float, radius_m: float) -> list[str]:
    """Geohash cells forming a 3x3 window that covers a disc around a point."""
    precision = precision_for_radius(radius_m)
    # Guard against pathological radii larger than the coarsest cell.
    precision = max(1, min(precision, 12))
    center = encode(lat, lon, precision)
    return expand(center)


def haversine_cell_error_m(precision: int, lat: float = 0.0) -> float:
    """Worst-case distance between a point and its cell centre at ``precision``."""
    height, width = cell_dimensions_m(precision)
    width *= max(math.cos(math.radians(lat)), 1e-6)
    return math.hypot(height / 2.0, width / 2.0)
