"""A point quadtree over latitude/longitude space.

The reproduction mostly uses the :class:`repro.geo.grid.UniformGridIndex` to
accelerate point-in-POI lookups, but several higher-level pieces (the sliding
pair window, the social co-visit miner, the local-people recommendation
service) need *k*-nearest-neighbour and radius queries over arbitrary point
sets whose density varies wildly between a downtown POI cluster and the city
outskirts.  A quadtree adapts to that density where a uniform grid cannot.

Distances reported by queries are great-circle metres computed with
:func:`repro.geo.point.haversine_m`, while the tree itself splits on plain
lat/lon rectangles — the small distortion of treating degrees as planar for
*bucketing* never affects correctness because candidate pruning always uses a
conservative bounding-box test.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import GeometryError
from repro.geo.point import EARTH_RADIUS_M, haversine_m

#: Default maximum number of points per leaf before it splits.
DEFAULT_LEAF_CAPACITY = 16

#: Default maximum tree depth; beyond this, leaves simply grow.
DEFAULT_MAX_DEPTH = 24


@dataclass(frozen=True, slots=True)
class IndexedPoint:
    """A point stored in the quadtree, tagged with a caller-supplied id."""

    item_id: int
    lat: float
    lon: float


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned lat/lon rectangle ``[min_lat, max_lat] x [min_lon, max_lon]``."""

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        if self.min_lat > self.max_lat or self.min_lon > self.max_lon:
            raise GeometryError(
                f"degenerate bounding box: ({self.min_lat}, {self.min_lon}) .. "
                f"({self.max_lat}, {self.max_lon})"
            )

    def contains(self, lat: float, lon: float) -> bool:
        """True when the point lies inside the rectangle (inclusive)."""
        return self.min_lat <= lat <= self.max_lat and self.min_lon <= lon <= self.max_lon

    def intersects(self, other: "BoundingBox") -> bool:
        """True when the two rectangles overlap (inclusive)."""
        return not (
            other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
            or other.min_lon > self.max_lon
            or other.max_lon < self.min_lon
        )

    @property
    def center(self) -> tuple[float, float]:
        """The rectangle midpoint as ``(lat, lon)``."""
        return (
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )

    def min_distance_m(self, lat: float, lon: float) -> float:
        """Lower bound on the distance from ``(lat, lon)`` to any point in the box."""
        clamped_lat = min(max(lat, self.min_lat), self.max_lat)
        clamped_lon = min(max(lon, self.min_lon), self.max_lon)
        if clamped_lat == lat and clamped_lon == lon:
            return 0.0
        return haversine_m(lat, lon, clamped_lat, clamped_lon)

    def quadrants(self) -> tuple["BoundingBox", "BoundingBox", "BoundingBox", "BoundingBox"]:
        """Split into NW, NE, SW, SE child rectangles."""
        mid_lat, mid_lon = self.center
        return (
            BoundingBox(mid_lat, self.min_lon, self.max_lat, mid_lon),  # NW
            BoundingBox(mid_lat, mid_lon, self.max_lat, self.max_lon),  # NE
            BoundingBox(self.min_lat, self.min_lon, mid_lat, mid_lon),  # SW
            BoundingBox(self.min_lat, mid_lon, mid_lat, self.max_lon),  # SE
        )


def radius_to_bbox(lat: float, lon: float, radius_m: float) -> BoundingBox:
    """Bounding box that conservatively covers a great-circle disc.

    The latitude extent is exact; the longitude extent is widened by the
    cosine of the latitude so the box never under-covers the disc.
    """
    if radius_m < 0:
        raise GeometryError("radius must be non-negative")
    dlat = math.degrees(radius_m / EARTH_RADIUS_M)
    cos_lat = max(math.cos(math.radians(lat)), 1e-6)
    dlon = math.degrees(radius_m / (EARTH_RADIUS_M * cos_lat))
    return BoundingBox(
        min_lat=max(lat - dlat, -90.0),
        min_lon=max(lon - dlon, -180.0),
        max_lat=min(lat + dlat, 90.0),
        max_lon=min(lon + dlon, 180.0),
    )


class _Node:
    """Internal quadtree node: a leaf until it overflows, then four children."""

    __slots__ = ("bounds", "depth", "points", "children")

    def __init__(self, bounds: BoundingBox, depth: int):
        self.bounds = bounds
        self.depth = depth
        self.points: list[IndexedPoint] = []
        self.children: list["_Node"] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTree:
    """A point quadtree supporting radius and k-nearest-neighbour queries.

    Parameters
    ----------
    bounds:
        Rectangle covering every point that will ever be inserted.  Points
        outside it are rejected with :class:`~repro.errors.GeometryError`.
    leaf_capacity:
        Number of points a leaf holds before splitting.
    max_depth:
        Depth at which leaves stop splitting and simply accumulate points.
    """

    def __init__(
        self,
        bounds: BoundingBox,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ):
        if leaf_capacity < 1:
            raise GeometryError("leaf_capacity must be at least 1")
        if max_depth < 1:
            raise GeometryError("max_depth must be at least 1")
        self._root = _Node(bounds, depth=0)
        self._leaf_capacity = leaf_capacity
        self._max_depth = max_depth
        self._count = 0

    @classmethod
    def from_points(
        cls,
        points: Iterable[IndexedPoint],
        padding_deg: float = 1e-4,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> "QuadTree":
        """Build a tree whose bounds tightly cover ``points`` (plus padding)."""
        materialised = list(points)
        if not materialised:
            raise GeometryError("cannot build a quadtree from an empty point set")
        lats = [p.lat for p in materialised]
        lons = [p.lon for p in materialised]
        bounds = BoundingBox(
            min_lat=min(lats) - padding_deg,
            min_lon=min(lons) - padding_deg,
            max_lat=max(lats) + padding_deg,
            max_lon=max(lons) + padding_deg,
        )
        tree = cls(bounds, leaf_capacity=leaf_capacity, max_depth=max_depth)
        for point in materialised:
            tree.insert(point.item_id, point.lat, point.lon)
        return tree

    def __len__(self) -> int:
        return self._count

    @property
    def bounds(self) -> BoundingBox:
        """The rectangle covering every stored point."""
        return self._root.bounds

    def insert(self, item_id: int, lat: float, lon: float) -> None:
        """Insert a point; raises if it falls outside the tree bounds."""
        if not self._root.bounds.contains(lat, lon):
            raise GeometryError(
                f"point ({lat}, {lon}) lies outside the quadtree bounds {self._root.bounds}"
            )
        self._insert(self._root, IndexedPoint(item_id, lat, lon))
        self._count += 1

    def _insert(self, node: _Node, point: IndexedPoint) -> None:
        while True:
            if node.is_leaf:
                node.points.append(point)
                if len(node.points) > self._leaf_capacity and node.depth < self._max_depth:
                    self._split(node)
                return
            node = self._child_for(node, point.lat, point.lon)

    def _split(self, node: _Node) -> None:
        node.children = [_Node(box, node.depth + 1) for box in node.bounds.quadrants()]
        points, node.points = node.points, []
        for point in points:
            child = self._child_for(node, point.lat, point.lon)
            child.points.append(point)

    @staticmethod
    def _child_for(node: _Node, lat: float, lon: float) -> _Node:
        assert node.children is not None
        for child in node.children:
            if child.bounds.contains(lat, lon):
                return child
        # Numerical edge: the point sits exactly on a split line that rounding
        # placed outside all four children; fall back to the nearest child.
        return min(node.children, key=lambda c: c.bounds.min_distance_m(lat, lon))

    def __iter__(self) -> Iterator[IndexedPoint]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.points
            else:
                stack.extend(node.children or [])

    def query_bbox(self, box: BoundingBox) -> list[IndexedPoint]:
        """All points falling inside ``box`` (inclusive)."""
        found: list[IndexedPoint] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.bounds.intersects(box):
                continue
            if node.is_leaf:
                found.extend(p for p in node.points if box.contains(p.lat, p.lon))
            else:
                stack.extend(node.children or [])
        return found

    def query_radius(self, lat: float, lon: float, radius_m: float) -> list[tuple[IndexedPoint, float]]:
        """Points within ``radius_m`` metres of ``(lat, lon)``, with distances.

        Results are sorted by increasing distance.
        """
        box = radius_to_bbox(lat, lon, radius_m)
        matches: list[tuple[IndexedPoint, float]] = []
        for point in self.query_bbox(box):
            distance = haversine_m(lat, lon, point.lat, point.lon)
            if distance <= radius_m:
                matches.append((point, distance))
        matches.sort(key=lambda item: item[1])
        return matches

    def nearest(self, lat: float, lon: float, k: int = 1) -> list[tuple[IndexedPoint, float]]:
        """The ``k`` stored points nearest to ``(lat, lon)``, best-first.

        Uses best-first traversal ordered by the lower-bound distance to each
        node's bounding box, so large parts of the tree are pruned once ``k``
        candidates closer than the next box have been found.
        """
        if k < 1:
            raise GeometryError("k must be at least 1")
        if self._count == 0:
            return []
        # Heap of (lower bound distance, tie-breaker, node).
        counter = 0
        frontier: list[tuple[float, int, _Node]] = [(0.0, counter, self._root)]
        best: list[tuple[float, int, IndexedPoint]] = []  # max-heap via negated distance

        def worst_best() -> float:
            return -best[0][0] if len(best) == k else math.inf

        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > worst_best():
                break
            if node.is_leaf:
                for point in node.points:
                    distance = haversine_m(lat, lon, point.lat, point.lon)
                    if distance < worst_best():
                        counter += 1
                        heapq.heappush(best, (-distance, counter, point))
                        if len(best) > k:
                            heapq.heappop(best)
            else:
                for child in node.children or []:
                    counter += 1
                    heapq.heappush(
                        frontier,
                        (child.bounds.min_distance_m(lat, lon), counter, child),
                    )
        ordered = sorted(best, key=lambda item: -item[0])
        return [(point, -neg) for neg, _, point in ordered]

    def depth(self) -> int:
        """The maximum depth of any node currently in the tree."""
        deepest = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            deepest = max(deepest, node.depth)
            if not node.is_leaf:
                stack.extend(node.children or [])
        return deepest


def bulk_load(points: Sequence[IndexedPoint], leaf_capacity: int = DEFAULT_LEAF_CAPACITY) -> QuadTree:
    """Convenience wrapper building a tree sized to ``points``."""
    return QuadTree.from_points(points, leaf_capacity=leaf_capacity)
