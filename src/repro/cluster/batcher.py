""":class:`MicroBatcher` — coalesce concurrent serving requests into batches.

Every service today calls the engine synchronously with caller-sized batches:
a notification window scores 4 pairs, then another scores 6, and each call
pays the fixed featurize/score invocation overhead that the PR 2–3 batch
kernels amortise only across *one* call.  The micro-batcher turns concurrency
into batch size: requests enqueue, a single flusher thread drains the queue
every ``max_delay_ms`` (or as soon as ``max_batch`` work items accumulate)
and issues **one** featurize+score call for everything in the flush — so a
skewed user mix is deduplicated across requests by the engine's
within-call dedup, and every profile featurizes in a large batch.

Backpressure is explicit: the queue is bounded at ``max_queue`` requests and
an overflowing submit either raises :class:`repro.errors.EngineOverloadError`
(``overflow="reject"``, the default — shed load at the edge) or blocks until
the flusher catches up (``overflow="block"`` — smooth producers that can
wait).

Results come back as :class:`concurrent.futures.Future`; the ``score`` /
``probability_matrix`` / ``warm`` convenience wrappers submit and wait.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.metrics import ClusterMetrics
from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError, EngineOverloadError


@dataclass
class _Pending:
    """One enqueued request awaiting the next flush."""

    kind: str  # "score" | "matrix" | "warm"
    payload: list
    weight: int  # pairs (score) or profiles (matrix/warm) — the batch budget
    future: Future = field(default_factory=Future)
    enqueued: float = field(default_factory=time.perf_counter)


class MicroBatcher:
    """Async request coalescer over a (sharded or single) engine.

    Parameters
    ----------
    engine:
        A :class:`repro.cluster.ShardedEngine` or
        :class:`repro.api.ColocationEngine` — anything exposing
        ``predict_proba`` / ``probability_matrix`` / ``warm``.
    max_batch:
        Flush as soon as this many work items (pairs + profiles) are queued.
    max_delay_ms:
        Flush no later than this after the oldest queued request arrived.
        ``0`` flushes as fast as the flusher can loop — requests still
        coalesce while a previous flush is in flight.
    max_queue:
        Bound on queued *requests*; submits beyond it trigger ``overflow``.
    overflow:
        ``"reject"`` raises :class:`EngineOverloadError` immediately;
        ``"block"`` waits for queue space.
    metrics:
        Optional externally owned :class:`ClusterMetrics`; by default the
        batcher creates one (exposed as :attr:`metrics`).
    """

    def __init__(
        self,
        engine,
        *,
        max_batch: int = 256,
        max_delay_ms: float = 2.0,
        max_queue: int = 1024,
        overflow: str = "reject",
        metrics: ClusterMetrics | None = None,
    ):
        if not hasattr(engine, "predict_proba"):
            raise ConfigurationError("engine must expose predict_proba(pairs)")
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ConfigurationError("max_delay_ms must be >= 0")
        if max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if overflow not in ("reject", "block"):
            raise ConfigurationError('overflow must be "reject" or "block"')
        self.engine = engine
        self.max_batch = max_batch
        self.max_delay = max_delay_ms / 1e3
        self.max_queue = max_queue
        self.overflow = overflow
        self.metrics = metrics if metrics is not None else ClusterMetrics(engine)
        self._queue: deque[_Pending] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._flusher = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._flusher.start()

    # ------------------------------------------------------------- submission
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a flush."""
        with self._cond:
            return len(self._queue)

    def _submit(self, kind: str, payload: list, weight: int) -> Future:
        pending = _Pending(kind=kind, payload=payload, weight=weight)
        if weight == 0:
            pending.future.set_result(_EMPTY_RESULTS[kind]())
            return pending.future
        with self._cond:
            if self._closed:
                raise ConfigurationError("the MicroBatcher is closed")
            while len(self._queue) >= self.max_queue:
                if self.overflow == "reject":
                    self.metrics.observe_rejection()
                    raise EngineOverloadError(
                        f"micro-batch queue is full ({self.max_queue} requests)"
                    )
                self._cond.wait()
                if self._closed:
                    raise ConfigurationError("the MicroBatcher is closed")
            self._queue.append(pending)
            self._cond.notify_all()
        return pending.future

    def submit_score(self, pairs: list[Pair]) -> Future:
        """Queue pairs for scoring; resolves to the probability array."""
        pairs = list(pairs)
        return self._submit("score", pairs, len(pairs))

    def submit_probability_matrix(self, profiles: list[Profile]) -> Future:
        """Queue a pairwise-matrix request; resolves to the ``N x N`` matrix."""
        profiles = list(profiles)
        return self._submit("matrix", profiles, len(profiles))

    def submit_warm(self, profiles: list[Profile]) -> Future:
        """Queue a cache pre-warm; resolves to rows this request featurized
        (overlap already warmed earlier in the flush counts toward the
        earlier request, mirroring ``ColocationEngine.warm``'s per-call
        accounting)."""
        profiles = list(profiles)
        return self._submit("warm", profiles, len(profiles))

    def score(self, pairs: list[Pair]) -> np.ndarray:
        """Submit and wait: co-location probability per pair."""
        return self.submit_score(pairs).result()

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """Submit and wait: the pairwise probability matrix."""
        return self.submit_probability_matrix(profiles).result()

    def warm(self, profiles: list[Profile]) -> int:
        """Submit and wait: pre-featurize profiles into the engine cache."""
        return self.submit_warm(profiles).result()

    # -------------------------------------------------------------- lifecycle
    def close(self, drain: bool = True) -> None:
        """Stop the flusher.  ``drain=True`` serves queued requests first;
        ``drain=False`` fails them with :class:`EngineOverloadError`."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not drain:
                while self._queue:
                    pending = self._queue.popleft()
                    pending.future.set_exception(
                        EngineOverloadError("the MicroBatcher was closed")
                    )
            self._cond.notify_all()
        self._flusher.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ---------------------------------------------------------------- flusher
    def _run(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._flush(batch)

    def _next_batch(self) -> list[_Pending] | None:
        """Block until a flush is due; drain up to ``max_batch`` work items."""
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if not self._queue:
                return None  # closed and drained
            deadline = self._queue[0].enqueued + self.max_delay
            while (
                not self._closed
                and sum(p.weight for p in self._queue) < self.max_batch
            ):
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
                if not self._queue:  # drained by a non-drain close
                    return None if self._closed else []
            batch: list[_Pending] = []
            weight = 0
            while self._queue and (not batch or weight < self.max_batch):
                batch.append(self._queue.popleft())
                weight += batch[-1].weight
            self._cond.notify_all()  # wake blocked submitters
            return batch

    def _flush(self, batch: list[_Pending]) -> None:
        if not batch:
            return
        depth = self.queue_depth
        started = time.perf_counter()
        try:
            score_requests = [p for p in batch if p.kind == "score"]
            if score_requests:
                all_pairs: list[Pair] = []
                for pending in score_requests:
                    all_pairs.extend(pending.payload)
                probabilities = self.engine.predict_proba(all_pairs)
                offset = 0
                for pending in score_requests:
                    stop = offset + pending.weight
                    pending.future.set_result(probabilities[offset:stop])
                    offset = stop

            # Warm/matrix requests run per request, in flush order: each call
            # is still one batched featurize, the engine's cache deduplicates
            # overlap between them, and every warm future reports the rows
            # *its own* call featurized — not the whole flush's total.
            for pending in batch:
                if pending.kind == "matrix":
                    pending.future.set_result(self.engine.probability_matrix(pending.payload))
                elif pending.kind == "warm":
                    featurized = (
                        self.engine.warm(pending.payload)
                        if hasattr(self.engine, "warm")
                        else 0
                    )
                    pending.future.set_result(featurized)
        except BaseException as exc:  # noqa: BLE001 - forwarded to every caller
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
        finally:
            finished = time.perf_counter()
            self.metrics.observe_flush(
                num_requests=len(batch),
                num_pairs=sum(p.weight for p in batch if p.kind == "score"),
                queue_depth=depth,
                elapsed_ms=(finished - started) * 1e3,
            )
            for pending in batch:
                self.metrics.observe_latency((finished - pending.enqueued) * 1e3)


#: Immediate results for zero-weight submissions, per request kind.
_EMPTY_RESULTS = {
    "score": lambda: np.zeros(0),
    "matrix": lambda: np.zeros((0, 0)),
    "warm": lambda: 0,
}
