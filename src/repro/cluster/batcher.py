""":class:`MicroBatcher` — coalesce concurrent serving requests into batches.

Every service today calls the engine synchronously with caller-sized batches:
a notification window scores 4 pairs, then another scores 6, and each call
pays the fixed featurize/score invocation overhead that the PR 2–3 batch
kernels amortise only across *one* call.  The micro-batcher turns concurrency
into batch size: requests enqueue, a single flusher thread drains the queue
every ``max_delay_ms`` (or as soon as ``max_batch`` work items accumulate)
and issues **one** featurize+score call for everything in the flush — so a
skewed user mix is deduplicated across requests by the engine's
within-call dedup, and every profile featurizes in a large batch.

Backpressure is explicit: the queue is bounded at ``max_queue`` requests and
an overflowing submit either raises :class:`repro.errors.EngineOverloadError`
(``overflow="reject"``, the default — shed load at the edge) or blocks until
the flusher catches up (``overflow="block"`` — smooth producers that can
wait).

Typed :class:`repro.api.JudgeRequest` serving goes through the batcher too:
``submit_serve`` requests — including per-request thresholds — coalesce into
the same flushes and resolve through the engine's ``serve_batch`` (one
scorer call for the whole flush, decisions and cache accounting still per
request), so the serving tier's front door goes *through* the batcher
instead of around it.  The batcher itself speaks the engine surface
(``predict_proba`` / ``probability_matrix`` / ``warm`` / ``serve`` plus the
``registry`` / ``judge`` / ``threshold`` / ``cache_info`` pass-throughs), so
every :mod:`repro.service` application can be fronted by one.  Cache
invalidations (``submit_invalidate`` / ``invalidate_stale``) queue like any
other request but are processed *first* in their flush, so a profile
mutation always lands before the requests flushed alongside it gather rows.

Results come back as :class:`concurrent.futures.Future`; the ``score`` /
``probability_matrix`` / ``warm`` / ``serve`` convenience wrappers submit
and wait.

The flusher thread is deliberately hard to kill: metrics hooks are guarded
(a user-supplied ``metrics`` object raising in ``observe_flush`` /
``observe_latency`` cannot take it down), an exception escaping a flush
fails that flush's futures and keeps the loop alive, and if the thread dies
anyway (a ``BaseException``), every queued future fails with
:class:`EngineOverloadError` and subsequent submits raise instead of
waiting forever on a flush that will never come.
"""

from __future__ import annotations

import dataclasses
import inspect
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.api.messages import JudgeRequest, JudgeResponse
from repro.cluster.metrics import ClusterMetrics
from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError, EngineOverloadError
from repro.obs import STAGE_QUEUE_WAIT, get_tracer


@dataclass
class _Pending:
    """One enqueued request awaiting the next flush."""

    kind: str  # "score" | "matrix" | "warm" | "serve" | "invalidate"
    payload: object  # pairs/profiles list, the JudgeRequest (serve), or
    # ("uids", [uid, ...]) / ("stale", None) for invalidations
    weight: int  # pairs (score/serve) or profiles (matrix/warm) — the batch budget
    enqueued: float  # batcher clock reading at submission
    future: Future = field(default_factory=Future)


class MicroBatcher:
    """Async request coalescer over a (sharded or single) engine.

    Parameters
    ----------
    engine:
        A :class:`repro.cluster.ShardedEngine` or
        :class:`repro.api.ColocationEngine` — anything exposing
        ``predict_proba`` / ``probability_matrix`` / ``warm``.
    max_batch:
        Flush as soon as this many work items (pairs + profiles) are queued.
    max_delay_ms:
        Flush no later than this after the oldest queued request arrived.
        ``0`` flushes as fast as the flusher can loop — requests still
        coalesce while a previous flush is in flight.
    max_queue:
        Bound on queued *requests*; submits beyond it trigger ``overflow``.
    overflow:
        ``"reject"`` raises :class:`EngineOverloadError` immediately;
        ``"block"`` waits for queue space.
    metrics:
        Optional externally owned :class:`ClusterMetrics`; by default the
        batcher creates one (exposed as :attr:`metrics`).
    time_fn:
        The monotonic clock used for queue deadlines and latency accounting
        (``time.perf_counter`` by default).  Injectable so timing tests
        assert exact values against a fake clock instead of sleeping.
    """

    def __init__(
        self,
        engine,
        *,
        max_batch: int = 256,
        max_delay_ms: float = 2.0,
        max_queue: int = 1024,
        overflow: str = "reject",
        metrics: ClusterMetrics | None = None,
        time_fn: Callable[[], float] | None = None,
    ):
        if not hasattr(engine, "predict_proba"):
            raise ConfigurationError("engine must expose predict_proba(pairs)")
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ConfigurationError("max_delay_ms must be >= 0")
        if max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if overflow not in ("reject", "block"):
            raise ConfigurationError('overflow must be "reject" or "block"')
        self.engine = engine
        self.max_batch = max_batch
        self.max_delay = max_delay_ms / 1e3
        self.max_queue = max_queue
        self.overflow = overflow
        self._time = time_fn if time_fn is not None else time.perf_counter
        self.metrics = metrics if metrics is not None else ClusterMetrics(engine)
        self._cond = threading.Condition()
        self._queue: deque[_Pending] = deque()  # guarded-by: _cond
        self._closed = False  # guarded-by: _cond
        #: The BaseException that killed the flusher, if any.  Once set,
        #: every queued future has been failed and every subsequent submit
        #: raises instead of waiting on a dead thread.
        self._death: BaseException | None = None  # guarded-by: _cond
        self._metrics_errors = 0  # guarded-by: _cond
        self._metrics_takes_serves: bool | None = None
        self._flusher = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._flusher.start()

    # ------------------------------------------------------------- submission
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a flush."""
        with self._cond:
            return len(self._queue)

    @property
    def metrics_errors(self) -> int:
        """Exceptions swallowed from the metrics hooks (a broken user-supplied
        ``metrics`` object degrades telemetry, never the serving path)."""
        with self._cond:
            return self._metrics_errors

    def _observe(self, hook: str, *args, **kwargs) -> None:
        """Call a metrics hook without letting it break serving.

        The metrics object may be user-supplied; an exception escaping a
        hook inside the flusher used to kill the ``repro-microbatcher``
        thread silently, hanging every queued and future submission.
        """
        try:
            getattr(self.metrics, hook)(*args, **kwargs)
        except Exception:
            with self._cond:  # reentrant: safe from the reject path too
                self._metrics_errors += 1

    def _flush_accepts_num_serves(self) -> bool:
        """Whether the metrics object's ``observe_flush`` takes ``num_serves``.

        User-supplied metrics written against the pre-serve signature keep
        receiving the call they understand instead of a swallowed TypeError
        that would silently drop all their flush telemetry.
        """
        if self._metrics_takes_serves is None:
            try:
                parameters = inspect.signature(self.metrics.observe_flush).parameters
                self._metrics_takes_serves = "num_serves" in parameters or any(
                    parameter.kind is inspect.Parameter.VAR_KEYWORD
                    for parameter in parameters.values()
                )
            except Exception:  # unsignaturable/odd callables: just try it
                self._metrics_takes_serves = True
        return self._metrics_takes_serves

    def _raise_if_unavailable(self) -> None:  # holds: _cond
        """Caller must hold ``_cond``."""
        if self._death is not None:
            raise EngineOverloadError(
                "the MicroBatcher flusher died; no further flushes will run"
            ) from self._death
        if self._closed:
            raise ConfigurationError("the MicroBatcher is closed")

    def _submit(self, kind: str, payload, weight: int) -> Future:
        pending = _Pending(kind=kind, payload=payload, weight=weight, enqueued=self._time())
        if weight == 0:
            # Nothing to flush: resolve immediately, even mid-close — an
            # empty answer needs no flusher.
            pending.future.set_result(_EMPTY_RESULTS[kind]())
            return pending.future
        with self._cond:
            self._raise_if_unavailable()
            while len(self._queue) >= self.max_queue:
                if self.overflow == "reject":
                    self._observe("observe_rejection")
                    raise EngineOverloadError(
                        f"micro-batch queue is full ({self.max_queue} requests)"
                    )
                self._cond.wait()
                self._raise_if_unavailable()
            self._queue.append(pending)
            self._cond.notify_all()
        return pending.future

    def submit_score(self, pairs: list[Pair]) -> Future:
        """Queue pairs for scoring; resolves to the probability array."""
        pairs = list(pairs)
        return self._submit("score", pairs, len(pairs))

    def submit_probability_matrix(self, profiles: list[Profile]) -> Future:
        """Queue a pairwise-matrix request; resolves to the ``N x N`` matrix."""
        profiles = list(profiles)
        return self._submit("matrix", profiles, len(profiles))

    def submit_warm(self, profiles: list[Profile]) -> Future:
        """Queue a cache pre-warm; resolves to rows this request featurized
        (overlap already warmed earlier in the flush counts toward the
        earlier request, mirroring ``ColocationEngine.warm``'s per-call
        accounting)."""
        profiles = list(profiles)
        return self._submit("warm", profiles, len(profiles))

    def submit_serve(self, request: JudgeRequest) -> Future:
        """Queue one typed :class:`JudgeRequest`; resolves to its
        :class:`JudgeResponse`.

        Serve requests coalesce into flushes like every other kind — all the
        flush's pairs score in one ``serve_batch`` call on the engine —
        while thresholds, decisions and cache accounting stay per request.
        """
        if not hasattr(self.engine, "serve"):
            raise ConfigurationError(
                "the engine does not expose serve(request); "
                "wrap the judge in a ColocationEngine or ShardedEngine"
            )
        if request.threshold is not None and not 0.0 <= request.threshold <= 1.0:
            raise ConfigurationError("request threshold must lie in [0, 1]")
        if not request.pairs:
            # Nothing to flush; answer synchronously (the engine resolves the
            # effective threshold for the empty response).
            future: Future = Future()
            future.set_result(self.engine.serve(request))
            return future
        return self._submit("serve", request, len(request.pairs))

    def submit_invalidate(self, uids: list[int]) -> Future:
        """Queue a cache invalidation for the given users; resolves to rows
        dropped.

        Invalidations are processed **first** in their flush, before any
        score/serve gather in the same batch touches the cache — a mutation
        observed before a flush cannot lose the race against requests queued
        alongside it, and a request whose profile revision was superseded
        re-gathers fresh rows instead of reading dropped ones.
        """
        if not hasattr(self.engine, "invalidate"):
            raise ConfigurationError(
                "the engine does not expose invalidate(uids); "
                "wrap the judge in a ColocationEngine, ShardedEngine or WorkerPool"
            )
        uids = [int(uid) for uid in uids]
        return self._submit("invalidate", ("uids", uids), len(uids))

    def submit_invalidate_stale(self) -> Future:
        """Queue a superseded-revision sweep; resolves to rows dropped."""
        if not hasattr(self.engine, "invalidate_stale"):
            raise ConfigurationError(
                "the engine does not expose invalidate_stale(); "
                "wrap the judge in a ColocationEngine, ShardedEngine or WorkerPool"
            )
        return self._submit("invalidate", ("stale", None), 1)

    def score(self, pairs: list[Pair]) -> np.ndarray:
        """Submit and wait: co-location probability per pair."""
        return self.submit_score(pairs).result()

    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Engine-surface alias of :meth:`score`, so services can be fronted
        by a batcher wherever they take an engine."""
        return self.score(pairs)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """Submit and wait: the pairwise probability matrix."""
        return self.submit_probability_matrix(profiles).result()

    def warm(self, profiles: list[Profile]) -> int:
        """Submit and wait: pre-featurize profiles into the engine cache."""
        return self.submit_warm(profiles).result()

    def serve(self, request: JudgeRequest) -> JudgeResponse:
        """Submit and wait: answer one typed judgement request."""
        return self.submit_serve(request).result()

    def invalidate(self, uids: list[int]) -> int:
        """Submit and wait: drop cached rows of the given users."""
        return self.submit_invalidate(uids).result()

    def invalidate_stale(self) -> int:
        """Submit and wait: sweep superseded-revision rows from the cache."""
        return self.submit_invalidate_stale().result()

    # ----------------------------------------------------- engine pass-throughs
    @property
    def judge(self):
        """The raw judge behind the engine (engine-surface pass-through)."""
        return getattr(self.engine, "judge", self.engine)

    @property
    def registry(self):
        """The POI registry behind the engine (engine-surface pass-through)."""
        return self.engine.registry

    @property
    def threshold(self) -> float:
        """The engine's decision threshold (engine-surface pass-through)."""
        return self.engine.threshold

    def cache_info(self):
        """The engine's feature-cache statistics (engine-surface pass-through)."""
        return self.engine.cache_info()

    # -------------------------------------------------------------- lifecycle
    def close(self, drain: bool = True) -> None:
        """Stop the flusher.  ``drain=True`` serves queued requests first;
        ``drain=False`` fails them with :class:`EngineOverloadError`."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not drain:
                while self._queue:
                    pending = self._queue.popleft()
                    pending.future.set_exception(
                        EngineOverloadError("the MicroBatcher was closed")
                    )
            self._cond.notify_all()
        self._flusher.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ---------------------------------------------------------------- flusher
    def _run(self) -> None:
        try:
            while True:
                batch = self._next_batch()
                if batch is None:
                    return
                try:
                    self._flush(batch)
                except Exception as exc:
                    # _flush forwards engine errors to its futures itself;
                    # anything still escaping fails this batch loudly and
                    # keeps the flusher alive for the next one.
                    for pending in batch:
                        if not pending.future.done():
                            pending.future.set_exception(exc)
        except BaseException as exc:
            # The flusher is dying (KeyboardInterrupt, MemoryError, ...):
            # leaving the queue silently unserved would hang every waiter.
            self._die(exc)
            raise

    def _die(self, cause: BaseException) -> None:
        """Fail every queued future and refuse new submissions."""
        with self._cond:
            self._death = cause
            self._closed = True
            while self._queue:
                pending = self._queue.popleft()
                error = EngineOverloadError(
                    f"the MicroBatcher flusher died: {cause!r}"
                )
                error.__cause__ = cause
                pending.future.set_exception(error)
            self._cond.notify_all()  # wake blocked submitters so they raise

    def _next_batch(self) -> list[_Pending] | None:
        """Block until a flush is due; drain up to ``max_batch`` work items."""
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if not self._queue:
                return None  # closed and drained
            deadline = self._queue[0].enqueued + self.max_delay
            while (
                not self._closed
                and sum(p.weight for p in self._queue) < self.max_batch
            ):
                remaining = deadline - self._time()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
                if not self._queue:  # drained by a non-drain close
                    return None if self._closed else []
            batch: list[_Pending] = []
            weight = 0
            while self._queue and (not batch or weight < self.max_batch):
                batch.append(self._queue.popleft())
                weight += batch[-1].weight
            self._cond.notify_all()  # wake blocked submitters
            return batch

    def _flush(self, batch: list[_Pending]) -> None:
        if not batch:
            return
        depth = self.queue_depth
        started = self._time()
        tracer = get_tracer()
        if tracer.enabled:
            # The time between submission and this flush picking the request
            # up is the queue_wait stage — already over by the time any trace
            # exists, so it is recorded from the pending's enqueue stamp.
            for pending in batch:
                tracer.record_stage(
                    STAGE_QUEUE_WAIT, (started - pending.enqueued) * 1e3
                )
        try:
            # Invalidations first: a flush is the batcher's unit of ordering,
            # and a mutation queued before (or alongside) a request must win —
            # the request's gather then repopulates fresh rows instead of the
            # flush re-reading rows the caller already declared dead.
            for pending in batch:
                if pending.kind != "invalidate":
                    continue
                mode, target = pending.payload
                if mode == "stale":
                    dropped = self.engine.invalidate_stale()
                else:
                    dropped = self.engine.invalidate(target)
                self._observe("observe_invalidation", dropped)
                pending.future.set_result(int(dropped))

            score_requests = [p for p in batch if p.kind == "score"]
            if score_requests:
                all_pairs: list[Pair] = []
                for pending in score_requests:
                    all_pairs.extend(pending.payload)
                probabilities = self.engine.predict_proba(all_pairs)
                offset = 0
                for pending in score_requests:
                    stop = offset + pending.weight
                    pending.future.set_result(probabilities[offset:stop])
                    offset = stop

            serve_requests = [p for p in batch if p.kind == "serve"]
            if serve_requests:
                # One serve_batch call for the whole flush: every request's
                # pairs score together (the engine's JudgementCore keeps
                # thresholds, decisions and cache stats per request).
                # Engines predating serve_batch fall back to per-request
                # serve calls in flush order.
                if hasattr(self.engine, "serve_batch"):
                    responses = list(
                        self.engine.serve_batch([p.payload for p in serve_requests])
                    )
                else:
                    responses = [self.engine.serve(p.payload) for p in serve_requests]
                if len(responses) != len(serve_requests):
                    # Fail loudly into the except below — a silent zip
                    # truncation would leave the surplus futures hanging.
                    raise RuntimeError(
                        f"serve_batch returned {len(responses)} responses "
                        f"for {len(serve_requests)} requests"
                    )
                for pending, response in zip(serve_requests, responses):
                    if tracer.enabled and response.trace is not None:
                        # Prepend this request's queue_wait to the trace the
                        # core built (the registry already has it, above).
                        wait_ms = (started - pending.enqueued) * 1e3
                        response = dataclasses.replace(
                            response,
                            trace={
                                **response.trace,
                                "stages": [[STAGE_QUEUE_WAIT, wait_ms]]
                                + list(response.trace.get("stages", [])),
                            },
                        )
                    pending.future.set_result(response)

            # Warm/matrix requests run per request, in flush order: each call
            # is still one batched featurize, the engine's cache deduplicates
            # overlap between them, and every warm future reports the rows
            # *its own* call featurized — not the whole flush's total.
            for pending in batch:
                if pending.kind == "matrix":
                    pending.future.set_result(self.engine.probability_matrix(pending.payload))
                elif pending.kind == "warm":
                    featurized = (
                        self.engine.warm(pending.payload)
                        if hasattr(self.engine, "warm")
                        else 0
                    )
                    pending.future.set_result(featurized)
        except BaseException as exc:  # noqa: BLE001 - forwarded to every caller
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            if not isinstance(exc, Exception):
                raise  # fatal (KeyboardInterrupt, ...): let _run declare death
        finally:
            finished = self._time()
            flush_kwargs = dict(
                num_requests=len(batch),
                num_pairs=sum(p.weight for p in batch if p.kind in ("score", "serve")),
                queue_depth=depth,
                elapsed_ms=(finished - started) * 1e3,
            )
            if self._flush_accepts_num_serves():
                flush_kwargs["num_serves"] = sum(1 for p in batch if p.kind == "serve")
            self._observe("observe_flush", **flush_kwargs)
            for pending in batch:
                self._observe("observe_latency", (finished - pending.enqueued) * 1e3)


#: Immediate results for zero-weight submissions, per request kind ("serve"
#: is absent: an empty JudgeRequest resolves synchronously in submit_serve,
#: where the engine supplies the effective threshold).
_EMPTY_RESULTS = {
    "score": lambda: np.zeros(0),
    "matrix": lambda: np.zeros((0, 0)),
    "warm": lambda: 0,
    "invalidate": lambda: 0,
}
