""":class:`WorkerPool` — the process-worker tier behind an asyncio gateway.

The third serving tier.  :class:`repro.api.ColocationEngine` is one process,
:class:`repro.cluster.ShardedEngine` is one process with shard threads — both
sit under the GIL, so featurization never runs truly in parallel.  The pool
spawns ``num_workers`` **worker processes** (:mod:`repro.cluster.worker`),
each rebuilt from the fitted judge via the save/load bundle and owning one
hash slice of the user population (the same :func:`repro.cluster.shard_index`
routing the thread tier uses, so a thread shard and a process worker agree on
ownership), and fronts them with an asyncio event loop that fans each batch's
feature gather out across worker sockets concurrently.

**One decision path, now four transports.**  The pool does not reimplement
judgement: it instantiates the same :class:`repro.api.JudgementCore` the
other tiers run, parameterized on a *wire* gather (profiles JSON out, raw
numpy feature rows back — deduplicated per owner before they touch a socket)
and the local judge's chunk-canonical scorer.  Featurization — the CPU-bound
cost — parallelises across processes; scoring, a small batched matmul, runs
in the gateway.  Because the worker's loaded pipeline restores bitwise-exact,
``WorkerPool.predict_proba`` matches the single engine bit-for-bit, and every
surface (``predict_proba`` / ``predict`` / ``probability_matrix`` / ``serve``
/ ``serve_batch`` / ``warm`` / ``features`` / ``cache_info`` / ``threshold``)
is the engine surface — ``resolve_engine`` passes a pool through and any
:mod:`repro.service` application, or a :class:`repro.cluster.MicroBatcher`,
can sit on top unchanged.  Cache invalidation is a first-class surface too:
:meth:`WorkerPool.invalidate` routes ``INVALIDATE`` frames to owner workers
and purges the gateway's retained warm-start rows, so neither a live worker
nor a respawned one can serve a superseded profile revision.

**Failure model.**  A worker dying (crash, kill, broken socket) fails the
call in flight — and every call queued behind it — *promptly* with
:class:`repro.errors.WorkerCrashError`; nothing hangs on a socket that will
never answer, and :class:`repro.cluster.ClusterMetrics` counts the death.
With ``respawn=True`` the next call routed to the dead worker first respawns
it from the bundle and warm-starts its cache from the most recent
:meth:`snapshot`/:meth:`restore` rows the pool retains (the process-tier twin
of shard snapshot/restore).  :meth:`close` drains in-flight calls, sends
every worker a SHUTDOWN frame, and reaps the processes — EOF alone also stops
a worker, so even a crashed gateway leaves no orphans behind (workers are
daemonic).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import secrets
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.api.core import CallCacheStats, JudgementCore, NO_CACHE_TRAFFIC
from repro.api.engine import ColocationEngine, EngineCacheInfo
from repro.api.messages import JudgeRequest, JudgeResponse
from repro.cluster import wire
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.sharded import route_snapshot_rows, shard_arena_dir, shard_index
from repro.cluster.worker import save_judge_bundle, worker_main
from repro.core.protocols import (
    ProfileKey,
    key_revision,
    profile_key,
    superseded_keys,
)
from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError, WireProtocolError, WorkerCrashError
from repro.obs import (
    STAGE_WIRE_RTT,
    STAGE_WIRE_SERIALIZE,
    MetricsRegistry,
    get_tracer,
)

#: How long a HELLO handshake may take once a connection is accepted.
_HELLO_TIMEOUT = 30.0


@dataclass
class _WorkerHandle:
    """One worker process and its gateway-side connection state."""

    index: int
    generation: int
    process: object  # multiprocessing.Process
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    pid: int
    #: Serialises requests on this connection (the wire is request/response).
    #: Queued acquirers observe ``alive`` turning False and fail fast.
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    alive: bool = True


class WorkerPool:
    """Serve a fitted judge across hash-partitioned worker *processes*.

    Parameters
    ----------
    judge:
        Any fitted judge a :class:`ColocationEngine` accepts.  Fitted
        :class:`repro.colocation.CoLocationPipeline` objects ship to workers
        through the canonical save/load format; other judges fall back to a
        pickle bundle (bootstrap only — nothing on the wire is ever pickled).
    num_workers:
        Worker processes (each with its own feature-cache slice).
    cache_size:
        **Total** feature-row budget, split evenly across workers — the same
        fairness rule as :class:`repro.cluster.ShardedEngine`.
    threshold / batch_size:
        As on :class:`ColocationEngine`; both also forwarded to the workers
        so their direct wire surface decides identically.
    respawn:
        Respawn a dead worker on the next call routed to it, warm-started
        from the rows most recently seen by :meth:`snapshot`/:meth:`restore`.
        Default ``False``: a dead worker stays dead and calls to it raise
        :class:`WorkerCrashError` (fail fast, let the operator decide).
    metrics:
        Optional externally owned :class:`ClusterMetrics` (share it with a
        fronting :class:`MicroBatcher` for one unified report); by default
        the pool creates its own, exposed as :attr:`metrics`.
    start_timeout:
        Seconds to wait for a spawned worker's HELLO before giving up.
    call_timeout:
        Optional bound on any single wire call (``None`` waits).
    bundle_dir:
        Reuse an existing :func:`save_judge_bundle` directory instead of
        writing a fresh one (the pool then does not delete it on close).
    arena_dir:
        Optional cold-tier root: each worker tiers its cache onto a memmap
        arena slice ``arena_dir/worker-NNN``.  A respawned worker then
        warm-starts by *mapping its slice* — zero featurize calls, zero rows
        on the wire — and the gateway's retained-row reship is skipped (it
        remains the fallback when no arena is configured).
    heartbeat_interval_ms:
        Enable the PING/PONG heartbeat: the gateway loop probes each idle
        worker connection this often, feeding ``metrics.observe_heartbeat``
        (per-worker liveness gauge + last-seen stamp).  A probe that gets no
        PONG within ``heartbeat_timeout_ms`` flips the worker unhealthy —
        without cancelling the in-flight probe, so a merely-stalled worker
        (SIGSTOP, GC pause) flips back to healthy when its PONG finally
        lands instead of desynchronising the wire.  ``None`` (default)
        disables the heartbeat.
    heartbeat_timeout_ms:
        How long a probe may wait before the worker is considered stalled
        (default: 4x the interval).
    """

    def __init__(
        self,
        judge,
        *,
        num_workers: int = 2,
        cache_size: int = 4096,
        threshold: float | None = None,
        batch_size: int = 1024,
        respawn: bool = False,
        metrics: ClusterMetrics | None = None,
        start_timeout: float = 120.0,
        call_timeout: float | None = None,
        bundle_dir: str | None = None,
        arena_dir: str | None = None,
        heartbeat_interval_ms: float | None = None,
        heartbeat_timeout_ms: float | None = None,
    ):
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        if cache_size < 0:
            raise ConfigurationError("cache_size must be >= 0")
        if heartbeat_interval_ms is not None and heartbeat_interval_ms <= 0:
            raise ConfigurationError("heartbeat_interval_ms must be > 0")
        self.judge = judge
        self.num_workers = num_workers
        self.cache_size = cache_size
        self.batch_size = batch_size
        self.respawn = respawn
        self.arena_dir = arena_dir
        self.start_timeout = start_timeout
        self.call_timeout = call_timeout
        self.metrics = metrics if metrics is not None else ClusterMetrics(self)
        base, extra = divmod(cache_size, num_workers)
        self._worker_cache_sizes = [
            base + (1 if index < extra else 0) for index in range(num_workers)
        ]
        self._explicit_threshold = threshold
        #: Scorer + empty-shape + registry duties, never featurization: the
        #: local engine's cache is disabled because feature rows live in the
        #: workers.  Also validates ``threshold``/``batch_size``.
        self._local = ColocationEngine(
            judge, cache_size=0, threshold=threshold, batch_size=batch_size
        )
        #: The shared decision/serve logic — the same object every other
        #: transport runs, over this pool's wire gather and the local
        #: chunk-canonical scorer.
        self._core = JudgementCore(
            judge,
            gather=self._resolve_features,
            scorer=self._local._score_batched,
            explicit_threshold=threshold,
            fallback_judge=judge,
        )
        #: Rows to warm-start a respawned worker with, per worker index —
        #: refreshed by snapshot() and restore().
        self._retained: list[dict[ProfileKey, np.ndarray] | None] = [None] * num_workers
        self._respawn_locks = [threading.Lock() for _ in range(num_workers)]
        self._close_lock = threading.Lock()
        self._closed = False
        self._generation = 0
        self._hello_waiters: dict[str, asyncio.Future] = {}
        self._mp = multiprocessing.get_context("spawn")
        self.heartbeat_interval_ms = heartbeat_interval_ms
        self.heartbeat_timeout_ms = (
            heartbeat_timeout_ms
            if heartbeat_timeout_ms is not None
            else (heartbeat_interval_ms * 4 if heartbeat_interval_ms else None)
        )
        #: Heartbeat's view of each worker (all healthy until a probe says
        #: otherwise; stays all-True when the heartbeat is disabled).
        self._healthy = [True] * num_workers
        self._heartbeat_future = None

        if bundle_dir is not None:
            self._tmpdir = None
            self._bundle_dir = str(bundle_dir)
        else:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-worker-pool-")
            self._bundle_dir = self._tmpdir.name
            save_judge_bundle(judge, self._bundle_dir)

        # The asyncio gateway: one event loop on a daemon thread, one
        # listening socket workers dial back into.
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-worker-gateway", daemon=True
        )
        self._thread.start()
        try:
            self._server = self._run(self._start_server())
            self._address = self._server.sockets[0].getsockname()[:2]
            self._handles: list[_WorkerHandle] = self._spawn_many(range(num_workers))
            if heartbeat_interval_ms is not None:
                self._heartbeat_future = asyncio.run_coroutine_threadsafe(
                    self._heartbeat_loop(
                        heartbeat_interval_ms / 1e3, self.heartbeat_timeout_ms / 1e3
                    ),
                    self._loop,
                )
        except BaseException:
            self._closed = True
            self._teardown_loop()
            if self._tmpdir is not None:
                self._tmpdir.cleanup()
            raise

    # ------------------------------------------------------------ loop plumbing
    def _run(self, coroutine, timeout: float | None = None):
        """Run a coroutine on the gateway loop from the calling thread."""
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(timeout)

    async def _start_server(self):
        return await asyncio.start_server(self._on_connection, "127.0.0.1", 0)

    async def _on_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        """Accept a worker dialing back: match its HELLO token to a waiter."""
        try:
            frame = await asyncio.wait_for(
                wire.read_frame_async(reader), timeout=_HELLO_TIMEOUT
            )
            if frame is None or frame[0] != wire.FRAME_HELLO:
                raise WireProtocolError("expected a HELLO frame")
            body, _ = wire.decode_payload(frame[1])
            token = str(body.get("token", ""))
            waiter = self._hello_waiters.pop(token, None)
            if waiter is None or waiter.done():
                raise WireProtocolError("unknown or stale HELLO token")
            sock = writer.get_extra_info("socket")
            if sock is not None:
                import socket as socket_mod

                sock.setsockopt(socket_mod.IPPROTO_TCP, socket_mod.TCP_NODELAY, 1)
            waiter.set_result((reader, writer, int(body.get("pid", 0))))
        except Exception:
            writer.close()

    async def _register_waiter(self, token: str) -> asyncio.Future:
        future = self._loop.create_future()
        self._hello_waiters[token] = future
        return future

    # ---------------------------------------------------------------- spawning
    def _spawn_many(self, indices: Iterable[int]) -> list[_WorkerHandle]:
        """Start workers for ``indices`` concurrently, then collect HELLOs."""
        launches = []
        for index in indices:
            token = secrets.token_hex(16)
            waiter = self._run(self._register_waiter(token))
            self._generation += 1
            process = self._mp.Process(
                target=worker_main,
                args=(self._bundle_dir, self._address[0], self._address[1], token, index),
                kwargs={
                    "cache_size": self._worker_cache_sizes[index],
                    "threshold": self._explicit_threshold,
                    "batch_size": self.batch_size,
                    "arena_dir": shard_arena_dir(self.arena_dir, index, prefix="worker"),
                },
                daemon=True,
                name=f"repro-worker-{index}",
            )
            process.start()
            launches.append((index, self._generation, token, process, waiter))
        handles = []
        for index, generation, token, process, waiter in launches:
            try:
                reader, writer, pid = self._run(
                    asyncio.wait_for(waiter, self.start_timeout)
                )
            except BaseException as exc:
                self._hello_waiters.pop(token, None)
                for _, _, _, proc, _ in launches:
                    if proc.is_alive():
                        proc.terminate()
                raise ConfigurationError(
                    f"worker {index} failed to start within {self.start_timeout:.0f}s"
                ) from exc
            handles.append(
                _WorkerHandle(
                    index=index,
                    generation=generation,
                    process=process,
                    reader=reader,
                    writer=writer,
                    pid=pid,
                )
            )
        return handles

    def _ensure_worker(self, index: int) -> _WorkerHandle:
        """The live handle for a worker, respawning it if allowed."""
        if self._closed:
            raise ConfigurationError("the WorkerPool is closed")
        handle = self._handles[index]
        if handle.alive:
            return handle
        if not self.respawn:
            raise WorkerCrashError(
                f"worker {index} is dead and respawn is disabled on this pool"
            )
        with self._respawn_locks[index]:
            handle = self._handles[index]
            if handle.alive:  # another caller beat us to the respawn
                return handle
            (replacement,) = self._spawn_many([index])
            self._handles[index] = replacement
            self._observe("observe_worker_respawn")
            # With an arena the respawned worker already mapped its slice —
            # its warm set came off disk, not the wire.  The retained-row
            # reship below is the no-arena fallback.
            retained = self._retained[index]
            if retained and self.arena_dir is None:
                try:
                    self._request_sync(
                        replacement,
                        "restore",
                        self._restore_body(retained),
                        (np.stack(list(retained.values())),),
                    )
                except Exception:
                    pass  # a cold respawned worker is still a working worker
            return replacement

    def _observe(self, hook: str, *args) -> None:
        """Metrics must never break serving (mirrors MicroBatcher._observe)."""
        try:
            getattr(self.metrics, hook)(*args)
        except Exception:
            pass

    def _note_death(self, handle: _WorkerHandle, cause: Exception | None) -> None:
        """Mark a connection dead exactly once; close it and count the loss."""
        if not handle.alive:
            return
        handle.alive = False
        try:
            handle.writer.close()
        except Exception:
            pass
        try:
            handle.process.join(timeout=0)  # reap immediately if already exited
        except Exception:
            pass
        self._observe("observe_worker_death")

    # ------------------------------------------------------------- wire calls
    async def _roundtrip(self, handle: _WorkerHandle, frame_type: int, payload: bytes):
        """One frame out, one frame back, under the connection lock.

        Any transport failure — broken pipe, EOF, truncated frame — marks
        the worker dead and raises :class:`WorkerCrashError`; calls queued
        behind the lock then fail fast on the dead flag.
        """
        async with handle.lock:
            if not handle.alive:
                raise WorkerCrashError(f"worker {handle.index} is dead")
            try:
                handle.writer.write(wire.encode_frame(frame_type, payload))
                await handle.writer.drain()
                frame = await wire.read_frame_async(handle.reader)
            except (WireProtocolError, ConnectionError, OSError) as exc:
                self._note_death(handle, exc)
                raise WorkerCrashError(
                    f"worker {handle.index} (pid {handle.pid}) died mid-call: {exc}"
                ) from exc
            if frame is None:
                self._note_death(handle, None)
                raise WorkerCrashError(
                    f"worker {handle.index} (pid {handle.pid}) closed its connection mid-call"
                )
            return frame

    async def _request(
        self,
        handle: _WorkerHandle,
        op: str,
        body: dict,
        arrays=(),
        frame: int = wire.FRAME_CALL,
    ):
        if frame == wire.FRAME_CALL:
            payload = wire.encode_payload({**body, "op": op}, arrays)
        else:  # dedicated frames (INVALIDATE) carry their body verbatim
            payload = wire.encode_payload(body, arrays)
        frame_type, response = await self._roundtrip(handle, frame, payload)
        if frame_type == wire.FRAME_ERROR:
            # A typed worker-side error: the worker is alive and the
            # connection stays usable — EngineOverloadError and friends
            # surface client-side as themselves.
            raise wire.decode_error(response)
        if frame_type != wire.FRAME_RESULT:
            exc = WireProtocolError(f"unexpected frame type {frame_type} answering {op!r}")
            self._note_death(handle, exc)
            raise WorkerCrashError(
                f"worker {handle.index} desynchronised the wire: {exc}"
            ) from exc
        return wire.decode_payload(response)

    def _request_sync(
        self,
        handle: _WorkerHandle,
        op: str,
        body: dict,
        arrays=(),
        frame: int = wire.FRAME_CALL,
    ):
        return asyncio.run_coroutine_threadsafe(
            self._request(handle, op, body, arrays, frame=frame), self._loop
        ).result(self.call_timeout)

    def _call(self, index: int, op: str, body: dict, arrays=()):
        return self._request_sync(self._ensure_worker(index), op, body, arrays)

    def _call_all(self, calls: list[tuple[int, str, dict, tuple]]) -> list:
        """Fan calls out concurrently; wait for *all* before raising the first
        failure, so no coroutine is abandoned mid-socket."""
        handles = [self._ensure_worker(index) for index, _, _, _ in calls]
        futures = [
            asyncio.run_coroutine_threadsafe(
                self._request(handle, op, body, arrays), self._loop
            )
            for handle, (_, op, body, arrays) in zip(handles, calls)
        ]
        results: list = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result(self.call_timeout))
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    # ----------------------------------------------------------- feature path
    def worker_of(self, profile: Profile) -> int:
        """The index of the worker owning this profile's user."""
        return shard_index(profile_key(profile), self.num_workers)

    def _resolve_features(self, profiles: list[Profile]) -> tuple[np.ndarray, CallCacheStats]:
        """Feature rows gathered from each profile's owner worker, in parallel.

        Profiles deduplicate per owner group *before* hitting the wire (the
        query side of a pair batch repeats heavily), so a profile's JSON
        crosses a socket once per call; rows expand back by key on return.
        Stats sum the workers' own per-call accounting.

        With tracing enabled, body serialization is the ``wire_serialize``
        stage and the fan-out is ``wire_rtt`` (which *contains* the worker's
        own gather/featurize time); the active trace's id rides each CALL
        body, and the spans the workers recorded under it are merged back.
        """
        from repro.io.records_json import profile_to_dict

        if not profiles:
            return self._local.features([]), NO_CACHE_TRAFFIC
        tracer = get_tracer()
        trace = tracer.current_trace() if tracer.enabled else None
        groups: dict[int, list[int]] = {}
        for position, profile in enumerate(profiles):
            groups.setdefault(self.worker_of(profile), []).append(position)
        with tracer.stage(STAGE_WIRE_SERIALIZE):
            plans = []
            for owner, positions in groups.items():
                unique: dict[ProfileKey, int] = {}
                send: list[Profile] = []
                row_of: list[int] = []
                for position in positions:
                    key = profile_key(profiles[position])
                    if key not in unique:
                        unique[key] = len(send)
                        send.append(profiles[position])
                    row_of.append(unique[key])
                plans.append((owner, positions, row_of, send))
            calls = []
            for owner, _, _, send in plans:
                body = {"profiles": [profile_to_dict(p) for p in send]}
                if trace is not None:
                    body["trace"] = trace.trace_id
                calls.append((owner, "gather", body, ()))
        with tracer.stage(STAGE_WIRE_RTT):
            results = self._call_all(calls)
        rows: np.ndarray | None = None
        stats = CallCacheStats(hits=0, misses=0, featurized=0)
        for (owner, positions, row_of, send), (body, arrays) in zip(plans, results):
            if trace is not None:
                for span in body.get("spans", ()):
                    if isinstance(span, (list, tuple)) and len(span) == 2:
                        trace.add(str(span[0]), float(span[1]))
            worker_rows = arrays[0]
            if len(worker_rows) != len(send):
                raise WireProtocolError(
                    f"worker {owner} returned {len(worker_rows)} rows for {len(send)} profiles"
                )
            stats = stats + CallCacheStats(
                hits=int(body["hits"]),
                misses=int(body["misses"]),
                featurized=int(body["featurized"]),
                invalidated=int(body.get("invalidated", 0)),
            )
            if rows is None:
                rows = np.empty(
                    (len(profiles), worker_rows.shape[1]), dtype=worker_rows.dtype
                )
            rows[positions] = worker_rows[row_of]
        assert rows is not None
        return rows, stats

    def warm(self, profiles: list[Profile]) -> int:
        """Pre-featurize profiles into their owner workers; returns rows featurized."""
        if not profiles or not self._core.feature_space:
            return 0
        from repro.io.records_json import profile_to_dict

        groups: dict[int, list[Profile]] = {}
        for profile in profiles:
            groups.setdefault(self.worker_of(profile), []).append(profile)
        results = self._call_all(
            [
                (owner, "warm", {"profiles": [profile_to_dict(p) for p in group]}, ())
                for owner, group in groups.items()
            ]
        )
        return sum(int(body["featurized"]) for body, _ in results)

    def features(self, profiles: list[Profile]) -> np.ndarray:
        """Cached frozen feature rows for profiles (gathered across workers)."""
        if not self._core.feature_space:
            raise ConfigurationError(
                "the wrapped judge has no feature-level interface (FeatureSpaceJudge)"
            )
        if not profiles:
            return self._local.features([])
        rows, _ = self._resolve_features(profiles)
        return rows

    # ------------------------------------------------------------- cache admin
    def cache_info(self) -> EngineCacheInfo:
        """Pool-level cache statistics (all workers merged)."""
        return EngineCacheInfo.merge(self.worker_cache_infos())

    def worker_cache_infos(self) -> tuple[EngineCacheInfo, ...]:
        """Per-worker cache statistics, index-aligned with the workers.

        A dead (or closed-away) worker contributes an all-zero entry instead
        of failing the report: this is the surface ``ClusterMetrics`` reads,
        and the moment after an incident is exactly when the operator needs
        the snapshot to still render.  A worker the heartbeat currently marks
        unhealthy gets the same treatment *without* a wire call — a stalled
        worker would block the report indefinitely, and reporting must never
        hang on the incident it is reporting.
        """
        zero = EngineCacheInfo(
            hits=0, misses=0, evictions=0, size=0, maxsize=0, featurized=0
        )
        infos = []
        for index in range(self.num_workers):
            if not self._healthy[index]:
                infos.append(zero)
                continue
            try:
                body, _ = self._call(index, "cache_info", {})
                infos.append(EngineCacheInfo(**body))
            except (WorkerCrashError, ConfigurationError):
                infos.append(zero)
        return tuple(infos)

    #: :class:`ClusterMetrics` discovers per-shard breakdowns through this
    #: name; a worker is the process-tier shard.
    shard_cache_infos = worker_cache_infos

    def worker_obs_snapshots(self) -> tuple[dict, ...]:
        """Each worker's metrics-registry snapshot via the ``stats`` wire op.

        A dead or heartbeat-unhealthy worker contributes an empty snapshot
        instead of failing (or blocking) the report — the same degradation
        rule as :meth:`worker_cache_infos`.
        """
        snapshots = []
        for index in range(self.num_workers):
            if not self._healthy[index]:
                snapshots.append({"metrics": []})
                continue
            try:
                body, _ = self._call(index, "stats", {})
                snapshots.append(body.get("registry", {"metrics": []}))
            except (WorkerCrashError, ConfigurationError):
                snapshots.append({"metrics": []})
        return tuple(snapshots)

    def obs_snapshot(self) -> MetricsRegistry:
        """The cluster-truthful observability registry: gateway + workers.

        Merges the gateway-side registry (wire stages, score, the pool's own
        counters live there via :func:`repro.obs.get_registry`) with every
        worker's ``stats`` snapshot — counters and histograms sum, gauges
        take the incoming reading.
        """
        from repro.obs import get_registry

        merged = MetricsRegistry()
        merged.merge(get_registry().snapshot())
        for snapshot in self.worker_obs_snapshots():
            merged.merge(snapshot)
        return merged

    def snapshot(self) -> tuple[dict[ProfileKey, np.ndarray], ...]:
        """Per-worker cache exports (also retained for respawn warm-starts)."""
        results = self._call_all(
            [(index, "snapshot", {}, ()) for index in range(self.num_workers)]
        )
        exports = []
        for index, (body, arrays) in enumerate(results):
            keys = [
                (int(k[0]), float(k[1]), str(k[2]), int(k[3]), int(k[4]))
                for k in body["keys"]
            ]
            rows = arrays[0] if arrays else np.zeros((0, 0))
            export = {key: np.array(row, copy=True) for key, row in zip(keys, rows)}
            self._retained[index] = export
            exports.append(dict(export))
        return tuple(exports)

    @staticmethod
    def _restore_body(rows: dict[ProfileKey, np.ndarray]) -> dict:
        return {"keys": [[k[0], k[1], k[2], k[3], key_revision(k)] for k in rows]}

    def restore(self, snapshot: tuple[dict[ProfileKey, np.ndarray], ...]) -> int:
        """Repopulate worker caches from a snapshot; returns rows kept.

        Rows re-route by stable hash (any source shard/worker count restores
        into this pool) and are retained per worker for respawn warm-starts.
        """
        routed = route_snapshot_rows(snapshot, self.num_workers)
        calls = []
        for index, rows in enumerate(routed):
            self._retained[index] = {
                key: np.array(row, copy=True) for key, row in rows.items()
            }
            arrays = (np.stack(list(rows.values())),) if rows else ()
            calls.append((index, "restore", self._restore_body(rows), arrays))
        results = self._call_all(calls)
        return sum(int(body["imported"]) for body, _ in results)

    def _invalidate_worker(self, index: int, body: dict) -> int:
        """One INVALIDATE frame to one worker; rows dropped there.

        A dead worker answers 0 rather than failing the sweep: its retained
        warm-start rows were already purged gateway-side, which is the part
        that matters — a respawn cannot resurrect the stale rows.
        """
        try:
            handle = self._ensure_worker(index)
            response, _ = self._request_sync(
                handle, "invalidate", body, (), frame=wire.FRAME_INVALIDATE
            )
        except WorkerCrashError:
            return 0
        return int(response.get("invalidated", 0))

    def invalidate(self, uids: Iterable[int]) -> int:
        """Drop every cached feature row of the given users, pool-wide.

        Purges the gateway's retained snapshot rows for **all** workers first
        (so a later respawn warm-start cannot restore them), then sends the
        owner worker of each uid an ``INVALIDATE`` frame.  Returns rows
        dropped inside live workers.
        """
        uid_set = {int(uid) for uid in uids}
        if not uid_set or self._closed:
            return 0
        for retained in self._retained:
            if retained:
                for key in [k for k in retained if k[0] in uid_set]:
                    del retained[key]
        groups: dict[int, list[int]] = {}
        for uid in sorted(uid_set):
            groups.setdefault(shard_index(uid, self.num_workers), []).append(uid)
        dropped = sum(
            self._invalidate_worker(owner, {"uids": group})
            for owner, group in sorted(groups.items())
        )
        if dropped:
            self._observe("observe_invalidation", dropped)
        return dropped

    def invalidate_stale(self) -> int:
        """Sweep superseded-revision rows from every worker (and retained rows)."""
        if self._closed:
            return 0
        for retained in self._retained:
            if retained:
                for key in superseded_keys(retained):
                    retained.pop(key, None)
        dropped = sum(
            self._invalidate_worker(index, {"stale": True})
            for index in range(self.num_workers)
        )
        if dropped:
            self._observe("observe_invalidation", dropped)
        return dropped

    # ---------------------------------------------------------------- liveness
    def _mark_health(self, index: int, healthy: bool) -> None:
        self._healthy[index] = bool(healthy)
        self._observe("observe_heartbeat", index, bool(healthy))

    async def _ping_handle(self, handle: _WorkerHandle) -> bool:
        """One PING/PONG token echo over the worker's connection."""
        token = secrets.token_hex(8)
        payload = wire.encode_payload({"token": token})
        frame_type, response = await self._roundtrip(handle, wire.FRAME_PING, payload)
        if frame_type != wire.FRAME_PONG:
            raise WireProtocolError(f"expected PONG, got frame type {frame_type}")
        body, _ = wire.decode_payload(response)
        return isinstance(body, dict) and body.get("token") == token

    async def _heartbeat_loop(self, interval_s: float, timeout_s: float) -> None:
        """Periodic worker probing on the gateway loop.

        Design constraints, in order of importance:

        * A stalled probe is **never cancelled** — the wire is strict
          request/response, so abandoning a PING mid-connection would
          desynchronise every later call.  The probe keeps waiting in the
          background (holding that worker's connection lock); the worker is
          reported unhealthy each round until the PONG lands, then healthy
          again.  A genuinely dead worker fails the probe's read instead,
          which runs the normal ``_note_death`` path.
        * A connection busy serving a call is *proof of life work in
          progress*, not staleness — it is reported healthy without
          queueing a probe behind the in-flight call.
        * Probes on different workers are independent: one SIGSTOPped
          worker cannot delay another worker's probe or calls.
        """
        stalled: dict[int, asyncio.Task] = {}
        try:
            while not self._closed:
                for index in range(self.num_workers):
                    handle = self._handles[index]
                    pending = stalled.get(index)
                    if pending is not None:
                        if not pending.done():
                            self._mark_health(index, False)
                            continue
                        del stalled[index]
                        try:
                            ok = pending.result()
                        except Exception:
                            ok = False
                        self._mark_health(index, ok and handle.alive)
                        continue
                    if not handle.alive:
                        self._mark_health(index, False)
                        continue
                    if handle.lock.locked():
                        self._mark_health(index, True)  # busy serving a call
                        continue
                    probe = asyncio.ensure_future(self._ping_handle(handle))
                    done, _ = await asyncio.wait({probe}, timeout=timeout_s)
                    if probe in done:
                        try:
                            ok = probe.result()
                        except Exception:
                            ok = False
                        self._mark_health(index, ok)
                    else:
                        stalled[index] = probe
                        self._mark_health(index, False)
                await asyncio.sleep(interval_s)
        except asyncio.CancelledError:
            # Closing: abandoning the stalled probes is fine now — their
            # connections are about to be shut down anyway.
            for probe in stalled.values():
                probe.cancel()
            raise

    def worker_health(self) -> tuple[bool, ...]:
        """The heartbeat's per-worker verdicts (all True when disabled)."""
        return tuple(self._healthy)

    def ping(self, index: int) -> bool:
        """Heartbeat one worker; True on echo, raises on a dead worker."""
        handle = self._ensure_worker(index)
        return asyncio.run_coroutine_threadsafe(
            self._ping_handle(handle), self._loop
        ).result(self.call_timeout)

    def worker_pids(self) -> tuple[int, ...]:
        """The OS pids of the current worker processes."""
        return tuple(handle.pid for handle in self._handles)

    def workers_alive(self) -> tuple[bool, ...]:
        """Gateway-side liveness flags (a death is noticed at the failing call)."""
        return tuple(handle.alive for handle in self._handles)

    # -------------------------------------------------------------- judgement
    @property
    def threshold(self) -> float:
        """The decision threshold applied by :meth:`predict` and :meth:`serve`."""
        return self._core.threshold

    @property
    def registry(self):
        """The POI registry behind the judge (engine-surface pass-through)."""
        return self._local.registry

    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Co-location probability per pair; bit-for-bit the single engine's.

        Both sides gather in one wire fan-out (each owner worker featurizes
        its misses as one batch, in true process parallelism); scoring reuses
        the engine's exact chunking, so results never depend on routing.
        """
        return self._core.predict_proba(pairs)

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """Binary co-location decisions per pair (judge's rule, like the engine)."""
        return self._core.predict(pairs)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """The ``N x N`` pairwise matrix, each profile featurized on its owner."""
        return self._core.probability_matrix(profiles)

    def serve(self, request: JudgeRequest) -> JudgeResponse:
        """Answer one typed judgement request (cache traffic summed over workers)."""
        return self._core.serve(request)

    def serve_batch(self, requests: Iterable[JudgeRequest]) -> list[JudgeResponse]:
        """Answer typed requests together, scoring them as one coalesced batch."""
        return self._core.serve_batch(requests)

    # -------------------------------------------------------------- lifecycle
    async def _shutdown_handle(self, handle: _WorkerHandle) -> None:
        """Drain the in-flight call (the lock), then ask the worker to exit."""
        async with handle.lock:
            if not handle.alive:
                return
            handle.alive = False
            try:
                handle.writer.write(wire.encode_frame(wire.FRAME_SHUTDOWN))
                await handle.writer.drain()
                handle.writer.close()
            except Exception:
                pass  # already broken: the process join below still reaps it

    def _teardown_loop(self) -> None:
        server = getattr(self, "_server", None)
        if server is not None:
            try:
                self._run(self._close_server(server), timeout=10.0)
            except Exception:
                pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        if not self._thread.is_alive():
            self._loop.close()

    async def _close_server(self, server) -> None:
        server.close()
        await server.wait_closed()

    def close(self, timeout: float = 10.0) -> None:
        """Shut the pool down: drain, stop workers, reap processes (idempotent).

        Workers exit on the SHUTDOWN frame (or on EOF when their connection
        is already gone); processes that still linger are terminated, then
        killed — no orphans survive a close.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        heartbeat = getattr(self, "_heartbeat_future", None)
        if heartbeat is not None:
            try:
                heartbeat.cancel()
            except Exception:
                pass
        for handle in getattr(self, "_handles", []):
            try:
                asyncio.run_coroutine_threadsafe(
                    self._shutdown_handle(handle), self._loop
                ).result(timeout)
            except Exception:
                pass
        for handle in getattr(self, "_handles", []):
            process = handle.process
            process.join(timeout)
            if process.is_alive():
                process.terminate()
                process.join(2.0)
            if process.is_alive():
                process.kill()
                process.join(2.0)
        self._teardown_loop()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerPool(judge={type(self.judge).__name__}, workers={self.num_workers}, "
            f"alive={sum(self.workers_alive())}/{self.num_workers})"
        )
