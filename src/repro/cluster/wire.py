"""The cluster wire protocol: length-prefixed, versioned binary frames.

Process workers (:mod:`repro.cluster.worker`) and the :class:`WorkerPool`
gateway (:mod:`repro.cluster.gateway`) talk over sockets using one frame
format::

    +--------+---------+------+-----------------+
    | length | version | type |     payload     |
    | uint32 |  uint8  |uint8 |  length bytes   |
    +--------+---------+------+-----------------+

All integers are big-endian.  ``length`` counts payload bytes only, and is
bounded by ``max_frame_bytes`` on the receiving side — an oversized prefix is
rejected *before* any allocation, so a corrupt or hostile peer cannot make
the receiver buffer gigabytes.  ``version`` is :data:`WIRE_VERSION`; frames
from a different protocol generation raise :class:`WireProtocolError` rather
than being misparsed.

Payloads carry a JSON body plus zero or more raw numpy arrays::

    uint32 json_length | json bytes | array 0 bytes | array 1 bytes | ...

The JSON header is ``{"body": ..., "arrays": [{"dtype", "shape"}, ...]}``;
each array travels as its raw C-contiguous bytes, described by a dtype
string and shape — **no pickle anywhere on the wire**, so a worker never
executes code smuggled through a feature payload, and a megabyte of float64
feature rows costs a memcpy, not a serializer walk.

Errors are frames too: :func:`encode_error` captures a worker-side exception
as ``{"type", "message"}`` and :func:`decode_error` maps it back — known
:mod:`repro.errors` types re-raise as themselves client-side (so
:class:`EngineOverloadError` backpressure crosses the process boundary
intact), anything else arrives as :class:`RemoteJudgeError`.

Every receive path raises :class:`WireProtocolError` *promptly* on
truncation, oversize, or unknown versions: a partial read never corrupts the
stream silently, and a half-written frame from a dying peer fails the read
instead of hanging it.
"""

from __future__ import annotations

import json
import struct
from typing import Sequence

import numpy as np

from repro import errors as errors_mod
from repro.errors import ReproError, RemoteJudgeError, WireProtocolError

#: Protocol generation; bumped on incompatible frame-format changes.
#: Version 2: profile keys on the wire (snapshot/restore) grew a fifth
#: ``revision`` element, and the ``INVALIDATE`` frame joined the protocol.
WIRE_VERSION = 2

#: Default bound on one frame's payload, enforced before allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Frame header: payload length (uint32), version (uint8), type (uint8).
_HEADER = struct.Struct(">IBB")
_JSON_LENGTH = struct.Struct(">I")

# ------------------------------------------------------------------ frame types
FRAME_HELLO = 1  #: worker -> gateway registration: {"worker_id", "token", "pid"}
FRAME_CALL = 2  #: an operation request: body {"op": ..., ...}, optional arrays
FRAME_RESULT = 3  #: a successful operation result
FRAME_ERROR = 4  #: a typed worker-side error: {"type", "message"}
FRAME_PING = 5  #: heartbeat probe; payload echoed back verbatim
FRAME_PONG = 6  #: heartbeat echo
FRAME_SHUTDOWN = 7  #: gateway -> worker: finish up and exit
FRAME_INVALIDATE = 8  #: gateway -> worker cache invalidation: {"uids" | "stale"}

_KNOWN_FRAMES = frozenset(
    (
        FRAME_HELLO,
        FRAME_CALL,
        FRAME_RESULT,
        FRAME_ERROR,
        FRAME_PING,
        FRAME_PONG,
        FRAME_SHUTDOWN,
        FRAME_INVALIDATE,
    )
)


# -------------------------------------------------------------------- payloads


def encode_payload(body: object, arrays: Sequence[np.ndarray] = ()) -> bytes:
    """Serialize a JSON-able body plus raw numpy arrays into payload bytes.

    Arrays must be numeric/bool (``object`` and other pickled dtypes are
    refused — the whole point of the format is that nothing on the wire is
    executable); they are sent C-contiguous.
    """
    descriptors = []
    blobs = []
    for array in arrays:
        shape = np.shape(array)
        array = np.ascontiguousarray(array)  # promotes 0-d to 1-d: keep `shape`
        if array.dtype.hasobject or array.dtype.kind not in "biufc":
            raise WireProtocolError(
                f"array dtype {array.dtype!r} is not wire-encodable (numeric/bool only)"
            )
        descriptors.append({"dtype": array.dtype.str, "shape": list(shape)})
        blobs.append(array.tobytes())
    header = json.dumps({"body": body, "arrays": descriptors}, separators=(",", ":")).encode()
    return b"".join([_JSON_LENGTH.pack(len(header)), header] + blobs)


def decode_payload(payload: bytes) -> tuple[object, list[np.ndarray]]:
    """Inverse of :func:`encode_payload`; raises :class:`WireProtocolError`
    on any inconsistency (bad JSON, dtype, or byte-count mismatch).

    Decoded arrays are fresh writable copies, never views into the payload
    buffer, so callers may cache or mutate them freely.
    """
    if len(payload) < _JSON_LENGTH.size:
        raise WireProtocolError("payload shorter than its JSON length prefix")
    (json_length,) = _JSON_LENGTH.unpack_from(payload)
    offset = _JSON_LENGTH.size
    if json_length > len(payload) - offset:
        raise WireProtocolError("payload JSON header extends past the frame")
    try:
        header = json.loads(payload[offset : offset + json_length].decode("utf-8"))
        body = header["body"]
        descriptors = header["arrays"]
        if not isinstance(descriptors, list):
            raise WireProtocolError("payload array table is not a list")
    except WireProtocolError:
        raise
    except Exception as exc:  # malformed JSON/UTF-8/missing keys
        raise WireProtocolError(f"undecodable payload header: {exc}") from exc
    offset += json_length
    arrays: list[np.ndarray] = []
    for descriptor in descriptors:
        try:
            dtype = np.dtype(descriptor["dtype"])
            shape = tuple(int(n) for n in descriptor["shape"])
        except Exception as exc:
            raise WireProtocolError(f"invalid array descriptor {descriptor!r}") from exc
        if dtype.hasobject or dtype.kind not in "biufc":
            raise WireProtocolError(f"array dtype {dtype!r} is not wire-decodable")
        if any(n < 0 for n in shape):
            raise WireProtocolError(f"negative dimension in array shape {shape!r}")
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dtype.itemsize
        if nbytes > len(payload) - offset:
            raise WireProtocolError("array data extends past the frame")
        arrays.append(
            np.frombuffer(payload, dtype=dtype, count=count, offset=offset)
            .reshape(shape)
            .copy()
        )
        offset += nbytes
    if offset != len(payload):
        raise WireProtocolError(f"{len(payload) - offset} trailing bytes after the last array")
    return body, arrays


# ---------------------------------------------------------------- typed errors


def encode_error(exc: BaseException) -> bytes:
    """Payload bytes describing a worker-side exception (type name + message)."""
    return encode_payload({"type": type(exc).__name__, "message": str(exc)})


def decode_error(payload: bytes) -> ReproError:
    """The client-side exception for an error frame's payload.

    :mod:`repro.errors` types come back as themselves; everything else as
    :class:`RemoteJudgeError` carrying the original type name.
    """
    body, _ = decode_payload(payload)
    if not isinstance(body, dict):
        raise WireProtocolError(f"malformed error frame body: {body!r}")
    name = str(body.get("type", "Exception"))
    message = str(body.get("message", ""))
    known = getattr(errors_mod, name, None)
    if isinstance(known, type) and issubclass(known, ReproError):
        return known(message)
    return RemoteJudgeError(f"{name}: {message}")


# ------------------------------------------------------------------- sync I/O


def encode_frame(frame_type: int, payload: bytes = b"") -> bytes:
    """Header + payload bytes for one frame."""
    return _HEADER.pack(len(payload), WIRE_VERSION, frame_type) + payload


def send_frame(sock, frame_type: int, payload: bytes = b"") -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(frame_type, payload))


def _parse_header(header: bytes, max_frame_bytes: int) -> tuple[int, int]:
    """(frame_type, payload_length) from header bytes; validates everything."""
    length, version, frame_type = _HEADER.unpack(header)
    if version != WIRE_VERSION:
        raise WireProtocolError(
            f"unknown wire protocol version {version} (this build speaks {WIRE_VERSION})"
        )
    if frame_type not in _KNOWN_FRAMES:
        raise WireProtocolError(f"unknown frame type {frame_type}")
    if length > max_frame_bytes:
        raise WireProtocolError(
            f"frame length prefix {length} exceeds the {max_frame_bytes}-byte bound"
        )
    return frame_type, length


def _recv_exactly(sock, n: int) -> bytes:
    """Exactly ``n`` bytes from a blocking socket; ``b""`` only at clean EOF
    before the first byte.  A connection dropping mid-read raises."""
    if n == 0:
        return b""
    chunks: list[bytes] = []
    received = 0
    while received < n:
        chunk = sock.recv(min(65536, n - received))
        if not chunk:
            if received == 0:
                return b""
            raise WireProtocolError(
                f"connection closed mid-frame ({received} of {n} bytes read)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_frame(sock, max_frame_bytes: int = MAX_FRAME_BYTES) -> tuple[int, bytes] | None:
    """Read one frame from a blocking socket.

    Returns ``(frame_type, payload)``, or ``None`` on a clean EOF at a frame
    boundary.  EOF *inside* a frame — header or payload — raises
    :class:`WireProtocolError` promptly; the caller never blocks on bytes
    that will not come, and never sees a partial frame as a whole one.
    """
    header = _recv_exactly(sock, _HEADER.size)
    if not header:
        return None
    frame_type, length = _parse_header(header, max_frame_bytes)
    payload = _recv_exactly(sock, length)
    if length and not payload:
        raise WireProtocolError("connection closed between frame header and payload")
    return frame_type, payload


# ------------------------------------------------------------------ async I/O


async def read_frame_async(
    reader, max_frame_bytes: int = MAX_FRAME_BYTES
) -> tuple[int, bytes] | None:
    """:func:`recv_frame` over an :class:`asyncio.StreamReader`."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireProtocolError(
            f"connection closed mid-frame header ({len(exc.partial)} of {_HEADER.size} bytes)"
        ) from exc
    frame_type, length = _parse_header(header, max_frame_bytes)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of {length} payload bytes)"
        ) from exc
    return frame_type, payload
