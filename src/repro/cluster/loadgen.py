"""Skewed serving-load generator and the single-vs-sharded throughput harness.

The shared core behind ``benchmarks/bench_sharded_serving.py`` and the CLI's
``serve-bench`` subcommand.  It models the streaming workload every service
produces:

* each request is one user's *fresh* profile (a new tweet — always a cold
  featurization, exactly as in a live stream) scored against a handful of
  resident candidate profiles drawn from a fixed pool;
* users are sampled from a seeded Zipf-like distribution (``p(rank k) ∝
  k^-s``), so a head of hot users dominates the mix the way real traffic
  does — which is precisely what per-flush deduplication and per-user shard
  caches exploit.

Two serving paths run the *same* request sequence from a cold cache:

* **single** — today's synchronous path: one ``predict_proba`` call per
  request on one :class:`repro.api.ColocationEngine` (caller-sized batches);
* **cluster** — a :class:`repro.cluster.MicroBatcher` coalescing concurrent
  requests over a :class:`repro.cluster.ShardedEngine`, with the same *total*
  cache budget;
* **workers** (``num_workers`` set) — the same micro-batcher over a
  :class:`repro.cluster.WorkerPool`, so featurization leaves the GIL and runs
  in worker *processes* — the tier that scales with cores.

The harness also pins correctness: the sharded engine's direct
``predict_proba`` must match the single engine bit-for-bit, and the
micro-batched results may differ only by last-mantissa-bit coalescing noise
(one BLAS call of a different shape).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.api import ColocationEngine, JudgeRequest, JudgeResponse
from repro.api.engine import EngineCacheInfo
from repro.cluster.batcher import MicroBatcher
from repro.cluster.gateway import WorkerPool
from repro.cluster.metrics import ClusterMetricsSnapshot
from repro.cluster.sharded import ShardedEngine
from repro.data.records import Pair, Profile, Tweet, Visit
from repro.errors import ConfigurationError
from repro.obs import format_stage_table, tracing


@dataclass(frozen=True)
class LoadConfig:
    """Shape of the synthetic serving load."""

    num_users: int = 256
    num_requests: int = 384
    pairs_per_request: int = 4
    history_len: int = 12
    #: Zipf exponent of the user mix; larger = more skewed.
    zipf_s: float = 1.1
    seed: int = 23


@dataclass(frozen=True)
class ServingRun:
    """One serving path's measured throughput."""

    label: str
    elapsed_s: float
    requests: int
    pairs: int
    cache: EngineCacheInfo
    #: Per-stage latency table (:func:`repro.obs.format_stage_table`) when
    #: the run was traced; ``None`` on the default untraced fast path, so
    #: the headline throughput numbers never pay the tracing overhead.
    stages: str | None = None

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else float("inf")

    @property
    def pairs_per_s(self) -> float:
        return self.pairs / self.elapsed_s if self.elapsed_s > 0 else float("inf")


def fit_serving_pipeline(seed: int = 5):
    """A small fitted HisRect pipeline + its dataset (the bench's judge)."""
    from repro.colocation import CoLocationPipeline, JudgeConfig, PipelineConfig
    from repro.data import build_dataset, tiny_dataset_config
    from repro.features import HisRectConfig
    from repro.ssl import SSLTrainingConfig
    from repro.text.skipgram import SkipGramConfig

    dataset = build_dataset(tiny_dataset_config(seed=seed))
    config = PipelineConfig(
        hisrect=HisRectConfig(content_dim=8, feature_dim=16, embedding_dim=8),
        ssl=SSLTrainingConfig(batch_size=4, max_iterations=20),
        judge=JudgeConfig(epochs=4),
        skipgram=SkipGramConfig(embedding_dim=12, epochs=1),
    )
    pipeline = CoLocationPipeline(config).fit(dataset)
    return pipeline, dataset


def _zipf_probabilities(num_users: int, s: float) -> np.ndarray:
    ranks = np.arange(1, num_users + 1, dtype=float)
    weights = ranks**-s
    return weights / weights.sum()


def _profile(registry, rng, words: list[str], uid: int, ts: float, history_len: int) -> Profile:
    anchor = registry.pois[int(rng.integers(len(registry.pois)))].center
    visits = []
    for _ in range(history_len):
        point = anchor.offset(
            north_m=float(rng.uniform(-400.0, 400.0)),
            east_m=float(rng.uniform(-400.0, 400.0)),
        )
        visits.append(Visit(ts=ts - float(rng.uniform(1.0, 1e5)), lat=point.lat, lon=point.lon))
    content = " ".join(rng.choice(words, size=int(rng.integers(5, 11))))
    tweet = Tweet(uid=uid, ts=ts, content=content)
    return Profile(uid=uid, tweet=tweet, visit_history=tuple(visits))


def generate_requests(registry, corpus: list[str], config: LoadConfig) -> list[list[Pair]]:
    """The request sequence: fresh query profile vs. resident candidates."""
    if config.num_users < 2:
        # Candidates must differ from the query user; one user has none.
        raise ConfigurationError("the load mix needs num_users >= 2")
    if config.num_requests < 1 or config.pairs_per_request < 1:
        raise ConfigurationError("the load mix needs num_requests >= 1 and pairs_per_request >= 1")
    rng = np.random.default_rng(config.seed)
    words = sorted({word for text in corpus for word in text.split()})
    if not words:
        words = ["here", "now"]
    probabilities = _zipf_probabilities(config.num_users, config.zipf_s)
    #: Zipf ranks map to shuffled uids so the hot users spread over shards.
    uids = rng.permutation(config.num_users)
    residents = [
        _profile(registry, rng, words, int(uid), ts=1e6, history_len=config.history_len)
        for uid in range(config.num_users)
    ]
    requests: list[list[Pair]] = []
    for step in range(config.num_requests):
        query_uid = int(uids[rng.choice(config.num_users, p=probabilities)])
        query = _profile(
            registry, rng, words, query_uid, ts=1e6 + step + 1, history_len=config.history_len
        )
        pairs: list[Pair] = []
        while len(pairs) < config.pairs_per_request:
            candidate_uid = int(uids[rng.choice(config.num_users, p=probabilities)])
            if candidate_uid == query_uid:
                continue
            pairs.append(Pair(left=query, right=residents[candidate_uid], co_label=None))
        requests.append(pairs)
    return requests


def run_single(
    engine: ColocationEngine, requests: list[list[Pair]], *, trace: bool = False
) -> tuple[ServingRun, list[np.ndarray]]:
    """Today's path: one synchronous ``predict_proba`` call per request.

    With ``trace=True`` the run executes under a scoped tracer (fresh
    registry) and the returned :class:`ServingRun` carries the per-stage
    latency table.
    """
    stages = None
    with tracing() if trace else nullcontext() as tracer:
        started = time.perf_counter()
        results = [engine.predict_proba(pairs) for pairs in requests]
        elapsed = time.perf_counter() - started
        if trace:
            stages = format_stage_table(tracer.registry)
    return (
        ServingRun(
            label="single engine",
            elapsed_s=elapsed,
            requests=len(requests),
            pairs=sum(len(r) for r in requests),
            cache=engine.cache_info(),
            stages=stages,
        ),
        results,
    )


def run_cluster(
    engine: ShardedEngine,
    requests: list[list[Pair]],
    *,
    max_batch: int = 256,
    max_delay_ms: float = 0.0,
    max_queue: int = 512,
    trace: bool = False,
) -> tuple[ServingRun, list[np.ndarray], ClusterMetricsSnapshot]:
    """The cluster path: concurrent submissions coalesced by a MicroBatcher.

    Requests are submitted as fast as the bounded queue admits them
    (``overflow="block"`` backpressure), so the batcher coalesces whatever
    accumulates while each flush is in flight — the steady state of a busy
    service.  The tracing scope encloses the batcher's whole lifetime so
    the flusher thread's ``queue_wait`` records land in the run's registry.
    """
    stages = None
    with tracing() if trace else nullcontext() as tracer:
        with MicroBatcher(
            engine,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            max_queue=max_queue,
            overflow="block",
        ) as batcher:
            started = time.perf_counter()
            futures = [batcher.submit_score(pairs) for pairs in requests]
            results = [future.result() for future in futures]
            elapsed = time.perf_counter() - started
        if trace:
            stages = format_stage_table(tracer.registry)
    # Snapshot after close(): the flusher records a flush's metrics *after*
    # resolving its futures, so a snapshot taken the moment the last result
    # lands can miss the final flush; close() joins the flusher first.
    snapshot = batcher.metrics.snapshot()
    return (
        ServingRun(
            label=f"sharded x{engine.num_shards} + micro-batch",
            elapsed_s=elapsed,
            requests=len(requests),
            pairs=sum(len(r) for r in requests),
            cache=engine.cache_info(),
            stages=stages,
        ),
        results,
        snapshot,
    )


def run_workers(
    pool: WorkerPool,
    requests: list[list[Pair]],
    *,
    max_batch: int = 256,
    max_delay_ms: float = 0.0,
    max_queue: int = 512,
    trace: bool = False,
) -> tuple[ServingRun, list[np.ndarray], ClusterMetricsSnapshot]:
    """The process tier: the same micro-batched submission over a WorkerPool.

    Identical batching knobs to :func:`run_cluster`, so the only variable is
    the transport underneath — shard threads vs. worker processes.  A traced
    run's stage table merges the gateway-side registry (``queue_wait``,
    ``wire_serialize``, ``wire_rtt``, ``score``) with every worker's
    ``stats`` snapshot (``gather``, ``featurize``) via
    :meth:`WorkerPool.obs_snapshot`.
    """
    stages = None
    with tracing() if trace else nullcontext():
        with MicroBatcher(
            pool,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            max_queue=max_queue,
            overflow="block",
        ) as batcher:
            started = time.perf_counter()
            futures = [batcher.submit_score(pairs) for pairs in requests]
            results = [future.result() for future in futures]
            elapsed = time.perf_counter() - started
        if trace:
            stages = format_stage_table(pool.obs_snapshot())
    snapshot = batcher.metrics.snapshot()
    return (
        ServingRun(
            label=f"workers x{pool.num_workers} + micro-batch",
            elapsed_s=elapsed,
            requests=len(requests),
            pairs=sum(len(r) for r in requests),
            cache=pool.cache_info(),
            stages=stages,
        ),
        results,
        snapshot,
    )


@dataclass(frozen=True)
class ComparisonReport:
    """Single-vs-cluster throughput over the same cold-cache request sequence."""

    single: ServingRun
    cluster: ServingRun
    metrics: ClusterMetricsSnapshot
    #: ``ShardedEngine.predict_proba`` agrees bit-for-bit with the single
    #: engine on every request (checked on a fresh, cold sharded engine).
    exact_match: bool
    #: Largest |Δ probability| between the micro-batched results and the
    #: single engine.  Coalescing flushes many requests as one BLAS call of a
    #: different shape, which may flip the last mantissa bit (~1e-16); the
    #: sharding itself contributes nothing (see ``exact_match``).
    coalescing_drift: float
    #: The typed ``serve`` path agrees across all three transports: the
    #: sharded engine's direct serve matches the single engine bit-for-bit
    #: (probabilities, decisions and thresholds), and decisions through the
    #: micro-batcher's ``submit_serve`` match except where a probability
    #: sits within coalescing drift of an explicit threshold.
    serve_exact: bool
    #: Largest |Δ probability| between ``submit_serve`` responses and the
    #: single engine's serve (the serve twin of ``coalescing_drift``).
    serve_drift: float
    #: The process tier's run (``None`` unless ``num_workers`` was set).
    workers: ServingRun | None = None
    #: ``WorkerPool.predict_proba`` agrees bit-for-bit with the single engine
    #: on every request (the wire gather contributes nothing).
    workers_exact: bool | None = None
    #: Largest |Δ probability| between the micro-batched worker results and
    #: the single engine (the process twin of ``coalescing_drift``).
    workers_drift: float | None = None
    #: Direct ``WorkerPool.serve`` matches the single engine bit-for-bit.
    workers_serve_exact: bool | None = None

    @property
    def speedup(self) -> float:
        return (
            self.single.elapsed_s / self.cluster.elapsed_s
            if self.cluster.elapsed_s > 0
            else float("inf")
        )

    @property
    def workers_speedup(self) -> float | None:
        if self.workers is None:
            return None
        return (
            self.single.elapsed_s / self.workers.elapsed_s
            if self.workers.elapsed_s > 0
            else float("inf")
        )

    def format(self) -> str:
        lines = [
            f"{'path':<28} {'elapsed s':>10} {'req/s':>10} {'pairs/s':>10} {'hit_rate':>9}",
        ]
        runs = [self.single, self.cluster] + ([self.workers] if self.workers else [])
        for run in runs:
            lines.append(
                f"{run.label:<28} {run.elapsed_s:>10.3f} {run.requests_per_s:>10.1f} "
                f"{run.pairs_per_s:>10.1f} {run.cache.hit_rate:>9.3f}"
            )
        lines.append("")
        lines.append(
            f"throughput speedup: {self.speedup:.2f}x  "
            f"(sharded probabilities bit-for-bit: {'yes' if self.exact_match else 'NO'}, "
            f"micro-batch coalescing drift: {self.coalescing_drift:.1e})"
        )
        lines.append(
            f"serve parity: exact={'yes' if self.serve_exact else 'NO'} "
            f"batched-serve drift: {self.serve_drift:.1e}"
        )
        if self.workers is not None:
            lines.append(
                f"process tier: speedup={self.workers_speedup:.2f}x "
                f"bit-for-bit: {'yes' if self.workers_exact else 'NO'} "
                f"drift: {self.workers_drift:.1e} "
                f"serve exact: {'yes' if self.workers_serve_exact else 'NO'}"
            )
        lines.append(self.metrics.format())
        for run in runs:
            if run.stages is not None:
                lines.append("")
                lines.append(f"stage breakdown — {run.label}:")
                lines.append(run.stages)
        return "\n".join(lines)


def compare_serving_paths(
    judge,
    requests: list[list[Pair]],
    *,
    num_shards: int = 4,
    cache_size: int = 4096,
    max_batch: int = 256,
    max_delay_ms: float = 0.0,
    max_queue: int = 512,
    num_workers: int | None = None,
    trace: bool = False,
) -> ComparisonReport:
    """Run both serving paths cold and compare throughput and results.

    ``trace=True`` runs every timed pass under a scoped tracer and attaches
    per-stage latency tables to the report; the default keeps the headline
    numbers untraced (tracing costs a few percent of throughput at most,
    but the benchmark guards compare against historical untraced numbers).

    Three passes: the single engine (throughput baseline), the micro-batched
    cluster (throughput), and an un-timed direct pass over a fresh cold
    :class:`ShardedEngine` pinning the bit-for-bit contract without the
    batcher's shape-dependent coalescing in the way.  With ``num_workers``
    set, a fourth pass runs the same micro-batched load over a cold
    :class:`WorkerPool` (the process tier) and pins its parity too.

    Every engine is constructed — and every shard's judge replica
    deep-copied — *before* the first pass runs: the judge's internal
    featurizer caches (history cache, text-vectorizer LRU) warm up during
    the single-engine pass, and replicas copied afterwards would inherit
    that warmth and fake part of the cluster's speedup.  (Worker processes
    are immune: they rebuild the judge from the saved bundle.)
    """
    single_engine = ColocationEngine(judge, cache_size=cache_size)
    with ShardedEngine(judge, num_shards=num_shards, cache_size=cache_size) as sharded, ShardedEngine(
        judge, num_shards=num_shards, cache_size=cache_size
    ) as fresh:
        single, single_results = run_single(single_engine, requests, trace=trace)
        cluster, cluster_results, snapshot = run_cluster(
            sharded,
            requests,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            max_queue=max_queue,
            trace=trace,
        )
        drift = max(
            (
                (float(np.abs(a - b).max()) if len(a) else 0.0)
                for a, b in zip(single_results, cluster_results)
            ),
            default=0.0,
        )
        exact = all(
            np.array_equal(single_result, fresh.predict_proba(pairs))
            for single_result, pairs in zip(single_results, requests)
        )
        serve_exact, serve_drift = _serve_parity(
            single_engine,
            fresh,
            sharded,
            requests,
            max_batch=max_batch,
            max_queue=max_queue,
        )
    workers = workers_exact = workers_drift = workers_serve_exact = None
    if num_workers is not None:
        with WorkerPool(judge, num_workers=num_workers, cache_size=cache_size) as pool:
            workers, worker_results, _ = run_workers(
                pool,
                requests,
                max_batch=max_batch,
                max_delay_ms=max_delay_ms,
                max_queue=max_queue,
                trace=trace,
            )
            workers_drift = max(
                (
                    (float(np.abs(a - b).max()) if len(a) else 0.0)
                    for a, b in zip(single_results, worker_results)
                ),
                default=0.0,
            )
            # Un-timed direct passes (results are cache-state independent):
            # the wire gather must contribute nothing to the probabilities,
            # and the pool's typed serve must match the single engine.
            workers_exact = all(
                np.array_equal(single_result, pool.predict_proba(pairs))
                for single_result, pairs in zip(single_results, requests)
            )
            step = max(1, len(requests) // 24)
            sample = [
                JudgeRequest(pairs=tuple(pairs), threshold=(None if index % 2 == 0 else 0.4))
                for index, pairs in enumerate(requests[::step])
            ]
            workers_serve_exact = all(
                got.probabilities == expected.probabilities
                and got.decisions == expected.decisions
                and got.threshold == expected.threshold
                for got, expected in zip(
                    (pool.serve(request) for request in sample),
                    (single_engine.serve(request) for request in sample),
                )
            )
    return ComparisonReport(
        single=single,
        cluster=cluster,
        metrics=snapshot,
        exact_match=exact,
        coalescing_drift=drift,
        serve_exact=serve_exact,
        serve_drift=serve_drift,
        workers=workers,
        workers_exact=workers_exact,
        workers_drift=workers_drift,
        workers_serve_exact=workers_serve_exact,
    )


def _decisions_match_modulo_drift(
    batched: JudgeResponse, expected: JudgeResponse, drift_bound: float = 1e-12
) -> bool:
    """Coalesced decisions must match except at an exact threshold graze.

    Explicit-threshold decisions cut the coalesced probabilities, so a pair
    whose uncoalesced probability sits within the coalescing drift of the
    threshold may legitimately flip (see ``JudgementCore.serve_batch``); a
    flip anywhere else is a real divergence.
    """
    return all(
        batched_decision == expected_decision
        or abs(probability - expected.threshold) <= drift_bound
        for batched_decision, expected_decision, probability in zip(
            batched.decisions, expected.decisions, expected.probabilities
        )
    )


def _serve_parity(
    single_engine: ColocationEngine,
    sharded_direct: ShardedEngine,
    sharded_batched: ShardedEngine,
    requests: list[list[Pair]],
    *,
    max_batch: int,
    max_queue: int,
    samples: int = 24,
) -> tuple[bool, float]:
    """The typed-serve twin of the bit-for-bit / drift checks.

    A sample of the request stream (alternating default and explicit
    per-request thresholds) is served three ways: the single engine, the
    sharded engine directly (must match bit-for-bit — probabilities,
    decisions, threshold), and a micro-batcher's ``submit_serve`` front door
    over the sharded engine (decisions must match modulo a threshold graze —
    see :func:`_decisions_match_modulo_drift`; probabilities may carry the
    usual shape-dependent coalescing drift, which is returned for the caller
    to bound).  Results are cache-state independent, so the warm engines
    from the throughput passes serve fine.
    """
    step = max(1, len(requests) // samples)
    serve_requests = [
        JudgeRequest(pairs=tuple(pairs), threshold=(None if index % 2 == 0 else 0.4))
        for index, pairs in enumerate(requests[::step])
    ]
    single_responses = [single_engine.serve(request) for request in serve_requests]
    exact = all(
        direct.probabilities == expected.probabilities
        and direct.decisions == expected.decisions
        and direct.threshold == expected.threshold
        for direct, expected in zip(
            (sharded_direct.serve(request) for request in serve_requests),
            single_responses,
        )
    )
    with MicroBatcher(
        sharded_batched,
        max_batch=max_batch,
        max_delay_ms=0.0,
        max_queue=max_queue,
        overflow="block",
    ) as batcher:
        futures = [batcher.submit_serve(request) for request in serve_requests]
        batched_responses = [future.result() for future in futures]
    exact = exact and all(
        batched.threshold == expected.threshold
        and _decisions_match_modulo_drift(batched, expected)
        for batched, expected in zip(batched_responses, single_responses)
    )
    drift = max(
        (
            max(
                (abs(a - b) for a, b in zip(batched.probabilities, expected.probabilities)),
                default=0.0,
            )
            for batched, expected in zip(batched_responses, single_responses)
        ),
        default=0.0,
    )
    return exact, drift
