"""The shard worker: one :class:`repro.api.ColocationEngine` in its own process.

Threads in :class:`repro.cluster.ShardedEngine` amortise call overhead but
share one GIL — featurization never runs truly in parallel.  A worker is the
process-tier shard: spawned via :func:`multiprocessing`'s ``spawn`` start
method, it rebuilds the fitted judge from a **bundle directory** written by
the gateway through the existing save/load path (:func:`repro.io.save_pipeline`
for pipelines; a documented pickle fallback for judges outside that format —
bootstrap only, never on the serving path), wraps it in a fresh
:class:`ColocationEngine` (its slice of the cluster's cache budget), connects
back to the gateway, and serves :mod:`repro.cluster.wire` frames in a loop.

Every engine surface crosses the wire — ``gather`` (the hot path: feature
rows as raw numpy payloads plus the call's own cache traffic),
``predict_proba`` / ``predict`` / ``probability_matrix``, typed
``serve_batch`` (the worker runs :class:`repro.api.JudgementCore.serve_batch`
through its engine), ``warm`` / ``cache_info`` / ``threshold``, and
``snapshot`` / ``restore`` so a respawned worker warm-starts from its
predecessor's cache export.  A dedicated ``INVALIDATE`` frame drops cached
rows by uid (or sweeps superseded revisions) without going through the CALL
path, so the gateway can propagate profile mutations to every worker.

Lifecycle: the worker exits cleanly on a ``SHUTDOWN`` frame, on EOF (the
gateway closed or died — no orphan processes), and on ``SIGTERM``.  An
exception inside an operation becomes a typed error frame
(:func:`repro.cluster.wire.encode_error`) and the loop keeps serving; only a
broken connection ends it.

``repro-hisrect worker`` runs the same loop standalone (``--listen``) over a
pipeline directory, for deployments where workers are not child processes.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle  # repro: allow(wire-safety) — judge bundle files only, never on the wire
import signal
import socket
import sys

import numpy as np

from repro.cluster import wire
from repro.core.protocols import key_revision
from repro.errors import ConfigurationError, WireProtocolError

#: Bundle manifest file name.
_MANIFEST = "bundle.json"


# -------------------------------------------------------------- judge bundles


def save_judge_bundle(judge, directory: str | pathlib.Path) -> pathlib.Path:
    """Write a fitted judge to ``directory`` for worker processes to load.

    Fitted :class:`repro.colocation.CoLocationPipeline` objects go through
    the canonical :func:`repro.io.save_pipeline` format (bitwise-exact
    restore, so worker feature rows match the parent's).  Anything else —
    registry-built judges outside the pipeline format, duck-typed test
    judges — falls back to a pickle file: acceptable at bootstrap (the
    gateway wrote it, the worker it spawned reads it), never on the wire.
    """
    from repro.colocation.pipeline import CoLocationPipeline

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if isinstance(judge, CoLocationPipeline):
        from repro.io.pipeline import save_pipeline

        save_pipeline(judge, directory / "pipeline")
        manifest = {"kind": "pipeline"}
    else:
        with open(directory / "judge.pkl", "wb") as handle:
            pickle.dump(judge, handle)  # repro: allow(wire-safety) — bundle bootstrap
        manifest = {"kind": "pickle"}
    (directory / _MANIFEST).write_text(json.dumps(manifest))
    return directory


def load_judge_bundle(directory: str | pathlib.Path):
    """Rebuild the judge a :func:`save_judge_bundle` directory describes."""
    directory = pathlib.Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise ConfigurationError(f"{directory} does not contain a worker bundle manifest")
    manifest = json.loads(manifest_path.read_text())
    kind = manifest.get("kind")
    if kind == "pipeline":
        from repro.io.pipeline import load_pipeline

        return load_pipeline(directory / "pipeline")
    if kind == "pickle":
        with open(directory / "judge.pkl", "rb") as handle:
            return pickle.load(handle)  # repro: allow(wire-safety) — bundle bootstrap
    raise ConfigurationError(f"unknown worker bundle kind {kind!r}")


# ----------------------------------------------------------- frame dispatching


def _profiles_from(body: dict) -> list:
    from repro.io.records_json import profile_from_dict

    return [profile_from_dict(p) for p in body.get("profiles", [])]


def _pairs_from(body: dict) -> list:
    from repro.io.records_json import pair_from_dict

    return [pair_from_dict(p) for p in body.get("pairs", [])]


def _keys_from(body: dict) -> list[tuple]:
    return [
        (int(k[0]), float(k[1]), str(k[2]), int(k[3]), int(k[4]))
        for k in body.get("keys", [])
    ]


def handle_call(engine, payload: bytes) -> bytes:
    """Decode one CALL payload, run it on the engine, encode the RESULT payload.

    Raising is fine — the caller turns any exception into an error frame.
    """
    from repro.api.messages import JudgeRequest

    body, arrays = wire.decode_payload(payload)
    if not isinstance(body, dict):
        raise WireProtocolError(f"malformed call body: {body!r}")
    op = body.get("op")
    if op == "gather":
        from repro.obs import STAGE_GATHER, get_tracer

        tracer = get_tracer()
        reply = {}
        if tracer.enabled:
            # Adopt the gateway's trace id (when one rode the CALL body) so
            # this worker's spans merge into the caller's trace; the stage
            # histogram lands in this process's registry either way, which
            # the "stats" op exports back to the gateway.
            trace = tracer.start_trace(trace_id=body.get("trace"))
            with tracer.activate(trace), tracer.stage(STAGE_GATHER):
                rows, stats = engine._resolve_features(_profiles_from(body))
            if body.get("trace"):
                reply["trace"] = trace.trace_id
                reply["spans"] = trace.stage_list()
        else:
            rows, stats = engine._resolve_features(_profiles_from(body))
        return wire.encode_payload(
            {
                **reply,
                "hits": stats.hits,
                "misses": stats.misses,
                "featurized": stats.featurized,
                "invalidated": stats.invalidated,
            },
            [rows],
        )
    if op == "features":
        return wire.encode_payload(None, [engine.features(_profiles_from(body))])
    if op == "predict_proba":
        return wire.encode_payload(None, [engine.predict_proba(_pairs_from(body))])
    if op == "predict":
        return wire.encode_payload(None, [engine.predict(_pairs_from(body))])
    if op == "probability_matrix":
        return wire.encode_payload(None, [engine.probability_matrix(_profiles_from(body))])
    if op == "serve_batch":
        responses = engine.serve_batch(
            [JudgeRequest.from_dict(r) for r in body.get("requests", [])]
        )
        return wire.encode_payload({"responses": [r.to_dict() for r in responses]})
    if op == "warm":
        return wire.encode_payload({"featurized": engine.warm(_profiles_from(body))})
    if op == "cache_info":
        info = engine.cache_info()
        return wire.encode_payload(
            {
                "hits": info.hits,
                "misses": info.misses,
                "evictions": info.evictions,
                "size": info.size,
                "maxsize": info.maxsize,
                "featurized": info.featurized,
                "invalidated": info.invalidated,
                "hot_hits": info.hot_hits,
                "cold_hits": info.cold_hits,
                "promotions": info.promotions,
                "demotions": info.demotions,
                "cold_size": info.cold_size,
            }
        )
    if op == "threshold":
        return wire.encode_payload({"threshold": float(engine.threshold)})
    if op == "stats":
        # The STATS op: this process's metrics-registry snapshot, for the
        # gateway to merge into a cluster-truthful view (obs_snapshot()).
        from repro.obs import get_registry

        return wire.encode_payload({"registry": get_registry().snapshot()})
    if op == "snapshot":
        export = engine.store.export()
        keys = [[k[0], k[1], k[2], k[3], key_revision(k)] for k in export]
        rows = [np.stack(list(export.values()))] if export else []
        return wire.encode_payload({"keys": keys}, rows)
    if op == "restore":
        keys = _keys_from(body)
        rows = arrays[0] if arrays else np.zeros((0, 0))
        if len(keys) != len(rows):
            raise WireProtocolError(
                f"restore carries {len(keys)} keys but {len(rows)} rows"
            )
        imported = engine.store.import_rows(dict(zip(keys, rows)))
        return wire.encode_payload({"imported": imported})
    raise ConfigurationError(f"unknown worker operation {op!r}")


def handle_invalidate(engine, payload: bytes) -> bytes:
    """Decode one INVALIDATE payload, drop the rows, encode the RESULT payload.

    The body is ``{"uids": [...]}`` for targeted invalidation or
    ``{"stale": true}`` for a superseded-revision sweep.
    """
    body, _ = wire.decode_payload(payload)
    if not isinstance(body, dict):
        raise WireProtocolError(f"malformed invalidate body: {body!r}")
    if body.get("stale"):
        dropped = engine.invalidate_stale()
    else:
        dropped = engine.invalidate([int(uid) for uid in body.get("uids", [])])
    return wire.encode_payload({"invalidated": int(dropped)})


def serve_connection(sock, engine) -> None:
    """Serve wire frames on a connected socket until SHUTDOWN or EOF.

    Operation errors become typed error frames and the loop continues; only
    a broken connection (or a shutdown) ends it.
    """
    while True:
        frame = wire.recv_frame(sock)
        if frame is None:
            return  # clean EOF: the peer is gone
        frame_type, payload = frame
        if frame_type == wire.FRAME_SHUTDOWN:
            return
        if frame_type == wire.FRAME_PING:
            wire.send_frame(sock, wire.FRAME_PONG, payload)
            continue
        if frame_type == wire.FRAME_INVALIDATE:
            try:
                result = handle_invalidate(engine, payload)
            except Exception as exc:
                wire.send_frame(sock, wire.FRAME_ERROR, wire.encode_error(exc))
                continue
            wire.send_frame(sock, wire.FRAME_RESULT, result)
            continue
        if frame_type != wire.FRAME_CALL:
            wire.send_frame(
                sock,
                wire.FRAME_ERROR,
                wire.encode_error(
                    WireProtocolError(f"unexpected frame type {frame_type} (expected CALL)")
                ),
            )
            continue
        try:
            result = handle_call(engine, payload)
        except Exception as exc:
            wire.send_frame(sock, wire.FRAME_ERROR, wire.encode_error(exc))
            continue
        wire.send_frame(sock, wire.FRAME_RESULT, result)


def _build_engine(
    judge,
    *,
    cache_size: int,
    threshold: float | None,
    batch_size: int,
    arena_dir: str | None = None,
):
    from repro.api.engine import ColocationEngine

    return ColocationEngine(
        judge,
        cache_size=cache_size,
        threshold=threshold,
        batch_size=batch_size,
        arena_dir=arena_dir,
    )


def _install_sigterm_exit() -> None:
    """Make SIGTERM unwind the serve loop instead of hard-killing the process."""
    try:
        signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(0))
    except ValueError:  # not the main thread (in-process tests): skip
        pass


def run_worker_client(
    judge,
    host: str,
    port: int,
    token: str,
    worker_id: int,
    *,
    cache_size: int = 4096,
    threshold: float | None = None,
    batch_size: int = 1024,
    arena_dir: str | None = None,
) -> None:
    """Connect to a gateway, identify with a HELLO frame, serve until shutdown.

    The HELLO carries ``worker_id`` + the spawn ``token``, so a stray
    connection cannot impersonate a worker.  The CLI's ``worker --connect``
    runs this over a loaded pipeline; spawned workers come in through
    :func:`worker_main`.  With ``arena_dir`` the engine tiers onto a memmap
    arena slice — a respawned worker pointed at the same slice maps its
    predecessor's warm set off disk instead of receiving it over the wire.
    """
    _install_sigterm_exit()
    engine = _build_engine(
        judge,
        cache_size=cache_size,
        threshold=threshold,
        batch_size=batch_size,
        arena_dir=arena_dir,
    )
    sock = socket.create_connection((host, port), timeout=60.0)
    try:
        sock.settimeout(None)
        # Request/response round trips dominate the wire: never Nagle them.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        wire.send_frame(
            sock,
            wire.FRAME_HELLO,
            wire.encode_payload(
                {"worker_id": worker_id, "token": token, "pid": os.getpid()}
            ),
        )
        serve_connection(sock, engine)
    finally:
        sock.close()
        engine.close()  # flush + compact the arena slice on clean exit


def worker_main(
    bundle_dir: str,
    host: str,
    port: int,
    token: str,
    worker_id: int,
    cache_size: int = 4096,
    threshold: float | None = None,
    batch_size: int = 1024,
    arena_dir: str | None = None,
) -> None:
    """Entry point of a spawned worker process: load the bundle, then serve.

    Tracing is enabled process-wide here: a worker process exists only to
    serve, so its registry accumulates stage/store-event histograms from
    boot and the gateway's ``stats`` op always has something to merge.  The
    per-call trace-id spans still only ride replies when the gateway asks
    (a ``trace`` key on the CALL body).
    """
    from repro.obs import configure

    configure(enabled=True)
    run_worker_client(
        load_judge_bundle(bundle_dir),
        host,
        port,
        token,
        worker_id,
        cache_size=cache_size,
        threshold=threshold,
        batch_size=batch_size,
        arena_dir=arena_dir,
    )


def run_worker_listener(
    judge,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    cache_size: int = 4096,
    threshold: float | None = None,
    batch_size: int = 1024,
    arena_dir: str | None = None,
    once: bool = False,
    ready=None,
) -> None:
    """Standalone mode: listen and serve clients one connection at a time.

    The CLI's ``repro-hisrect worker --listen`` runs this over a loaded
    pipeline; ``ready`` (if given) is called with the bound ``(host, port)``
    once the socket listens — the hook tests and process managers use to
    learn an ephemeral port.  ``once`` exits after the first connection.
    """
    _install_sigterm_exit()
    engine = _build_engine(
        judge,
        cache_size=cache_size,
        threshold=threshold,
        batch_size=batch_size,
        arena_dir=arena_dir,
    )
    listener = socket.create_server((host, port))
    try:
        if ready is not None:
            ready(listener.getsockname()[:2])
        while True:
            client, _ = listener.accept()
            try:
                client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                serve_connection(client, engine)
            finally:
                client.close()
            if once:
                return
    finally:
        listener.close()
        engine.close()
