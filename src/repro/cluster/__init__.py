"""``repro.cluster`` — sharded, micro-batched serving over the engine.

PRs 2–3 made every per-profile cost batch-capable; this subsystem turns those
batch kernels into *concurrent throughput*.  Three pieces compose:

* :class:`ShardedEngine` — N hash-partitioned :class:`repro.api.ColocationEngine`
  shards, each owning a disjoint slice of users and its own bounded feature
  cache; feature gathering fans out across shards on a thread pool, and pair
  scoring reuses the engine's exact chunking so results are bit-for-bit the
  single engine's.  Shard caches snapshot/restore for worker warm-start.
* :class:`WorkerPool` — the process tier: ``num_workers`` worker *processes*
  (:mod:`repro.cluster.worker`), each rebuilt from the fitted judge via the
  save/load bundle and owning a hash slice of the user population, behind an
  asyncio gateway speaking the length-prefixed binary protocol of
  :mod:`repro.cluster.wire` (JSON bodies + raw numpy payloads — no pickle on
  the hot path).  Feature gathers fan out across worker sockets concurrently,
  so featurization escapes the GIL; worker death fails pending calls fast
  with :class:`repro.errors.WorkerCrashError` and can respawn-with-restore.
* :class:`MicroBatcher` — an async request coalescer: concurrent ``score`` /
  ``probability_matrix`` / ``warm`` / typed ``serve`` requests accumulate up
  to ``max_batch``/``max_delay_ms`` and flush as one featurize+score call
  (serves via the shared core's ``serve_batch``), with a bounded queue and
  explicit backpressure (:class:`repro.errors.EngineOverloadError` vs.
  blocking).  The batcher speaks the full engine surface, so services can be
  fronted by one — and it stacks on a :class:`WorkerPool` as readily as on a
  :class:`ShardedEngine`.

All four transports delegate their decision/serve logic to one
:class:`repro.api.JudgementCore`, so threshold rules, fallbacks and cache
accounting exist exactly once; parity is pinned by
``tests/cluster/test_serving_parity.py``.
* :class:`ClusterMetrics` — merged per-shard cache statistics, flush/batch
  counters, worker death/respawn incidents and latency percentiles in one
  thread-safe snapshot.

:mod:`repro.cluster.loadgen` carries the skewed load generator behind
``benchmarks/bench_sharded_serving.py`` and the CLI's ``serve-bench``.
"""

from repro.cluster.batcher import MicroBatcher
from repro.cluster.gateway import WorkerPool
from repro.cluster.metrics import ClusterMetrics, ClusterMetricsSnapshot
from repro.cluster.sharded import ShardedEngine, shard_index

__all__ = [
    "ClusterMetrics",
    "ClusterMetricsSnapshot",
    "MicroBatcher",
    "ShardedEngine",
    "WorkerPool",
    "shard_index",
]
