"""``repro.cluster`` — sharded, micro-batched serving over the engine.

PRs 2–3 made every per-profile cost batch-capable; this subsystem turns those
batch kernels into *concurrent throughput*.  Three pieces compose:

* :class:`ShardedEngine` — N hash-partitioned :class:`repro.api.ColocationEngine`
  shards, each owning a disjoint slice of users and its own bounded feature
  cache; feature gathering fans out across shards on a thread pool, and pair
  scoring reuses the engine's exact chunking so results are bit-for-bit the
  single engine's.  Shard caches snapshot/restore for worker warm-start.
* :class:`MicroBatcher` — an async request coalescer: concurrent ``score`` /
  ``probability_matrix`` / ``warm`` / typed ``serve`` requests accumulate up
  to ``max_batch``/``max_delay_ms`` and flush as one featurize+score call
  (serves via the shared core's ``serve_batch``), with a bounded queue and
  explicit backpressure (:class:`repro.errors.EngineOverloadError` vs.
  blocking).  The batcher speaks the full engine surface, so services can be
  fronted by one.

All three transports delegate their decision/serve logic to one
:class:`repro.api.JudgementCore`, so threshold rules, fallbacks and cache
accounting exist exactly once; parity is pinned by
``tests/cluster/test_serving_parity.py``.
* :class:`ClusterMetrics` — merged per-shard cache statistics, flush/batch
  counters and latency percentiles in one thread-safe snapshot.

:mod:`repro.cluster.loadgen` carries the skewed load generator behind
``benchmarks/bench_sharded_serving.py`` and the CLI's ``serve-bench``.
"""

from repro.cluster.batcher import MicroBatcher
from repro.cluster.metrics import ClusterMetrics, ClusterMetricsSnapshot
from repro.cluster.sharded import ShardedEngine, shard_index

__all__ = [
    "ClusterMetrics",
    "ClusterMetricsSnapshot",
    "MicroBatcher",
    "ShardedEngine",
    "shard_index",
]
