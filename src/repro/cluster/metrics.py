""":class:`ClusterMetrics` — the numbers an operator needs from a cluster.

Aggregates four kinds of signal:

* **cache** — per-shard :class:`repro.api.EngineCacheInfo` snapshots and
  their cluster-level merge (:meth:`EngineCacheInfo.merge`), pulled live from
  the attached engine and published as registry gauges;
* **throughput** — requests/pairs served, flush count and mean flush size
  (how well the micro-batcher is coalescing), rejections (how often
  backpressure fired);
* **latency** — per-request enqueue→result percentiles from a **fixed-bucket**
  :class:`repro.obs.Histogram`.  Memory is O(buckets) no matter how many
  requests are observed (the old sliding-deque-plus-``np.percentile`` window
  grew with traffic); percentiles are exact to bucket resolution — the
  reported value is the upper bound of the bucket holding the requested rank,
  clamped to the observed min/max, so it is never off by more than one bucket
  width (sub-millisecond below 10 ms on the default bounds);
* **liveness** — per-worker health + last-seen timestamps fed by the
  :class:`repro.cluster.WorkerPool` PING/PONG heartbeat.

Every counter lives in a :class:`repro.obs.MetricsRegistry`, so the same
numbers are available as a Prometheus-style exposition via :meth:`to_text`.
All observation methods are thread-safe; :meth:`snapshot` returns one frozen,
printable :class:`ClusterMetricsSnapshot`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.api.engine import EngineCacheInfo
from repro.obs import MetricsRegistry


@dataclass(frozen=True)
class ClusterMetricsSnapshot:
    """One consistent, frozen view of the cluster's operational counters."""

    #: Requests completed (every kind: score, matrix, warm, serve).
    requests: int
    #: Typed ``serve`` requests among them (the JudgeRequest front door).
    serve_requests: int
    #: Pairs scored across all score and serve requests.
    pairs_scored: int
    #: Batches flushed by the micro-batcher.
    flushes: int
    #: Submissions rejected by backpressure.
    rejections: int
    #: Queue depth observed at the most recent flush.
    queue_depth: int
    #: Mean requests per flush (0.0 before the first flush).
    mean_flush_requests: float
    #: Enqueue-to-result latency percentiles, in ms (bucket resolution).
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    #: Merged cache statistics (``None`` when no engine is attached).
    cache: EngineCacheInfo | None
    #: Per-shard cache statistics (empty for a single, unsharded engine).
    shard_caches: tuple[EngineCacheInfo, ...]
    #: Process-tier incidents: workers that died (connection lost / killed)
    #: and respawns the gateway performed.  Always 0 for in-process tiers.
    worker_deaths: int = 0
    worker_respawns: int = 0
    #: Cache rows dropped by explicit invalidation calls routed through the
    #: batcher (profile mutations superseding cached feature rows).
    invalidated_rows: int = 0
    #: Heartbeat view, ``(worker index, healthy)`` — empty when no pool
    #: heartbeat feeds this metrics object.
    worker_health: tuple[tuple[int, bool], ...] = ()
    #: ``(worker index, last healthy heartbeat)`` on the metrics clock.
    worker_last_seen: tuple[tuple[int, float], ...] = ()

    def format(self) -> str:
        """A compact multi-line operator report."""
        lines = [
            f"requests={self.requests} serves={self.serve_requests} "
            f"pairs={self.pairs_scored} "
            f"flushes={self.flushes} mean_flush={self.mean_flush_requests:.1f} "
            f"rejections={self.rejections} queue_depth={self.queue_depth}",
            f"latency ms: p50={self.latency_p50_ms:.2f} "
            f"p90={self.latency_p90_ms:.2f} p99={self.latency_p99_ms:.2f}",
        ]
        if self.worker_deaths or self.worker_respawns:
            lines.append(
                f"workers: deaths={self.worker_deaths} respawns={self.worker_respawns}"
            )
        if self.worker_health:
            up = sum(1 for _, healthy in self.worker_health if healthy)
            lines.append(f"heartbeat: up={up}/{len(self.worker_health)}")
        if self.invalidated_rows:
            lines.append(f"invalidated_rows={self.invalidated_rows}")
        if self.cache is not None:
            lines.append(
                f"cache: size={self.cache.size}/{self.cache.maxsize} "
                f"hit_rate={self.cache.hit_rate:.3f} featurized={self.cache.featurized}"
            )
            tiered = (
                self.cache.cold_hits
                or self.cache.promotions
                or self.cache.demotions
                or self.cache.cold_size
            )
            if tiered:  # only clusters running a cold tier get the extra line
                lines.append(
                    f"tiers: hot_hits={self.cache.hot_hits} "
                    f"cold_hits={self.cache.cold_hits} cold_size={self.cache.cold_size} "
                    f"promotions={self.cache.promotions} demotions={self.cache.demotions}"
                )
        for index, info in enumerate(self.shard_caches):
            lines.append(
                f"  shard {index}: size={info.size}/{info.maxsize} "
                f"hit_rate={info.hit_rate:.3f} featurized={info.featurized}"
            )
        return "\n".join(lines)


class ClusterMetrics:
    """Thread-safe counters for a serving cluster, built on ``repro.obs``.

    Every number lives in a :class:`repro.obs.MetricsRegistry` metric, so the
    same state that feeds :meth:`snapshot` also renders as a Prometheus-style
    exposition (:meth:`to_text`) and merges with worker-process snapshots.

    Parameters
    ----------
    engine:
        Optional engine whose cache statistics the snapshot should include;
        anything with ``cache_info()`` works, and engines that also expose
        ``shard_cache_infos()`` (the :class:`repro.cluster.ShardedEngine`)
        get per-shard breakdowns.
    latency_window:
        **Ignored** (kept for call-site compatibility).  Latency percentiles
        now come from a fixed-bucket histogram whose memory never grows with
        request count; they are exact to bucket resolution (the bucket's
        upper bound clamped to the observed min/max — sub-millisecond below
        10 ms on the default bounds) instead of exact over a sliding window.
    registry:
        The registry to declare metrics in (a fresh private one by default).
    time_fn:
        Clock for heartbeat last-seen stamps (``time.monotonic`` default);
        injectable so tests assert exact timestamps.
    """

    def __init__(
        self,
        engine=None,
        latency_window: int = 4096,
        *,
        registry: MetricsRegistry | None = None,
        time_fn: Callable[[], float] | None = None,
    ):
        del latency_window  # superseded by fixed histogram buckets
        self._engine = engine
        self._time = time_fn if time_fn is not None else time.monotonic
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._requests = r.counter(
            "repro_cluster_requests_total", "Requests completed (all kinds)"
        )
        self._serves = r.counter(
            "repro_cluster_serve_requests_total", "Typed serve requests completed"
        )
        self._pairs = r.counter(
            "repro_cluster_pairs_scored_total", "Pairs scored (score + serve)"
        )
        self._flushes = r.counter(
            "repro_cluster_flushes_total", "Micro-batch flushes"
        )
        self._flush_requests = r.counter(
            "repro_cluster_flush_requests_total", "Requests across all flushes"
        )
        self._rejections = r.counter(
            "repro_cluster_rejections_total", "Submissions shed by backpressure"
        )
        self._queue_depth = r.gauge(
            "repro_cluster_queue_depth", "Queue depth at the most recent flush"
        )
        self._latency = r.histogram(
            "repro_request_latency_ms", "Enqueue-to-result request latency (ms)"
        )
        self._worker_deaths = r.counter(
            "repro_cluster_worker_deaths_total", "Worker processes lost"
        )
        self._worker_respawns = r.counter(
            "repro_cluster_worker_respawns_total", "Workers respawned by the gateway"
        )
        self._invalidated_rows = r.counter(
            "repro_cluster_invalidated_rows_total",
            "Cache rows dropped by explicit invalidation",
        )
        self._worker_up = r.gauge(
            "repro_worker_up", "Heartbeat liveness per worker (1 up, 0 down)",
            labels=("worker",),
        )
        self._worker_last_seen = r.gauge(
            "repro_worker_last_seen_seconds",
            "Metrics-clock timestamp of the last healthy heartbeat per worker",
            labels=("worker",),
        )
        #: Guards the heartbeat view: registry metrics carry their own locks,
        #: but the last-seen bookkeeping below is a read-modify-write.
        self._lock = threading.Lock()
        #: worker index -> (healthy, last_seen) for the snapshot view.
        self._heartbeats: dict[int, tuple[bool, float]] = {}  # guarded-by: _lock

    # ------------------------------------------------------------ observation
    def observe_flush(
        self,
        num_requests: int,
        num_pairs: int,
        queue_depth: int,
        elapsed_ms: float,
        num_serves: int = 0,
    ) -> None:
        """Record one completed micro-batch flush.

        ``num_serves`` counts the typed ``serve`` requests among
        ``num_requests`` (0 for flushes predating the serve kind).
        """
        self._flushes.inc()
        self._requests.inc(num_requests)
        self._serves.inc(num_serves)
        self._flush_requests.inc(num_requests)
        self._pairs.inc(num_pairs)
        self._queue_depth.set(queue_depth)

    def observe_latency(self, latency_ms: float) -> None:
        """Record one request's enqueue-to-result latency."""
        self._latency.observe(float(latency_ms))

    def observe_rejection(self) -> None:
        """Record one submission shed by backpressure."""
        self._rejections.inc()

    def observe_worker_death(self) -> None:
        """Record one worker process lost (killed, crashed, connection broke)."""
        self._worker_deaths.inc()

    def observe_worker_respawn(self) -> None:
        """Record one worker the gateway respawned after a death."""
        self._worker_respawns.inc()

    def observe_invalidation(self, rows: int) -> None:
        """Record cache rows dropped by one invalidation call."""
        self._invalidated_rows.inc(int(rows))

    def observe_heartbeat(self, worker: int, healthy: bool, rtt_ms: float | None = None) -> None:
        """Record one heartbeat probe result for a worker.

        A healthy beat refreshes the worker's last-seen stamp (on the
        injected clock); an unhealthy one only flips the liveness gauge, so
        last-seen keeps pointing at the most recent proof of life.
        """
        worker = int(worker)
        label = str(worker)
        self._worker_up.labels(worker=label).set(1.0 if healthy else 0.0)
        with self._lock:  # last-seen carry-over is a read-modify-write
            previous = self._heartbeats.get(worker)
            last_seen = previous[1] if previous is not None else 0.0
            if healthy:
                last_seen = self._time()
                self._worker_last_seen.labels(worker=label).set(last_seen)
            self._heartbeats[worker] = (bool(healthy), last_seen)

    # --------------------------------------------------------------- snapshot
    def snapshot(self) -> ClusterMetricsSnapshot:
        """Freeze the current counters (and live cache statistics) into one view."""
        flushes = int(self._flushes.value)
        cache = None
        shard_caches: tuple[EngineCacheInfo, ...] = ()
        if self._engine is not None:
            if hasattr(self._engine, "shard_cache_infos"):
                shard_caches = self._engine.shard_cache_infos()
                cache = EngineCacheInfo.merge(shard_caches)
            elif hasattr(self._engine, "cache_info"):
                cache = self._engine.cache_info()
        if cache is not None:
            self._publish_cache(cache)
        p50, p90, p99 = self._latency.percentiles()
        with self._lock:
            heartbeats = sorted(self._heartbeats.items())
        return ClusterMetricsSnapshot(
            requests=int(self._requests.value),
            serve_requests=int(self._serves.value),
            pairs_scored=int(self._pairs.value),
            flushes=flushes,
            rejections=int(self._rejections.value),
            queue_depth=int(self._queue_depth.value),
            mean_flush_requests=(
                self._flush_requests.value / flushes if flushes else 0.0
            ),
            latency_p50_ms=p50,
            latency_p90_ms=p90,
            latency_p99_ms=p99,
            cache=cache,
            shard_caches=shard_caches,
            worker_deaths=int(self._worker_deaths.value),
            worker_respawns=int(self._worker_respawns.value),
            invalidated_rows=int(self._invalidated_rows.value),
            worker_health=tuple(
                (index, healthy) for index, (healthy, _) in heartbeats
            ),
            worker_last_seen=tuple(
                (index, last_seen) for index, (_, last_seen) in heartbeats
            ),
        )

    def _publish_cache(self, cache: EngineCacheInfo) -> None:
        """Mirror the engine's cache statistics into registry gauges."""
        r = self.registry
        for name, value in (
            ("repro_cache_size", cache.size),
            ("repro_cache_maxsize", cache.maxsize),
            ("repro_cache_hits", cache.hits),
            ("repro_cache_misses", cache.misses),
            ("repro_cache_featurized", cache.featurized),
            ("repro_cache_hot_hits", cache.hot_hits),
            ("repro_cache_cold_hits", cache.cold_hits),
            ("repro_cache_cold_size", cache.cold_size),
            ("repro_cache_promotions", cache.promotions),
            ("repro_cache_demotions", cache.demotions),
        ):
            r.gauge(name, "Engine feature-cache statistic (from cache_info)").set(
                float(value)
            )

    def to_text(self) -> str:
        """Prometheus-style exposition of this object's registry (refreshes
        the cache gauges first)."""
        self.snapshot()
        return self.registry.to_text()
