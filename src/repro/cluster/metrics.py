""":class:`ClusterMetrics` — the numbers an operator needs from a cluster.

Aggregates three kinds of signal:

* **cache** — per-shard :class:`repro.api.EngineCacheInfo` snapshots and
  their cluster-level merge (:meth:`EngineCacheInfo.merge`), pulled live from
  the attached engine;
* **throughput** — requests/pairs served, flush count and mean flush size
  (how well the micro-batcher is coalescing), rejections (how often
  backpressure fired);
* **latency** — per-request enqueue→result percentiles over a bounded sliding
  window of recent requests.

All observation methods are thread-safe; :meth:`snapshot` returns one frozen,
printable :class:`ClusterMetricsSnapshot`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.api.engine import EngineCacheInfo


@dataclass(frozen=True)
class ClusterMetricsSnapshot:
    """One consistent, frozen view of the cluster's operational counters."""

    #: Requests completed (every kind: score, matrix, warm, serve).
    requests: int
    #: Typed ``serve`` requests among them (the JudgeRequest front door).
    serve_requests: int
    #: Pairs scored across all score and serve requests.
    pairs_scored: int
    #: Batches flushed by the micro-batcher.
    flushes: int
    #: Submissions rejected by backpressure.
    rejections: int
    #: Queue depth observed at the most recent flush.
    queue_depth: int
    #: Mean requests per flush (0.0 before the first flush).
    mean_flush_requests: float
    #: Enqueue-to-result latency percentiles over the recent window, in ms.
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    #: Merged cache statistics (``None`` when no engine is attached).
    cache: EngineCacheInfo | None
    #: Per-shard cache statistics (empty for a single, unsharded engine).
    shard_caches: tuple[EngineCacheInfo, ...]
    #: Process-tier incidents: workers that died (connection lost / killed)
    #: and respawns the gateway performed.  Always 0 for in-process tiers.
    worker_deaths: int = 0
    worker_respawns: int = 0
    #: Cache rows dropped by explicit invalidation calls routed through the
    #: batcher (profile mutations superseding cached feature rows).
    invalidated_rows: int = 0

    def format(self) -> str:
        """A compact multi-line operator report."""
        lines = [
            f"requests={self.requests} serves={self.serve_requests} "
            f"pairs={self.pairs_scored} "
            f"flushes={self.flushes} mean_flush={self.mean_flush_requests:.1f} "
            f"rejections={self.rejections} queue_depth={self.queue_depth}",
            f"latency ms: p50={self.latency_p50_ms:.2f} "
            f"p90={self.latency_p90_ms:.2f} p99={self.latency_p99_ms:.2f}",
        ]
        if self.worker_deaths or self.worker_respawns:
            lines.append(
                f"workers: deaths={self.worker_deaths} respawns={self.worker_respawns}"
            )
        if self.invalidated_rows:
            lines.append(f"invalidated_rows={self.invalidated_rows}")
        if self.cache is not None:
            lines.append(
                f"cache: size={self.cache.size}/{self.cache.maxsize} "
                f"hit_rate={self.cache.hit_rate:.3f} featurized={self.cache.featurized}"
            )
            tiered = (
                self.cache.cold_hits
                or self.cache.promotions
                or self.cache.demotions
                or self.cache.cold_size
            )
            if tiered:  # only clusters running a cold tier get the extra line
                lines.append(
                    f"tiers: hot_hits={self.cache.hot_hits} "
                    f"cold_hits={self.cache.cold_hits} cold_size={self.cache.cold_size} "
                    f"promotions={self.cache.promotions} demotions={self.cache.demotions}"
                )
        for index, info in enumerate(self.shard_caches):
            lines.append(
                f"  shard {index}: size={info.size}/{info.maxsize} "
                f"hit_rate={info.hit_rate:.3f} featurized={info.featurized}"
            )
        return "\n".join(lines)


class ClusterMetrics:
    """Thread-safe counters for a serving cluster.

    Parameters
    ----------
    engine:
        Optional engine whose cache statistics the snapshot should include;
        anything with ``cache_info()`` works, and engines that also expose
        ``shard_cache_infos()`` (the :class:`repro.cluster.ShardedEngine`)
        get per-shard breakdowns.
    latency_window:
        How many recent request latencies the percentile window keeps.
    """

    def __init__(self, engine=None, latency_window: int = 4096):
        self._engine = engine
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._requests = 0
        self._serves = 0
        self._pairs = 0
        self._flushes = 0
        self._rejections = 0
        self._flush_requests = 0
        self._last_queue_depth = 0
        self._worker_deaths = 0
        self._worker_respawns = 0
        self._invalidated_rows = 0

    # ------------------------------------------------------------ observation
    def observe_flush(
        self,
        num_requests: int,
        num_pairs: int,
        queue_depth: int,
        elapsed_ms: float,
        num_serves: int = 0,
    ) -> None:
        """Record one completed micro-batch flush.

        ``num_serves`` counts the typed ``serve`` requests among
        ``num_requests`` (0 for flushes predating the serve kind).
        """
        with self._lock:
            self._flushes += 1
            self._requests += num_requests
            self._serves += num_serves
            self._flush_requests += num_requests
            self._pairs += num_pairs
            self._last_queue_depth = queue_depth

    def observe_latency(self, latency_ms: float) -> None:
        """Record one request's enqueue-to-result latency."""
        with self._lock:
            self._latencies.append(float(latency_ms))

    def observe_rejection(self) -> None:
        """Record one submission shed by backpressure."""
        with self._lock:
            self._rejections += 1

    def observe_worker_death(self) -> None:
        """Record one worker process lost (killed, crashed, connection broke)."""
        with self._lock:
            self._worker_deaths += 1

    def observe_worker_respawn(self) -> None:
        """Record one worker the gateway respawned after a death."""
        with self._lock:
            self._worker_respawns += 1

    def observe_invalidation(self, rows: int) -> None:
        """Record cache rows dropped by one invalidation call."""
        with self._lock:
            self._invalidated_rows += int(rows)

    # --------------------------------------------------------------- snapshot
    def snapshot(self) -> ClusterMetricsSnapshot:
        """Freeze the current counters (and live cache statistics) into one view."""
        with self._lock:
            latencies = np.array(self._latencies) if self._latencies else np.zeros(0)
            requests = self._requests
            serves = self._serves
            pairs = self._pairs
            flushes = self._flushes
            rejections = self._rejections
            flush_requests = self._flush_requests
            queue_depth = self._last_queue_depth
            worker_deaths = self._worker_deaths
            worker_respawns = self._worker_respawns
            invalidated_rows = self._invalidated_rows
        if latencies.size:
            p50, p90, p99 = (float(p) for p in np.percentile(latencies, (50, 90, 99)))
        else:
            p50 = p90 = p99 = 0.0
        cache = None
        shard_caches: tuple[EngineCacheInfo, ...] = ()
        if self._engine is not None:
            if hasattr(self._engine, "shard_cache_infos"):
                shard_caches = self._engine.shard_cache_infos()
                cache = EngineCacheInfo.merge(shard_caches)
            elif hasattr(self._engine, "cache_info"):
                cache = self._engine.cache_info()
        return ClusterMetricsSnapshot(
            requests=requests,
            serve_requests=serves,
            pairs_scored=pairs,
            flushes=flushes,
            rejections=rejections,
            queue_depth=queue_depth,
            mean_flush_requests=flush_requests / flushes if flushes else 0.0,
            latency_p50_ms=p50,
            latency_p90_ms=p90,
            latency_p99_ms=p99,
            cache=cache,
            shard_caches=shard_caches,
            worker_deaths=worker_deaths,
            worker_respawns=worker_respawns,
            invalidated_rows=invalidated_rows,
        )
