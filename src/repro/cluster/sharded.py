""":class:`ShardedEngine` — N hash-partitioned :class:`ColocationEngine` shards.

One :class:`repro.api.ColocationEngine` owns one feature cache and serves one
caller at a time; the sharded engine splits the user population across ``N``
shards so (a) each shard's bounded LRU holds a *disjoint* slice of users — a
burst of traffic for one slice never churns another slice's cache — and (b)
feature gathering for a batch fans out across shards on a thread pool, one
featurize call per shard.

Routing is by a **stable** hash of the profile's ``uid`` (the first component
of :func:`repro.core.profile_key`): every profile a user emits lands on the
same shard, and — unlike the salted builtin ``hash`` — the mapping survives
process restarts, so a :meth:`snapshot` taken by one incarnation restores
cleanly into the next (even with a different shard count: :meth:`restore`
re-routes every row by key).

Pair scoring gathers feature rows from both owners and reuses the judge's
``score_feature_pairs`` with the engine's exact chunking, so
``ShardedEngine.predict_proba`` is bit-for-bit identical to a single
:class:`ColocationEngine` over the same fitted judge.  Judges without the
feature-level interface fall back to their own ``predict_proba`` (there is
nothing to shard — no per-profile features exist).

Python threads share one interpreter, so by default each shard drives its own
``copy.deepcopy`` of the judge: the judge's internal featurizer caches (text
vectorizer LRU, history cache) are not thread-safe, and replicating the model
per shard mirrors the production layout anyway (one replica per worker).
Featurization is additionally serialised *per shard* — concurrent top-level
callers fan out across shards but queue within one, so a replica's caches are
only ever mutated by one thread at a time.  Pass ``replicate_judge=False`` to
share one judge across shards and serialise featurization through a single
lock (memory-lean, gather parallelism disabled).
"""

from __future__ import annotations

import copy
import os
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

import numpy as np

from repro.api.core import CallCacheStats, JudgementCore
from repro.api.engine import ColocationEngine, EngineCacheInfo
from repro.api.messages import JudgeRequest, JudgeResponse
from repro.core.protocols import ProfileKey, profile_key
from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError
from repro.obs import get_tracer


def shard_index(key: "ProfileKey | int", num_shards: int) -> int:
    """The owning shard of a profile key (or bare uid): a stable uid hash.

    CRC-32 of the uid's canonical big-endian two's-complement bytes —
    deterministic across processes and platforms (builtin ``hash`` is salted
    per process), uniform enough for load spreading, and a function of the
    *user* only, so every profile version a user emits shares a shard with
    its history.  A bare ``int`` routes identically to any key of that uid —
    which is what lets ``invalidate(uids)`` find a user's owner without
    having any of their profiles in hand.

    The encoding is variable-length with an 8-byte floor: every uid in the
    signed 64-bit range keeps the fixed 8-byte encoding (so snapshots taken
    before the width fix still restore onto the same shards), and wider uids
    take exactly as many bytes as their two's-complement value needs — one
    canonical encoding per integer, so any int routes stably instead of
    raising ``OverflowError``.
    """
    uid = int(key) if isinstance(key, int) else int(key[0])
    # Minimal two's-complement width in bits (value bits + one sign bit),
    # floored at 64 so in-range uids keep the legacy 8-byte encoding.
    bits = (uid.bit_length() if uid >= 0 else (~uid).bit_length()) + 1
    length = max(8, (bits + 7) // 8)
    return zlib.crc32(uid.to_bytes(length, "big", signed=True)) % num_shards


def shard_arena_dir(
    root: "str | os.PathLike | None", index: int, prefix: str = "shard"
) -> str | None:
    """The arena slice directory of one shard/worker under a shared root.

    Slices are per-owner subdirectories (``shard-003``, ``worker-001``)
    because each arena file has exactly one writer; the shared *root* is
    what a whole cluster points at to warm-start.  ``None`` root → no arena.
    """
    if root is None:
        return None
    return os.path.join(os.fspath(root), f"{prefix}-{index:03d}")


def route_snapshot_rows(
    snapshot: tuple[dict[ProfileKey, np.ndarray], ...], num_shards: int
) -> list[dict[ProfileKey, np.ndarray]]:
    """Re-route per-shard cache exports onto ``num_shards`` owner slots.

    Every row lands on its key's stable-hash owner, so a snapshot taken at
    one shard/worker count restores correctly into another.  Source exports
    are interleaved position-wise (each source's coldest rows first, its
    hottest last) so when the restored capacity is smaller, the LRU bound
    evicts the approximately coldest rows across the whole snapshot rather
    than whichever source happened to import first.  Shared by
    :meth:`ShardedEngine.restore` and the process-tier
    :meth:`repro.cluster.WorkerPool.restore`.
    """
    routed: list[dict[ProfileKey, np.ndarray]] = [{} for _ in range(num_shards)]
    iterators = [iter(rows.items()) for rows in snapshot]
    while iterators:
        remaining = []
        for iterator in iterators:
            item = next(iterator, None)
            if item is None:
                continue
            key, row = item
            routed[shard_index(key, num_shards)][key] = row
            remaining.append(iterator)
        iterators = remaining
    return routed


class ShardedEngine:
    """Serve a fitted judge across hash-partitioned engine shards.

    Parameters
    ----------
    judge:
        Any fitted judge a :class:`ColocationEngine` accepts.
    num_shards:
        Number of engine shards (each with its own bounded feature cache).
    cache_size:
        **Total** feature-row budget, split evenly across shards — so a
        sharded engine and a single engine with the same ``cache_size`` hold
        the same number of rows and compare fairly.
    threshold / batch_size / registry:
        Forwarded to every shard (see :class:`ColocationEngine`).
    replicate_judge:
        Deep-copy the judge once per shard so shards featurize in parallel
        (default).  ``False`` shares the single judge instance and serialises
        featurization through a lock.  Judges without the feature-level
        interface are never replicated — every call path falls back to the
        original judge, so replicas would only waste memory.
    max_workers:
        Thread-pool width for per-shard feature gathering; defaults to
        ``num_shards``.
    arena_dir:
        Optional cold-tier root: each shard gets its own memmap arena slice
        ``arena_dir/shard-NNN`` behind its hot LRU, so evicted rows demote
        to disk instead of dropping and a restarted cluster pointed at the
        same directory warm-starts without re-featurizing.
    """

    def __init__(
        self,
        judge,
        *,
        num_shards: int = 4,
        cache_size: int = 4096,
        threshold: float | None = None,
        batch_size: int = 1024,
        registry=None,
        replicate_judge: bool = True,
        max_workers: int | None = None,
        arena_dir: str | os.PathLike | None = None,
    ):
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if cache_size < 0:
            raise ConfigurationError("cache_size must be >= 0")
        self.judge = judge
        self.num_shards = num_shards
        self.cache_size = cache_size
        self.batch_size = batch_size
        # Replicas exist to isolate the featurizers' internal caches, so a
        # judge without the feature-level interface never needs them (every
        # call path falls back to the original judge) — and a single shard
        # still gets one: sharing the caller's instance would let warmth
        # leak between engines that are supposed to be independent.
        feature_space = hasattr(judge, "featurize_profiles") and hasattr(
            judge, "score_feature_pairs"
        )
        self.replicated = replicate_judge and feature_space
        # Split the total budget exactly: the first cache_size % num_shards
        # shards take the remainder, so merged maxsize == cache_size.
        base, extra = divmod(cache_size, num_shards)
        self.arena_dir = arena_dir
        self.shards: list[ColocationEngine] = []
        for index in range(num_shards):
            shard_judge = copy.deepcopy(judge) if self.replicated else judge
            self.shards.append(
                ColocationEngine(
                    shard_judge,
                    cache_size=base + (1 if index < extra else 0),
                    threshold=threshold,
                    batch_size=batch_size,
                    registry=registry,
                    arena_dir=shard_arena_dir(arena_dir, index),
                )
            )
        # Featurization must be serialised per judge instance: the judges'
        # internal featurizer caches (text vectorizer LRU, history cache) are
        # not thread-safe.  With replicas that is one lock per shard —
        # concurrent top-level callers still fan out across shards — and with
        # a shared judge it is one lock for everything.
        if self.replicated:
            self._gather_locks = [threading.Lock() for _ in range(num_shards)]
        else:
            shared = threading.Lock()
            self._gather_locks = [shared] * num_shards
        workers = max_workers if max_workers is not None else num_shards
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, min(workers, num_shards)),
            thread_name_prefix="repro-shard",
        )
        #: The shared decision/serve logic — the exact object the single
        #: engine runs, parameterized on this cluster's cross-shard gather
        #: and shard 0's chunk-canonical scorer.  Feature-space calls go
        #: through shard 0's judge replica (the same one that scores);
        #: fallbacks for non-feature-space judges use the original ``judge``.
        self._core = JudgementCore(
            self.shards[0].judge,
            gather=self._resolve_features,
            scorer=self.shards[0]._score_batched,
            explicit_threshold=threshold,
            fallback_judge=judge,
        )

    # --------------------------------------------------------------- plumbing
    @property
    def threshold(self) -> float:
        """The decision threshold applied by :meth:`predict` and :meth:`serve`."""
        return self._core.threshold

    @property
    def registry(self):
        """The POI registry behind the judge (shard 0's view)."""
        return self.shards[0].registry

    @property
    def _feature_space(self) -> bool:
        return self._core.feature_space

    def shard_of(self, profile: Profile) -> int:
        """The index of the shard owning this profile's user."""
        return shard_index(profile_key(profile), self.num_shards)

    def close(self) -> None:
        """Shut down the gather pool and flush shard arenas (idempotent)."""
        self._pool.shutdown(wait=True)
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ----------------------------------------------------------- feature path
    def _gather(
        self, shard: int, profiles: list[Profile], trace=None
    ) -> tuple[np.ndarray, CallCacheStats]:
        # Trace activation rides a ContextVar, which does not cross into pool
        # threads — the caller's trace arrives explicitly and is re-activated
        # here so shard-side stages (featurize) land in the right trace.
        with self._gather_locks[shard]:
            with get_tracer().activate(trace):
                return self.shards[shard]._resolve_features(profiles)

    def _resolve_features(
        self, profiles: list[Profile]
    ) -> tuple[np.ndarray, CallCacheStats]:
        """Feature rows gathered from each profile's owner shard, in parallel,
        plus this call's own cache traffic summed over the shards."""
        tracer = get_tracer()
        trace = tracer.current_trace() if tracer.enabled else None
        owners = [self.shard_of(p) for p in profiles]
        groups: dict[int, list[int]] = {}
        for position, owner in enumerate(owners):
            groups.setdefault(owner, []).append(position)
        futures = {
            owner: self._pool.submit(
                self._gather, owner, [profiles[i] for i in positions], trace
            )
            for owner, positions in groups.items()
        }
        rows: np.ndarray | None = None
        stats = CallCacheStats(hits=0, misses=0, featurized=0)
        for owner, positions in groups.items():
            shard_rows, shard_stats = futures[owner].result()
            stats = stats + shard_stats
            if rows is None:
                rows = np.empty((len(profiles), shard_rows.shape[1]), dtype=shard_rows.dtype)
            rows[positions] = shard_rows
        assert rows is not None
        return rows, stats

    def _features_for(self, profiles: list[Profile]) -> np.ndarray:
        """Feature rows gathered from each profile's owner shard, in parallel."""
        rows, _ = self._resolve_features(profiles)
        return rows

    def _warm_shard(self, shard: int, profiles: list[Profile]) -> int:
        with self._gather_locks[shard]:
            return self.shards[shard].warm(profiles)

    def warm(self, profiles: list[Profile]) -> int:
        """Pre-featurize profiles into their owner shards; returns rows featurized.

        The count sums each shard's own per-call accounting, so concurrent
        callers driving the same cluster do not inflate each other's totals.
        """
        if not profiles or not self._feature_space:
            return 0
        groups: dict[int, list[Profile]] = {}
        for profile in profiles:
            groups.setdefault(self.shard_of(profile), []).append(profile)
        futures = [
            self._pool.submit(self._warm_shard, owner, group) for owner, group in groups.items()
        ]
        return sum(future.result() for future in futures)

    def features(self, profiles: list[Profile]) -> np.ndarray:
        """Cached frozen feature rows for profiles (gathered across shards)."""
        if not self._feature_space:
            raise ConfigurationError(
                "the wrapped judge has no feature-level interface (FeatureSpaceJudge)"
            )
        if not profiles:
            return self.shards[0].features([])
        return self._features_for(profiles)

    # ------------------------------------------------------------- cache admin
    def cache_info(self) -> EngineCacheInfo:
        """Cluster-level cache statistics (all shards merged)."""
        return EngineCacheInfo.merge(self.shard_cache_infos())

    def shard_cache_infos(self) -> tuple[EngineCacheInfo, ...]:
        """Per-shard cache statistics, index-aligned with :attr:`shards`."""
        return tuple(shard.cache_info() for shard in self.shards)

    def clear_cache(self) -> None:
        """Drop every shard's cached feature rows (keeps the counters)."""
        for shard in self.shards:
            shard.clear_cache()

    def invalidate(self, uids: Iterable[int]) -> int:
        """Drop the given users' cached rows on their owner shards.

        Each uid routes to its stable-hash owner — only that shard can hold
        the user's rows, so invalidation never touches (or locks) the other
        shards' caches.  Returns the total rows dropped.
        """
        groups: dict[int, list[int]] = {}
        for uid in uids:
            groups.setdefault(shard_index(int(uid), self.num_shards), []).append(int(uid))
        return sum(self.shards[owner].invalidate(group) for owner, group in groups.items())

    def invalidate_stale(self) -> int:
        """Drop superseded-revision rows on every shard; returns rows dropped."""
        return sum(shard.invalidate_stale() for shard in self.shards)

    def snapshot(self) -> tuple[dict[ProfileKey, np.ndarray], ...]:
        """Per-shard store exports, index-aligned with :attr:`shards`."""
        return tuple(shard.store.export() for shard in self.shards)

    def restore(self, snapshot: tuple[dict[ProfileKey, np.ndarray], ...]) -> int:
        """Repopulate shard stores from a :meth:`snapshot`; returns rows kept.

        Every row is re-routed by its key's stable hash, so a snapshot taken
        at one shard count restores correctly into another — see
        :func:`route_snapshot_rows` for the eviction-fairness interleave.
        """
        routed = route_snapshot_rows(snapshot, self.num_shards)
        return sum(
            shard.store.import_rows(rows) for shard, rows in zip(self.shards, routed)
        )

    # -------------------------------------------------------------- judgement
    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Co-location probability per pair; bit-for-bit the single engine's.

        Left and right profiles gather in one fan-out (each shard featurizes
        its misses as one batch); scoring reuses the engine's exact chunking
        over the full pair list, so neither sharding nor gather order changes
        a single bit of the result.
        """
        return self._core.predict_proba(pairs)

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """Binary co-location decisions per pair (judge's rule, like the engine)."""
        return self._core.predict(pairs)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """The ``N x N`` pairwise matrix, each profile featurized on its shard."""
        return self._core.probability_matrix(profiles)

    # ----------------------------------------------------------------- serving
    def serve(self, request: JudgeRequest) -> JudgeResponse:
        """Answer one typed judgement request (cache traffic summed over shards)."""
        return self._core.serve(request)

    def serve_batch(self, requests: Iterable[JudgeRequest]) -> list[JudgeResponse]:
        """Answer typed requests together, scoring them as one coalesced batch.

        See :meth:`repro.api.JudgementCore.serve_batch` — this is the entry
        point ``MicroBatcher.submit_serve`` flushes through.
        """
        return self._core.serve_batch(requests)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.cache_info()
        return (
            f"ShardedEngine(judge={type(self.judge).__name__}, shards={self.num_shards}, "
            f"cache={info.size}/{info.maxsize}, hit_rate={info.hit_rate:.2f})"
        )
