"""Command-line interface (the ``repro-hisrect`` entry point)."""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
