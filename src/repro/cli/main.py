"""The ``repro-hisrect`` command-line interface.

Subcommands cover the common workflows without writing Python:

* ``generate``   — build a synthetic dataset (``--preset`` by registry name)
  and save it to a directory.
* ``train``      — fit a co-location judge selected with ``--judge`` (any
  ``"judge"`` registry entry) on a saved dataset; pipeline-backed judges are
  saved to ``--out``.
* ``evaluate``   — Table 4 metrics of a saved pipeline on a saved dataset.
* ``infer-poi``  — Acc@K POI inference of a saved pipeline on a saved dataset.
* ``experiment`` — run one of the paper's table/figure experiments and print
  its report (the same runners the benchmark suite uses).
* ``serve-bench`` — fit a small judge and race the single-engine serving path
  against the sharded, micro-batched cluster on a skewed synthetic load
  (the same harness as ``benchmarks/bench_sharded_serving.py``); with
  ``--workers N`` the process-worker tier joins the race and ``--trace``
  appends per-stage latency breakdown tables.
* ``metrics``    — trace a small serving load end-to-end and dump the
  observability registry: the slowest request's span tree, the per-stage
  latency table and the Prometheus-style text exposition.
* ``worker``     — run one shard worker over a saved pipeline: ``--listen``
  accepts gateway connections standalone, ``--connect`` dials back into a
  running gateway (the loop spawned :class:`repro.cluster.WorkerPool` workers
  run in-process).
* ``components`` — list every registered component (judges, baselines,
  featurizer variants, dataset presets, training strategies).

Every subcommand prints a short, parseable report to stdout and returns a
process exit code (0 on success), so the CLI composes with shell scripts.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from dataclasses import replace

import numpy as np

import repro.registry as registry_mod
from repro.colocation import CoLocationPipeline, JudgeConfig, PipelineConfig
from repro.data import build_dataset
from repro.errors import ReproError
from repro.eval.metrics import accuracy_at_k, evaluate_judge
from repro.features import HisRectConfig
from repro.io import load_dataset, load_pipeline, save_dataset, save_pipeline
from repro.io.configs import config_to_dict
from repro.ssl import SSLTrainingConfig
from repro.text import SkipGramConfig
from repro.version import __version__

#: Legacy ``--mode`` values mapped onto registry judge names.
MODE_TO_JUDGE = {"two-phase": "hisrect", "one-phase": "one-phase"}


# ------------------------------------------------------------------- commands


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a synthetic dataset and save it to ``--out``."""
    config = registry_mod.build("preset", args.preset, {"scale": args.scale, "seed": args.seed})
    dataset = build_dataset(config, name=args.preset)
    directory = save_dataset(dataset, args.out)
    print(f"dataset saved to {directory}")
    for split, stats in dataset.statistics().items():
        rendered = ", ".join(f"{key}={value}" for key, value in stats.items())
        print(f"  {split}: {rendered}")
    return 0


def _pipeline_config(args: argparse.Namespace) -> PipelineConfig:
    return PipelineConfig(
        hisrect=HisRectConfig(
            content_dim=args.content_dim,
            feature_dim=args.feature_dim,
            embedding_dim=args.embedding_dim,
            seed=args.seed,
        ),
        ssl=SSLTrainingConfig(max_iterations=args.ssl_iterations, seed=args.seed + 1),
        judge=JudgeConfig(
            embedding_dim=args.embedding_dim,
            classifier_dim=args.embedding_dim,
            epochs=args.judge_epochs,
            seed=args.seed + 2,
        ),
        skipgram=SkipGramConfig(embedding_dim=args.word_dim, seed=args.seed + 3),
        seed=args.seed,
    )


def _selected_judge(args: argparse.Namespace) -> str:
    """Resolve ``--judge`` / deprecated ``--mode`` to a registry judge name."""
    if args.mode is not None:
        # DeprecationWarning alone is hidden by default warning filters, so
        # CLI users also get a plain stderr notice.
        print("warning: --mode is deprecated; use --judge hisrect / --judge one-phase", file=sys.stderr)
        warnings.warn(
            "--mode is deprecated; use --judge hisrect / --judge one-phase",
            DeprecationWarning,
            stacklevel=2,
        )
        if args.judge is not None and args.judge != MODE_TO_JUDGE[args.mode]:
            raise ReproError(f"--mode {args.mode} conflicts with --judge {args.judge}")
        return MODE_TO_JUDGE[args.mode]
    return args.judge or "hisrect"


def cmd_train(args: argparse.Namespace) -> int:
    """Train a judge selected by registry name on a saved dataset."""
    from repro.colocation.variants import PIPELINE_VARIANTS

    judge_name = _selected_judge(args)
    persistable = judge_name in PIPELINE_VARIANTS
    if persistable and args.out is None:
        raise ReproError("--out is required for pipeline-backed judges")
    dataset = load_dataset(args.dataset)
    config = _pipeline_config(args)
    if not args.use_unlabeled:
        config = replace(config, ssl=replace(config.ssl, use_unlabeled=False))
    config_dict = config_to_dict(config)
    if judge_name == "social":
        # The social approach nests its base pipeline's configuration; the
        # CLI flags size that base pipeline, the stacker keeps its defaults.
        config_dict = {"base": config_dict}
    approach = registry_mod.build("judge", judge_name, config_dict)
    approach.fit(dataset)
    print(f"trained judge {judge_name!r}")

    if isinstance(approach, CoLocationPipeline):
        pipeline = approach
        directory = save_pipeline(pipeline, args.out)
        print(f"pipeline saved to {directory}")
        if pipeline.ssl_history is not None:
            print(
                "  ssl: final poi loss "
                f"{pipeline.ssl_history.final_poi_loss}, final unsupervised loss "
                f"{pipeline.ssl_history.final_unsupervised_loss}"
            )
    else:
        if args.out is not None:
            print(f"judge {judge_name!r} has no persistence format; skipping --out")
        metrics = evaluate_judge(approach, dataset.test.labeled_pairs, num_folds=2)
        print(f"test pairs: {len(dataset.test.labeled_pairs)} (averaged over 2 balanced folds)")
        for name, value in metrics.as_dict().items():
            print(f"  {name} = {value:.4f}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Evaluate a saved pipeline on a saved dataset's test pairs."""
    dataset = load_dataset(args.dataset)
    pipeline = load_pipeline(args.model)
    metrics = evaluate_judge(pipeline, dataset.test.labeled_pairs, num_folds=args.folds)
    print(f"test pairs: {len(dataset.test.labeled_pairs)} (averaged over {args.folds} balanced folds)")
    for name, value in metrics.as_dict().items():
        print(f"  {name} = {value:.4f}")
    return 0


def cmd_infer_poi(args: argparse.Namespace) -> int:
    """POI-inference Acc@K of a saved pipeline on a saved dataset."""
    dataset = load_dataset(args.dataset)
    pipeline = load_pipeline(args.model)
    profiles = dataset.test.labeled_profiles
    if not profiles:
        print("the dataset's test split has no labelled profiles", file=sys.stderr)
        return 1
    registry = dataset.registry
    proba = pipeline.infer_poi_proba(profiles)
    true_indices = np.array([registry.index_of(p.pid) for p in profiles])
    print(f"profiles: {len(profiles)}, candidate POIs: {len(registry)}")
    for k in range(1, args.top_k + 1):
        print(f"  Acc@{k} = {accuracy_at_k(true_indices, proba, k):.4f}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one of the paper's experiments and print its report."""
    # Imported lazily: the experiment runners pull in every approach.
    from repro.experiments import delta_t, extensions, figure4, figure5, parameters, shared_context
    from repro.experiments import ssl_alternatives, table2, table4, table5, table8

    runners = {
        "table2": lambda ctx: table2.format_report(table2.run(ctx)),
        "table4": lambda ctx: table4.format_report(table4.run(ctx, datasets=(args.dataset,))),
        "table5": lambda ctx: table5.format_report(table5.run(ctx, dataset=args.dataset)),
        "table8": lambda ctx: table8.format_report(table8.run(ctx, dataset=args.dataset)),
        "figure4": lambda ctx: figure4.format_report(figure4.run(ctx, datasets=(args.dataset,))),
        "figure5": lambda ctx: figure5.format_report(figure5.run(ctx, dataset=args.dataset)),
        "ssl-alternatives": lambda ctx: ssl_alternatives.format_report(
            ssl_alternatives.run(ctx, dataset=args.dataset)
        ),
        "delta-t": lambda ctx: delta_t.format_report(delta_t.run(ctx, dataset=args.dataset)),
        "eps-d": lambda ctx: parameters.format_report(
            parameters.run_eps_d(ctx, dataset=args.dataset),
            title="Ablation: history smoothing factor eps_d",
        ),
        "extension-encoders": lambda ctx: extensions.format_encoder_report(
            extensions.run_encoders(ctx, dataset=args.dataset)
        ),
        "extension-social": lambda ctx: extensions.format_social_report(
            extensions.run_social(ctx, dataset=args.dataset)
        ),
    }
    if args.name not in runners:
        print(f"unknown experiment {args.name!r}; choose from {sorted(runners)}", file=sys.stderr)
        return 2
    context = shared_context(args.scale)
    print(runners[args.name](context))
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """Race single-engine vs. sharded micro-batched serving on a skewed load."""
    # Imported lazily: the cluster load generator pulls in the full pipeline.
    from repro.cluster.loadgen import (
        LoadConfig,
        compare_serving_paths,
        fit_serving_pipeline,
        generate_requests,
    )

    config = LoadConfig(
        num_users=args.users,
        num_requests=args.requests,
        pairs_per_request=args.pairs,
        zipf_s=args.skew,
        seed=args.seed,
    )
    print(
        f"fitting the serving judge and generating {config.num_requests} requests "
        f"({config.pairs_per_request} pairs each, {config.num_users} users, "
        f"zipf s={config.zipf_s}) ..."
    )
    pipeline, dataset = fit_serving_pipeline(seed=args.seed)
    requests = generate_requests(dataset.registry, dataset.training_corpus(), config)
    report = compare_serving_paths(
        pipeline,
        requests,
        num_shards=args.shards,
        cache_size=args.cache_size,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        num_workers=args.workers if args.workers > 0 else None,
        trace=args.trace,
    )
    print(report.format())
    if not report.exact_match:
        print("error: sharded probabilities diverged from the single engine", file=sys.stderr)
        return 1
    if report.coalescing_drift > 1e-12:
        # The same bound the benchmark enforces: coalescing may flip the
        # last mantissa bit, never more.
        print(
            f"error: micro-batch coalescing drifted by {report.coalescing_drift:.2e}",
            file=sys.stderr,
        )
        return 1
    if not report.serve_exact:
        print("error: typed serve responses diverged across the serving paths", file=sys.stderr)
        return 1
    if report.serve_drift > 1e-12:
        print(
            f"error: batched serve drifted by {report.serve_drift:.2e}",
            file=sys.stderr,
        )
        return 1
    if report.workers is not None:
        if not report.workers_exact:
            print(
                "error: worker-pool probabilities diverged from the single engine",
                file=sys.stderr,
            )
            return 1
        if report.workers_drift > 1e-12:
            print(
                f"error: worker-tier coalescing drifted by {report.workers_drift:.2e}",
                file=sys.stderr,
            )
            return 1
        if not report.workers_serve_exact:
            print(
                "error: worker-pool serve responses diverged from the single engine",
                file=sys.stderr,
            )
            return 1
    return 0


def _traced_serve(engine, serve_requests):
    """Micro-batched typed serve — the front door every transport shares."""
    from repro.cluster.batcher import MicroBatcher

    with MicroBatcher(engine, max_batch=64, overflow="block") as batcher:
        futures = [batcher.submit_serve(request) for request in serve_requests]
        return [future.result() for future in futures]


def cmd_metrics(args: argparse.Namespace) -> int:
    """Trace a small serving load end-to-end and dump the metrics registry."""
    # Imported lazily: the cluster load generator pulls in the full pipeline.
    from repro.api import JudgeRequest
    from repro.cluster.gateway import WorkerPool
    from repro.cluster.loadgen import (
        LoadConfig,
        fit_serving_pipeline,
        generate_requests,
    )
    from repro.cluster.sharded import ShardedEngine
    from repro.obs import format_stage_table, tracing

    config = LoadConfig(
        num_users=args.users,
        num_requests=args.requests,
        pairs_per_request=args.pairs,
        seed=args.seed,
    )
    tier = f"workers x{args.workers}" if args.workers > 0 else f"sharded x{args.shards}"
    print(
        f"fitting the serving judge and tracing {config.num_requests} requests "
        f"through the micro-batched {tier} tier ..."
    )
    pipeline, dataset = fit_serving_pipeline(seed=args.seed)
    requests = generate_requests(dataset.registry, dataset.training_corpus(), config)
    serve_requests = [JudgeRequest(pairs=tuple(pairs)) for pairs in requests]
    with tracing() as tracer:
        if args.workers > 0:
            with WorkerPool(
                pipeline, num_workers=args.workers, cache_size=args.cache_size
            ) as pool:
                responses = _traced_serve(pool, serve_requests)
                # Gateway-side stages plus every worker's `stats` snapshot.
                registry = pool.obs_snapshot()
        else:
            with ShardedEngine(
                pipeline, num_shards=args.shards, cache_size=args.cache_size
            ) as engine:
                responses = _traced_serve(engine, serve_requests)
            registry = tracer.registry
    slowest = max(
        (response for response in responses if response.trace is not None),
        key=lambda response: sum(ms for _, ms in response.trace["stages"]),
        default=None,
    )
    if slowest is not None:
        total = sum(ms for _, ms in slowest.trace["stages"])
        print(f"slowest traced request {slowest.trace['trace_id']} ({total:.3f} ms):")
        for name, ms in slowest.trace["stages"]:
            print(f"  {name:<16} {ms:>10.3f} ms")
        print()
    print(format_stage_table(registry))
    print()
    print(registry.to_text())
    return 0


def _parse_endpoint(value: str) -> tuple[str, int]:
    host, separator, port = value.rpartition(":")
    if not separator or not port.isdigit():
        raise ReproError(f"endpoint {value!r} is not HOST:PORT")
    return (host or "127.0.0.1", int(port))


def cmd_worker(args: argparse.Namespace) -> int:
    """Run one shard worker over a saved pipeline (or worker bundle)."""
    import pathlib

    from repro.cluster.worker import (
        load_judge_bundle,
        run_worker_client,
        run_worker_listener,
    )

    if args.connect and args.token is None:
        print("error: --connect requires --token", file=sys.stderr)
        return 2
    model_dir = pathlib.Path(args.model)
    if (model_dir / "bundle.json").exists():
        judge = load_judge_bundle(model_dir)
    else:
        judge = load_pipeline(args.model)
    knobs = {
        "cache_size": args.cache_size,
        "threshold": args.threshold,
        "batch_size": args.batch_size,
        "arena_dir": args.arena_dir,
    }
    if args.connect:
        host, port = _parse_endpoint(args.connect)
        run_worker_client(judge, host, port, args.token, args.id, **knobs)
        return 0
    host, port = _parse_endpoint(args.listen)
    run_worker_listener(
        judge,
        host,
        port,
        once=args.once,
        ready=lambda address: print(f"worker listening on {address[0]}:{address[1]}", flush=True),
        **knobs,
    )
    return 0


def cmd_components(args: argparse.Namespace) -> int:
    """List every registered component, grouped by kind."""
    kinds = (args.kind,) if args.kind else registry_mod.kinds()
    for kind in kinds:
        print(f"{kind}:")
        for name in registry_mod.names(kind):
            description = registry_mod.spec(kind, name).description
            suffix = f" — {description}" if description else ""
            print(f"  {name}{suffix}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run the repro.analysis invariant checker over the source tree."""
    from repro.analysis.cli import run as analysis_run

    return analysis_run(
        args.paths,
        format=args.format,
        baseline_path=args.baseline,
        no_baseline=args.no_baseline,
        write_baseline_file=args.write_baseline,
        rules=args.rules,
    )


# --------------------------------------------------------------------- parser


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for the test suite)."""
    parser = argparse.ArgumentParser(
        prog="repro-hisrect",
        description="HisRect co-location judgement: datasets, training, evaluation, experiments.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("--preset", choices=registry_mod.names("preset"), default="nyc")
    generate.add_argument("--scale", type=float, default=0.5, help="dataset size multiplier")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True, help="output directory")
    generate.set_defaults(func=cmd_generate)

    train = subparsers.add_parser("train", help="train a co-location judge on a saved dataset")
    train.add_argument("--dataset", required=True, help="dataset directory from `generate`")
    train.add_argument("--out", help="output directory for the fitted pipeline")
    train.add_argument(
        "--judge",
        choices=registry_mod.names("judge"),
        default=None,
        help="judge registry name (default: hisrect)",
    )
    train.add_argument(
        "--mode",
        choices=sorted(MODE_TO_JUDGE),
        default=None,
        help="deprecated; use --judge",
    )
    train.add_argument("--ssl-iterations", type=int, default=240)
    train.add_argument("--judge-epochs", type=int, default=30)
    train.add_argument("--content-dim", type=int, default=16)
    train.add_argument("--feature-dim", type=int, default=32)
    train.add_argument("--embedding-dim", type=int, default=16)
    train.add_argument("--word-dim", type=int, default=32)
    train.add_argument("--seed", type=int, default=97)
    train.add_argument(
        "--no-unlabeled",
        dest="use_unlabeled",
        action="store_false",
        help="disable the semi-supervised loss (the HisRect-SL ablation)",
    )
    train.set_defaults(func=cmd_train, use_unlabeled=True)

    evaluate = subparsers.add_parser("evaluate", help="Table 4 metrics of a saved pipeline")
    evaluate.add_argument("--dataset", required=True)
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--folds", type=int, default=10, help="balanced negative folds")
    evaluate.set_defaults(func=cmd_evaluate)

    infer = subparsers.add_parser("infer-poi", help="POI inference Acc@K of a saved pipeline")
    infer.add_argument("--dataset", required=True)
    infer.add_argument("--model", required=True)
    infer.add_argument("--top-k", type=int, default=5)
    infer.set_defaults(func=cmd_infer_poi)

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("name", help="table2, table4, table5, table8, figure4, figure5, "
                                         "ssl-alternatives, delta-t, eps-d, extension-encoders "
                                         "or extension-social")
    experiment.add_argument("--dataset", choices=("nyc", "lv"), default="nyc")
    experiment.add_argument("--scale", choices=("smoke", "default", "full"), default="smoke")
    experiment.set_defaults(func=cmd_experiment)

    serve_bench = subparsers.add_parser(
        "serve-bench", help="race single-engine vs. sharded micro-batched serving"
    )
    serve_bench.add_argument("--shards", type=int, default=4, help="engine shards")
    serve_bench.add_argument("--requests", type=int, default=384, help="requests to serve")
    serve_bench.add_argument("--pairs", type=int, default=4, help="pairs per request")
    serve_bench.add_argument("--users", type=int, default=256, help="distinct users in the mix")
    serve_bench.add_argument("--skew", type=float, default=1.1, help="Zipf exponent of the user mix")
    serve_bench.add_argument("--cache-size", type=int, default=4096, help="total feature-cache budget")
    serve_bench.add_argument("--max-batch", type=int, default=256, help="micro-batch flush size")
    serve_bench.add_argument("--max-delay-ms", type=float, default=0.0, help="micro-batch flush delay")
    serve_bench.add_argument("--seed", type=int, default=23)
    serve_bench.add_argument(
        "--workers",
        type=int,
        default=0,
        help="also race a WorkerPool with this many worker processes (0 = off)",
    )
    serve_bench.add_argument(
        "--trace",
        action="store_true",
        help="trace every pass and append per-stage latency breakdown tables",
    )
    serve_bench.set_defaults(func=cmd_serve_bench)

    metrics = subparsers.add_parser(
        "metrics", help="trace a small serving load and dump the metrics registry"
    )
    metrics.add_argument("--shards", type=int, default=4, help="engine shards")
    metrics.add_argument("--requests", type=int, default=96, help="requests to trace")
    metrics.add_argument("--pairs", type=int, default=4, help="pairs per request")
    metrics.add_argument("--users", type=int, default=64, help="distinct users in the mix")
    metrics.add_argument("--cache-size", type=int, default=4096, help="feature-cache rows")
    metrics.add_argument("--seed", type=int, default=23)
    metrics.add_argument(
        "--workers",
        type=int,
        default=0,
        help="trace the process-worker tier instead, with this many workers",
    )
    metrics.set_defaults(func=cmd_metrics)

    worker = subparsers.add_parser(
        "worker", help="run one shard worker over a saved pipeline"
    )
    worker.add_argument("--model", required=True, help="pipeline or worker-bundle directory")
    endpoint = worker.add_mutually_exclusive_group(required=True)
    endpoint.add_argument("--listen", help="HOST:PORT to accept gateway connections on")
    endpoint.add_argument("--connect", help="HOST:PORT of a gateway to dial back into")
    worker.add_argument("--id", type=int, default=0, help="worker index (with --connect)")
    worker.add_argument("--token", help="gateway HELLO token (with --connect)")
    worker.add_argument("--cache-size", type=int, default=4096, help="feature-cache rows")
    worker.add_argument(
        "--arena-dir",
        default=None,
        help="memmap arena slice directory for the cold feature tier",
    )
    worker.add_argument("--threshold", type=float, default=None, help="decision threshold")
    worker.add_argument("--batch-size", type=int, default=1024, help="scoring chunk size")
    worker.add_argument(
        "--once", action="store_true", help="exit after the first connection (with --listen)"
    )
    worker.set_defaults(func=cmd_worker)

    components = subparsers.add_parser("components", help="list registered components")
    components.add_argument(
        "--kind",
        choices=registry_mod.kinds(),
        default=None,
        help="restrict the listing to one component kind",
    )
    components.set_defaults(func=cmd_components)

    check = subparsers.add_parser(
        "check",
        help="run the repro.analysis invariant checker (same as `python -m repro.analysis`)",
    )
    check.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to check (default: src)"
    )
    check.add_argument("--format", choices=("text", "json"), default="text")
    check.add_argument(
        "--baseline",
        default="analysis-baseline.json",
        help="baseline file of grandfathered findings (missing file = empty baseline)",
    )
    check.add_argument("--no-baseline", action="store_true", help="ignore the baseline file")
    check.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding",
    )
    check.add_argument("--rules", default="", help="comma-separated subset of rule ids")
    check.set_defaults(func=cmd_check)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
