"""repro — a reproduction of HisRect co-location judgement (Li et al., TKDE 2019).

The package is organised as:

* :mod:`repro.geo` — geospatial substrate (points, polygons, POIs).
* :mod:`repro.data` — synthetic Twitter substrate (cities, mobility, tweets,
  profiles, pairs, datasets); dataset presets self-register in the registry.
* :mod:`repro.text` — tokenisation and skip-gram word vectors.
* :mod:`repro.nn` — from-scratch autodiff, layers, LSTMs, losses, optimisers.
* :mod:`repro.core` — the judge protocols (:class:`repro.core.CoLocationJudge`,
  :class:`repro.core.FeatureSpaceJudge`) and the
  :class:`repro.core.TrainingStrategy` abstraction every judge and pipeline
  mode implements.
* :mod:`repro.registry` — the string-keyed component registry: judges,
  baselines, featurizer variants, dataset presets and training strategies are
  built by name from plain configuration dictionaries.
* :mod:`repro.features` — the HisRect featurizer (historical-visit feature,
  content encoders, combiner, POI classifier); variants self-register.
* :mod:`repro.ssl` — affinity graph and semi-supervised training (Algorithm 1).
* :mod:`repro.colocation` — the co-location judge, naive judges, clustering,
  the training strategies and the high-level
  :class:`repro.colocation.pipeline.CoLocationPipeline`.
* :mod:`repro.baselines` — TG-TI-C and N-Gram-Gauss location-inference baselines.
* :mod:`repro.social` — the Section 7 extension: friendship graphs, social and
  frequent-pattern pair features, the stacked social co-location judge.
* :mod:`repro.api` — the serving facade: :class:`repro.api.ColocationEngine`
  wraps any fitted judge behind batched prediction, a thread-safe LRU feature
  cache and typed :class:`repro.api.JudgeRequest` /
  :class:`repro.api.JudgeResponse` messages.
* :mod:`repro.cluster` — serving at scale: the hash-partitioned
  :class:`repro.cluster.ShardedEngine`, the request-coalescing
  :class:`repro.cluster.MicroBatcher` and :class:`repro.cluster.ClusterMetrics`
  telemetry.
* :mod:`repro.eval` — metrics, ROC/AUC, Acc@K, ranking and clustering metrics,
  t-SNE, group-pattern case study.
* :mod:`repro.service` — friends notification, local people recommendation,
  community detection and followship measurement on top of an engine.
* :mod:`repro.io` — persistence for datasets, fitted pipelines (and
  :func:`repro.io.load_engine`) and friendship graphs.
* :mod:`repro.experiments` — one runner per table/figure of the paper plus the
  extension studies; approaches are built through the registry.

The serving entry point is importable from the top level::

    from repro import ColocationEngine
"""

from repro.version import __version__

__all__ = [
    "__version__",
    "ColocationEngine",
    "JudgeRequest",
    "JudgeResponse",
    "MicroBatcher",
    "ShardedEngine",
]

#: Top-level conveniences, resolved lazily to keep ``import repro`` light.
_LAZY_EXPORTS = {
    "ColocationEngine": "repro.api",
    "JudgeRequest": "repro.api",
    "JudgeResponse": "repro.api",
    "MicroBatcher": "repro.cluster",
    "ShardedEngine": "repro.cluster",
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(_LAZY_EXPORTS[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
