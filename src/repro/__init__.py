"""repro — a reproduction of HisRect co-location judgement (Li et al., TKDE 2019).

The package is organised as:

* :mod:`repro.geo` — geospatial substrate (points, polygons, POIs).
* :mod:`repro.data` — synthetic Twitter substrate (cities, mobility, tweets,
  profiles, pairs, datasets).
* :mod:`repro.text` — tokenisation and skip-gram word vectors.
* :mod:`repro.nn` — from-scratch autodiff, layers, LSTMs, losses, optimisers.
* :mod:`repro.features` — the HisRect featurizer (historical-visit feature,
  content encoders, combiner, POI classifier).
* :mod:`repro.ssl` — affinity graph and semi-supervised training (Algorithm 1).
* :mod:`repro.colocation` — the co-location judge, naive judges, clustering and
  the high-level :class:`repro.colocation.pipeline.CoLocationPipeline`.
* :mod:`repro.baselines` — TG-TI-C and N-Gram-Gauss location-inference baselines.
* :mod:`repro.social` — the Section 7 extension: friendship graphs, social and
  frequent-pattern pair features, the stacked social co-location judge.
* :mod:`repro.eval` — metrics, ROC/AUC, Acc@K, ranking and clustering metrics,
  t-SNE, group-pattern case study.
* :mod:`repro.service` — friends notification, local people recommendation,
  community detection and followship measurement on top of a fitted judge.
* :mod:`repro.io` — persistence for datasets, fitted pipelines and friendship
  graphs.
* :mod:`repro.experiments` — one runner per table/figure of the paper plus the
  extension studies.
"""

from repro.version import __version__

__all__ = ["__version__"]
