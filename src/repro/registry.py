"""A string-keyed component registry for judges, baselines, featurizers and presets.

Components self-register at import time under a ``(kind, name)`` key together
with a ``from_config(dict)`` factory, so callers build them from plain
configuration dictionaries instead of hand-wired imports::

    import repro.registry as registry

    approach = registry.build("judge", "one-phase", {"seed": 7})
    judge = approach.fit(dataset)            # TrainableApproach protocol
    preset = registry.build("preset", "nyc", {"scale": 0.5})

Kinds in use:

* ``"judge"`` — trainable co-location approaches (``fit(dataset)`` plus the
  :class:`repro.core.CoLocationJudge` protocol): the HisRect pipeline and its
  feature ablations, One-phase, Comp2Loc, the social judge and both
  location-inference baselines.
* ``"baseline"`` — the naive location-inference baselines on their own.
* ``"featurizer"`` — HisRect featurizer variants, mapping a config dict to a
  variant-adjusted :class:`repro.features.HisRectConfig`.
* ``"preset"`` — synthetic dataset presets producing a ``DatasetConfig``.
* ``"strategy"`` — pipeline training strategies (two-phase / one-phase).

Registration happens in the component's own module; the registry lazily
imports the provider modules on first query so ``repro.registry`` stays
import-light.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError

#: Modules whose import populates the registry (self-registration).
_PROVIDER_MODULES = (
    "repro.data.dataset",
    "repro.features.hisrect",
    "repro.baselines",
    "repro.colocation.strategies",
    "repro.colocation.variants",
    "repro.social.judge",
)

_bootstrapped = False


@dataclass(frozen=True)
class ComponentSpec:
    """One registered component: its key, factory and documentation."""

    kind: str
    name: str
    factory: Callable[[dict[str, Any] | None], Any] = field(repr=False)
    description: str = ""


_components: dict[str, dict[str, ComponentSpec]] = {}


def _bootstrap() -> None:
    """Import every provider module once so components self-register."""
    global _bootstrapped
    if _bootstrapped:
        return
    # Set the flag first: provider imports may query the registry themselves
    # (e.g. PipelineConfig validation), which must not recurse into bootstrap.
    _bootstrapped = True
    try:
        for module in _PROVIDER_MODULES:
            importlib.import_module(module)
    except BaseException:
        # A failed provider import must not leave the registry silently
        # half-populated for the rest of the process.
        _bootstrapped = False
        raise


def register(
    kind: str,
    name: str,
    *,
    factory: Callable[[dict[str, Any] | None], Any] | None = None,
    description: str = "",
):
    """Register a component under ``(kind, name)``.

    Use as a decorator on a factory function or on a class exposing a
    ``from_config(dict)`` classmethod, or call directly with ``factory=``.
    Returns the decorated object unchanged.
    """

    def _register(target):
        if factory is not None:
            built = factory
        elif isinstance(target, type) and hasattr(target, "from_config"):
            built = target.from_config
        elif isinstance(target, type):
            built = lambda config=None: target(**(config or {}))  # noqa: E731
        else:
            built = target
        bucket = _components.setdefault(kind, {})
        if name in bucket:
            raise ConfigurationError(f"{kind}/{name} is already registered")
        bucket[name] = ComponentSpec(kind=kind, name=name, factory=built, description=description)
        return target

    if factory is not None:
        return _register(factory)
    return _register


def build(kind: str, name: str, config: dict[str, Any] | None = None) -> Any:
    """Construct the component registered under ``(kind, name)``.

    ``config`` is the component's plain-dict configuration (see
    :func:`repro.io.configs.config_from_dict`); ``None`` means defaults.
    """
    return spec(kind, name).factory(config)


def spec(kind: str, name: str) -> ComponentSpec:
    """The :class:`ComponentSpec` for ``(kind, name)``; raises when unknown."""
    _bootstrap()
    bucket = _components.get(kind)
    if not bucket:
        raise ConfigurationError(f"unknown component kind {kind!r}; choose from {kinds()}")
    if name not in bucket:
        raise ConfigurationError(
            f"unknown {kind} {name!r}; choose from {names(kind)}"
        )
    return bucket[name]


def names(kind: str) -> tuple[str, ...]:
    """All registered names under a kind, sorted."""
    _bootstrap()
    return tuple(sorted(_components.get(kind, {})))


def kinds() -> tuple[str, ...]:
    """All registered component kinds, sorted."""
    _bootstrap()
    return tuple(sorted(_components))


def is_registered(kind: str, name: str) -> bool:
    """True when ``(kind, name)`` names a registered component."""
    _bootstrap()
    return name in _components.get(kind, {})


__all__ = [
    "ComponentSpec",
    "register",
    "build",
    "spec",
    "names",
    "kinds",
    "is_registered",
]
