"""Threshold curves beyond ROC: precision-recall and calibration.

The paper reports ROC curves (Figure 2); downstream users of a heavily
imbalanced judgement problem usually also want the precision-recall view and
a calibration check of the predicted co-location probabilities.  These
helpers follow the same conventions as :mod:`repro.eval.metrics`: NumPy
arrays in, NumPy arrays out, no plotting dependencies.
"""

from __future__ import annotations

import numpy as np


def _validate(y_true: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=int).ravel()
    scores = np.asarray(scores, dtype=float).ravel()
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same shape")
    if y_true.size == 0:
        raise ValueError("cannot compute a curve from zero samples")
    if not np.isin(y_true, (0, 1)).all():
        raise ValueError("y_true must contain only 0/1 labels")
    return y_true, scores


def precision_recall_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision and recall at every distinct score threshold.

    Returns ``(precision, recall, thresholds)`` with precision/recall one
    element longer than thresholds (the final point is precision 1, recall 0
    by convention), mirroring the familiar scikit-learn layout.
    """
    y_true, scores = _validate(y_true, scores)
    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    sorted_scores = scores[order]

    distinct = np.where(np.diff(sorted_scores))[0]
    threshold_indices = np.concatenate([distinct, [y_true.size - 1]])

    true_positives = np.cumsum(sorted_true)[threshold_indices]
    false_positives = (threshold_indices + 1) - true_positives
    total_positives = sorted_true.sum()

    precision = np.where(
        true_positives + false_positives > 0,
        true_positives / np.maximum(true_positives + false_positives, 1),
        1.0,
    )
    recall = (
        true_positives / total_positives if total_positives > 0 else np.zeros_like(true_positives, dtype=float)
    )
    thresholds = sorted_scores[threshold_indices]

    precision = np.concatenate([precision[::-1], [1.0]])
    recall = np.concatenate([recall[::-1], [0.0]])
    return precision, recall, thresholds[::-1]


def average_precision(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the precision-recall curve (step-wise interpolation)."""
    precision, recall, _ = precision_recall_curve(y_true, scores)
    # recall is decreasing after the flip above; integrate over its drops.
    return float(np.sum(np.diff(recall[::-1]) * precision[::-1][1:]))


def f1_at_threshold(y_true: np.ndarray, scores: np.ndarray, threshold: float) -> float:
    """F1 score obtained by thresholding the scores at ``threshold``."""
    y_true, scores = _validate(y_true, scores)
    predictions = (scores >= threshold).astype(int)
    true_positive = int(np.sum((predictions == 1) & (y_true == 1)))
    false_positive = int(np.sum((predictions == 1) & (y_true == 0)))
    false_negative = int(np.sum((predictions == 0) & (y_true == 1)))
    denominator = 2 * true_positive + false_positive + false_negative
    return 2 * true_positive / denominator if denominator else 0.0


def best_f1_threshold(y_true: np.ndarray, scores: np.ndarray) -> tuple[float, float]:
    """The score threshold maximising F1, and that F1 value."""
    y_true, scores = _validate(y_true, scores)
    candidates = np.unique(scores)
    best_threshold, best_value = 0.5, -1.0
    for threshold in candidates:
        value = f1_at_threshold(y_true, scores, float(threshold))
        if value > best_value:
            best_threshold, best_value = float(threshold), value
    return best_threshold, best_value


def calibration_curve(
    y_true: np.ndarray, scores: np.ndarray, num_bins: int = 10
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reliability diagram data: per-bin mean score, empirical rate and count."""
    if num_bins < 1:
        raise ValueError("num_bins must be positive")
    y_true, scores = _validate(y_true, scores)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bin_ids = np.clip(np.digitize(scores, edges[1:-1]), 0, num_bins - 1)
    mean_scores = np.zeros(num_bins)
    empirical = np.zeros(num_bins)
    counts = np.zeros(num_bins, dtype=int)
    for b in range(num_bins):
        mask = bin_ids == b
        counts[b] = int(mask.sum())
        if counts[b]:
            mean_scores[b] = float(scores[mask].mean())
            empirical[b] = float(y_true[mask].mean())
    return mean_scores, empirical, counts


def expected_calibration_error(y_true: np.ndarray, scores: np.ndarray, num_bins: int = 10) -> float:
    """Weighted average |confidence - accuracy| over the calibration bins."""
    mean_scores, empirical, counts = calibration_curve(y_true, scores, num_bins=num_bins)
    total = counts.sum()
    if total == 0:
        return 0.0
    mask = counts > 0
    return float(np.sum(counts[mask] * np.abs(mean_scores[mask] - empirical[mask])) / total)
