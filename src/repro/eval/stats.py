"""Statistical helpers for comparing co-location judges.

The paper reports point estimates averaged over balanced test folds; when two
approaches land close together a user needs confidence intervals and a paired
significance test before claiming one wins.  These helpers provide both using
only NumPy/SciPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as scipy_stats


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2x2 confusion matrix ``[[TN, FP], [FN, TP]]`` for binary labels."""
    y_true = np.asarray(y_true, dtype=int).ravel()
    y_pred = np.asarray(y_pred, dtype=int).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    matrix = np.zeros((2, 2), dtype=int)
    for truth, prediction in zip(y_true, y_pred):
        if truth not in (0, 1) or prediction not in (0, 1):
            raise ValueError("confusion_matrix expects binary 0/1 labels")
        matrix[truth, prediction] += 1
    return matrix


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap confidence interval for one metric."""

    point: float
    lower: float
    upper: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def bootstrap_metric(
    y_true: np.ndarray,
    y_score: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float],
    num_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 7,
) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval for ``metric(y_true, y_score)``."""
    y_true = np.asarray(y_true).ravel()
    y_score = np.asarray(y_score).ravel()
    if y_true.shape != y_score.shape:
        raise ValueError("y_true and y_score must have the same shape")
    if y_true.size == 0:
        raise ValueError("cannot bootstrap zero samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    point = float(metric(y_true, y_score))
    samples = np.empty(num_resamples)
    n = y_true.size
    for i in range(num_resamples):
        index = rng.integers(0, n, size=n)
        samples[i] = metric(y_true[index], y_score[index])
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(samples, [alpha, 1.0 - alpha])
    return ConfidenceInterval(point=point, lower=float(lower), upper=float(upper), confidence=confidence)


@dataclass(frozen=True)
class McNemarResult:
    """Outcome of a paired McNemar test between two judges."""

    #: Pairs the first judge got right and the second wrong.
    first_only: int
    #: Pairs the second judge got right and the first wrong.
    second_only: int
    statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """True at the conventional 5% level."""
        return self.p_value < 0.05


def mcnemar_test(
    y_true: np.ndarray, pred_first: np.ndarray, pred_second: np.ndarray
) -> McNemarResult:
    """Paired McNemar test (with continuity correction) on two prediction vectors.

    Small discordant counts (< 25) fall back to the exact binomial test, which
    is the textbook recommendation for the small balanced folds used here.
    """
    y_true = np.asarray(y_true, dtype=int).ravel()
    pred_first = np.asarray(pred_first, dtype=int).ravel()
    pred_second = np.asarray(pred_second, dtype=int).ravel()
    if not (y_true.shape == pred_first.shape == pred_second.shape):
        raise ValueError("all inputs must have the same shape")
    correct_first = pred_first == y_true
    correct_second = pred_second == y_true
    first_only = int(np.sum(correct_first & ~correct_second))
    second_only = int(np.sum(~correct_first & correct_second))
    discordant = first_only + second_only
    if discordant == 0:
        return McNemarResult(first_only, second_only, statistic=0.0, p_value=1.0)
    if discordant < 25:
        p_value = float(
            scipy_stats.binomtest(min(first_only, second_only), discordant, 0.5).pvalue
        )
        statistic = float(min(first_only, second_only))
    else:
        statistic = (abs(first_only - second_only) - 1) ** 2 / discordant
        p_value = float(scipy_stats.chi2.sf(statistic, df=1))
    return McNemarResult(first_only, second_only, statistic=float(statistic), p_value=p_value)


def paired_fold_ttest(first_scores: list[float], second_scores: list[float]) -> tuple[float, float]:
    """Paired t-test over per-fold metric values; returns ``(t_statistic, p_value)``."""
    first = np.asarray(first_scores, dtype=float)
    second = np.asarray(second_scores, dtype=float)
    if first.shape != second.shape or first.size < 2:
        raise ValueError("need at least two paired fold scores")
    if np.allclose(first, second):
        return 0.0, 1.0
    result = scipy_stats.ttest_rel(first, second)
    return float(result.statistic), float(result.pvalue)
